//! Offline stand-in for `serde`.
//!
//! The build environment cannot reach crates.io, so the workspace vendors
//! a value-tree serialization framework under serde's names: a type
//! implementing [`Serialize`] renders itself into a [`Value`] tree, and
//! [`Deserialize`] rebuilds the type from such a tree. `serde_json` (also
//! vendored) converts between [`Value`] trees and JSON text. The derive
//! macros re-exported here come from the vendored `serde_derive`
//! proc-macro crate and mirror serde's external data model: structs as
//! objects, unit enum variants as strings, data-carrying variants as
//! single-key objects, `#[serde(default)]` and container-level
//! `#[serde(from = "...", into = "...")]`.
//!
//! Only the API surface this workspace uses is provided; wire formats are
//! compatible with real serde_json for every type the repo serialises.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::time::Duration;

pub use serde_derive::{Deserialize, Serialize};

/// An ordered string-keyed map of [`Value`]s (JSON object).
///
/// Backed by an insertion-ordered vector: the workspace's objects are
/// small, and preserving field order keeps emitted JSON readable.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// An empty object.
    pub fn new() -> Self {
        Map::default()
    }

    /// Insert or replace `key`, returning the previous value if any.
    pub fn insert(&mut self, key: impl Into<String>, value: Value) -> Option<Value> {
        let key = key.into();
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// Look up a key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when there are no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

impl IntoIterator for Map {
    type Item = (String, Value);
    type IntoIter = std::vec::IntoIter<(String, Value)>;
    fn into_iter(self) -> Self::IntoIter {
        self.entries.into_iter()
    }
}

impl FromIterator<(String, Value)> for Map {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        let mut map = Map::new();
        for (k, v) in iter {
            map.insert(k, v);
        }
        map
    }
}

/// A serialized value tree (the JSON data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer too large for `i64`, or any unsigned source.
    UInt(u64),
    /// Floating point.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object.
    Object(Map),
}

impl Value {
    /// The value as a signed 128-bit integer, if it is integral.
    pub fn as_i128(&self) -> Option<i128> {
        match self {
            Value::Int(v) => Some(*v as i128),
            Value::UInt(v) => Some(*v as i128),
            Value::Float(f) if f.fract() == 0.0 && f.is_finite() => Some(*f as i128),
            _ => None,
        }
    }

    /// The value as a float, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::UInt(v) => Some(*v as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The value as an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// A short name of the value's type for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Serialization / deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// An error with the given message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Render `self` into a [`Value`] tree.
pub trait Serialize {
    /// The serialized form.
    fn to_value(&self) -> Value;
}

/// Rebuild `Self` from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parse the serialized form.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// `serde::ser` namespace compatibility.
pub mod ser {
    pub use super::{Error, Serialize};
}

/// `serde::de` namespace compatibility.
pub mod de {
    pub use super::{Deserialize, Error};

    /// Owned deserialization marker; with a value-tree model every
    /// [`Deserialize`] is already owned.
    pub trait DeserializeOwned: Deserialize {}
    impl<T: Deserialize> DeserializeOwned for T {}
}

fn type_err<T>(expected: &str, got: &Value) -> Result<T, Error> {
    Err(Error::custom(format!(
        "expected {expected}, found {}",
        got.kind()
    )))
}

// ---------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => type_err("bool", other),
        }
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_i128().ok_or_else(|| Error::custom(
                    format!("expected integer, found {}", v.kind()),
                ))?;
                <$t>::try_from(n)
                    .map_err(|_| Error::custom(format!("integer {n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_i128().ok_or_else(|| Error::custom(
                    format!("expected integer, found {}", v.kind()),
                ))?;
                <$t>::try_from(n)
                    .map_err(|_| Error::custom(format!("integer {n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                v.as_f64()
                    .map(|f| f as $t)
                    .ok_or_else(|| Error::custom(format!("expected number, found {}", v.kind())))
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => type_err("string", other),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => type_err("single-character string", other),
        }
    }
}

// ---------------------------------------------------------------------
// Containers
// ---------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for &mut T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => type_err("array", other),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = v
            .as_array()
            .ok_or_else(|| Error::custom(format!("expected array, found {}", v.kind())))?;
        if items.len() != N {
            return Err(Error::custom(format!(
                "expected array of length {N}, found {}",
                items.len()
            )));
        }
        let parsed: Result<Vec<T>, Error> = items.iter().map(T::from_value).collect();
        parsed.map(|vec| {
            vec.try_into()
                .unwrap_or_else(|_| unreachable!("length checked above"))
        })
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => type_err("array", other),
        }
    }
}

impl<T: Serialize + Eq + std::hash::Hash> Serialize for HashSet<T> {
    fn to_value(&self) -> Value {
        let mut items: Vec<Value> = self.iter().map(Serialize::to_value).collect();
        // Deterministic output regardless of hash order.
        items.sort_by(cmp_values);
        Value::Array(items)
    }
}

impl<T: Deserialize + Eq + std::hash::Hash> Deserialize for HashSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => type_err("array", other),
        }
    }
}

fn cmp_values(a: &Value, b: &Value) -> std::cmp::Ordering {
    format!("{a:?}").cmp(&format!("{b:?}"))
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        let mut keys: Vec<&String> = self.keys().collect();
        keys.sort();
        let mut map = Map::new();
        for k in keys {
            map.insert(k.clone(), self[k].to_value());
        }
        Value::Object(map)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(m) => m
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => type_err("object", other),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        let mut map = Map::new();
        for (k, v) in self {
            map.insert(k.clone(), v.to_value());
        }
        Value::Object(map)
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(m) => m
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => type_err("object", other),
        }
    }
}

macro_rules! impl_tuple {
    ($($len:literal => ($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Array(items) if items.len() == $len => {
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    Value::Array(items) => Err(Error::custom(format!(
                        "expected array of {}, found array of {}", $len, items.len(),
                    ))),
                    other => type_err("array", other),
                }
            }
        }
    )*};
}

impl_tuple! {
    1 => (A.0)
    2 => (A.0, B.1)
    3 => (A.0, B.1, C.2)
    4 => (A.0, B.1, C.2, D.3)
    5 => (A.0, B.1, C.2, D.3, E.4)
    6 => (A.0, B.1, C.2, D.3, E.4, F.5)
    7 => (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    8 => (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}

impl Serialize for Duration {
    fn to_value(&self) -> Value {
        let mut map = Map::new();
        map.insert("secs", Value::UInt(self.as_secs()));
        map.insert("nanos", Value::UInt(self.subsec_nanos() as u64));
        Value::Object(map)
    }
}

impl Deserialize for Duration {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let obj = v
            .as_object()
            .ok_or_else(|| Error::custom("expected duration object"))?;
        let secs = obj
            .get("secs")
            .ok_or_else(|| Error::custom("duration missing `secs`"))
            .and_then(u64::from_value)?;
        let nanos = obj
            .get("nanos")
            .ok_or_else(|| Error::custom("duration missing `nanos`"))
            .and_then(u32::from_value)?;
        Ok(Duration::new(secs, nanos))
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(()),
            other => type_err("null", other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(f32::from_value(&0.1f32.to_value()).unwrap(), 0.1f32);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![(1u32, 2.5f64), (3, 4.5)];
        assert_eq!(Vec::<(u32, f64)>::from_value(&v.to_value()).unwrap(), v);
        let opt: Option<u8> = None;
        assert_eq!(Option::<u8>::from_value(&opt.to_value()).unwrap(), None);
        let mut m = HashMap::new();
        m.insert("a".to_string(), 1usize);
        assert_eq!(
            HashMap::<String, usize>::from_value(&m.to_value()).unwrap(),
            m
        );
        let d = Duration::from_millis(1234);
        assert_eq!(Duration::from_value(&d.to_value()).unwrap(), d);
    }

    #[test]
    fn out_of_range_integers_error() {
        assert!(u8::from_value(&Value::Int(300)).is_err());
        assert!(u32::from_value(&Value::Int(-1)).is_err());
        assert!(bool::from_value(&Value::Int(1)).is_err());
    }

    #[test]
    fn map_insert_replaces() {
        let mut m = Map::new();
        assert!(m.insert("k", Value::Int(1)).is_none());
        assert_eq!(m.insert("k", Value::Int(2)), Some(Value::Int(1)));
        assert_eq!(m.get("k"), Some(&Value::Int(2)));
        assert_eq!(m.len(), 1);
    }
}
