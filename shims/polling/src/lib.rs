//! Readiness-based I/O polling for the event-loop server.
//!
//! Unlike the other directories under `shims/` — which are offline
//! stand-ins for third-party crates — this is *first-party*
//! infrastructure written for qrec and linted like any hot-path crate.
//! It wraps Linux `epoll` behind a small safe API in the style of
//! `mio`:
//!
//! * [`Poller`] — an epoll instance: `register` / `reregister` /
//!   `deregister` file descriptors with a [`Token`] and an
//!   [`Interest`], then [`Poller::wait`] for readiness [`Event`]s.
//! * [`Waker`] — an `eventfd` the *completion side* (decode workers,
//!   shutdown) writes to from any thread to make a blocked
//!   [`Poller::wait`] return immediately.
//!
//! Everything is level-triggered: a socket with unread input (or free
//! outgoing buffer space under write interest) keeps reporting ready,
//! so partial reads and short writes need no edge-triggered re-arm
//! protocol. All `unsafe` is confined to the FFI calls in [`sys`]; the
//! public surface is safe.

#![warn(missing_docs)]

#[cfg(not(target_os = "linux"))]
compile_error!("shims/polling implements epoll and supports Linux only");

use std::io;
use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};
use std::time::Duration;

/// Raw libc bindings. The build environment has no `libc` crate, so the
/// five syscall wrappers the poller needs are declared here directly;
/// they link against the libc every Rust std binary already carries.
mod sys {
    use std::os::raw::{c_int, c_uint, c_void};

    /// Mirrors `struct epoll_event`. On x86-64 Linux the kernel ABI is
    /// packed (no padding between the 32-bit mask and the 64-bit data).
    #[repr(C, packed)]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    pub const EPOLL_CLOEXEC: c_int = 0o2000000;
    pub const EPOLL_CTL_ADD: c_int = 1;
    pub const EPOLL_CTL_DEL: c_int = 2;
    pub const EPOLL_CTL_MOD: c_int = 3;

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;

    pub const EFD_CLOEXEC: c_int = 0o2000000;
    pub const EFD_NONBLOCK: c_int = 0o4000;

    pub const SOL_SOCKET: c_int = 1;
    pub const SO_SNDBUF: c_int = 7;

    extern "C" {
        pub fn setsockopt(
            fd: c_int,
            level: c_int,
            name: c_int,
            value: *const c_void,
            len: u32,
        ) -> c_int;
        pub fn epoll_create1(flags: c_int) -> c_int;
        pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        pub fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        pub fn eventfd(initval: c_uint, flags: c_int) -> c_int;
        pub fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        pub fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    }
}

/// Identifies a registered file descriptor in the events a
/// [`Poller::wait`] call reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Token(pub usize);

/// Which readiness a registration cares about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    read: bool,
    write: bool,
}

impl Interest {
    /// Readable readiness only.
    pub const READABLE: Interest = Interest {
        read: true,
        write: false,
    };
    /// Writable readiness only.
    pub const WRITABLE: Interest = Interest {
        read: false,
        write: true,
    };
    /// Both readable and writable readiness.
    pub const BOTH: Interest = Interest {
        read: true,
        write: true,
    };
    /// No readiness: the fd stays registered but reports nothing.
    /// Used to park the accept socket during an `accept` backoff.
    pub const NONE: Interest = Interest {
        read: false,
        write: false,
    };

    /// True when read readiness is requested.
    pub fn is_readable(self) -> bool {
        self.read
    }

    /// True when write readiness is requested.
    pub fn is_writable(self) -> bool {
        self.write
    }

    fn mask(self) -> u32 {
        let mut m = 0;
        if self.read {
            // RDHUP distinguishes an orderly peer close from silence,
            // so idle connections and dead ones are told apart without
            // a read() probe.
            m |= sys::EPOLLIN | sys::EPOLLRDHUP;
        }
        if self.write {
            m |= sys::EPOLLOUT;
        }
        m
    }
}

impl std::ops::BitOr for Interest {
    type Output = Interest;
    fn bitor(self, rhs: Interest) -> Interest {
        Interest {
            read: self.read || rhs.read,
            write: self.write || rhs.write,
        }
    }
}

/// One readiness notification.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered with.
    pub token: Token,
    /// The fd has input (or a pending accept) to consume.
    pub readable: bool,
    /// The fd can accept more outgoing bytes.
    pub writable: bool,
    /// The peer closed its end (or the fd errored); a subsequent read
    /// reports the detail.
    pub hangup: bool,
}

/// Reusable buffer of [`Event`]s filled by [`Poller::wait`].
#[derive(Debug, Default)]
pub struct Events {
    ready: Vec<Event>,
}

impl Events {
    /// An empty event buffer.
    pub fn new() -> Events {
        Events::default()
    }

    /// Events reported by the last [`Poller::wait`].
    pub fn iter(&self) -> std::slice::Iter<'_, Event> {
        self.ready.iter()
    }

    /// Number of events from the last wait.
    pub fn len(&self) -> usize {
        self.ready.len()
    }

    /// True when the last wait timed out with nothing ready.
    pub fn is_empty(&self) -> bool {
        self.ready.is_empty()
    }
}

/// Capacity of the raw event buffer handed to one `epoll_wait` call.
/// Level triggering makes the exact value uncritical: readiness not
/// reported this tick is reported on the next.
const WAIT_BATCH: usize = 256;

/// A readiness poller: one epoll instance plus the scratch buffer for
/// kernel events.
///
/// Not `Sync` by design — one event-loop thread owns it. Cross-thread
/// signalling goes through a [`Waker`], which is freely shareable.
#[derive(Debug)]
pub struct Poller {
    epfd: OwnedFd,
}

impl Poller {
    /// Create a new epoll instance (close-on-exec).
    ///
    /// # Errors
    ///
    /// The OS error when the kernel refuses a new epoll instance
    /// (typically fd exhaustion).
    pub fn new() -> io::Result<Poller> {
        // SAFETY: epoll_create1 takes no pointers; a negative return is
        // mapped to errno below and a valid fd is owned immediately.
        let fd = unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        // SAFETY: fd was just returned by epoll_create1 and is owned by
        // nothing else; OwnedFd takes over closing it.
        let epfd = unsafe { OwnedFd::from_raw_fd(fd) };
        Ok(Poller { epfd })
    }

    fn ctl(&self, op: std::os::raw::c_int, fd: RawFd, mask: u32, token: Token) -> io::Result<()> {
        let mut ev = sys::EpollEvent {
            events: mask,
            data: token.0 as u64,
        };
        // SAFETY: epfd and fd are live descriptors and `ev` outlives
        // the call; the kernel copies the struct before returning.
        let rc = unsafe { sys::epoll_ctl(self.epfd.as_raw_fd(), op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Start watching `fd` for `interest`, reporting events as `token`.
    ///
    /// # Errors
    ///
    /// The OS error (e.g. the fd is already registered or invalid).
    pub fn register(&self, fd: &impl AsRawFd, token: Token, interest: Interest) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_ADD, fd.as_raw_fd(), interest.mask(), token)
    }

    /// Change the interest (and token) of an already registered fd.
    ///
    /// # Errors
    ///
    /// The OS error (e.g. the fd was never registered).
    pub fn reregister(
        &self,
        fd: &impl AsRawFd,
        token: Token,
        interest: Interest,
    ) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_MOD, fd.as_raw_fd(), interest.mask(), token)
    }

    /// Stop watching `fd`. Closing a registered fd deregisters it
    /// implicitly; this exists for fds that outlive their registration.
    ///
    /// # Errors
    ///
    /// The OS error (e.g. the fd was never registered).
    pub fn deregister(&self, fd: &impl AsRawFd) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_DEL, fd.as_raw_fd(), 0, Token(0))
    }

    /// Block until at least one registered fd is ready, the timeout
    /// elapses (`events` left empty), or a [`Waker`] fires. A signal
    /// interrupting the wait is treated as a zero-event wakeup.
    ///
    /// # Errors
    ///
    /// The OS error for anything other than `EINTR`.
    pub fn wait(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<usize> {
        events.ready.clear();
        let timeout_ms: std::os::raw::c_int = match timeout {
            None => -1,
            // Round up so a 100µs timeout still sleeps rather than
            // degenerating into a busy loop of zero-timeouts.
            Some(t) => t
                .as_millis()
                .max(u128::from(!t.is_zero()))
                .min(i32::MAX as u128) as std::os::raw::c_int,
        };
        let mut raw = [sys::EpollEvent { events: 0, data: 0 }; WAIT_BATCH];
        // SAFETY: `raw` provides WAIT_BATCH valid writable slots and epfd
        // is a live epoll descriptor; the kernel writes at most that many.
        let rc = unsafe {
            sys::epoll_wait(
                self.epfd.as_raw_fd(),
                raw.as_mut_ptr(),
                WAIT_BATCH as std::os::raw::c_int,
                timeout_ms,
            )
        };
        if rc < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(err);
        }
        for slot in raw.iter().take(rc as usize) {
            let mask = slot.events;
            events.ready.push(Event {
                token: Token(slot.data as usize),
                readable: mask & (sys::EPOLLIN | sys::EPOLLRDHUP) != 0,
                writable: mask & sys::EPOLLOUT != 0,
                hangup: mask & (sys::EPOLLHUP | sys::EPOLLERR | sys::EPOLLRDHUP) != 0,
            });
        }
        Ok(events.ready.len())
    }
}

/// Cap a socket's kernel send buffer (`SO_SNDBUF`).
///
/// Without a cap, Linux auto-tunes the send buffer toward
/// `net.ipv4.tcp_wmem[2]` (commonly megabytes), so a peer that stops
/// reading can park that much server memory in the kernel before the
/// caller's own userspace write queue ever backs up. Event loops that
/// enforce per-connection outbox limits set this to the same order as
/// those limits so their backpressure actually engages. The kernel
/// doubles the value for bookkeeping and clamps it to its per-socket
/// minimum; both are fine for this purpose.
///
/// # Errors
///
/// The OS error when the socket refuses the option (e.g. a closed fd).
pub fn set_send_buffer_size(socket: &impl AsRawFd, bytes: usize) -> io::Result<()> {
    let val: std::os::raw::c_int = bytes.min(i32::MAX as usize) as std::os::raw::c_int;
    // SAFETY: the fd is a live socket borrowed from `socket`; the value
    // pointer/length describe a valid c_int the kernel copies.
    let rc = unsafe {
        sys::setsockopt(
            socket.as_raw_fd(),
            sys::SOL_SOCKET,
            sys::SO_SNDBUF,
            (&val as *const std::os::raw::c_int).cast(),
            std::mem::size_of::<std::os::raw::c_int>() as u32,
        )
    };
    if rc < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(())
}

/// A cross-thread wakeup handle: an `eventfd` registered with the
/// poller. Any thread may call [`Waker::wake`]; the owning loop sees a
/// readable event on the waker's token and calls [`Waker::drain`].
///
/// Writes accumulate in the eventfd counter, so any number of `wake`
/// calls between two loop ticks collapse into a single readiness event.
#[derive(Debug)]
pub struct Waker {
    efd: OwnedFd,
}

impl Waker {
    /// Create an eventfd and register it (readable) with `poller` under
    /// `token`.
    ///
    /// # Errors
    ///
    /// The OS error from eventfd creation or registration.
    pub fn new(poller: &Poller, token: Token) -> io::Result<Waker> {
        // SAFETY: eventfd takes no pointers; a negative return maps to
        // errno and a valid fd is owned immediately.
        let fd = unsafe { sys::eventfd(0, sys::EFD_CLOEXEC | sys::EFD_NONBLOCK) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        // SAFETY: fd was just returned by eventfd and nothing else owns
        // it; OwnedFd takes over closing it.
        let efd = unsafe { OwnedFd::from_raw_fd(fd) };
        poller.register(&efd, token, Interest::READABLE)?;
        Ok(Waker { efd })
    }

    /// Wake the poller. Safe from any thread, never blocks: the
    /// eventfd is non-blocking and saturation (`EAGAIN` after 2^64-2
    /// accumulated wakes) still leaves the fd readable, which is all a
    /// wakeup needs.
    ///
    /// # Errors
    ///
    /// The OS error for failures other than `EAGAIN`.
    pub fn wake(&self) -> io::Result<()> {
        let one: u64 = 1;
        // SAFETY: the buffer is 8 valid bytes (an eventfd write must be
        // exactly a u64) and efd is a live descriptor.
        let rc = unsafe {
            sys::write(
                self.efd.as_raw_fd(),
                std::ptr::addr_of!(one).cast(),
                std::mem::size_of::<u64>(),
            )
        };
        if rc < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::WouldBlock {
                return Ok(()); // counter saturated: still readable
            }
            return Err(err);
        }
        Ok(())
    }

    /// Consume pending wakeups so level-triggered polling stops
    /// reporting the waker readable. Called by the loop when it sees
    /// the waker's token.
    pub fn drain(&self) {
        let mut count: u64 = 0;
        // SAFETY: the buffer is 8 valid writable bytes; an eventfd read
        // transfers exactly a u64 and resets it. EAGAIN is benign.
        let _ = unsafe {
            sys::read(
                self.efd.as_raw_fd(),
                std::ptr::addr_of_mut!(count).cast(),
                std::mem::size_of::<u64>(),
            )
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::time::Instant;

    const T_LISTEN: Token = Token(0);
    const T_WAKER: Token = Token(1);
    const T_CONN: Token = Token(2);

    #[test]
    fn timeout_expires_with_no_events() {
        let poller = Poller::new().unwrap();
        let mut events = Events::new();
        let t0 = Instant::now();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(30)))
            .unwrap();
        assert_eq!(n, 0);
        assert!(events.is_empty());
        assert!(t0.elapsed() >= Duration::from_millis(25), "really slept");
    }

    #[test]
    fn waker_unblocks_wait_from_another_thread() {
        let poller = Poller::new().unwrap();
        let waker = std::sync::Arc::new(Waker::new(&poller, T_WAKER).unwrap());
        let w = std::sync::Arc::clone(&waker);
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            w.wake().unwrap();
        });
        let mut events = Events::new();
        let t0 = Instant::now();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(10)))
            .unwrap();
        assert_eq!(n, 1);
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "woke long before the timeout"
        );
        let ev = events.iter().next().unwrap();
        assert_eq!(ev.token, T_WAKER);
        assert!(ev.readable);
        waker.drain();
        // Drained: the waker no longer reports readable.
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert_eq!(n, 0, "drained waker is quiet");
        h.join().unwrap();
    }

    #[test]
    fn multiple_wakes_collapse_into_one_event() {
        let poller = Poller::new().unwrap();
        let waker = Waker::new(&poller, T_WAKER).unwrap();
        for _ in 0..100 {
            waker.wake().unwrap();
        }
        let mut events = Events::new();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(1)))
            .unwrap();
        assert_eq!(n, 1, "level-triggered waker coalesces");
        waker.drain();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert_eq!(n, 0, "one drain clears all accumulated wakes");
    }

    #[test]
    fn listener_reports_readable_on_pending_accept() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let addr = listener.local_addr().unwrap();
        let poller = Poller::new().unwrap();
        poller
            .register(&listener, T_LISTEN, Interest::READABLE)
            .unwrap();

        let _client = TcpStream::connect(addr).unwrap();
        let mut events = Events::new();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        assert_eq!(events.iter().next().unwrap().token, T_LISTEN);
        let (stream, _) = listener.accept().unwrap();

        // A fresh connection with an empty send buffer is writable.
        stream.set_nonblocking(true).unwrap();
        poller
            .register(&stream, T_CONN, Interest::WRITABLE)
            .unwrap();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(n >= 1);
        let ev = events.iter().find(|e| e.token == T_CONN).unwrap();
        assert!(ev.writable);
    }

    #[test]
    fn reregister_switches_interest_and_none_parks() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let addr = listener.local_addr().unwrap();
        let poller = Poller::new().unwrap();
        poller
            .register(&listener, T_LISTEN, Interest::READABLE)
            .unwrap();
        let _client = TcpStream::connect(addr).unwrap();
        let mut events = Events::new();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1, "pending accept is readable");

        // Park the listener: pending accept no longer reported.
        poller
            .reregister(&listener, T_LISTEN, Interest::NONE)
            .unwrap();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(30)))
            .unwrap();
        assert_eq!(n, 0, "parked listener is silent despite a pending accept");

        // Un-park: the still-pending accept is reported again
        // (level-triggered readiness is stateless across reregisters).
        poller
            .reregister(&listener, T_LISTEN, Interest::READABLE)
            .unwrap();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1, "un-parked listener reports the pending accept");
    }

    #[test]
    fn peer_close_reports_hangup() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (stream, _) = listener.accept().unwrap();
        stream.set_nonblocking(true).unwrap();

        let poller = Poller::new().unwrap();
        poller
            .register(&stream, T_CONN, Interest::READABLE)
            .unwrap();
        drop(client);
        let mut events = Events::new();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(n >= 1);
        let ev = events.iter().find(|e| e.token == T_CONN).unwrap();
        assert!(ev.hangup, "orderly peer close surfaces as hangup: {ev:?}");
    }

    #[test]
    fn deregistered_fd_reports_nothing() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let addr = listener.local_addr().unwrap();
        let poller = Poller::new().unwrap();
        poller
            .register(&listener, T_LISTEN, Interest::READABLE)
            .unwrap();
        poller.deregister(&listener).unwrap();
        let _client = TcpStream::connect(addr).unwrap();
        let mut events = Events::new();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(30)))
            .unwrap();
        assert_eq!(n, 0);
    }

    #[test]
    fn interest_combinators() {
        assert!(Interest::READABLE.is_readable() && !Interest::READABLE.is_writable());
        assert!(Interest::WRITABLE.is_writable() && !Interest::WRITABLE.is_readable());
        let both = Interest::READABLE | Interest::WRITABLE;
        assert_eq!(both, Interest::BOTH);
        assert!(!Interest::NONE.is_readable() && !Interest::NONE.is_writable());
    }

    /// Partial-read friendliness: level triggering keeps reporting a
    /// socket readable until its input is fully consumed.
    #[test]
    fn level_triggered_readable_persists_until_drained() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (mut stream, _) = listener.accept().unwrap();
        stream.set_nonblocking(true).unwrap();
        client.write_all(b"hello world\n").unwrap();

        let poller = Poller::new().unwrap();
        poller
            .register(&stream, T_CONN, Interest::READABLE)
            .unwrap();
        let mut events = Events::new();

        // Consume the payload a few bytes at a time; readiness must
        // re-report after every partial read.
        let mut got = Vec::new();
        while got.len() < 12 {
            let n = poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert!(n >= 1, "undrained socket stays readable");
            let mut chunk = [0u8; 4];
            let k = stream.read(&mut chunk).unwrap();
            got.extend_from_slice(&chunk[..k]);
        }
        assert_eq!(&got, b"hello world\n");
    }
}
