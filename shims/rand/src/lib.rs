//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the small API subset it actually uses: the [`Rng`]
//! trait (`gen`, `gen_range`, `gen_bool`), [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`] and [`seq::SliceRandom`]. The generator behind
//! `StdRng` is xoshiro256++ seeded through SplitMix64 — deterministic,
//! fast, and statistically solid for tests and synthetic workloads.
//! It makes no attempt at bit-compatibility with the real `rand` crate.

#![forbid(unsafe_code)]

/// Uniform sampling of a full value of a primitive type.
pub trait Standard: Sized {
    /// Draw a uniformly distributed value from `rng`.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types that can be uniformly sampled between two bounds.
///
/// The single blanket [`SampleRange`] impl below goes through this trait;
/// keeping one generic impl (like the real rand crate) is what lets
/// integer literals in `gen_range(0..2)` unify with the surrounding
/// usage instead of defaulting to `i32`.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draw one value in `[lo, hi)` (or `[lo, hi]` when `inclusive`).
    /// `bits` yields uniformly distributed 64-bit words.
    fn sample_between(lo: Self, hi: Self, inclusive: bool, bits: &mut dyn FnMut() -> u64) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between(
                lo: Self,
                hi: Self,
                inclusive: bool,
                bits: &mut dyn FnMut() -> u64,
            ) -> Self {
                let lo_w = lo as i128;
                let hi_w = hi as i128;
                if inclusive {
                    assert!(lo_w <= hi_w, "cannot sample empty range");
                } else {
                    assert!(lo_w < hi_w, "cannot sample empty range");
                }
                let span = (hi_w - lo_w) as u128 + if inclusive { 1 } else { 0 };
                // Multiply-shift maps a 64-bit word onto [0, span) with
                // negligible bias for the span sizes used here.
                let off = ((bits() as u128 * span) >> 64) as i128;
                (lo_w + off) as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between(
                lo: Self,
                hi: Self,
                inclusive: bool,
                bits: &mut dyn FnMut() -> u64,
            ) -> Self {
                if inclusive {
                    assert!(lo <= hi, "cannot sample empty range");
                } else {
                    assert!(lo < hi, "cannot sample empty range");
                }
                // 53 mantissa bits -> uniform in [0, 1).
                let unit = (bits() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                lo + unit as $t * (hi - lo)
            }
        }
    )*};
}
impl_uniform_float!(f32, f64);

/// A range a value can be uniformly sampled from (`lo..hi`, `lo..=hi`).
pub trait SampleRange<T> {
    /// Draw one value. Panics if the range is empty.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(self.start, self.end, false, &mut || rng.next_u64())
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(*self.start(), *self.end(), true, &mut || rng.next_u64())
    }
}

/// Random number generator interface.
pub trait Rng {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// A uniformly distributed value of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// A uniformly distributed value in `range`.
    fn gen_range<T, Rge: SampleRange<T>>(&mut self, range: Rge) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Alias kept for API familiarity.
    pub type SmallRng = StdRng;
}

/// Sequence helpers.
pub mod seq {
    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly chosen element, `None` on an empty slice.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = ((rng.next_u64() as u128 * (i as u128 + 1)) >> 64) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = ((rng.next_u64() as u128 * self.len() as u128) >> 64) as usize;
                self.get(i)
            }
        }
    }
}

/// Commonly imported names.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
            let i = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn unit_floats_cover_unit_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            lo |= x < 0.1;
            hi |= x > 0.9;
        }
        assert!(lo && hi, "samples should cover the unit interval");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.25).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn shuffle_permutes_and_choose_is_uniformish() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(
            v != (0..50).collect::<Vec<_>>(),
            "shuffle should move things"
        );
        let opts = [1, 2, 3];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(*opts.choose(&mut rng).unwrap());
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn works_through_mut_ref_and_impl_rng() {
        fn takes_impl(rng: &mut impl Rng) -> u64 {
            rng.gen_range(0..10u64)
        }
        let mut rng = StdRng::seed_from_u64(1);
        let v = takes_impl(&mut rng);
        assert!(v < 10);
    }
}
