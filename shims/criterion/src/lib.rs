//! Offline stand-in for `criterion`.
//!
//! Supports the API surface the workspace's benches use: `Criterion`,
//! `bench_function`, `benchmark_group` (+ `sample_size`, `finish`),
//! `Bencher::iter` / `iter_batched`, `BatchSize`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! There is no statistical machinery: each benchmark body runs a small
//! fixed number of iterations and a mean wall-clock time is printed. This
//! keeps `cargo test` (which executes `harness = false` bench targets)
//! fast while preserving compile- and run-compatibility.

use std::time::Instant;

/// Re-exported for call sites that use `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Accepted and ignored; the shim always runs batches of size one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
    NumBatches(u64),
    NumIterations(u64),
}

/// Per-iteration timer handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    total_nanos: u128,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.total_nanos = start.elapsed().as_nanos();
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let mut total: u128 = 0;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed().as_nanos();
        }
        self.total_nanos = total;
    }

    pub fn iter_batched_ref<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(&mut I) -> O,
    {
        let mut total: u128 = 0;
        for _ in 0..self.iters {
            let mut input = setup();
            let start = Instant::now();
            black_box(routine(&mut input));
            total += start.elapsed().as_nanos();
        }
        self.total_nanos = total;
    }
}

fn run_one(name: &str, iters: u64, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        iters,
        total_nanos: 0,
    };
    f(&mut b);
    let mean = if b.iters > 0 {
        b.total_nanos / b.iters as u128
    } else {
        0
    };
    println!("bench {name:<40} ~{mean} ns/iter (shim, {iters} iters)");
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    iters: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { iters: 3 }
    }
}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, self.iters, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            iters: 3,
        }
    }

    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// Group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    iters: u64,
}

impl<'a> BenchmarkGroup<'a> {
    /// Accepted for compatibility; the shim keeps its own tiny count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function<N: std::fmt::Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: N,
        mut f: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id);
        run_one(&name, self.iters, &mut f);
        self
    }

    pub fn finish(self) {}
}

/// Declares a function that runs the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` to run the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        let mut group = c.benchmark_group("grouped");
        group.sample_size(10);
        group.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u32, 2, 3],
                |v| v.iter().sum::<u32>(),
                BatchSize::SmallInput,
            )
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_macro_produces_runner() {
        benches();
    }
}
