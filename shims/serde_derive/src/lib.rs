//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` against
//! the vendored value-tree `serde` shim, using only the built-in
//! `proc_macro` API (no `syn`/`quote`, which are unavailable offline).
//! A small hand-rolled parser extracts the item's shape — struct with
//! named/tuple/unit fields, or enum with unit/tuple/struct variants,
//! optional generics — plus the `#[serde(...)]` attributes the workspace
//! uses: `default` on fields and `from = "T"` / `into = "T"` on
//! containers. Code generation mirrors serde's external data model so the
//! emitted JSON matches what the real serde_json would produce for these
//! types.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Default, Debug)]
struct ContainerAttrs {
    from: Option<String>,
    into: Option<String>,
}

#[derive(Default, Debug)]
struct FieldAttrs {
    default: bool,
}

#[derive(Debug)]
struct Field {
    name: String,
    attrs: FieldAttrs,
    /// First path segment of the field's type (`Option`, `Vec`, …).
    head_ty: String,
}

#[derive(Debug)]
enum Shape {
    /// `struct S;`
    Unit,
    /// `struct S(T0, T1, …);` with field count.
    Tuple(usize),
    /// `struct S { … }`
    Named(Vec<Field>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    shape: Shape,
}

#[derive(Debug)]
struct Item {
    name: String,
    /// Generic parameter declarations, e.g. `["T", "U: Clone"]`.
    generic_params: Vec<String>,
    /// Bare generic argument names, e.g. `["T", "U"]`.
    generic_args: Vec<String>,
    attrs: ContainerAttrs,
    kind: ItemKind,
}

#[derive(Debug)]
enum ItemKind {
    Struct(Shape),
    Enum(Vec<Variant>),
}

// ---------------------------------------------------------------------
// Token cursor
// ---------------------------------------------------------------------

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Cursor {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn expect_ident(&mut self, what: &str) -> String {
        match self.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("serde derive: expected {what}, found {other:?}"),
        }
    }

    fn eat_punct(&mut self, ch: char) -> bool {
        if let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() == ch {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    /// Parse a run of outer attributes, folding any `#[serde(...)]`
    /// arguments into the returned attribute sets.
    fn parse_attrs(&mut self) -> (ContainerAttrs, FieldAttrs) {
        let mut cattrs = ContainerAttrs::default();
        let mut fattrs = FieldAttrs::default();
        loop {
            let is_attr = matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#');
            if !is_attr {
                break;
            }
            self.pos += 1; // '#'
            let group = match self.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => g,
                other => panic!("serde derive: malformed attribute, found {other:?}"),
            };
            let inner: Vec<TokenTree> = group.stream().into_iter().collect();
            let is_serde =
                matches!(inner.first(), Some(TokenTree::Ident(i)) if i.to_string() == "serde");
            if !is_serde {
                continue;
            }
            let args = match inner.get(1) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g.stream(),
                other => panic!("serde derive: malformed #[serde] attribute: {other:?}"),
            };
            let mut ac = Cursor::new(args);
            while !ac.at_end() {
                let key = ac.expect_ident("serde attribute name");
                match key.as_str() {
                    "default" => fattrs.default = true,
                    "from" | "into" => {
                        if !ac.eat_punct('=') {
                            panic!("serde derive: expected `=` after `{key}`");
                        }
                        let lit = match ac.next() {
                            Some(TokenTree::Literal(l)) => unquote(&l.to_string()),
                            other => panic!(
                                "serde derive: expected string after `{key} =`, found {other:?}"
                            ),
                        };
                        if key == "from" {
                            cattrs.from = Some(lit);
                        } else {
                            cattrs.into = Some(lit);
                        }
                    }
                    other => panic!(
                        "serde derive shim: unsupported #[serde({other})] attribute \
                         (supported: default, from, into)"
                    ),
                }
                ac.eat_punct(',');
            }
        }
        (cattrs, fattrs)
    }

    /// Skip `pub`, `pub(crate)`, `pub(in …)`.
    fn skip_visibility(&mut self) {
        if matches!(self.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
            self.pos += 1;
            if matches!(self.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                self.pos += 1;
            }
        }
    }

    /// Consume type tokens until a top-level `,` (angle-bracket aware) or
    /// the end; returns the first path segment of the type.
    fn skip_type_returning_head(&mut self) -> String {
        let mut head = String::new();
        let mut angle: i32 = 0;
        while let Some(tok) = self.peek() {
            match tok {
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => break,
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Ident(i) if head.is_empty() => head = i.to_string(),
                _ => {}
            }
            self.pos += 1;
        }
        head
    }
}

fn unquote(lit: &str) -> String {
    let t = lit.trim();
    t.strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .unwrap_or(t)
        .to_string()
}

// ---------------------------------------------------------------------
// Item parsing
// ---------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let mut c = Cursor::new(input);
    let (cattrs, _) = c.parse_attrs();
    c.skip_visibility();
    let kw = c.expect_ident("`struct` or `enum`");
    let name = c.expect_ident("type name");
    let (generic_params, generic_args) = parse_generics(&mut c);

    // A `where` clause between generics and the body is not used by this
    // workspace; reject loudly rather than generating wrong code.
    if matches!(c.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "where") {
        panic!("serde derive shim: `where` clauses are not supported");
    }

    let kind = match kw.as_str() {
        "struct" => ItemKind::Struct(parse_struct_body(&mut c)),
        "enum" => ItemKind::Enum(parse_enum_body(&mut c)),
        other => panic!("serde derive: cannot derive for `{other}` items"),
    };
    Item {
        name,
        generic_params,
        generic_args,
        attrs: cattrs,
        kind,
    }
}

fn parse_generics(c: &mut Cursor) -> (Vec<String>, Vec<String>) {
    if !c.eat_punct('<') {
        return (Vec::new(), Vec::new());
    }
    let mut params = Vec::new();
    let mut args = Vec::new();
    let mut current = String::new();
    let mut current_arg: Option<String> = None;
    let mut depth = 1i32;
    loop {
        let tok = c
            .next()
            .unwrap_or_else(|| panic!("serde derive: unterminated generics"));
        match &tok {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                depth += 1;
                current.push('<');
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
                current.push('>');
            }
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => {
                if !current.trim().is_empty() {
                    params.push(current.trim().to_string());
                    args.extend(current_arg.take());
                }
                current.clear();
            }
            other => {
                if current_arg.is_none() {
                    if let TokenTree::Ident(i) = other {
                        let s = i.to_string();
                        if s == "const" {
                            panic!("serde derive shim: const generics are not supported");
                        }
                        current_arg = Some(s);
                    }
                }
                let text = other.to_string();
                if !current.is_empty() && !matches!(other, TokenTree::Punct(_)) {
                    current.push(' ');
                }
                current.push_str(&text);
            }
        }
    }
    if !current.trim().is_empty() {
        params.push(current.trim().to_string());
        args.extend(current_arg.take());
    }
    (params, args)
}

fn parse_struct_body(c: &mut Cursor) -> Shape {
    match c.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            Shape::Named(parse_named_fields(g.stream()))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            Shape::Tuple(count_tuple_fields(g.stream()))
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
        other => panic!("serde derive: malformed struct body: {other:?}"),
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut c = Cursor::new(stream);
    let mut fields = Vec::new();
    while !c.at_end() {
        let (_, fattrs) = c.parse_attrs();
        c.skip_visibility();
        let name = c.expect_ident("field name");
        if !c.eat_punct(':') {
            panic!("serde derive: expected `:` after field `{name}`");
        }
        let head_ty = c.skip_type_returning_head();
        c.eat_punct(',');
        fields.push(Field {
            name,
            attrs: fattrs,
            head_ty,
        });
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut c = Cursor::new(stream);
    let mut count = 0;
    while !c.at_end() {
        let (_, _) = c.parse_attrs();
        c.skip_visibility();
        let head = c.skip_type_returning_head();
        if !head.is_empty() || c.peek().is_some() {
            count += 1;
        }
        if !c.eat_punct(',') {
            break;
        }
    }
    count
}

fn parse_enum_body(c: &mut Cursor) -> Vec<Variant> {
    let group = match c.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
        other => panic!("serde derive: malformed enum body: {other:?}"),
    };
    let mut vc = Cursor::new(group.stream());
    let mut variants = Vec::new();
    while !vc.at_end() {
        let (_, _) = vc.parse_attrs();
        let name = vc.expect_ident("variant name");
        let shape = match vc.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                vc.pos += 1;
                Shape::Named(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                vc.pos += 1;
                Shape::Tuple(n)
            }
            _ => Shape::Unit,
        };
        if vc.eat_punct('=') {
            // Explicit discriminant: skip the expression tokens.
            while let Some(tok) = vc.peek() {
                if matches!(tok, TokenTree::Punct(p) if p.as_char() == ',') {
                    break;
                }
                vc.pos += 1;
            }
        }
        vc.eat_punct(',');
        variants.push(Variant { name, shape });
    }
    variants
}

// ---------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------

fn impl_header(item: &Item, trait_path: &str) -> String {
    if item.generic_params.is_empty() {
        return format!("impl {trait_path} for {}", item.name);
    }
    let bounded: Vec<String> = item
        .generic_params
        .iter()
        .map(|p| {
            if p.contains(':') {
                format!("{p} + {trait_path}")
            } else {
                format!("{p}: {trait_path}")
            }
        })
        .collect();
    format!(
        "impl<{}> {trait_path} for {}<{}>",
        bounded.join(", "),
        item.name,
        item.generic_args.join(", "),
    )
}

/// `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let header = impl_header(&item, "::serde::Serialize");
    let body = if let Some(into_ty) = &item.attrs.into {
        format!(
            "let __proxy: {into_ty} = ::std::convert::Into::into(::std::clone::Clone::clone(self));\n\
             ::serde::Serialize::to_value(&__proxy)"
        )
    } else {
        match &item.kind {
            ItemKind::Struct(shape) => gen_struct_ser(shape),
            ItemKind::Enum(variants) => gen_enum_ser(&item.name, variants),
        }
    };
    let code = format!(
        "#[automatically_derived]\n{header} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    );
    code.parse()
        .expect("serde derive: generated invalid Serialize impl")
}

/// `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let header = impl_header(&item, "::serde::Deserialize");
    let body = if let Some(from_ty) = &item.attrs.from {
        format!(
            "let __proxy: {from_ty} = ::serde::Deserialize::from_value(__v)?;\n\
             ::std::result::Result::Ok(::std::convert::From::from(__proxy))"
        )
    } else {
        match &item.kind {
            ItemKind::Struct(shape) => gen_struct_de(&item.name, shape),
            ItemKind::Enum(variants) => gen_enum_de(&item.name, variants),
        }
    };
    let code = format!(
        "#[automatically_derived]\n{header} {{\n\
         fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
         {body}\n}}\n}}\n"
    );
    code.parse()
        .expect("serde derive: generated invalid Deserialize impl")
}

fn gen_named_ser(fields: &[Field], access_prefix: &str) -> String {
    let mut out = String::from("let mut __map = ::serde::Map::new();\n");
    for f in fields {
        out.push_str(&format!(
            "__map.insert(\"{name}\", ::serde::Serialize::to_value({access_prefix}{name}));\n",
            name = f.name,
        ));
    }
    out.push_str("::serde::Value::Object(__map)");
    out
}

fn gen_struct_ser(shape: &Shape) -> String {
    match shape {
        Shape::Unit => "::serde::Value::Null".to_string(),
        Shape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::Named(fields) => gen_named_ser(fields, "&self."),
    }
}

fn gen_named_de(fields: &[Field], obj_expr: &str) -> String {
    let mut inits = String::new();
    for f in fields {
        let missing = if f.attrs.default || f.head_ty == "Option" {
            "::std::default::Default::default()".to_string()
        } else {
            format!(
                "return ::std::result::Result::Err(::serde::Error::custom(\
                 \"missing field `{}`\"))",
                f.name,
            )
        };
        inits.push_str(&format!(
            "{name}: match {obj_expr}.get(\"{name}\") {{\n\
             ::std::option::Option::Some(__f) => ::serde::Deserialize::from_value(__f)?,\n\
             ::std::option::Option::None => {missing},\n}},\n",
            name = f.name,
        ));
    }
    inits
}

fn gen_struct_de(name: &str, shape: &Shape) -> String {
    match shape {
        Shape::Unit => format!(
            "match __v {{\n\
             ::serde::Value::Null => ::std::result::Result::Ok({name}),\n\
             __other => ::std::result::Result::Err(::serde::Error::custom(\
             format!(\"expected null for unit struct {name}, found {{}}\", __other.kind()))),\n}}"
        ),
        Shape::Tuple(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                .collect();
            format!(
                "let __items = __v.as_array().ok_or_else(|| ::serde::Error::custom(\
                 \"expected array for tuple struct {name}\"))?;\n\
                 if __items.len() != {n} {{\n\
                 return ::std::result::Result::Err(::serde::Error::custom(\
                 format!(\"expected {n} elements for {name}, found {{}}\", __items.len())));\n}}\n\
                 ::std::result::Result::Ok({name}({items}))",
                items = items.join(", "),
            )
        }
        Shape::Named(fields) => {
            format!(
                "let __obj = __v.as_object().ok_or_else(|| ::serde::Error::custom(\
                 format!(\"expected object for {name}, found {{}}\", __v.kind())))?;\n\
                 ::std::result::Result::Ok({name} {{\n{fields}\n}})",
                fields = gen_named_de(fields, "__obj"),
            )
        }
    }
}

fn gen_enum_ser(name: &str, variants: &[Variant]) -> String {
    let mut arms = String::new();
    for v in variants {
        let vn = &v.name;
        match &v.shape {
            Shape::Unit => arms.push_str(&format!(
                "{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),\n"
            )),
            Shape::Tuple(1) => arms.push_str(&format!(
                "{name}::{vn}(__f0) => {{\n\
                 let mut __map = ::serde::Map::new();\n\
                 __map.insert(\"{vn}\", ::serde::Serialize::to_value(__f0));\n\
                 ::serde::Value::Object(__map)\n}},\n"
            )),
            Shape::Tuple(n) => {
                let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                let items: Vec<String> = binds
                    .iter()
                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                    .collect();
                arms.push_str(&format!(
                    "{name}::{vn}({binds}) => {{\n\
                     let mut __map = ::serde::Map::new();\n\
                     __map.insert(\"{vn}\", ::serde::Value::Array(vec![{items}]));\n\
                     ::serde::Value::Object(__map)\n}},\n",
                    binds = binds.join(", "),
                    items = items.join(", "),
                ));
            }
            Shape::Named(fields) => {
                let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                let inner = gen_named_ser_bound(fields);
                arms.push_str(&format!(
                    "{name}::{vn} {{ {binds} }} => {{\n\
                     {inner}\
                     let mut __outer = ::serde::Map::new();\n\
                     __outer.insert(\"{vn}\", ::serde::Value::Object(__map));\n\
                     ::serde::Value::Object(__outer)\n}},\n",
                    binds = binds.join(", "),
                ));
            }
        }
    }
    format!("match self {{\n{arms}}}")
}

/// Named-field serialization where fields are already bound as locals.
fn gen_named_ser_bound(fields: &[Field]) -> String {
    let mut out = String::from("let mut __map = ::serde::Map::new();\n");
    for f in fields {
        out.push_str(&format!(
            "__map.insert(\"{name}\", ::serde::Serialize::to_value({name}));\n",
            name = f.name,
        ));
    }
    out
}

fn gen_enum_de(name: &str, variants: &[Variant]) -> String {
    let unit: Vec<&Variant> = variants
        .iter()
        .filter(|v| matches!(v.shape, Shape::Unit))
        .collect();
    let data: Vec<&Variant> = variants
        .iter()
        .filter(|v| !matches!(v.shape, Shape::Unit))
        .collect();

    let mut arms = String::new();
    if !unit.is_empty() {
        let mut unit_arms = String::new();
        for v in &unit {
            unit_arms.push_str(&format!(
                "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),\n",
                vn = v.name,
            ));
        }
        arms.push_str(&format!(
            "::serde::Value::Str(__s) => match __s.as_str() {{\n{unit_arms}\
             __other => ::std::result::Result::Err(::serde::Error::custom(\
             format!(\"unknown variant `{{__other}}` of {name}\"))),\n}},\n"
        ));
    }
    if !data.is_empty() {
        let mut data_arms = String::new();
        for v in &data {
            let vn = &v.name;
            let build = match &v.shape {
                Shape::Tuple(1) => format!(
                    "::std::result::Result::Ok({name}::{vn}(::serde::Deserialize::from_value(__payload)?))"
                ),
                Shape::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                        .collect();
                    format!(
                        "let __items = __payload.as_array().ok_or_else(|| ::serde::Error::custom(\
                         \"expected array payload for {name}::{vn}\"))?;\n\
                         if __items.len() != {n} {{\n\
                         return ::std::result::Result::Err(::serde::Error::custom(\
                         format!(\"expected {n} elements for {name}::{vn}, found {{}}\", __items.len())));\n}}\n\
                         ::std::result::Result::Ok({name}::{vn}({items}))",
                        items = items.join(", "),
                    )
                }
                Shape::Named(fields) => format!(
                    "let __obj = __payload.as_object().ok_or_else(|| ::serde::Error::custom(\
                     \"expected object payload for {name}::{vn}\"))?;\n\
                     ::std::result::Result::Ok({name}::{vn} {{\n{fields}\n}})",
                    fields = gen_named_de(fields, "__obj"),
                ),
                Shape::Unit => unreachable!(),
            };
            data_arms.push_str(&format!("\"{vn}\" => {{\n{build}\n}},\n"));
        }
        arms.push_str(&format!(
            "::serde::Value::Object(__m) if __m.len() == 1 => {{\n\
             let (__tag, __payload) = __m.iter().next().expect(\"len checked\");\n\
             match __tag.as_str() {{\n{data_arms}\
             __other => ::std::result::Result::Err(::serde::Error::custom(\
             format!(\"unknown variant `{{__other}}` of {name}\"))),\n}}\n}},\n"
        ));
    }
    format!(
        "match __v {{\n{arms}\
         __other => ::std::result::Result::Err(::serde::Error::custom(\
         format!(\"invalid value for enum {name}: {{}}\", __other.kind()))),\n}}"
    )
}
