//! Offline stand-in for `crossbeam`.
//!
//! Implements `crossbeam::channel`: multi-producer multi-consumer bounded
//! and unbounded channels built from a mutex-protected `VecDeque` and two
//! condvars. Semantics match the real crate for the operations provided:
//! `send` blocks when full, `try_send` reports `Full`/`Disconnected`,
//! receivers see buffered messages even after all senders drop, and both
//! ends are cloneable.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        cap: Option<usize>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// Create a bounded channel with capacity `cap`.
    ///
    /// Like the real crate, `cap == 0` would mean a rendezvous channel;
    /// this shim does not implement rendezvous and panics instead.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        assert!(
            cap > 0,
            "zero-capacity rendezvous channels are not supported by the shim"
        );
        new_channel(Some(cap))
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        new_channel(None)
    }

    fn new_channel<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                cap,
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    // -- errors ---------------------------------------------------------

    /// Error for `send`: all receivers dropped. Carries the message back.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error for `try_send`.
    #[derive(Debug, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel is at capacity.
        Full(T),
        /// All receivers dropped.
        Disconnected(T),
    }

    impl<T> TrySendError<T> {
        pub fn into_inner(self) -> T {
            match self {
                TrySendError::Full(t) | TrySendError::Disconnected(t) => t,
            }
        }

        pub fn is_full(&self) -> bool {
            matches!(self, TrySendError::Full(_))
        }

        pub fn is_disconnected(&self) -> bool {
            matches!(self, TrySendError::Disconnected(_))
        }
    }

    impl<T> std::fmt::Display for TrySendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TrySendError::Full(_) => f.write_str("sending on a full channel"),
                TrySendError::Disconnected(_) => f.write_str("sending on a disconnected channel"),
            }
        }
    }

    /// Error for `recv`: channel empty and all senders dropped.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error for `try_recv`.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    impl std::fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TryRecvError::Empty => f.write_str("receiving on an empty channel"),
                TryRecvError::Disconnected => {
                    f.write_str("receiving on an empty and disconnected channel")
                }
            }
        }
    }

    /// Error for `recv_timeout`.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    impl std::fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                RecvTimeoutError::Timeout => f.write_str("timed out waiting on channel"),
                RecvTimeoutError::Disconnected => {
                    f.write_str("receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl std::error::Error for RecvTimeoutError {}

    // -- sender ---------------------------------------------------------

    /// Sending half; cloneable for multi-producer use.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Sender<T> {
        /// Block until there is room, then enqueue.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.state.lock().unwrap();
            loop {
                if state.receivers == 0 {
                    return Err(SendError(value));
                }
                let full = state.cap.map(|c| state.queue.len() >= c).unwrap_or(false);
                if !full {
                    state.queue.push_back(value);
                    drop(state);
                    self.shared.not_empty.notify_one();
                    return Ok(());
                }
                state = self.shared.not_full.wait(state).unwrap();
            }
        }

        /// Enqueue without blocking; `Full` is the backpressure signal.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut state = self.shared.state.lock().unwrap();
            if state.receivers == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            let full = state.cap.map(|c| state.queue.len() >= c).unwrap_or(false);
            if full {
                return Err(TrySendError::Full(value));
            }
            state.queue.push_back(value);
            drop(state);
            self.shared.not_empty.notify_one();
            Ok(())
        }

        pub fn len(&self) -> usize {
            self.shared.state.lock().unwrap().queue.len()
        }

        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().unwrap().senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let remaining = {
                let mut state = self.shared.state.lock().unwrap();
                state.senders -= 1;
                state.senders
            };
            if remaining == 0 {
                // Wake receivers blocked on an empty queue so they can
                // observe the disconnect.
                self.shared.not_empty.notify_all();
            }
        }
    }

    // -- receiver -------------------------------------------------------

    /// Receiving half; cloneable for multi-consumer (work-stealing) use.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives or all senders drop.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.state.lock().unwrap();
            loop {
                if let Some(value) = state.queue.pop_front() {
                    drop(state);
                    self.shared.not_full.notify_one();
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.shared.not_empty.wait(state).unwrap();
            }
        }

        /// Like `recv` but gives up after `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut state = self.shared.state.lock().unwrap();
            loop {
                if let Some(value) = state.queue.pop_front() {
                    drop(state);
                    self.shared.not_full.notify_one();
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (s, _timed_out) = self
                    .shared
                    .not_empty
                    .wait_timeout(state, deadline - now)
                    .unwrap();
                state = s;
            }
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.shared.state.lock().unwrap();
            if let Some(value) = state.queue.pop_front() {
                drop(state);
                self.shared.not_full.notify_one();
                return Ok(value);
            }
            if state.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        pub fn len(&self) -> usize {
            self.shared.state.lock().unwrap().queue.len()
        }

        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Drain messages until the channel disconnects.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().unwrap().receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let remaining = {
                let mut state = self.shared.state.lock().unwrap();
                state.receivers -= 1;
                state.receivers
            };
            if remaining == 0 {
                // Wake senders blocked on a full queue so they can
                // observe the disconnect.
                self.shared.not_full.notify_all();
            }
        }
    }

    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<'a, T> Iterator for Iter<'a, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;
    use std::time::Duration;

    #[test]
    fn bounded_backpressure() {
        let (tx, rx) = bounded::<u32>(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        match tx.try_send(3) {
            Err(TrySendError::Full(3)) => {}
            other => panic!("expected Full, got {other:?}"),
        }
        assert_eq!(rx.recv().unwrap(), 1);
        tx.try_send(3).unwrap();
        assert_eq!(rx.recv().unwrap(), 2);
        assert_eq!(rx.recv().unwrap(), 3);
    }

    #[test]
    fn disconnect_is_observed() {
        let (tx, rx) = bounded::<u32>(4);
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv().unwrap(), 7);
        assert_eq!(rx.recv(), Err(RecvError));

        let (tx, rx) = bounded::<u32>(4);
        drop(rx);
        assert!(matches!(tx.try_send(1), Err(TrySendError::Disconnected(1))));
    }

    #[test]
    fn timeout_elapses() {
        let (_tx, rx) = bounded::<u32>(1);
        let err = rx.recv_timeout(Duration::from_millis(20)).unwrap_err();
        assert_eq!(err, RecvTimeoutError::Timeout);
    }

    #[test]
    fn mpmc_threads() {
        let (tx, rx) = bounded::<u64>(8);
        let mut producers = Vec::new();
        for p in 0..4u64 {
            let tx = tx.clone();
            producers.push(std::thread::spawn(move || {
                for i in 0..100 {
                    tx.send(p * 1000 + i).unwrap();
                }
            }));
        }
        drop(tx);
        let mut consumers = Vec::new();
        for _ in 0..3 {
            let rx = rx.clone();
            consumers.push(std::thread::spawn(move || {
                let mut n = 0usize;
                while rx.recv().is_ok() {
                    n += 1;
                }
                n
            }));
        }
        drop(rx);
        for p in producers {
            p.join().unwrap();
        }
        let total: usize = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(total, 400);
    }
}
