//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace uses: the
//! `proptest!` macro, `prop_assert!`/`prop_assert_eq!`, `prop_oneof!`,
//! `Just`, `any`, range and regex-literal strategies, `prop_map`,
//! `proptest::collection::vec` and `proptest::option::of`.
//!
//! Differences from the real crate: case generation is deterministic per
//! test (seeded from the test name), there is no shrinking, and failure
//! persistence files (`*.proptest-regressions`) are ignored. Failures
//! panic with the assertion message and the case number.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// RNG used to generate test cases.
pub type TestRng = StdRng;

// ---------------------------------------------------------------------------
// Errors and config
// ---------------------------------------------------------------------------

/// Opaque test-case failure carrying a message.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    msg: String,
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError { msg: msg.into() }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

// ---------------------------------------------------------------------------
// Strategy trait and combinators
// ---------------------------------------------------------------------------

/// A generator of values of type `Self::Value`.
///
/// Unlike the real proptest there is no value tree and no shrinking: a
/// strategy simply draws a fresh value from the RNG.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy that always yields a clone of the given value.
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// Numeric range strategies: anything rand can sample from works.
impl<T> Strategy for std::ops::Range<T>
where
    std::ops::Range<T>: rand::SampleRange<T> + Clone,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T> Strategy for std::ops::RangeInclusive<T>
where
    std::ops::RangeInclusive<T>: rand::SampleRange<T> + Clone,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

// String literals act as regex-ish strategies producing Strings.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        regex::generate(self, rng)
    }
}

impl Strategy for String {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        regex::generate(self, rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A.0);
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9, K.10);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9, K.10, L.11);

// ---------------------------------------------------------------------------
// `any::<T>()`
// ---------------------------------------------------------------------------

/// Types with a canonical full-domain strategy.
pub trait ArbitraryValue {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_via_gen {
    ($($t:ty),+) => {
        $(impl ArbitraryValue for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen()
            }
        })+
    };
}

impl_arbitrary_via_gen!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: ArbitraryValue> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Full-domain strategy for `T`, e.g. `any::<bool>()`.
pub fn any<T: ArbitraryValue>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

// ---------------------------------------------------------------------------
// Unions (prop_oneof!)
// ---------------------------------------------------------------------------

pub mod strategy {
    use super::TestRng;
    pub use super::{Just, Map, Strategy};

    /// Object-safe view of [`Strategy`] so heterogeneous strategies with a
    /// shared value type can live in one `Union`.
    pub trait DynStrategy<V> {
        fn generate_dyn(&self, rng: &mut TestRng) -> V;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    pub type BoxedStrategy<V> = Box<dyn DynStrategy<V>>;

    pub fn boxed_strategy<S>(s: S) -> BoxedStrategy<S::Value>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }

    /// Uniform choice between alternatives (the `prop_oneof!` backend).
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            use rand::Rng;
            let i = rng.gen_range(0..self.options.len());
            self.options[i].generate_dyn(rng)
        }
    }
}

// ---------------------------------------------------------------------------
// Collections and Option
// ---------------------------------------------------------------------------

pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Length specification for [`vec`]: an exact `usize` or a `Range`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_exclusive: *r.end() + 1,
            }
        }
    }

    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec(strategy, len)`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..self.size.hi_exclusive);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod option {
    use super::{Strategy, TestRng};
    use rand::Rng;

    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `proptest::option::of(strategy)`: `None` about a quarter of the time.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.gen_bool(0.25) {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Tiny regex-subset generator for string-literal strategies
// ---------------------------------------------------------------------------

mod regex {
    use super::TestRng;
    use rand::Rng;

    enum Atom {
        Any,
        Class(Vec<(char, char)>),
        Literal(char),
    }

    struct Piece {
        atom: Atom,
        lo: usize,
        hi: usize, // inclusive
    }

    /// Generate a string matching a small regex subset: literal chars,
    /// `.`, `[a-z0-9_]`-style classes, and the quantifiers `{n}`,
    /// `{lo,hi}`, `*`, `+`, `?`. Unsupported syntax panics so misuse is
    /// loud rather than silently wrong.
    pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
        let pieces = parse(pattern);
        let mut out = String::new();
        for p in &pieces {
            let n = if p.lo == p.hi {
                p.lo
            } else {
                rng.gen_range(p.lo..=p.hi)
            };
            for _ in 0..n {
                out.push(gen_char(&p.atom, rng));
            }
        }
        out
    }

    fn gen_char(atom: &Atom, rng: &mut TestRng) -> char {
        match atom {
            Atom::Literal(c) => *c,
            Atom::Any => {
                // Mostly printable ASCII, sometimes controls or arbitrary
                // unicode scalars, to exercise robustness paths.
                let roll: f64 = rng.gen();
                if roll < 0.75 {
                    char::from_u32(rng.gen_range(0x20u32..0x7f)).unwrap()
                } else if roll < 0.85 {
                    ['\n', '\t', '\r', '\u{0}', '\u{7f}'][rng.gen_range(0..5usize)]
                } else {
                    loop {
                        let c = rng.gen_range(0x80u32..0x11_0000);
                        if let Some(c) = char::from_u32(c) {
                            return c;
                        }
                    }
                }
            }
            Atom::Class(ranges) => {
                let (lo, hi) = ranges[rng.gen_range(0..ranges.len())];
                char::from_u32(rng.gen_range(lo as u32..=hi as u32))
                    .expect("class range holds valid chars")
            }
        }
    }

    fn parse(pattern: &str) -> Vec<Piece> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut i = 0;
        let mut pieces = Vec::new();
        while i < chars.len() {
            let atom = match chars[i] {
                '.' => {
                    i += 1;
                    Atom::Any
                }
                '[' => {
                    i += 1;
                    let mut ranges = Vec::new();
                    while i < chars.len() && chars[i] != ']' {
                        let lo = if chars[i] == '\\' {
                            i += 1;
                            chars[i]
                        } else {
                            chars[i]
                        };
                        i += 1;
                        if i + 1 < chars.len() && chars[i] == '-' && chars[i + 1] != ']' {
                            let hi = chars[i + 1];
                            i += 2;
                            ranges.push((lo, hi));
                        } else {
                            ranges.push((lo, lo));
                        }
                    }
                    assert!(
                        i < chars.len(),
                        "unterminated character class in `{pattern}`"
                    );
                    i += 1; // consume ']'
                    Atom::Class(ranges)
                }
                '\\' => {
                    i += 1;
                    assert!(i < chars.len(), "dangling escape in `{pattern}`");
                    let c = match chars[i] {
                        'n' => '\n',
                        't' => '\t',
                        'r' => '\r',
                        other => other,
                    };
                    i += 1;
                    Atom::Literal(c)
                }
                c if "(){}|^$*+?".contains(c) => {
                    panic!("unsupported regex syntax `{c}` in `{pattern}`")
                }
                c => {
                    i += 1;
                    Atom::Literal(c)
                }
            };
            let (lo, hi) = if i < chars.len() {
                match chars[i] {
                    '{' => {
                        let close = chars[i..]
                            .iter()
                            .position(|&c| c == '}')
                            .map(|p| i + p)
                            .unwrap_or_else(|| panic!("unterminated `{{` in `{pattern}`"));
                        let body: String = chars[i + 1..close].iter().collect();
                        i = close + 1;
                        if let Some((a, b)) = body.split_once(',') {
                            (
                                a.trim().parse().expect("bad repeat lower bound"),
                                b.trim().parse().expect("bad repeat upper bound"),
                            )
                        } else {
                            let n: usize = body.trim().parse().expect("bad repeat count");
                            (n, n)
                        }
                    }
                    '*' => {
                        i += 1;
                        (0, 8)
                    }
                    '+' => {
                        i += 1;
                        (1, 8)
                    }
                    '?' => {
                        i += 1;
                        (0, 1)
                    }
                    _ => (1, 1),
                }
            } else {
                (1, 1)
            };
            pieces.push(Piece { atom, lo, hi });
        }
        pieces
    }
}

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

/// Drive one property: generate `config.cases` values and run the body on
/// each. Called by the `proptest!` macro; not public API.
pub fn run_proptest<S, F>(name: &str, config: ProptestConfig, strat: S, mut body: F)
where
    S: Strategy,
    F: FnMut(S::Value) -> TestCaseResult,
{
    // Deterministic per-test seed so failures are reproducible.
    let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        seed ^= b as u64;
        seed = seed.wrapping_mul(0x100_0000_01b3);
    }
    let mut rng = TestRng::seed_from_u64(seed);
    for case in 0..config.cases {
        let value = strat.generate(&mut rng);
        if let Err(e) = body(value) {
            panic!(
                "proptest `{name}` failed at case {case}/{}: {e}",
                config.cases
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Declare property tests. Supports an optional leading
/// `#![proptest_config(...)]` and any number of test functions whose
/// arguments use `name in strategy` syntax.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $config;
                let __strat = ($($strat,)+);
                $crate::run_proptest(stringify!($name), __config, __strat, |($($arg,)+)| {
                    $body
                    ::std::result::Result::Ok(())
                });
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),+) $body
            )*
        }
    };
}

/// Assert a condition inside a property, returning a test-case failure
/// instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let __left = $left;
        let __right = $right;
        if !(__left == __right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}",
                stringify!($left),
                stringify!($right)
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let __left = $left;
        let __right = $right;
        if !(__left == __right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let __left = $left;
        let __right = $right;
        if __left == __right {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {}",
                stringify!($left),
                stringify!($right)
            )));
        }
    }};
}

/// Uniform choice between strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($option:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::boxed_strategy($option)),+
        ])
    };
}

pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, TestCaseError, TestCaseResult,
    };
}

/// Test-only access to the regex generator.
#[doc(hidden)]
pub fn regex_generate_for_tests(pattern: &str, rng: &mut TestRng) -> String {
    regex::generate(pattern, rng)
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small() -> impl Strategy<Value = u32> {
        1u32..5
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Ranges stay in bounds, options and vecs compose.
        #[test]
        fn composed_strategies_stay_in_bounds(
            x in small(),
            flag in any::<bool>(),
            xs in crate::collection::vec(0usize..10, 1..6),
            maybe in crate::option::of(2i32..4),
            word in "[a-z]{1,6}",
            pick in prop_oneof![Just(7u8), Just(9u8)],
        ) {
            prop_assert!((1..5).contains(&x));
            prop_assert_ne!(flag, !flag);
            prop_assert!(!xs.is_empty() && xs.len() <= 5);
            prop_assert!(xs.iter().all(|&v| v < 10));
            if let Some(m) = maybe {
                prop_assert!((2..4).contains(&m));
            }
            prop_assert!((1..=6).contains(&word.len()));
            prop_assert!(word.chars().all(|c| c.is_ascii_lowercase()));
            prop_assert!(pick == 7 || pick == 9);
        }

        #[test]
        fn prop_map_applies(y in (0u32..3).prop_map(|v| v * 10)) {
            prop_assert!(y == 0 || y == 10 || y == 20);
            prop_assert_eq!(y % 10, 0);
        }
    }

    #[test]
    fn dot_quantifier_bounds() {
        use rand::SeedableRng;
        let mut rng = crate::TestRng::seed_from_u64(7);
        for _ in 0..50 {
            let s = crate::regex_generate_for_tests(".{0,200}", &mut rng);
            assert!(s.chars().count() <= 200);
        }
    }

    #[test]
    #[should_panic]
    fn failing_property_panics() {
        crate::run_proptest(
            "always_fails",
            ProptestConfig::with_cases(1),
            0u32..1,
            |_| Err(TestCaseError::fail("boom")),
        );
    }
}
