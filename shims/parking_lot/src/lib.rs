//! Offline stand-in for `parking_lot`.
//!
//! Wraps the std sync primitives with parking_lot's non-poisoning API:
//! `lock()` / `read()` / `write()` return guards directly instead of
//! `Result`s. A poisoned std lock (a writer panicked) is recovered by
//! taking the inner guard, matching parking_lot's behaviour of not
//! propagating poison.
//!
//! The shim also hosts the workspace's runtime lock-order sanitizer
//! (see [`order`]): with `QREC_LOCK_ORDER_CHECK=1` every blocking
//! acquisition is checked against a global acquisition-order graph and
//! the process panics — with both witness stacks — the moment two
//! locks are ever taken in both orders, instead of deadlocking some
//! night in production. Disabled, the guards add one relaxed atomic
//! load per acquisition.

use std::ops::{Deref, DerefMut};
use std::sync::atomic::AtomicUsize;
use std::sync::{self, PoisonError};

pub mod order;

pub use order::force_enable;

/// Guard returned by [`Mutex::lock`] / [`Mutex::try_lock`].
#[derive(Debug)]
pub struct MutexGuard<'a, T: ?Sized> {
    inner: sync::MutexGuard<'a, T>,
    _held: Option<order::HeldToken>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Guard returned by [`RwLock::read`] / [`RwLock::try_read`].
#[derive(Debug)]
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
    _held: Option<order::HeldToken>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// Guard returned by [`RwLock::write`] / [`RwLock::try_write`].
#[derive(Debug)]
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
    _held: Option<order::HeldToken>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Non-poisoning mutex.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    /// Sanitizer order id, lazily assigned on first acquisition (0 =
    /// unassigned) so `new` stays `const`.
    order_id: AtomicUsize,
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            order_id: AtomicUsize::new(0),
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let held = if order::enabled() {
            let id = order::lock_id(&self.order_id);
            order::check_before_blocking_acquire(id);
            Some(id)
        } else {
            None
        };
        MutexGuard {
            inner: self.inner.lock().unwrap_or_else(PoisonError::into_inner),
            _held: held.map(order::push_held),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let inner = match self.inner.try_lock() {
            Ok(g) => g,
            Err(sync::TryLockError::Poisoned(p)) => p.into_inner(),
            Err(sync::TryLockError::WouldBlock) => return None,
        };
        // A try-acquisition cannot deadlock (it fails instead of
        // blocking) so it records no order edges — but the lock is now
        // held, and later blocking acquisitions order against it.
        let held = order::enabled().then(|| order::push_held(order::lock_id(&self.order_id)));
        Some(MutexGuard { inner, _held: held })
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Non-poisoning reader-writer lock.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    /// Sanitizer order id, lazily assigned on first acquisition (0 =
    /// unassigned) so `new` stays `const`.
    order_id: AtomicUsize,
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock {
            order_id: AtomicUsize::new(0),
            inner: sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let held = if order::enabled() {
            let id = order::lock_id(&self.order_id);
            order::check_before_blocking_acquire(id);
            Some(id)
        } else {
            None
        };
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
            _held: held.map(order::push_held),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let held = if order::enabled() {
            let id = order::lock_id(&self.order_id);
            order::check_before_blocking_acquire(id);
            Some(id)
        } else {
            None
        };
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
            _held: held.map(order::push_held),
        }
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        let inner = match self.inner.try_read() {
            Ok(g) => g,
            Err(sync::TryLockError::Poisoned(p)) => p.into_inner(),
            Err(sync::TryLockError::WouldBlock) => return None,
        };
        let held = order::enabled().then(|| order::push_held(order::lock_id(&self.order_id)));
        Some(RwLockReadGuard { inner, _held: held })
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        let inner = match self.inner.try_write() {
            Ok(g) => g,
            Err(sync::TryLockError::Poisoned(p)) => p.into_inner(),
            Err(sync::TryLockError::WouldBlock) => return None,
        };
        let held = order::enabled().then(|| order::push_held(order::lock_id(&self.order_id)));
        Some(RwLockWriteGuard { inner, _held: held })
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn lock_survives_panicking_holder() {
        let m = Arc::new(Mutex::new(0u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        // parking_lot semantics: the lock is still usable.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn sanitizer_catches_deliberate_inversion() {
        order::force_enable();
        let a = Arc::new(Mutex::new(0u32));
        let b = Arc::new(Mutex::new(0u32));
        // Establish a → b on one thread…
        {
            let (a, b) = (Arc::clone(&a), Arc::clone(&b));
            std::thread::spawn(move || {
                let _ga = a.lock();
                let _gb = b.lock();
            })
            .join()
            .unwrap();
        }
        // …then take b → a on another: must panic, not deadlock.
        let result = std::thread::Builder::new()
            .name("inverted".into())
            .spawn(move || {
                let _gb = b.lock();
                let _ga = a.lock();
            })
            .unwrap()
            .join();
        let err = result.expect_err("inverted order must panic");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(
            msg.contains("lock-order inversion"),
            "panic message names the inversion: {msg}"
        );
    }

    #[test]
    fn sanitizer_accepts_consistent_order_and_reacquisition() {
        order::force_enable();
        let a = Arc::new(Mutex::new(0u32));
        let b = Arc::new(RwLock::new(0u32));
        for _ in 0..3 {
            let _ga = a.lock();
            let _gb = b.read();
        }
        // Same-lock sequential reacquisition is not an inversion.
        drop(a.lock());
        drop(a.lock());
    }

    #[test]
    fn sanitizer_orders_against_try_held_locks() {
        order::force_enable();
        let a = Arc::new(Mutex::new(0u32));
        let b = Arc::new(Mutex::new(0u32));
        // try-hold a, then block on b: records a → b.
        {
            let (a, b) = (Arc::clone(&a), Arc::clone(&b));
            std::thread::spawn(move || {
                let _ga = a.try_lock().unwrap();
                let _gb = b.lock();
            })
            .join()
            .unwrap();
        }
        // b → a (both blocking) must now panic.
        let result = std::thread::spawn(move || {
            let _gb = b.lock();
            let _ga = a.lock();
        })
        .join();
        assert!(result.is_err(), "try-held locks participate in ordering");
    }
}
