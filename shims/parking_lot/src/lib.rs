//! Offline stand-in for `parking_lot`.
//!
//! Wraps the std sync primitives with parking_lot's non-poisoning API:
//! `lock()` / `read()` / `write()` return guards directly instead of
//! `Result`s. A poisoned std lock (a writer panicked) is recovered by
//! taking the inner guard, matching parking_lot's behaviour of not
//! propagating poison.

use std::sync::{self, PoisonError};

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// Non-poisoning mutex.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Non-poisoning reader-writer lock.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn lock_survives_panicking_holder() {
        let m = Arc::new(Mutex::new(0u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        // parking_lot semantics: the lock is still usable.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
