//! Runtime lock-order sanitizer.
//!
//! The static pass in `qrec-lint` (R8 `lock-order-inversion`) works on
//! a name-based call graph and deliberately under-approximates where
//! names are too ambiguous to resolve; this module is the dynamic
//! backstop that closes the gap. Every `Mutex`/`RwLock` in the shim
//! gets a process-unique order id, every thread keeps a stack of the
//! lock ids it currently holds, and every *blocking* acquisition
//! records held→acquired edges into a global acquisition-order graph.
//! When an acquisition would close a cycle — this thread wants B while
//! holding A, but some earlier acquisition took A while holding B (or
//! any path B ⇝ A exists) — the process panics immediately with both
//! witness stacks, turning a once-a-month production deadlock into a
//! deterministic test failure.
//!
//! The checker is off unless `QREC_LOCK_ORDER_CHECK=1` is set in the
//! environment (CI runs the whole test suite under it) or
//! [`force_enable`] is called (the shim's own tests do). Disabled cost
//! is one relaxed atomic load per acquisition.
//!
//! `try_lock`-family acquisitions never *record or check* edges — a
//! call that fails instead of blocking cannot participate in a
//! deadlock cycle — but a successfully try-acquired lock still counts
//! as *held*, so blocking acquisitions made while it is held are
//! ordered against it.

use std::backtrace::Backtrace;
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Process-wide toggle set by [`force_enable`].
static FORCED: AtomicBool = AtomicBool::new(false);

/// Monotonic order-id source. Ids start at 1; 0 means "not yet
/// assigned". Ids are never reused, so a lock freed and another
/// allocated at the same address cannot alias in the order graph.
static NEXT_ID: AtomicUsize = AtomicUsize::new(1);

/// Is the sanitizer active?
pub(crate) fn enabled() -> bool {
    if FORCED.load(Ordering::Relaxed) {
        return true;
    }
    static ENV: OnceLock<bool> = OnceLock::new();
    *ENV.get_or_init(|| std::env::var("QREC_LOCK_ORDER_CHECK").as_deref() == Ok("1"))
}

/// Turn the sanitizer on for the rest of the process, regardless of
/// the environment. Intended for tests.
pub fn force_enable() {
    FORCED.store(true, Ordering::Relaxed);
}

/// Lazily assign (first caller wins) and return the lock's order id.
pub(crate) fn lock_id(slot: &AtomicUsize) -> usize {
    let id = slot.load(Ordering::Relaxed);
    if id != 0 {
        return id;
    }
    let fresh = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    match slot.compare_exchange(0, fresh, Ordering::Relaxed, Ordering::Relaxed) {
        Ok(_) => fresh,
        Err(winner) => winner,
    }
}

thread_local! {
    /// Order ids of the locks this thread currently holds, in
    /// acquisition order.
    static HELD: RefCell<Vec<usize>> = const { RefCell::new(Vec::new()) };
}

/// How one acquisition-order edge was first observed.
struct Witness {
    thread: String,
    held: Vec<usize>,
    backtrace: String,
}

/// The global acquisition-order graph: `from` held while `to`
/// acquired, with the first witness per edge.
fn graph() -> &'static Mutex<HashMap<usize, HashMap<usize, Witness>>> {
    static GRAPH: OnceLock<Mutex<HashMap<usize, HashMap<usize, Witness>>>> = OnceLock::new();
    GRAPH.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Is `to` reachable from `from` in the order graph? Returns the path
/// when it is.
fn find_path(
    edges: &HashMap<usize, HashMap<usize, Witness>>,
    from: usize,
    to: usize,
) -> Option<Vec<usize>> {
    let mut parent: HashMap<usize, usize> = HashMap::new();
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(from);
    parent.insert(from, from);
    while let Some(n) = queue.pop_front() {
        if n == to {
            let mut path = vec![to];
            let mut cur = to;
            while parent[&cur] != cur {
                cur = parent[&cur];
                path.push(cur);
            }
            path.reverse();
            return Some(path);
        }
        for m in edges.get(&n).map(|e| e.keys()).into_iter().flatten() {
            parent.entry(*m).or_insert_with(|| {
                queue.push_back(*m);
                n
            });
        }
    }
    None
}

/// Check a blocking acquisition of `acquiring` against the order
/// graph, then record the edges it implies. Called *before* the
/// underlying lock call, so the panic fires instead of the deadlock.
///
/// Panics with both witness stacks when the acquisition closes a
/// cycle.
pub(crate) fn check_before_blocking_acquire(acquiring: usize) {
    let held: Vec<usize> = HELD.with(|h| h.borrow().clone());
    if held.is_empty() {
        return;
    }
    let mut edges = graph().lock().unwrap_or_else(|p| p.into_inner());
    for &h in &held {
        // Re-acquiring the same id (sharded collections, recursive
        // reads) is not an ordering fact.
        if h == acquiring {
            continue;
        }
        if let Some(path) = find_path(&edges, acquiring, h) {
            let first_hop = edges
                .get(&path[0])
                .and_then(|e| e.get(&path[1]))
                .expect("path edges exist");
            let thread = std::thread::current();
            panic!(
                "lock-order inversion: thread '{}' (holding {:?}) wants lock #{}, but the \
                 opposite order #{} ⇝ #{} (path {:?}) was established by thread '{}' \
                 (holding {:?}) at:\n{}\nset QREC_LOCK_ORDER_CHECK=0 only if you have \
                 proven both orders can never run concurrently",
                thread.name().unwrap_or("<unnamed>"),
                held,
                acquiring,
                acquiring,
                h,
                path,
                first_hop.thread,
                first_hop.held,
                first_hop.backtrace,
            );
        }
    }
    for &h in &held {
        if h == acquiring {
            continue;
        }
        edges
            .entry(h)
            .or_default()
            .entry(acquiring)
            .or_insert_with(|| Witness {
                thread: std::thread::current()
                    .name()
                    .unwrap_or("<unnamed>")
                    .to_string(),
                held: held.clone(),
                backtrace: Backtrace::force_capture().to_string(),
            });
    }
}

/// Record that this thread now holds `id`. Returns a token whose drop
/// un-holds it; callers skip this entirely when the sanitizer is
/// disabled (zero-cost guards).
pub(crate) fn push_held(id: usize) -> HeldToken {
    HELD.with(|h| h.borrow_mut().push(id));
    HeldToken { id }
}

/// RAII token: removing it pops the lock from the thread's held stack.
#[derive(Debug)]
pub(crate) struct HeldToken {
    id: usize,
}

impl Drop for HeldToken {
    fn drop(&mut self) {
        // `try_with`: thread-local storage may already be torn down
        // when guards drop during thread exit.
        let _ = HELD.try_with(|h| {
            let mut held = h.borrow_mut();
            if let Some(pos) = held.iter().rposition(|&x| x == self.id) {
                held.remove(pos);
            }
        });
    }
}
