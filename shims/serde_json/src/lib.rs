//! Offline stand-in for `serde_json`, backed by the vendored `serde` value tree.
//!
//! Provides the subset of the real crate's API used by this workspace:
//! `from_str` / `from_slice`, `to_string` / `to_string_pretty` / `to_vec` /
//! `to_vec_pretty` / `to_writer`, `to_value`, the `json!` macro, and the
//! `Value` / `Map` types (re-exported from the `serde` shim). The text format
//! is standard JSON and is wire-compatible with the real serde_json.

pub use serde::{Map, Value};

use serde::{Deserialize, Serialize};

/// Error type covering syntax errors, shape mismatches and I/O failures.
pub struct Error {
    msg: String,
}

impl Error {
    fn syntax(msg: impl Into<String>, pos: usize) -> Self {
        Error {
            msg: format!("{} at byte {}", msg.into(), pos),
        }
    }
}

impl std::fmt::Debug for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Error({:?})", self.msg)
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error { msg: e.to_string() }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error {
            msg: format!("io error: {e}"),
        }
    }
}

pub type Result<T> = std::result::Result<T, Error>;

// ---------------------------------------------------------------------------
// Deserialization entry points
// ---------------------------------------------------------------------------

/// Parse a JSON document from text and convert it into `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let value = parse_value_complete(s)?;
    Ok(T::from_value(&value)?)
}

/// Parse a JSON document from bytes and convert it into `T`.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T> {
    let s = std::str::from_utf8(bytes)
        .map_err(|e| Error::syntax(format!("invalid utf-8: {e}"), e.valid_up_to()))?;
    from_str(s)
}

/// Convert any serializable value into a `Value` tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

// ---------------------------------------------------------------------------
// Serialization entry points
// ---------------------------------------------------------------------------

/// Serialize to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize to a pretty-printed JSON string (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Serialize to a compact JSON byte vector.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    Ok(to_string(value)?.into_bytes())
}

/// Serialize to a pretty-printed JSON byte vector.
pub fn to_vec_pretty<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    Ok(to_string_pretty(value)?.into_bytes())
}

/// Serialize compact JSON into a writer.
pub fn to_writer<W: std::io::Write, T: Serialize + ?Sized>(mut writer: W, value: &T) -> Result<()> {
    writer.write_all(to_string(value)?.as_bytes())?;
    Ok(())
}

/// Serialize pretty-printed JSON into a writer.
pub fn to_writer_pretty<W: std::io::Write, T: Serialize + ?Sized>(
    mut writer: W,
    value: &T,
) -> Result<()> {
    writer.write_all(to_string_pretty(value)?.as_bytes())?;
    Ok(())
}

// ---------------------------------------------------------------------------
// Printer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => {
            out.push_str(&i.to_string());
        }
        Value::UInt(u) => {
            out.push_str(&u.to_string());
        }
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn write_float(out: &mut String, f: f64) {
    if !f.is_finite() {
        // Matches serde_json's default behaviour of refusing non-finite
        // numbers; we degrade to null instead of erroring.
        out.push_str("null");
    } else if f == f.trunc() && f.abs() < 1e15 {
        // Keep a trailing ".0" so integral floats survive a round trip as
        // floats, like the real serde_json printer.
        out.push_str(&format!("{f:.1}"));
    } else {
        out.push_str(&format!("{f}"));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

fn parse_value_complete(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::syntax("trailing characters", p.pos));
    }
    Ok(v)
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.peek() {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn expect_literal(&mut self, lit: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(Error::syntax(format!("expected `{lit}`"), self.pos))
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<Value> {
        if depth > MAX_DEPTH {
            return Err(Error::syntax("recursion limit exceeded", self.pos));
        }
        match self.peek() {
            None => Err(Error::syntax("unexpected end of input", self.pos)),
            Some(b'n') => self.expect_literal("null", Value::Null),
            Some(b't') => self.expect_literal("true", Value::Bool(true)),
            Some(b'f') => self.expect_literal("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(depth),
            Some(b'{') => self.parse_object(depth),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            Some(b) => Err(Error::syntax(
                format!("unexpected byte 0x{b:02x}"),
                self.pos,
            )),
        }
    }

    fn parse_array(&mut self, depth: usize) -> Result<Value> {
        self.pos += 1; // consume '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::syntax("expected `,` or `]`", self.pos)),
            }
        }
    }

    fn parse_object(&mut self, depth: usize) -> Result<Value> {
        self.pos += 1; // consume '{'
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(Error::syntax("expected string key", self.pos));
            }
            let key = self.parse_string()?;
            self.skip_ws();
            if self.peek() != Some(b':') {
                return Err(Error::syntax("expected `:`", self.pos));
            }
            self.pos += 1;
            self.skip_ws();
            let value = self.parse_value(depth + 1)?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(Error::syntax("expected `,` or `}`", self.pos)),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.pos += 1; // consume opening quote
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a run of plain bytes.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                // Safe: the document passed a UTF-8 check and we only stop on
                // ASCII boundaries, so the run is valid UTF-8.
                out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
            }
            match self.peek() {
                None => return Err(Error::syntax("unterminated string", self.pos)),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::syntax("unterminated escape", self.pos))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let c = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair: expect a low surrogate next.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    if self.peek() != Some(b'u') {
                                        return Err(Error::syntax(
                                            "expected low surrogate",
                                            self.pos,
                                        ));
                                    }
                                    self.pos += 1;
                                    let lo = self.parse_hex4()?;
                                    if !(0xdc00..0xe000).contains(&lo) {
                                        return Err(Error::syntax(
                                            "invalid low surrogate",
                                            self.pos,
                                        ));
                                    }
                                    let code = 0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00);
                                    char::from_u32(code)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(hi)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => {
                                    return Err(Error::syntax("invalid unicode escape", self.pos))
                                }
                            }
                        }
                        b => {
                            return Err(Error::syntax(
                                format!("invalid escape `\\{}`", b as char),
                                self.pos,
                            ))
                        }
                    }
                }
                Some(b) if b < 0x20 => {
                    return Err(Error::syntax("control character in string", self.pos))
                }
                Some(_) => unreachable!("fast path consumes plain bytes"),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::syntax("truncated \\u escape", self.pos));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::syntax("invalid \\u escape", self.pos))?;
        let v = u32::from_str_radix(hex, 16)
            .map_err(|_| Error::syntax("invalid \\u escape", self.pos))?;
        self.pos += 4;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        if !matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            return Err(Error::syntax("expected digit", self.pos));
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                return Err(Error::syntax("expected digit after `.`", self.pos));
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                return Err(Error::syntax("expected digit in exponent", self.pos));
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::syntax("invalid number", start))
    }
}

// ---------------------------------------------------------------------------
// json! macro
// ---------------------------------------------------------------------------

/// Build a [`Value`] from JSON-like syntax, with Rust expressions allowed in
/// value position (they are converted via [`to_value`]).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ([ $($tt:tt)* ]) => { $crate::json_internal!(@array [] () ($($tt)*)) };
    ({ $($tt:tt)* }) => {{
        #[allow(unused_mut)]
        let mut __jmap = $crate::Map::new();
        $crate::json_internal!(@object __jmap () ($($tt)*));
        $crate::Value::Object(__jmap)
    }};
    ($other:expr) => { $crate::to_value(&$other) };
}

/// Internal token muncher for [`json!`]. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! json_internal {
    // ----- arrays: [built elements] (pending value tokens) (remaining) -----
    (@array [$($elems:expr,)*] ($($val:tt)+) (, $($rest:tt)*)) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json!($($val)+),] () ($($rest)*))
    };
    (@array [$($elems:expr,)*] ($($val:tt)+) ()) => {
        $crate::Value::Array(vec![$($elems,)* $crate::json!($($val)+)])
    };
    (@array [$($elems:expr,)*] () ()) => {
        $crate::Value::Array(vec![$($elems,)*])
    };
    (@array [$($elems:expr,)*] ($($val:tt)*) ($next:tt $($rest:tt)*)) => {
        $crate::json_internal!(@array [$($elems,)*] ($($val)* $next) ($($rest)*))
    };
    // ----- objects: map ident, (pending key/value tokens), (remaining) -----
    (@object $map:ident ($key:tt : $($val:tt)+) (, $($rest:tt)*)) => {
        $map.insert($crate::json_key!($key), $crate::json!($($val)+));
        $crate::json_internal!(@object $map () ($($rest)*));
    };
    (@object $map:ident ($key:tt : $($val:tt)+) ()) => {
        $map.insert($crate::json_key!($key), $crate::json!($($val)+));
    };
    (@object $map:ident () ()) => {};
    (@object $map:ident ($($pending:tt)*) ($next:tt $($rest:tt)*)) => {
        $crate::json_internal!(@object $map ($($pending)* $next) ($($rest)*));
    };
}

/// Converts a `json!` object key token into a `String`. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! json_key {
    ($key:literal) => {
        $key.to_string()
    };
    ($key:expr) => {
        ($key).to_string()
    };
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        assert_eq!(from_str::<i64>("42").unwrap(), 42);
        assert_eq!(from_str::<i64>("-7").unwrap(), -7);
        assert_eq!(from_str::<f64>("2.5e2").unwrap(), 250.0);
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(from_str::<String>("\"a\\nb\"").unwrap(), "a\nb");
        assert_eq!(from_str::<Option<u32>>("null").unwrap(), None);
    }

    #[test]
    fn round_trip_collections() {
        let v: Vec<u32> = from_str("[1, 2, 3]").unwrap();
        assert_eq!(v, vec![1, 2, 3]);
        let text = to_string(&v).unwrap();
        assert_eq!(text, "[1,2,3]");
        let back: Vec<u32> = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("this line is not json").is_err());
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("{} trailing").is_err());
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(from_str::<String>("\"\\u0041\"").unwrap(), "A");
        assert_eq!(
            from_str::<String>("\"\\ud83d\\ude00\"").unwrap(),
            "\u{1f600}"
        );
        assert!(from_str::<String>("\"\\ud83d\"").is_err());
    }

    #[test]
    fn float_printing_keeps_point() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&0.25f64).unwrap(), "0.25");
    }

    #[test]
    fn json_macro_shapes() {
        let v = json!({
            "name": "qrec",
            "nested": { "xs": [1, 2.5, null, true] },
            "expr": 2 + 3,
            "empty_obj": {},
            "empty_arr": [],
        });
        let obj = v.as_object().unwrap();
        assert_eq!(obj.get("name").unwrap().as_str().unwrap(), "qrec");
        let nested = obj.get("nested").unwrap().as_object().unwrap();
        let xs = nested.get("xs").unwrap().as_array().unwrap();
        assert_eq!(xs.len(), 4);
        assert_eq!(obj.get("expr").unwrap().as_i128(), Some(5));
        assert!(obj
            .get("empty_obj")
            .unwrap()
            .as_object()
            .unwrap()
            .is_empty());
        assert!(obj.get("empty_arr").unwrap().as_array().unwrap().is_empty());
    }

    #[test]
    fn pretty_printing() {
        let v = json!({ "a": [1] });
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(pretty, "{\n  \"a\": [\n    1\n  ]\n}");
    }

    #[test]
    fn struct_like_object_parses() {
        let text = "{\"session\": 7, \"queries\": [\"select 1\"], \"dataset\": 2}";
        let v: Value = from_str(text).unwrap();
        let obj = v.as_object().unwrap();
        assert_eq!(obj.get("session").unwrap().as_i128(), Some(7));
    }
}
