//! Cross-crate integration tests: the full pipeline from synthetic
//! workload generation through training to online recommendation, at
//! test scale.

use qrec::core::prelude::*;
use qrec::workload::gen::{generate, WorkloadProfile};
use qrec::workload::Split;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn tiny() -> (qrec::workload::Workload, Split) {
    let mut profile = WorkloadProfile::tiny();
    profile.sessions = 100;
    let (w, _) = generate(&profile, 4242);
    let mut rng = StdRng::seed_from_u64(1);
    let split = Split::paper(w.pairs(), &mut rng);
    (w, split)
}

#[test]
fn full_pipeline_trains_and_recommends() {
    let (w, split) = tiny();
    let cfg = RecommenderConfig::test(Arch::Transformer, SeqMode::Aware);
    let (mut rec, report) = Recommender::train(&split, &w, cfg);
    assert!(report.best_val_loss().is_finite());

    let (mut clf, _) = TemplateModel::train_fine_tuned(&rec, &split, TemplateClfConfig::test());

    let q = &split.test[0].current;
    let frags = rec.predict_n(q, 5);
    assert!(frags.table.len() <= 5);
    let set = rec.predict_set(q);
    let _ = set.len();
    let tpls = clf.predict_templates(q, 3);
    assert!(tpls.len() <= 3);
}

#[test]
fn model_beats_popular_on_table_prediction() {
    // The load-bearing claim at miniature scale: on a single-schema
    // workload with hot-column structure, the seq-aware model's table
    // predictions beat the popularity baseline's.
    let (w, split) = tiny();
    let mut cfg = RecommenderConfig::test(Arch::Transformer, SeqMode::Aware);
    cfg.train.epochs = 12;
    let (mut rec, _) = Recommender::train(&split, &w, cfg);
    let mut popular = PopularBaseline::fit(&split.train);

    let test = &split.test;
    let model_m = eval_n_fragments(&mut rec, test, 1);
    let pop_m = eval_n_fragments(&mut popular, test, 1);
    assert!(
        model_m.table.f1() >= pop_m.table.f1(),
        "model table F1 {} should be at least popular's {}",
        model_m.table.f1(),
        pop_m.table.f1()
    );
}

#[test]
fn all_architectures_complete_the_pipeline() {
    let (w, split) = tiny();
    for arch in [Arch::Transformer, Arch::ConvS2S, Arch::Gru] {
        let cfg = RecommenderConfig::test(arch, SeqMode::Aware);
        let (mut rec, _) = Recommender::train(&split, &w, cfg);
        let q = &split.test[0].current;
        let _ = rec.predict_set(q);
        let _ = rec.predict_n(q, 3);
    }
}

#[test]
fn evaluation_harness_is_consistent_across_methods() {
    let (w, split) = tiny();
    let test = &split.test;

    let mut naive = NaiveQi::fit(&split.train);
    let mut popular = PopularBaseline::fit(&split.train);
    let mut querie = Querie::fit(&split.train, 10);

    // Fragment-set metrics are all in [0,1].
    for m in [
        eval_fragment_set(&mut naive, test),
        eval_fragment_set(&mut popular, test),
        eval_fragment_set(&mut querie, test),
    ] {
        for kind in qrec::sql::FragmentKind::ALL {
            let f1 = m.get(kind).f1();
            assert!((0.0..=1.0).contains(&f1), "{kind:?} f1={f1}");
        }
    }

    // Template metrics behave monotonically in N.
    let a1 = eval_templates(&mut naive, test, 1);
    let a5 = eval_templates(&mut naive, test, 5);
    assert!(a5.accuracy() >= a1.accuracy());

    // naive-Qi's template accuracy equals the template-same rate of the
    // test pairs — the anchor identity from Section 5.4.2.
    let same_rate = test
        .iter()
        .filter(|p| p.current.template == p.next.template)
        .count() as f64
        / test.len() as f64;
    assert!((a1.accuracy() - same_rate).abs() < 1e-12);

    let _ = w;
}

#[test]
fn seq_aware_and_seq_less_learn_different_things() {
    let (w, split) = tiny();
    let mut cfg_aware = RecommenderConfig::test(Arch::Transformer, SeqMode::Aware);
    cfg_aware.train.epochs = 6;
    let mut cfg_less = cfg_aware;
    cfg_less.seq_mode = SeqMode::Less;

    let (rec_aware, rep_aware) = Recommender::train(&split, &w, cfg_aware);
    let (rec_less, rep_less) = Recommender::train(&split, &w, cfg_less);

    // Reconstruction is the easier objective: its loss ends lower.
    assert!(rep_less.best_val_loss() < rep_aware.best_val_loss());
    let _ = (rec_aware, rec_less);
}

#[test]
fn decoded_fragments_come_from_training_vocabulary() {
    let (w, split) = tiny();
    let cfg = RecommenderConfig::test(Arch::Transformer, SeqMode::Aware);
    let (mut rec, _) = Recommender::train(&split, &w, cfg);
    let lexicon = FragmentLexicon::from_workload(&w);
    for p in split.test.iter().take(5) {
        let set = rec.predict_set(&p.current);
        for (kind, frag) in set.iter() {
            assert!(
                !lexicon.kinds_of(frag).is_empty() || frag == "<NUM>",
                "predicted {kind:?} fragment {frag:?} unknown to the workload"
            );
        }
    }
}

#[test]
fn session_context_recommends_with_history() {
    let (w, split) = tiny();
    let cfg = RecommenderConfig::test(Arch::Transformer, SeqMode::Aware);
    let (mut rec, _) = Recommender::train(&split, &w, cfg);

    // Replay a real session through the online context API.
    let session = w
        .sessions
        .iter()
        .find(|s| s.queries.len() >= 3)
        .expect("a session with history");
    let mut ctx = SessionContext::new(2);
    for q in &session.queries[..2] {
        ctx.push(q.clone());
    }
    assert_eq!(ctx.len(), 2);
    let recs = ctx
        .recommend_fragments(&mut rec, 3, qrec::nn::Strategy::Greedy)
        .expect("non-empty session");
    assert!(recs.table.len() <= 3);

    // Empty sessions refuse politely.
    let empty = SessionContext::new(1);
    assert!(empty
        .recommend_fragments(&mut rec, 3, qrec::nn::Strategy::Greedy)
        .is_none());
}

#[test]
fn jsonl_import_feeds_the_full_pipeline() {
    // The adoption path: export a workload as raw SQL JSONL (as a user
    // would provide their own logs), import it back, and train on it.
    let (w, _) = {
        let mut profile = WorkloadProfile::tiny();
        profile.sessions = 60;
        generate(&profile, 777)
    };
    let mut buf = Vec::new();
    qrec::workload::io::write_jsonl(&w, &mut buf).unwrap();
    let (imported, report) = qrec::workload::io::read_jsonl("imported", buf.as_slice()).unwrap();
    assert_eq!(report.queries_dropped, 0);
    assert_eq!(imported.pair_count(), w.pair_count());

    let mut rng = StdRng::seed_from_u64(9);
    let split = Split::paper(imported.pairs(), &mut rng);
    let cfg = RecommenderConfig::test(Arch::Transformer, SeqMode::Aware);
    let (mut rec, report) = Recommender::train(&split, &imported, cfg);
    assert!(report.best_val_loss().is_finite());
    let q = &split.test[0].current;
    let _ = rec.predict_n(q, 3);
}
