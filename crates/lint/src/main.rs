//! The `qrec-lint` binary: walk the workspace, run the rules, subtract
//! the baseline, and report.
//!
//! Exit codes: 0 = clean (or baseline written), 1 = new violations,
//! 2 = usage or I/O error.

use qrec_lint::{analyze, collect_workspace, diag, Baseline};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "\
qrec-lint — workspace static analysis for qrec

USAGE:
    cargo run -p qrec-lint -- [OPTIONS]

OPTIONS:
    --json               emit findings as a JSON array (per-rule counts on stderr)
    --write-baseline     rewrite lint-baseline.toml from current findings
    --check-baseline     also fail when the baseline lists violations that no
                         longer exist (stale entries must be pruned)
    --explain <RULE>     print what a rule checks and a minimal violating
                         example, then exit (accepts aliases)
    --baseline <PATH>    baseline file (default: <root>/lint-baseline.toml)
    --root <DIR>         workspace root (default: auto-detected)
    -h, --help           show this help
";

struct Args {
    json: bool,
    write_baseline: bool,
    check_baseline: bool,
    baseline: Option<PathBuf>,
    root: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        json: false,
        write_baseline: false,
        check_baseline: false,
        baseline: None,
        root: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => args.json = true,
            "--write-baseline" => args.write_baseline = true,
            "--check-baseline" => args.check_baseline = true,
            "--explain" => {
                let rule = it.next().ok_or("--explain needs a rule name")?;
                match qrec_lint::explain(&rule) {
                    Some((doc, example)) => {
                        println!("{doc}\n\nMinimal violating example:\n\n{example}");
                        std::process::exit(0);
                    }
                    None => return Err(format!("unknown rule {rule:?}; see README for the list")),
                }
            }
            "--baseline" => {
                args.baseline = Some(PathBuf::from(it.next().ok_or("--baseline needs a path")?));
            }
            "--root" => {
                args.root = Some(PathBuf::from(it.next().ok_or("--root needs a path")?));
            }
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown option {other:?}")),
        }
    }
    Ok(args)
}

/// The workspace root: `--root`, else the nearest ancestor of the
/// current directory containing a workspace `Cargo.toml`, else the
/// compile-time location of this crate.
fn find_root(cli: Option<PathBuf>) -> PathBuf {
    if let Some(root) = cli {
        return root;
    }
    if let Ok(mut dir) = std::env::current_dir() {
        loop {
            let manifest = dir.join("Cargo.toml");
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return dir;
                }
            }
            if !dir.pop() {
                break;
            }
        }
    }
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let root = find_root(args.root);
    let baseline_path = args
        .baseline
        .unwrap_or_else(|| root.join("lint-baseline.toml"));

    let ws = match collect_workspace(&root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!("error: cannot walk workspace at {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    let findings = analyze(&ws.files, &ws.config);

    if args.write_baseline {
        let text = Baseline::render(&findings);
        if let Err(e) = std::fs::write(&baseline_path, text) {
            eprintln!("error: cannot write {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        println!(
            "wrote {} entries to {}",
            findings.len(),
            baseline_path.display()
        );
        return ExitCode::SUCCESS;
    }

    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => match Baseline::parse(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("error: {}: {e}", baseline_path.display());
                return ExitCode::from(2);
            }
        },
        Err(_) => Baseline::default(), // no baseline file: nothing tolerated
    };

    let stale = if args.check_baseline {
        baseline.stale(&findings)
    } else {
        Vec::new()
    };
    let (tolerated, fresh): (Vec<_>, Vec<_>) =
        findings.into_iter().partition(|f| baseline.contains(f));

    if args.json {
        println!("{}", diag::to_json(&fresh));
        // Per-rule counts go to stderr so stdout stays parseable JSON.
        let mut by_rule: std::collections::BTreeMap<&str, usize> = Default::default();
        for f in &fresh {
            *by_rule.entry(f.rule.as_str()).or_default() += 1;
        }
        eprintln!(
            "qrec-lint: {} file(s), {} new finding(s), {} baselined",
            ws.files.len(),
            fresh.len(),
            tolerated.len()
        );
        for (rule, n) in &by_rule {
            eprintln!("  {rule}: {n}");
        }
    } else {
        for f in &fresh {
            println!("{}\n", f.render());
        }
        println!(
            "qrec-lint: checked {} files: {} new violation(s), {} baselined",
            ws.files.len(),
            fresh.len(),
            tolerated.len()
        );
        if !fresh.is_empty() {
            println!(
                "fix the code, add `// qrec-lint: allow(<rule>) -- <reason>`, or \
                 regenerate the baseline with --write-baseline"
            );
        }
    }
    if !stale.is_empty() {
        eprintln!(
            "qrec-lint: baseline is stale — {} entr{} without a matching finding:",
            stale.len(),
            if stale.len() == 1 { "y" } else { "ies" }
        );
        for (rule, file, line) in &stale {
            eprintln!("  {rule} at {file}:{line}");
        }
        eprintln!("prune them (or regenerate with --write-baseline)");
        return ExitCode::FAILURE;
    }
    if fresh.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
