//! The checked-in violation baseline (`lint-baseline.toml`).
//!
//! The gate is a ratchet: a finding listed in the baseline is tolerated
//! (it predates the rule), anything new fails CI. The file is a small
//! TOML subset — `[[violation]]` tables with `rule` / `file` / `line`
//! keys — parsed by hand because the build is offline and a TOML crate
//! would be another shim to maintain for three keys.

use crate::diag::Finding;
use std::collections::HashSet;
use std::fmt;

/// The set of tolerated (pre-existing) violations.
#[derive(Debug, Default)]
pub struct Baseline {
    entries: HashSet<(String, String, u32)>,
}

/// A syntax problem in the baseline file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineError {
    /// 1-based line in the baseline file.
    pub line: usize,
    /// What was wrong.
    pub message: String,
}

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "baseline line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for BaselineError {}

impl Baseline {
    /// Parse the TOML-subset text of a baseline file.
    pub fn parse(text: &str) -> Result<Baseline, BaselineError> {
        let mut entries = HashSet::new();
        let mut current: Option<(Option<String>, Option<String>, Option<u32>)> = None;
        let mut open_line = 0usize;
        let mut flush = |cur: Option<(Option<String>, Option<String>, Option<u32>)>,
                         at: usize|
         -> Result<(), BaselineError> {
            if let Some(entry) = cur {
                match entry {
                    (Some(rule), Some(file), Some(line)) => {
                        entries.insert((rule, file, line));
                        Ok(())
                    }
                    _ => Err(BaselineError {
                        line: at,
                        message: "incomplete [[violation]]: needs rule, file, and line".into(),
                    }),
                }
            } else {
                Ok(())
            }
        };
        for (idx, raw) in text.lines().enumerate() {
            let line_no = idx + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line == "[[violation]]" {
                flush(current.take(), open_line)?;
                current = Some((None, None, None));
                open_line = line_no;
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(BaselineError {
                    line: line_no,
                    message: format!("expected `key = value`, got {line:?}"),
                });
            };
            let Some(entry) = current.as_mut() else {
                return Err(BaselineError {
                    line: line_no,
                    message: "key outside a [[violation]] table".into(),
                });
            };
            let key = key.trim();
            let value = value.trim();
            match key {
                "rule" => entry.0 = Some(unquote(value, line_no)?),
                "file" => entry.1 = Some(unquote(value, line_no)?),
                "line" => {
                    entry.2 = Some(value.parse::<u32>().map_err(|_| BaselineError {
                        line: line_no,
                        message: format!("line must be an integer, got {value:?}"),
                    })?);
                }
                other => {
                    return Err(BaselineError {
                        line: line_no,
                        message: format!("unknown key {other:?}"),
                    });
                }
            }
        }
        flush(current.take(), open_line)?;
        Ok(Baseline { entries })
    }

    /// Serialise findings as a fresh baseline file.
    pub fn render(findings: &[Finding]) -> String {
        let mut out = String::from(
            "# qrec-lint baseline: violations tolerated because they predate a rule.\n\
             # The CI gate fails only on findings NOT listed here (\"no new violations\").\n\
             # Regenerate with: cargo run -p qrec-lint -- --write-baseline\n",
        );
        for f in findings {
            out.push_str(&format!(
                "\n[[violation]]\nrule = \"{}\"\nfile = \"{}\"\nline = {}\n",
                f.rule, f.file, f.line
            ));
        }
        out
    }

    /// Is this finding tolerated by the baseline?
    pub fn contains(&self, finding: &Finding) -> bool {
        self.entries.contains(&finding.key())
    }

    /// Baseline entries no current finding matches, sorted. A stale
    /// entry means the violation was fixed (or the file moved) but the
    /// tolerance was left behind — dead weight that could mask a
    /// future regression at the same spot.
    pub fn stale(&self, findings: &[Finding]) -> Vec<(String, String, u32)> {
        let live: HashSet<_> = findings.iter().map(Finding::key).collect();
        let mut dead: Vec<_> = self.entries.difference(&live).cloned().collect();
        dead.sort();
        dead
    }

    /// Number of baselined entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the baseline tolerates nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

fn unquote(value: &str, line_no: usize) -> Result<String, BaselineError> {
    value
        .strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .map(str::to_string)
        .ok_or_else(|| BaselineError {
            line: line_no,
            message: format!("expected a quoted string, got {value}"),
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(rule: &str, file: &str, line: u32) -> Finding {
        Finding {
            rule: rule.into(),
            file: file.into(),
            line,
            message: String::new(),
        }
    }

    #[test]
    fn round_trips() {
        let findings = vec![
            f("no-panic-in-hot-path", "crates/serve/src/batcher.rs", 10),
            f("no-stdout-in-lib", "crates/bench/src/lib.rs", 99),
        ];
        let text = Baseline::render(&findings);
        let baseline = Baseline::parse(&text).unwrap();
        assert_eq!(baseline.len(), 2);
        assert!(baseline.contains(&findings[0]));
        assert!(baseline.contains(&findings[1]));
        assert!(!baseline.contains(&f("no-panic-in-hot-path", "other.rs", 10)));
    }

    #[test]
    fn empty_and_comment_only_files_parse() {
        assert!(Baseline::parse("").unwrap().is_empty());
        assert!(Baseline::parse("# nothing here\n\n").unwrap().is_empty());
    }

    #[test]
    fn malformed_baselines_are_rejected() {
        assert!(Baseline::parse("rule = \"x\"").is_err()); // key outside table
        assert!(Baseline::parse("[[violation]]\nrule = \"x\"").is_err()); // incomplete
        assert!(Baseline::parse("[[violation]]\nwat = 1").is_err()); // unknown key
        assert!(
            Baseline::parse("[[violation]]\nrule = \"r\"\nfile = \"f\"\nline = \"ten\"").is_err()
        );
    }

    #[test]
    fn different_line_is_a_new_violation() {
        let base = Baseline::parse(&Baseline::render(&[f("r", "a.rs", 5)])).unwrap();
        assert!(base.contains(&f("r", "a.rs", 5)));
        assert!(!base.contains(&f("r", "a.rs", 6)));
    }
}
