//! The ten project rules and the engine that runs them.
//!
//! | id                    | invariant it protects                              |
//! |-----------------------|----------------------------------------------------|
//! | `no-panic-in-hot-path`| serving/library code must not be able to panic      |
//! | `no-lock-across-call` | lock guards never live across decode/train calls   |
//! | `no-stdout-in-lib`    | library code never writes to stdio directly        |
//! | `error-type-hygiene`  | every public error enum is a real `Error`          |
//! | `safety-comments`     | every `unsafe` block carries a `// SAFETY:` note   |
//! | `shim-surface-drift`  | parking_lot crates never regress to `std::sync`    |
//! | `no-alloc-in-metric-path` | metric recording never allocates per call      |
//! | `lock-order-inversion` | no two locks are ever taken in both orders        |
//! | `atomics-ordering-hygiene` | relaxed atomics never publish data            |
//! | `blocking-call-in-hot-path` | decode/recommend paths never block on I/O    |
//!
//! R1–R7 are per-file token scans. R8–R10 are *workspace* passes built
//! on the analysis IR (`ast` → `callgraph` / `lockgraph`): they see
//! `a.lock(); helper()` where `helper` locks `b` as an `a → b` edge,
//! which no single-file rule can.

use crate::ast::{parse_fns, FnItem};
use crate::callgraph::CallGraph;
use crate::diag::Finding;
use crate::file::{FileClass, FileContext, SourceFile};
use crate::lexer::Tok;
use crate::lockgraph::{lock_facts, receiver_field_idx, FnLockFacts};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

/// Every rule id, in R1..R10 order.
pub const RULES: [&str; 10] = [
    "no-panic-in-hot-path",
    "no-lock-across-call",
    "no-stdout-in-lib",
    "error-type-hygiene",
    "safety-comments",
    "shim-surface-drift",
    "no-alloc-in-metric-path",
    "lock-order-inversion",
    "atomics-ordering-hygiene",
    "blocking-call-in-hot-path",
];

/// Directive shorthands: `allow(atomics)` reads better in an annotated
/// `fetch_add` forest than the full rule id.
pub const RULE_ALIASES: [(&str, &str); 3] = [
    ("atomics", "atomics-ordering-hygiene"),
    ("lock-order", "lock-order-inversion"),
    ("blocking", "blocking-call-in-hot-path"),
];

/// Resolve a rule name or alias to its canonical rule id.
pub fn resolve_rule(name: &str) -> Option<&'static str> {
    if let Some(&canonical) = RULES.iter().find(|&&r| r == name) {
        return Some(canonical);
    }
    RULE_ALIASES
        .iter()
        .find(|(alias, _)| *alias == name)
        .map(|(_, canonical)| *canonical)
}

/// Which crates each cross-cutting rule applies to.
#[derive(Debug, Clone)]
pub struct Config {
    /// Crates whose library code must be panic-free (R1).
    pub hot_path_crates: Vec<String>,
    /// Crates checked for lock-guards held across decode calls (R2).
    pub lock_call_crates: Vec<String>,
    /// Crates standardized on `parking_lot` (R6): `std::sync` locks are
    /// surface drift there.
    pub parking_lot_crates: Vec<String>,
    /// Direct path dependencies per crate, from the manifests. Feeds
    /// the call graph's dependency-direction filter (R8/R10); an empty
    /// map disables it.
    pub crate_deps: HashMap<String, Vec<String>>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            hot_path_crates: [
                "serve", "core", "nn", "sql", "tensor", "obs", "store", "polling",
            ]
            .map(String::from)
            .to_vec(),
            lock_call_crates: vec!["serve".to_string(), "store".to_string()],
            parking_lot_crates: vec!["serve".to_string()],
            crate_deps: HashMap::new(),
        }
    }
}

/// Run every rule over `files`, returning unsuppressed findings sorted
/// by (file, line, rule). Inline-allowed findings are dropped;
/// malformed allow directives are themselves findings.
pub fn analyze(files: &[SourceFile], cfg: &Config) -> Vec<Finding> {
    // Lex and annotate everything up front: the workspace passes
    // (R8–R10) need every file's IR before any verdict.
    let ctxs: Vec<FileContext<'_>> = files.iter().map(FileContext::new).collect();
    let mut findings = Vec::new();
    // Crate-level state for R4: enums and trait impls seen per crate.
    // An enum in `error.rs` is satisfied by impls in any sibling file,
    // so verdicts wait until the whole crate has been scanned.
    let mut error_enums: Vec<ErrorEnum> = Vec::new();
    let mut impls: HashMap<String, HashSet<(String, String)>> = HashMap::new();
    // Analysis IR for the workspace passes: non-test `fn` items of
    // every non-shim library file.
    let mut ir: Vec<(&FileContext<'_>, Vec<FnItem>)> = Vec::new();

    for ctx in &ctxs {
        let file = ctx.file;
        findings.extend(ctx.malformed.iter().cloned());

        let mut raw = Vec::new();
        if applies_r1(file, cfg) {
            no_panic_in_hot_path(ctx, &mut raw);
        }
        if applies_r2(file, cfg) {
            no_lock_across_call(ctx, &mut raw);
        }
        if applies_r3(file) {
            no_stdout_in_lib(ctx, &mut raw);
        }
        if applies_r4(file) {
            collect_error_types(ctx, &mut error_enums, &mut impls);
        }
        safety_comments(ctx, &mut raw); // R5: every file, every class
        if applies_r6(file, cfg) {
            shim_surface_drift(ctx, &mut raw);
        }
        if applies_r7(file, cfg) {
            no_alloc_in_metric_path(ctx, &mut raw);
        }
        if applies_r9(file, cfg) {
            atomics_ordering_local(ctx, &mut raw);
        }
        findings.extend(raw);

        if file.class == FileClass::Library && !file.crate_name.starts_with("shim:") {
            let mut items = parse_fns(&ctx.lexed);
            items.retain(|it| !ctx.in_test(it.fn_idx));
            ir.push((ctx, items));
        }
    }

    for e in error_enums {
        let have = impls.get(&e.crate_name);
        let has = |trait_name: &str| {
            have.is_some_and(|set| set.contains(&(trait_name.to_string(), e.type_name.clone())))
        };
        if !(has("Display") && has("Error")) {
            findings.push(e.finding);
        }
    }

    // Workspace passes over the IR.
    lock_order_inversion(&ir, cfg, &mut findings);
    atomics_ordering_pairing(&ctxs, cfg, &mut findings);
    blocking_call_in_hot_path(&ir, cfg, &mut findings);

    // Inline-allow filtering, last: a workspace-pass finding is
    // attributed to a source line in some file, and that file's
    // directives decide whether it is waived.
    let ctx_by_path: HashMap<&str, &FileContext<'_>> =
        ctxs.iter().map(|c| (c.file.path.as_str(), c)).collect();
    findings.retain(|f| {
        f.rule == "malformed-allow"
            || ctx_by_path
                .get(f.file.as_str())
                .is_none_or(|c| !c.allowed(&f.rule, f.line))
    });

    findings.sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
    findings.dedup();
    findings
}

fn applies_r1(file: &SourceFile, cfg: &Config) -> bool {
    file.class == FileClass::Library && cfg.hot_path_crates.contains(&file.crate_name)
}

fn applies_r2(file: &SourceFile, cfg: &Config) -> bool {
    file.class == FileClass::Library && cfg.lock_call_crates.contains(&file.crate_name)
}

fn applies_r3(file: &SourceFile) -> bool {
    file.class == FileClass::Library
}

fn applies_r4(file: &SourceFile) -> bool {
    matches!(file.class, FileClass::Library) && !file.crate_name.starts_with("shim:")
}

fn applies_r6(file: &SourceFile, cfg: &Config) -> bool {
    matches!(file.class, FileClass::Library | FileClass::Binary)
        && cfg.parking_lot_crates.contains(&file.crate_name)
}

fn applies_r7(file: &SourceFile, cfg: &Config) -> bool {
    file.class == FileClass::Library
        && (file.crate_name == "obs" || cfg.hot_path_crates.contains(&file.crate_name))
}

fn applies_r9(file: &SourceFile, cfg: &Config) -> bool {
    file.class == FileClass::Library && cfg.hot_path_crates.contains(&file.crate_name)
}

fn finding(ctx: &FileContext<'_>, rule: &str, line: u32, message: String) -> Finding {
    Finding {
        rule: rule.into(),
        file: ctx.file.path.clone(),
        line,
        message,
    }
}

// ---------------------------------------------------------------------
// R1: no-panic-in-hot-path
// ---------------------------------------------------------------------

/// Flags `.unwrap()`, `.expect("…")`, `panic!`, `unreachable!`, `todo!`,
/// `unimplemented!`, and indexing by an integer literal (`xs[0]`) in
/// non-test library code of hot-path crates.
///
/// `.expect(` is only flagged when the first argument is a string
/// literal: without type information that is the signature of
/// `Option::expect` / `Result::expect`, and it keeps user-defined
/// `expect(Token)`-style parser methods (which return `Result`) out of
/// the findings.
fn no_panic_in_hot_path(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    const RULE: &str = "no-panic-in-hot-path";
    let toks = &ctx.lexed.tokens;
    for (i, tok) in toks.iter().enumerate() {
        if ctx.in_test(i) {
            continue;
        }
        match &tok.kind {
            Tok::Ident(name) if name == "unwrap" || name == "expect" => {
                let after_dot = i > 0 && toks[i - 1].kind.is_punct(b'.');
                let called = toks.get(i + 1).is_some_and(|t| t.kind.is_punct(b'('));
                let panicky_arg = if name == "unwrap" {
                    toks.get(i + 2).is_some_and(|t| t.kind.is_punct(b')'))
                } else {
                    matches!(toks.get(i + 2).map(|t| &t.kind), Some(Tok::Str))
                };
                if after_dot && called && panicky_arg {
                    out.push(finding(
                        ctx,
                        RULE,
                        tok.line,
                        format!(
                            "`.{name}()` can panic in hot-path library code; \
                             return a typed error instead"
                        ),
                    ));
                }
            }
            Tok::Ident(name)
                if matches!(
                    name.as_str(),
                    "panic" | "unreachable" | "todo" | "unimplemented"
                ) =>
            {
                let bang = toks.get(i + 1).is_some_and(|t| t.kind.is_punct(b'!'));
                if bang {
                    out.push(finding(
                        ctx,
                        RULE,
                        tok.line,
                        format!("`{name}!` aborts the worker thread; return a typed error instead"),
                    ));
                }
            }
            Tok::Punct(b'[') => {
                // `expr[3]`: previous token ends an expression and the
                // bracket group is exactly one integer literal.
                let indexable = i > 0
                    && matches!(
                        &toks[i - 1].kind,
                        Tok::Ident(_) | Tok::Punct(b')') | Tok::Punct(b']')
                    );
                let literal_index = matches!(toks.get(i + 1).map(|t| &t.kind), Some(Tok::Number))
                    && toks.get(i + 2).is_some_and(|t| t.kind.is_punct(b']'));
                if indexable && literal_index {
                    out.push(finding(
                        ctx,
                        RULE,
                        tok.line,
                        "indexing by integer literal can panic; use `.get(_)` or a \
                         destructuring pattern"
                            .into(),
                    ));
                }
            }
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------
// R2: no-lock-across-call
// ---------------------------------------------------------------------

/// Flags a lock-guard binding (`let g = x.read()/.write()/.lock()`)
/// that is still live when a `decode*` / `train*` / `recommend*` call
/// happens. Liveness ends at the guard's enclosing block, at
/// `drop(guard)`, or at an explicit rebinding.
fn no_lock_across_call(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    const RULE: &str = "no-lock-across-call";
    let toks = &ctx.lexed.tokens;
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth = 0usize;
    let mut i = 0;
    while i < toks.len() {
        match &toks[i].kind {
            Tok::Punct(b'{') => depth += 1,
            Tok::Punct(b'}') => {
                depth = depth.saturating_sub(1);
                guards.retain(|g| g.depth <= depth);
            }
            Tok::Ident(kw) if kw == "let" && !ctx.in_test(i) => {
                if let Some(guard) = lock_binding(toks, i, depth) {
                    guards.push(guard);
                }
            }
            // `drop(g)` ends g's liveness.
            Tok::Ident(name)
                if name == "drop"
                    && toks.get(i + 1).is_some_and(|t| t.kind.is_punct(b'('))
                    && toks.get(i + 3).is_some_and(|t| t.kind.is_punct(b')')) =>
            {
                if let Some(Tok::Ident(dropped)) = toks.get(i + 2).map(|t| &t.kind) {
                    guards.retain(|g| &g.name != dropped);
                }
            }
            Tok::Ident(name)
                if !ctx.in_test(i)
                    && (name.starts_with("decode")
                        || name.starts_with("train")
                        || name.starts_with("recommend"))
                    && toks.get(i + 1).is_some_and(|t| t.kind.is_punct(b'(')) =>
            {
                if let Some(g) = guards.last() {
                    out.push(finding(
                        ctx,
                        RULE,
                        toks[i].line,
                        format!(
                            "`{name}(…)` runs while lock guard `{}` (taken on line {}) is \
                             still held; drop the guard or scope it before decoding",
                            g.name, g.line
                        ),
                    ));
                }
            }
            _ => {}
        }
        i += 1;
    }
}

/// A live lock-guard binding being tracked by R2.
struct Guard {
    name: String,
    depth: usize,
    line: u32,
}

/// If tokens at `let_idx` start a statement of the shape
/// `let [mut] NAME … = …<.read()|.write()|.lock()>… ;`, return its guard.
///
/// The lock call must sit at the expression's top bracket level: in
/// `let t = { let g = m.read(); g.len() };` the guard is scoped to the
/// inner block and `t` is a plain value, not a guard.
fn lock_binding(toks: &[crate::lexer::Token], let_idx: usize, depth: usize) -> Option<Guard> {
    let mut j = let_idx + 1;
    if toks.get(j)?.kind.ident() == Some("mut") {
        j += 1;
    }
    let name = toks.get(j)?.kind.ident()?.to_string();
    if name == "_" {
        return None; // bound to `_`: dropped immediately
    }
    // Scan to the terminating `;` at bracket depth zero, looking for a
    // top-level `.read()` / `.write()` / `.lock()` call.
    let mut rel_depth = 0isize;
    let mut takes_lock = false;
    let mut k = j + 1;
    while let Some(tok) = toks.get(k) {
        match &tok.kind {
            Tok::Punct(b'(' | b'[' | b'{') => rel_depth += 1,
            Tok::Punct(b')' | b']' | b'}') => rel_depth -= 1,
            Tok::Punct(b';') if rel_depth <= 0 => break,
            Tok::Ident(m) if rel_depth == 0 && matches!(m.as_str(), "read" | "write" | "lock") => {
                let after_dot = toks[k - 1].kind.is_punct(b'.');
                let called = toks.get(k + 1).is_some_and(|t| t.kind.is_punct(b'('));
                if after_dot && called {
                    takes_lock = true;
                }
            }
            _ => {}
        }
        k += 1;
    }
    takes_lock.then(|| Guard {
        name,
        depth,
        line: toks[let_idx].line,
    })
}

// ---------------------------------------------------------------------
// R3: no-stdout-in-lib
// ---------------------------------------------------------------------

/// Flags `println!` / `eprintln!` / `print!` / `eprint!` in non-test
/// library code. Binaries, benches, examples, and tests may use stdio.
fn no_stdout_in_lib(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    const RULE: &str = "no-stdout-in-lib";
    let toks = &ctx.lexed.tokens;
    for (i, tok) in toks.iter().enumerate() {
        if ctx.in_test(i) {
            continue;
        }
        let Tok::Ident(name) = &tok.kind else {
            continue;
        };
        if !matches!(name.as_str(), "println" | "eprintln" | "print" | "eprint") {
            continue;
        }
        if toks.get(i + 1).is_some_and(|t| t.kind.is_punct(b'!')) {
            out.push(finding(
                ctx,
                RULE,
                tok.line,
                format!("`{name}!` in library code; route output through a `Reporter` instead"),
            ));
        }
    }
}

// ---------------------------------------------------------------------
// R4: error-type-hygiene
// ---------------------------------------------------------------------

/// A `pub enum *Error` declaration pending its crate-wide R4 verdict.
struct ErrorEnum {
    crate_name: String,
    type_name: String,
    finding: Finding,
}

/// First pass of R4: record `pub enum *Error` declarations (as pending
/// findings) and every `impl <Trait> for <Type>` in the crate.
fn collect_error_types(
    ctx: &FileContext<'_>,
    enums: &mut Vec<ErrorEnum>,
    impls: &mut HashMap<String, HashSet<(String, String)>>,
) {
    let toks = &ctx.lexed.tokens;
    for i in 0..toks.len() {
        if ctx.in_test(i) {
            continue;
        }
        // `pub enum XError`
        if toks[i].kind.ident() == Some("pub")
            && toks
                .get(i + 1)
                .is_some_and(|t| t.kind.ident() == Some("enum"))
        {
            if let Some(name) = toks.get(i + 2).and_then(|t| t.kind.ident()) {
                if name.ends_with("Error") && !ctx.allowed("error-type-hygiene", toks[i].line) {
                    enums.push(ErrorEnum {
                        crate_name: ctx.file.crate_name.clone(),
                        type_name: name.to_string(),
                        finding: finding(
                            ctx,
                            "error-type-hygiene",
                            toks[i].line,
                            format!(
                                "`{name}` is a public error enum but does not implement both \
                                 `Display` and `std::error::Error`"
                            ),
                        ),
                    });
                }
            }
        }
        // `impl [<…>] path::Trait for Type`
        if toks[i].kind.ident() == Some("impl") {
            if let Some((trait_seg, ty)) = parse_impl(toks, i) {
                impls
                    .entry(ctx.file.crate_name.clone())
                    .or_default()
                    .insert((trait_seg, ty));
            }
        }
    }
}

/// Parse `impl [<generics>] a::b::Trait for Type`, returning the
/// trait's final path segment and the type name.
fn parse_impl(toks: &[crate::lexer::Token], impl_idx: usize) -> Option<(String, String)> {
    let mut j = impl_idx + 1;
    // Skip `<…>` generics (angle brackets are Punct('<') / Punct('>')).
    if toks.get(j)?.kind.is_punct(b'<') {
        let mut depth = 0isize;
        while let Some(t) = toks.get(j) {
            if t.kind.is_punct(b'<') {
                depth += 1;
            } else if t.kind.is_punct(b'>') {
                depth -= 1;
                if depth == 0 {
                    j += 1;
                    break;
                }
            }
            j += 1;
        }
    }
    // Collect path segments up to `for`; bail at `{` (inherent impl).
    let mut last_seg: Option<String> = None;
    loop {
        let tok = toks.get(j)?;
        match &tok.kind {
            Tok::Ident(seg) if seg == "for" => break,
            Tok::Ident(seg) => last_seg = Some(seg.clone()),
            Tok::Punct(b':') => {}
            Tok::Punct(b'<') => {
                // Trait generics, e.g. `From<io::Error>`: skip the group.
                let mut depth = 0isize;
                while let Some(t) = toks.get(j) {
                    if t.kind.is_punct(b'<') {
                        depth += 1;
                    } else if t.kind.is_punct(b'>') {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    j += 1;
                }
            }
            Tok::Punct(b'{') | Tok::Punct(b';') => return None,
            _ => return None,
        }
        j += 1;
    }
    let ty = toks.get(j + 1)?.kind.ident()?.to_string();
    Some((last_seg?, ty))
}

// ---------------------------------------------------------------------
// R5: safety-comments
// ---------------------------------------------------------------------

/// Every `unsafe {` block must be preceded (within two lines) by a
/// comment containing `SAFETY:` explaining why it is sound.
fn safety_comments(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    const RULE: &str = "safety-comments";
    let toks = &ctx.lexed.tokens;
    for (i, tok) in toks.iter().enumerate() {
        if tok.kind.ident() != Some("unsafe") {
            continue;
        }
        if !toks.get(i + 1).is_some_and(|t| t.kind.is_punct(b'{')) {
            continue; // `unsafe fn` / `unsafe impl`: signature, not a block
        }
        let line = tok.line;
        let documented =
            ctx.lexed.comments.iter().any(|c| {
                c.text.contains("SAFETY:") && c.end_line < line + 1 && c.end_line + 2 >= line
            });
        if !documented {
            out.push(finding(
                ctx,
                RULE,
                line,
                "`unsafe` block without a preceding `// SAFETY:` comment".into(),
            ));
        }
    }
}

// ---------------------------------------------------------------------
// R6: shim-surface-drift
// ---------------------------------------------------------------------

/// In crates standardized on `parking_lot`, flags `std::sync::Mutex` /
/// `std::sync::RwLock` paths (including `use std::sync::{Mutex, …}`
/// groups): mixing lock vocabularies reintroduces poisoning semantics
/// the crate was designed away from.
fn shim_surface_drift(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    const RULE: &str = "shim-surface-drift";
    let toks = &ctx.lexed.tokens;
    let mut i = 0;
    while i + 4 < toks.len() {
        let is_std_sync = toks[i].kind.ident() == Some("std")
            && toks[i + 1].kind.is_punct(b':')
            && toks[i + 2].kind.is_punct(b':')
            && toks[i + 3].kind.ident() == Some("sync");
        if !is_std_sync || ctx.in_test(i) {
            i += 1;
            continue;
        }
        let line = toks[i].line;
        // `std::sync::Mutex` or `std::sync::{…, Mutex, …}`.
        let mut j = i + 4;
        if toks.get(j).is_some_and(|t| t.kind.is_punct(b':'))
            && toks.get(j + 1).is_some_and(|t| t.kind.is_punct(b':'))
        {
            j += 2;
        }
        let mut flagged = Vec::new();
        match toks.get(j).map(|t| &t.kind) {
            Some(Tok::Ident(name)) if name == "Mutex" || name == "RwLock" => {
                flagged.push(name.clone());
            }
            Some(Tok::Punct(b'{')) => {
                let mut k = j + 1;
                let mut depth = 1usize;
                while let Some(t) = toks.get(k) {
                    match &t.kind {
                        Tok::Punct(b'{') => depth += 1,
                        Tok::Punct(b'}') => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        Tok::Ident(name) if name == "Mutex" || name == "RwLock" => {
                            flagged.push(name.clone());
                        }
                        _ => {}
                    }
                    k += 1;
                }
            }
            _ => {}
        }
        for name in flagged {
            out.push(finding(
                ctx,
                RULE,
                line,
                format!(
                    "`std::sync::{name}` in a crate standardized on `parking_lot`; \
                     use the workspace `parking_lot` alias"
                ),
            ));
        }
        i = j + 1;
    }
}

// ---------------------------------------------------------------------
// R7: no-alloc-in-metric-path
// ---------------------------------------------------------------------

/// Is `name` a metric recording entry point whose body must stay
/// allocation-free? These are the functions on the single-fetch-add hot
/// path of `qrec-obs`: counters, gauges, histograms, and span entry.
fn is_metric_fn(name: &str) -> bool {
    name.starts_with("record")
        || name.starts_with("enter")
        || name.starts_with("observe")
        || matches!(name, "inc" | "add" | "set")
}

/// Flags per-call allocation (`format!`, `vec!`, `String::…`,
/// `Vec::new`, `Box::new`, `.to_string()`, `.to_owned()`) in metric
/// recording paths:
///
/// - in the `obs` crate, inside the body of any recording function
///   ([`is_metric_fn`]);
/// - in every hot-path crate, inside the argument list of a
///   `Span::in_span` / `Span::in_span_with` call — those closures run
///   under span timing, so an allocation there is both measured as
///   stage time and repeated per request.
///
/// `Vec::with_capacity` is deliberately allowed: registration-time
/// pre-sizing is the pattern the rule exists to protect.
fn no_alloc_in_metric_path(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    const RULE: &str = "no-alloc-in-metric-path";
    let toks = &ctx.lexed.tokens;

    if ctx.file.crate_name == "obs" {
        let mut i = 0;
        while i < toks.len() {
            let is_fn = toks[i].kind.ident() == Some("fn") && !ctx.in_test(i);
            let name = toks.get(i + 1).and_then(|t| t.kind.ident());
            if let (true, Some(name)) = (is_fn, name) {
                if is_metric_fn(name) {
                    if let Some((start, end)) = fn_body(toks, i + 2) {
                        scan_alloc(ctx, RULE, start, end, &format!("fn `{name}`"), out);
                        i = end;
                        continue;
                    }
                }
            }
            i += 1;
        }
    }

    let mut i = 0;
    while i < toks.len() {
        let spanish = matches!(toks[i].kind.ident(), Some("in_span" | "in_span_with"));
        let called = toks.get(i + 1).is_some_and(|t| t.kind.is_punct(b'('));
        if spanish && called && !ctx.in_test(i) {
            if let Some(end) = match_group(toks, i + 1, b'(', b')') {
                let name = toks[i].kind.ident().unwrap_or("in_span");
                scan_alloc(ctx, RULE, i + 2, end, &format!("`{name}` closure"), out);
                i = end;
                continue;
            }
        }
        i += 1;
    }
}

/// Locate a function body starting at or after `from`: the first `{`
/// (nothing in a signature opens a brace before the body) through its
/// matching `}`. Returns the token range strictly inside the braces.
fn fn_body(toks: &[crate::lexer::Token], from: usize) -> Option<(usize, usize)> {
    let open = (from..toks.len()).find(|&i| toks[i].kind.is_punct(b'{'))?;
    let close = match_group(toks, open, b'{', b'}')?;
    Some((open + 1, close))
}

/// Index of the punct closing the group opened at `open_idx`.
fn match_group(
    toks: &[crate::lexer::Token],
    open_idx: usize,
    open: u8,
    close: u8,
) -> Option<usize> {
    let mut depth = 0usize;
    for (i, tok) in toks.iter().enumerate().skip(open_idx) {
        if tok.kind.is_punct(open) {
            depth += 1;
        } else if tok.kind.is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

/// Scan `toks[start..end]` for allocating constructs, reporting each as
/// an R7 finding located in `place`.
fn scan_alloc(
    ctx: &FileContext<'_>,
    rule: &str,
    start: usize,
    end: usize,
    place: &str,
    out: &mut Vec<Finding>,
) {
    let toks = &ctx.lexed.tokens;
    let path_sep = |i: usize| {
        toks.get(i).is_some_and(|t| t.kind.is_punct(b':'))
            && toks.get(i + 1).is_some_and(|t| t.kind.is_punct(b':'))
    };
    for i in start..end.min(toks.len()) {
        let Tok::Ident(name) = &toks[i].kind else {
            continue;
        };
        let bang = toks.get(i + 1).is_some_and(|t| t.kind.is_punct(b'!'));
        let after_dot = i > 0 && toks[i - 1].kind.is_punct(b'.');
        let called = toks.get(i + 1).is_some_and(|t| t.kind.is_punct(b'('));
        let what = match name.as_str() {
            "format" | "vec" if bang => format!("`{name}!`"),
            "String" if path_sep(i + 1) => "`String::…`".to_string(),
            "Vec" | "Box"
                if path_sep(i + 1)
                    && toks
                        .get(i + 3)
                        .is_some_and(|t| t.kind.ident() == Some("new")) =>
            {
                format!("`{name}::new`")
            }
            "to_string" | "to_owned" if after_dot && called => format!("`.{name}()`"),
            _ => continue,
        };
        out.push(finding(
            ctx,
            rule,
            toks[i].line,
            format!(
                "{what} allocates inside the metric recording path ({place}); \
                 pre-register names at startup and keep the record path \
                 allocation-free"
            ),
        ));
    }
}

// ---------------------------------------------------------------------
// R8: lock-order-inversion
// ---------------------------------------------------------------------

/// A recorded acquisition-order edge's provenance.
#[derive(Debug, Clone)]
struct EdgeWitness {
    file: String,
    line: u32,
    desc: String,
}

/// Detects lock-order inversions across the whole workspace: builds the
/// acquisition-order graph (lock A held while lock B is acquired ⇒ edge
/// A → B), propagates acquisitions through the call graph (`a.lock();
/// helper()` where `helper` locks `b` is an `a → b` edge too), and
/// reports every cycle once, anchored at one witness edge with the
/// counter-witness named in the message.
fn lock_order_inversion(
    ir: &[(&FileContext<'_>, Vec<FnItem>)],
    cfg: &Config,
    out: &mut Vec<Finding>,
) {
    const RULE: &str = "lock-order-inversion";

    // Per-function lock facts, keyed by call-graph node name.
    let mut all_facts: Vec<(&FileContext<'_>, String, FnLockFacts)> = Vec::new();
    let mut locks_of: HashMap<String, BTreeSet<String>> = HashMap::new();
    for (ctx, items) in ir {
        for item in items {
            let node = format!("{}:{}", ctx.file.crate_name, item.qual_name());
            let facts = lock_facts(ctx, item);
            for acq in &facts.acquires {
                locks_of
                    .entry(node.clone())
                    .or_default()
                    .insert(acq.lock.clone());
            }
            all_facts.push((ctx, node, facts));
        }
    }
    let graph_input: Vec<(&FileContext<'_>, &[FnItem])> = ir
        .iter()
        .map(|(ctx, items)| (*ctx, items.as_slice()))
        .collect();
    let cg = CallGraph::build(&graph_input, &cfg.crate_deps);

    // Transitive lock sets, memoised per (caller crate, simple callee
    // name): lock facts record call sites by simple name, and the
    // caller's crate gates which nodes the name can resolve to.
    let mut trans_cache: HashMap<(String, String), BTreeSet<String>> = HashMap::new();
    let mut trans = |caller_crate: &str, name: &str| -> BTreeSet<String> {
        let key = (caller_crate.to_string(), name.to_string());
        if let Some(hit) = trans_cache.get(&key) {
            return hit.clone();
        }
        let mut set = BTreeSet::new();
        for node in cg.candidates(caller_crate, name) {
            for f in cg.reachable(&node) {
                if let Some(locks) = locks_of.get(&f) {
                    set.extend(locks.iter().cloned());
                }
            }
        }
        trans_cache.insert(key, set.clone());
        set
    };

    // The order graph: from-lock → to-lock → first witness.
    let mut edges: BTreeMap<String, BTreeMap<String, EdgeWitness>> = BTreeMap::new();
    let add_edge = |edges: &mut BTreeMap<String, BTreeMap<String, EdgeWitness>>,
                    from: &str,
                    to: &str,
                    w: EdgeWitness| {
        edges
            .entry(from.to_string())
            .or_default()
            .entry(to.to_string())
            .or_insert(w);
    };

    for (ctx, fn_name, facts) in &all_facts {
        for e in &facts.edges {
            add_edge(
                &mut edges,
                &e.from,
                &e.to,
                EdgeWitness {
                    file: ctx.file.path.clone(),
                    line: e.line,
                    desc: format!(
                        "`{}` acquired while `{}` is held in `{fn_name}`",
                        e.to, e.from
                    ),
                },
            );
        }
        for c in &facts.calls {
            for to in trans(&ctx.file.crate_name, &c.callee) {
                for from in &c.held {
                    if *from != to {
                        add_edge(
                            &mut edges,
                            from,
                            &to,
                            EdgeWitness {
                                file: ctx.file.path.clone(),
                                line: c.line,
                                desc: format!(
                                    "call to `{}` (which can acquire `{to}`) while `{from}` \
                                     is held in `{fn_name}`",
                                    c.callee
                                ),
                            },
                        );
                    }
                }
            }
        }
    }

    // Cycle detection: an edge A → B closes a cycle when B already
    // reaches A. Each cycle (as a node set) is reported once, at its
    // lexicographically-first witness.
    let reaches = |from: &str, to: &str| -> Option<Vec<String>> {
        // BFS over the order graph, returning the path from → … → to.
        let mut parent: HashMap<&str, &str> = HashMap::new();
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(from);
        parent.insert(from, "");
        while let Some(n) = queue.pop_front() {
            if let Some(next) = edges.get(n) {
                for m in next.keys() {
                    if parent.contains_key(m.as_str()) {
                        continue;
                    }
                    parent.insert(m, n);
                    if m == to {
                        let mut path = vec![m.clone()];
                        let mut cur = n;
                        while !cur.is_empty() {
                            path.push(cur.to_string());
                            cur = parent[cur];
                        }
                        path.reverse();
                        return Some(path);
                    }
                    queue.push_back(m);
                }
            }
        }
        None
    };

    let mut reported: HashSet<BTreeSet<String>> = HashSet::new();
    for (a, next) in &edges {
        for (b, w) in next {
            let Some(path) = reaches(b, a) else {
                continue;
            };
            let cycle: BTreeSet<String> =
                path.iter().cloned().chain([a.clone(), b.clone()]).collect();
            if !reported.insert(cycle) {
                continue;
            }
            // The counter-witness: the first edge on the reverse path.
            let counter = path
                .windows(2)
                .next()
                .and_then(|pair| edges.get(&pair[0]).and_then(|n| n.get(&pair[1])));
            let counter_text = counter
                .map(|cw| format!("{} ({}:{})", cw.desc, cw.file, cw.line))
                .unwrap_or_else(|| format!("`{b}` precedes `{a}` elsewhere"));
            out.push(Finding {
                rule: RULE.into(),
                file: w.file.clone(),
                line: w.line,
                message: format!(
                    "lock-order inversion: {}, but the opposite order exists — {}; \
                     two threads taking these locks in both orders deadlock",
                    w.desc, counter_text
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------
// R9: atomics-ordering-hygiene
// ---------------------------------------------------------------------

/// The atomic-access methods whose ordering argument R9 inspects.
/// Writes with `Relaxed` are publication hazards; reads are paired
/// against writes crate-wide by [`atomics_ordering_pairing`].
const ATOMIC_WRITE_OPS: [&str; 5] = [
    "store",
    "swap",
    "compare_exchange",
    "compare_exchange_weak",
    "fetch_update",
];

/// One `Ordering::…` argument with its enclosing atomic call.
struct AtomicSite {
    /// Receiver field / binding name (`epoch`, `stop`, `FORCED`).
    field: String,
    /// Method name (`store`, `load`, `fetch_add`, …).
    op: String,
    /// Ordering name (`Relaxed`, `Acquire`, …).
    ordering: String,
    line: u32,
}

/// Scan one file for `Ordering::X` arguments and resolve the enclosing
/// call's method + receiver.
fn atomic_sites(ctx: &FileContext<'_>) -> Vec<AtomicSite> {
    let toks = &ctx.lexed.tokens;
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if ctx.in_test(i) {
            continue;
        }
        if toks[i].kind.ident() != Some("Ordering")
            || !toks.get(i + 1).is_some_and(|t| t.kind.is_punct(b':'))
            || !toks.get(i + 2).is_some_and(|t| t.kind.is_punct(b':'))
        {
            continue;
        }
        let Some(ordering) = toks.get(i + 3).and_then(|t| t.kind.ident()) else {
            continue;
        };
        // Walk back to the `(` opening the enclosing call.
        let mut depth = 0isize;
        let mut j = i;
        let open = loop {
            if j == 0 {
                break None;
            }
            j -= 1;
            match &toks[j].kind {
                Tok::Punct(b')' | b']' | b'}') => depth += 1,
                Tok::Punct(b'(') if depth == 0 => break Some(j),
                Tok::Punct(b'(' | b'[' | b'{') => depth -= 1,
                _ => {}
            }
        };
        let Some(open) = open else { continue };
        let Some(op) = open
            .checked_sub(1)
            .and_then(|k| toks[k].kind.ident())
            .map(str::to_string)
        else {
            continue;
        };
        let field_idx = receiver_field_idx(toks, open - 1);
        let field = toks
            .get(field_idx)
            .and_then(|t| t.kind.ident())
            .unwrap_or("<expr>")
            .to_string();
        out.push(AtomicSite {
            field,
            op,
            ordering: ordering.to_string(),
            line: toks[i].line,
        });
    }
    out
}

/// Per-file half of R9: a `Relaxed` atomic *write* is a publication
/// hazard — another thread that observes the stored value gets no
/// happens-before edge to anything written before it. Monotonic
/// counters (`fetch_add`/`fetch_sub`) stay legal: their consumers read
/// aggregate statistics, not published state.
fn atomics_ordering_local(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    const RULE: &str = "atomics-ordering-hygiene";
    let mut seen_lines = HashSet::new();
    for site in atomic_sites(ctx) {
        if site.ordering == "Relaxed"
            && ATOMIC_WRITE_OPS.contains(&site.op.as_str())
            && seen_lines.insert(site.line)
        {
            out.push(finding(
                ctx,
                RULE,
                site.line,
                format!(
                    "`{}(…, Ordering::Relaxed)` on `{}` can publish a value without a \
                     happens-before edge; use `Release` paired with an `Acquire` load, \
                     or add `// qrec-lint: allow(atomics) -- <why approximate is safe>`",
                    site.op, site.field
                ),
            ));
        }
    }
}

/// Crate-wide half of R9: a `Release` write whose field is never read
/// with `Acquire`/`AcqRel`/`SeqCst` anywhere in the crate (or an
/// `Acquire` read never paired with a releasing write) synchronises
/// with nothing — the ordering is either dead weight or a missing pair.
fn atomics_ordering_pairing(ctxs: &[FileContext<'_>], cfg: &Config, out: &mut Vec<Finding>) {
    const RULE: &str = "atomics-ordering-hygiene";
    // crate → field → (release sites, acquire sites).
    type Sites = Vec<(String, u32)>; // (file, line)
    let mut rel: HashMap<(String, String), Sites> = HashMap::new();
    let mut acq: HashMap<(String, String), Sites> = HashMap::new();
    for ctx in ctxs {
        if !applies_r9(ctx.file, cfg) {
            continue;
        }
        for site in atomic_sites(ctx) {
            let key = (ctx.file.crate_name.clone(), site.field.clone());
            let at = (ctx.file.path.clone(), site.line);
            match site.ordering.as_str() {
                "Release" => rel.entry(key).or_default().push(at),
                "Acquire" => acq.entry(key).or_default().push(at),
                // AcqRel and SeqCst satisfy both sides of a pair.
                "AcqRel" | "SeqCst" => {
                    rel.entry(key.clone()).or_default();
                    acq.entry(key).or_default();
                }
                _ => {}
            }
        }
    }
    for (key, sites) in &rel {
        if !acq.contains_key(key) {
            for (file, line) in sites {
                out.push(Finding {
                    rule: RULE.into(),
                    file: file.clone(),
                    line: *line,
                    message: format!(
                        "`Release` write to `{}` has no `Acquire` read anywhere in crate \
                         `{}`; the release synchronises with nothing",
                        key.1, key.0
                    ),
                });
            }
        }
    }
    for (key, sites) in &acq {
        if !rel.contains_key(key) {
            for (file, line) in sites {
                out.push(Finding {
                    rule: RULE.into(),
                    file: file.clone(),
                    line: *line,
                    message: format!(
                        "`Acquire` read of `{}` has no `Release` write anywhere in crate \
                         `{}`; the acquire synchronises with nothing",
                        key.1, key.0
                    ),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------
// R10: blocking-call-in-hot-path
// ---------------------------------------------------------------------

/// Calls that park the calling thread on I/O or a timer.
const BLOCKING_CALLS: [&str; 6] = [
    "sync_all",
    "sync_data",
    "fsync",
    "sleep",
    "park",
    "park_timeout",
];

/// Is `name` a hot-path entry point? The decode/recommend families are
/// the request path; `worker_loop` is the batcher's decode worker; the
/// `tick*` family is the serve event loop, where one blocked tick
/// stalls every connection on the process.
fn is_hot_entry(name: &str) -> bool {
    name.starts_with("decode")
        || name.starts_with("recommend")
        || name.starts_with("tick")
        || name == "worker_loop"
}

/// Flags fsync / blocking-I/O / sleep calls reachable from a hot-path
/// entry point through the workspace call graph. The guard rail the
/// event-loop refactor depends on: a blocking syscall anywhere under
/// `decode*` stalls every request sharing the worker.
fn blocking_call_in_hot_path(
    ir: &[(&FileContext<'_>, Vec<FnItem>)],
    cfg: &Config,
    out: &mut Vec<Finding>,
) {
    const RULE: &str = "blocking-call-in-hot-path";
    let graph_input: Vec<(&FileContext<'_>, &[FnItem])> = ir
        .iter()
        .map(|(ctx, items)| (*ctx, items.as_slice()))
        .collect();
    let cg = CallGraph::build(&graph_input, &cfg.crate_deps);

    // Entry points live in hot-path crates; the functions they reach
    // may live anywhere (serve → store crosses a crate boundary).
    let mut entries: Vec<String> = ir
        .iter()
        .filter(|(ctx, _)| cfg.hot_path_crates.contains(&ctx.file.crate_name))
        .flat_map(|(ctx, items)| {
            items
                .iter()
                .filter(|it| is_hot_entry(&it.name))
                .map(|it| format!("{}:{}", ctx.file.crate_name, it.qual_name()))
        })
        .collect();
    entries.sort();
    entries.dedup();

    // Call-graph node name → blocking call sites in its body.
    let mut blocking_sites: HashMap<String, Vec<(String, String, u32)>> = HashMap::new();
    for (ctx, items) in ir {
        for item in items {
            let Some((start, end)) = item.body else {
                continue;
            };
            let toks = &ctx.lexed.tokens;
            for i in start..end.min(toks.len()) {
                if ctx.in_test(i) {
                    continue;
                }
                let Tok::Ident(name) = &toks[i].kind else {
                    continue;
                };
                if BLOCKING_CALLS.contains(&name.as_str())
                    && toks.get(i + 1).is_some_and(|t| t.kind.is_punct(b'('))
                {
                    let node = format!("{}:{}", ctx.file.crate_name, item.qual_name());
                    blocking_sites.entry(node).or_default().push((
                        ctx.file.path.clone(),
                        name.clone(),
                        toks[i].line,
                    ));
                }
            }
        }
    }

    let mut seen: HashSet<(String, u32)> = HashSet::new();
    for entry in &entries {
        for reached in cg.reachable(entry) {
            let Some(sites) = blocking_sites.get(&reached) else {
                continue;
            };
            for (file, call, line) in sites {
                if !seen.insert((file.clone(), *line)) {
                    continue;
                }
                let via = cg
                    .path(entry, &reached)
                    .map(|p| p.join("` → `"))
                    .unwrap_or_else(|| entry.clone());
                out.push(Finding {
                    rule: RULE.into(),
                    file: file.clone(),
                    line: *line,
                    message: format!(
                        "blocking call `{call}` is reachable from hot-path entry \
                         `{entry}` (via `{via}`); it stalls every request sharing the \
                         worker — move it off the decode path or add a reasoned allow"
                    ),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------
// --explain
// ---------------------------------------------------------------------

/// One paragraph of rule documentation plus a minimal violating
/// example, for `qrec-lint --explain <rule>`.
pub fn explain(rule: &str) -> Option<(&'static str, &'static str)> {
    let canonical = resolve_rule(rule)?;
    Some(match canonical {
        "no-panic-in-hot-path" => (
            "Library code of the hot-path crates must not be able to panic: a \
             panic aborts the worker thread that millions of requests share. \
             Flags `.unwrap()`, `.expect(\"…\")`, `panic!`-family macros, and \
             indexing by an integer literal.",
            "fn f(x: Option<u32>) -> u32 { x.unwrap() }",
        ),
        "no-lock-across-call" => (
            "A lock guard held across a `decode*` / `train*` / `recommend*` \
             call serialises the whole batcher. Liveness ends at the guard's \
             enclosing block or an explicit `drop(guard)`.",
            "fn f(s: &S) { let g = s.inner.read(); decode_batch(&g); }",
        ),
        "no-stdout-in-lib" => (
            "Library code never writes to stdio directly; binaries own the \
             terminal. Route output through a `Reporter`.",
            "fn f() { println!(\"progress\"); }",
        ),
        "error-type-hygiene" => (
            "Every `pub enum *Error` implements both `Display` and \
             `std::error::Error`, so callers can `?` it and log it. Impls \
             may live in any sibling file of the crate.",
            "pub enum LoadError { Missing } // no Display / Error impls",
        ),
        "safety-comments" => (
            "Every `unsafe` block carries a `// SAFETY:` comment within the \
             two preceding lines explaining why it is sound.",
            "fn f(p: *const u8) -> u8 { unsafe { *p } }",
        ),
        "shim-surface-drift" => (
            "Crates standardized on `parking_lot` never regress to \
             `std::sync::Mutex` / `RwLock`: mixing lock vocabularies \
             reintroduces poisoning semantics the crate was designed away \
             from.",
            "use std::sync::Mutex; // in a parking_lot crate",
        ),
        "no-alloc-in-metric-path" => (
            "Metric recording is a single fetch-add on the hot path; per-call \
             allocation (`format!`, `.to_string()`, `Vec::new`) turns it into \
             a malloc benchmark. Pre-register names at startup.",
            "pub fn record(v: u64) -> usize { v.to_string().len() }",
        ),
        "lock-order-inversion" => (
            "No two locks may ever be acquired in both orders, anywhere in \
             the workspace: thread 1 holding A waiting for B while thread 2 \
             holds B waiting for A is a deadlock. The analysis propagates \
             acquisitions through the call graph, so `a.lock(); helper()` \
             where `helper` locks `b` counts as `a → b`, and is cross-checked \
             at runtime by the QREC_LOCK_ORDER_CHECK=1 sanitizer in the \
             parking_lot shim.",
            "fn f(&self) { let a = self.alpha.lock(); let b = self.beta.lock(); }\n\
             fn g(&self) { let b = self.beta.lock(); let a = self.alpha.lock(); }",
        ),
        "atomics-ordering-hygiene" => (
            "A `Relaxed` atomic write that publishes a value gives readers no \
             happens-before edge to the data written before it; and a \
             `Release` write (or `Acquire` read) whose field has no matching \
             other half anywhere in the crate synchronises with nothing. \
             Monotonic `fetch_add` counters stay legal; intentionally \
             approximate sites carry `// qrec-lint: allow(atomics) -- <why>`.",
            "pub fn publish(&self, v: u64) { self.ready.store(v, Ordering::Relaxed); }",
        ),
        "blocking-call-in-hot-path" => (
            "fsync, blocking file I/O, and sleeps must not be reachable from \
             `decode*` / `recommend*` / batcher worker paths: one blocked \
             worker stalls every queued request. Reachability is computed \
             over the workspace call graph.",
            "fn recommend(&self) { self.wal.file.sync_data(); }",
        ),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib_file(crate_name: &str, text: &str) -> SourceFile {
        SourceFile {
            path: format!("crates/{crate_name}/src/x.rs"),
            crate_name: crate_name.into(),
            class: FileClass::Library,
            text: text.into(),
        }
    }

    fn rules_hit(files: &[SourceFile]) -> Vec<String> {
        analyze(files, &Config::default())
            .into_iter()
            .map(|f| f.rule)
            .collect()
    }

    #[test]
    fn unwrap_outside_hot_path_crate_is_fine() {
        let f = lib_file("workload", "fn f() { x.unwrap(); }");
        assert!(rules_hit(&[f]).is_empty());
    }

    #[test]
    fn unwrap_in_hot_path_crate_is_flagged() {
        let f = lib_file("serve", "fn f() { x.unwrap(); }");
        assert_eq!(rules_hit(&[f]), vec!["no-panic-in-hot-path"]);
    }

    #[test]
    fn unwrap_or_variants_are_fine() {
        let f = lib_file(
            "serve",
            "fn f() { x.unwrap_or(0); y.unwrap_or_else(id); z.unwrap_or_default(); }",
        );
        assert!(rules_hit(&[f]).is_empty());
    }

    #[test]
    fn binary_class_may_panic_and_print() {
        let f = SourceFile {
            path: "crates/serve/src/bin/main.rs".into(),
            crate_name: "serve".into(),
            class: FileClass::Binary,
            text: "fn main() { println!(\"x\"); y.unwrap(); }".into(),
        };
        assert!(rules_hit(&[f]).is_empty());
    }

    #[test]
    fn literal_index_flagged_but_computed_index_fine() {
        let bad = lib_file("core", "fn f() { let a = xs[0]; }");
        assert_eq!(rules_hit(&[bad]), vec!["no-panic-in-hot-path"]);
        let ok = lib_file("core", "fn f() { let a = xs[i]; let b = ys[n - 1]; }");
        assert!(rules_hit(&[ok]).is_empty());
        // Array type syntax and slice patterns are not indexing.
        let ty = lib_file("core", "fn f(x: [u8; 4]) -> [f32; 2] { [0.0, 1.0] }");
        assert!(rules_hit(&[ty]).is_empty());
    }

    #[test]
    fn impl_parser_reads_paths_and_generics() {
        assert_eq!(
            parse_impl(
                &crate::lexer::lex("impl fmt::Display for ServeError {").tokens,
                0
            ),
            Some(("Display".into(), "ServeError".into()))
        );
        assert_eq!(
            parse_impl(
                &crate::lexer::lex("impl std::error::Error for X {}").tokens,
                0
            ),
            Some(("Error".into(), "X".into()))
        );
        assert_eq!(
            parse_impl(
                &crate::lexer::lex("impl<T> From<io::Error> for E<T> {}").tokens,
                0
            ),
            Some(("From".into(), "E".into()))
        );
        assert_eq!(
            parse_impl(&crate::lexer::lex("impl ServeError {").tokens, 0),
            None
        );
    }

    #[test]
    fn alloc_in_obs_record_fn_is_flagged() {
        let f = lib_file(
            "obs",
            "pub fn record(v: u64) -> u64 { let s = v.to_string(); s.len() as u64 }",
        );
        assert_eq!(rules_hit(&[f]), vec!["no-alloc-in-metric-path"]);
    }

    #[test]
    fn alloc_outside_record_fns_in_obs_is_fine() {
        // Snapshotting and rendering may allocate; only the record path
        // is constrained.
        let f = lib_file(
            "obs",
            "pub fn snapshot(n: u64) -> String { format!(\"n={n}\") }",
        );
        assert!(rules_hit(&[f]).is_empty());
    }

    #[test]
    fn with_capacity_in_record_path_is_allowed() {
        let f = lib_file(
            "obs",
            "pub fn record_reserve(n: usize) -> Vec<u64> { Vec::with_capacity(n) }",
        );
        assert!(rules_hit(&[f]).is_empty());
    }

    #[test]
    fn alloc_in_span_closure_is_flagged_in_hot_path_crates() {
        let f = lib_file(
            "serve",
            "fn f(h: &H, key: &K) { Span::in_span_with(\"cache\", h, || key.to_string()); }",
        );
        assert_eq!(rules_hit(&[f]), vec!["no-alloc-in-metric-path"]);
        let clean = lib_file(
            "serve",
            "fn f(h: &H, cache: &C, key: &K) -> V { Span::in_span_with(\"cache\", h, || cache.get(key)) }",
        );
        assert!(rules_hit(&[clean]).is_empty());
    }

    #[test]
    fn lock_guard_across_decode_flagged_and_drop_clears() {
        let bad = lib_file(
            "serve",
            "fn f(s: &S) { let g = s.inner.read(); decode_batch(&g); }",
        );
        assert_eq!(rules_hit(&[bad]), vec!["no-lock-across-call"]);
        let ok = lib_file(
            "serve",
            "fn f(s: &S) { let g = s.inner.read(); let t = g.tokens(); drop(g); decode_batch(&t); }",
        );
        assert!(rules_hit(&[ok]).is_empty());
        let scoped = lib_file(
            "serve",
            "fn f(s: &S) { let t = { let g = s.inner.read(); g.tokens() }; decode_batch(&t); }",
        );
        assert!(rules_hit(&[scoped]).is_empty());
    }

    #[test]
    fn interprocedural_lock_inversion_is_flagged() {
        // f takes alpha then calls g, which takes beta; h takes beta
        // then alpha directly — the cycle only exists through the call.
        let f = lib_file(
            "workload",
            "fn f(s: &S) { let _a = s.alpha.lock(); g(s); }\n\
             fn g(s: &S) { let _b = s.beta.lock(); }\n\
             fn h(s: &S) { let _b = s.beta.lock(); let _a = s.alpha.lock(); }",
        );
        assert_eq!(rules_hit(&[f]), vec!["lock-order-inversion"]);
    }

    #[test]
    fn lock_inversion_spans_files_in_one_crate() {
        let fwd = lib_file(
            "workload",
            "fn f(s: &S) { let _a = s.alpha.lock(); let _b = s.beta.lock(); }",
        );
        let mut bwd = lib_file(
            "workload",
            "fn g(s: &S) { let _b = s.beta.lock(); let _a = s.alpha.lock(); }",
        );
        bwd.path = "crates/workload/src/y.rs".into();
        assert_eq!(rules_hit(&[fwd, bwd]), vec!["lock-order-inversion"]);
    }

    #[test]
    fn consistent_order_and_test_code_are_not_inversions() {
        let ok = lib_file(
            "workload",
            "fn f(s: &S) { let _a = s.alpha.lock(); let _b = s.beta.lock(); }\n\
             fn g(s: &S) { let _a = s.alpha.lock(); let _b = s.beta.lock(); }",
        );
        assert!(rules_hit(&[ok]).is_empty());
        // Inverted order inside #[cfg(test)] does not count: tests may
        // exercise locks in controlled single-threaded order.
        let test_only = lib_file(
            "workload",
            "fn f(s: &S) { let _a = s.alpha.lock(); let _b = s.beta.lock(); }\n\
             #[cfg(test)]\nmod tests {\n\
             fn g(s: &S) { let _b = s.beta.lock(); let _a = s.alpha.lock(); }\n}",
        );
        assert!(rules_hit(&[test_only]).is_empty());
    }

    #[test]
    fn relaxed_store_flagged_and_allow_waives_it() {
        let bad = lib_file(
            "core",
            "fn f(s: &S) { s.ready.store(true, Ordering::Relaxed); }",
        );
        assert_eq!(rules_hit(&[bad]), vec!["atomics-ordering-hygiene"]);
        let waived = lib_file(
            "core",
            "fn f(s: &S) {\n\
             // qrec-lint: allow(atomics) -- standalone flag, nothing rides behind it\n\
             s.ready.store(true, Ordering::Relaxed);\n}",
        );
        assert!(rules_hit(&[waived]).is_empty());
        // fetch_add is a counter idiom, not a publication.
        let counter = lib_file(
            "core",
            "fn f(s: &S) { s.hits.fetch_add(1, Ordering::Relaxed); }",
        );
        assert!(rules_hit(&[counter]).is_empty());
    }

    #[test]
    fn unpaired_release_is_flagged_and_cross_file_pairing_clears_it() {
        let rel = lib_file(
            "core",
            "fn f(s: &S) { s.ready.store(true, Ordering::Release); }",
        );
        assert_eq!(
            rules_hit(std::slice::from_ref(&rel)),
            vec!["atomics-ordering-hygiene"]
        );
        // The matching Acquire may live in another file of the crate.
        let mut acq = lib_file(
            "core",
            "fn g(s: &S) -> bool { s.ready.load(Ordering::Acquire) }",
        );
        acq.path = "crates/core/src/y.rs".into();
        assert!(rules_hit(&[rel, acq]).is_empty());
        // SeqCst satisfies both sides on its own.
        let seqcst = lib_file(
            "core",
            "fn f(s: &S) { s.ready.store(true, Ordering::SeqCst); }",
        );
        assert!(rules_hit(&[seqcst]).is_empty());
    }

    #[test]
    fn blocking_call_reachable_from_hot_entry_is_flagged() {
        let f = lib_file(
            "serve",
            "pub fn decode_step(s: &S) { persist(s); }\n\
             fn persist(s: &S) { s.file.sync_all(); }",
        );
        assert_eq!(rules_hit(&[f]), vec!["blocking-call-in-hot-path"]);
        // The same blocking call with no hot entry reaching it is fine.
        let cold = lib_file(
            "serve",
            "pub fn flush(s: &S) { persist(s); }\n\
             fn persist(s: &S) { s.file.sync_all(); }",
        );
        assert!(rules_hit(&[cold]).is_empty());
    }

    #[test]
    fn blocking_reachability_crosses_crates_with_deps() {
        // serve:recommend → store:Wal::append → sync_data, linked only
        // when serve declares a dependency on store.
        let serve = lib_file("serve", "pub fn recommend(s: &S) { Wal::append(s); }");
        let mut store = lib_file(
            "store",
            "impl Wal { pub fn append(s: &S) { s.file.sync_data(); } }",
        );
        store.path = "crates/store/src/wal.rs".into();
        let mut cfg = Config::default();
        cfg.crate_deps.insert("serve".into(), vec!["store".into()]);
        cfg.crate_deps.insert("store".into(), vec![]);
        let hits: Vec<String> = analyze(&[serve.clone(), store.clone()], &cfg)
            .into_iter()
            .map(|f| f.rule)
            .collect();
        assert_eq!(hits, vec!["blocking-call-in-hot-path"]);
        // Reverse the dependency: store cannot call "up" into serve,
        // and serve no longer depends on store, so the edge dissolves.
        let mut cfg = Config::default();
        cfg.crate_deps.insert("serve".into(), vec![]);
        cfg.crate_deps.insert("store".into(), vec![]);
        assert!(analyze(&[serve, store], &cfg).is_empty());
    }

    #[test]
    fn explain_covers_every_rule_and_aliases() {
        for rule in RULES {
            assert!(explain(rule).is_some(), "explain must cover {rule}");
        }
        assert!(explain("atomics").is_some(), "aliases resolve");
        assert!(explain("no-such-rule").is_none());
    }
}
