//! The seven project rules and the engine that runs them.
//!
//! | id                    | invariant it protects                              |
//! |-----------------------|----------------------------------------------------|
//! | `no-panic-in-hot-path`| serving/library code must not be able to panic      |
//! | `no-lock-across-call` | lock guards never live across decode/train calls   |
//! | `no-stdout-in-lib`    | library code never writes to stdio directly        |
//! | `error-type-hygiene`  | every public error enum is a real `Error`          |
//! | `safety-comments`     | every `unsafe` block carries a `// SAFETY:` note   |
//! | `shim-surface-drift`  | parking_lot crates never regress to `std::sync`    |
//! | `no-alloc-in-metric-path` | metric recording never allocates per call      |

use crate::diag::Finding;
use crate::file::{FileClass, FileContext, SourceFile};
use crate::lexer::Tok;
use std::collections::{HashMap, HashSet};

/// Every rule id, in R1..R7 order.
pub const RULES: [&str; 7] = [
    "no-panic-in-hot-path",
    "no-lock-across-call",
    "no-stdout-in-lib",
    "error-type-hygiene",
    "safety-comments",
    "shim-surface-drift",
    "no-alloc-in-metric-path",
];

/// Which crates each cross-cutting rule applies to.
#[derive(Debug, Clone)]
pub struct Config {
    /// Crates whose library code must be panic-free (R1).
    pub hot_path_crates: Vec<String>,
    /// Crates checked for lock-guards held across decode calls (R2).
    pub lock_call_crates: Vec<String>,
    /// Crates standardized on `parking_lot` (R6): `std::sync` locks are
    /// surface drift there.
    pub parking_lot_crates: Vec<String>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            hot_path_crates: ["serve", "core", "nn", "sql", "tensor", "obs", "store"]
                .map(String::from)
                .to_vec(),
            lock_call_crates: vec!["serve".to_string(), "store".to_string()],
            parking_lot_crates: vec!["serve".to_string()],
        }
    }
}

/// Run every rule over `files`, returning unsuppressed findings sorted
/// by (file, line, rule). Inline-allowed findings are dropped;
/// malformed allow directives are themselves findings.
pub fn analyze(files: &[SourceFile], cfg: &Config) -> Vec<Finding> {
    let mut findings = Vec::new();
    // Crate-level state for R4: enums and trait impls seen per crate.
    // An enum in `error.rs` is satisfied by impls in any sibling file,
    // so verdicts wait until the whole crate has been scanned.
    let mut error_enums: Vec<ErrorEnum> = Vec::new();
    let mut impls: HashMap<String, HashSet<(String, String)>> = HashMap::new();

    for file in files {
        let ctx = FileContext::new(file);
        findings.extend(ctx.malformed.iter().cloned());

        let mut raw = Vec::new();
        if applies_r1(file, cfg) {
            no_panic_in_hot_path(&ctx, &mut raw);
        }
        if applies_r2(file, cfg) {
            no_lock_across_call(&ctx, &mut raw);
        }
        if applies_r3(file) {
            no_stdout_in_lib(&ctx, &mut raw);
        }
        if applies_r4(file) {
            collect_error_types(&ctx, &mut error_enums, &mut impls);
        }
        safety_comments(&ctx, &mut raw); // R5: every file, every class
        if applies_r6(file, cfg) {
            shim_surface_drift(&ctx, &mut raw);
        }
        if applies_r7(file, cfg) {
            no_alloc_in_metric_path(&ctx, &mut raw);
        }

        findings.extend(raw.into_iter().filter(|f| !ctx.allowed(&f.rule, f.line)));
    }

    for e in error_enums {
        let have = impls.get(&e.crate_name);
        let has = |trait_name: &str| {
            have.is_some_and(|set| set.contains(&(trait_name.to_string(), e.type_name.clone())))
        };
        if !(has("Display") && has("Error")) {
            findings.push(e.finding);
        }
    }

    findings.sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
    findings.dedup();
    findings
}

fn applies_r1(file: &SourceFile, cfg: &Config) -> bool {
    file.class == FileClass::Library && cfg.hot_path_crates.contains(&file.crate_name)
}

fn applies_r2(file: &SourceFile, cfg: &Config) -> bool {
    file.class == FileClass::Library && cfg.lock_call_crates.contains(&file.crate_name)
}

fn applies_r3(file: &SourceFile) -> bool {
    file.class == FileClass::Library
}

fn applies_r4(file: &SourceFile) -> bool {
    matches!(file.class, FileClass::Library) && !file.crate_name.starts_with("shim:")
}

fn applies_r6(file: &SourceFile, cfg: &Config) -> bool {
    matches!(file.class, FileClass::Library | FileClass::Binary)
        && cfg.parking_lot_crates.contains(&file.crate_name)
}

fn applies_r7(file: &SourceFile, cfg: &Config) -> bool {
    file.class == FileClass::Library
        && (file.crate_name == "obs" || cfg.hot_path_crates.contains(&file.crate_name))
}

fn finding(ctx: &FileContext<'_>, rule: &str, line: u32, message: String) -> Finding {
    Finding {
        rule: rule.into(),
        file: ctx.file.path.clone(),
        line,
        message,
    }
}

// ---------------------------------------------------------------------
// R1: no-panic-in-hot-path
// ---------------------------------------------------------------------

/// Flags `.unwrap()`, `.expect("…")`, `panic!`, `unreachable!`, `todo!`,
/// `unimplemented!`, and indexing by an integer literal (`xs[0]`) in
/// non-test library code of hot-path crates.
///
/// `.expect(` is only flagged when the first argument is a string
/// literal: without type information that is the signature of
/// `Option::expect` / `Result::expect`, and it keeps user-defined
/// `expect(Token)`-style parser methods (which return `Result`) out of
/// the findings.
fn no_panic_in_hot_path(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    const RULE: &str = "no-panic-in-hot-path";
    let toks = &ctx.lexed.tokens;
    for (i, tok) in toks.iter().enumerate() {
        if ctx.in_test(i) {
            continue;
        }
        match &tok.kind {
            Tok::Ident(name) if name == "unwrap" || name == "expect" => {
                let after_dot = i > 0 && toks[i - 1].kind.is_punct(b'.');
                let called = toks.get(i + 1).is_some_and(|t| t.kind.is_punct(b'('));
                let panicky_arg = if name == "unwrap" {
                    toks.get(i + 2).is_some_and(|t| t.kind.is_punct(b')'))
                } else {
                    matches!(toks.get(i + 2).map(|t| &t.kind), Some(Tok::Str))
                };
                if after_dot && called && panicky_arg {
                    out.push(finding(
                        ctx,
                        RULE,
                        tok.line,
                        format!(
                            "`.{name}()` can panic in hot-path library code; \
                             return a typed error instead"
                        ),
                    ));
                }
            }
            Tok::Ident(name)
                if matches!(
                    name.as_str(),
                    "panic" | "unreachable" | "todo" | "unimplemented"
                ) =>
            {
                let bang = toks.get(i + 1).is_some_and(|t| t.kind.is_punct(b'!'));
                if bang {
                    out.push(finding(
                        ctx,
                        RULE,
                        tok.line,
                        format!("`{name}!` aborts the worker thread; return a typed error instead"),
                    ));
                }
            }
            Tok::Punct(b'[') => {
                // `expr[3]`: previous token ends an expression and the
                // bracket group is exactly one integer literal.
                let indexable = i > 0
                    && matches!(
                        &toks[i - 1].kind,
                        Tok::Ident(_) | Tok::Punct(b')') | Tok::Punct(b']')
                    );
                let literal_index = matches!(toks.get(i + 1).map(|t| &t.kind), Some(Tok::Number))
                    && toks.get(i + 2).is_some_and(|t| t.kind.is_punct(b']'));
                if indexable && literal_index {
                    out.push(finding(
                        ctx,
                        RULE,
                        tok.line,
                        "indexing by integer literal can panic; use `.get(_)` or a \
                         destructuring pattern"
                            .into(),
                    ));
                }
            }
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------
// R2: no-lock-across-call
// ---------------------------------------------------------------------

/// Flags a lock-guard binding (`let g = x.read()/.write()/.lock()`)
/// that is still live when a `decode*` / `train*` / `recommend*` call
/// happens. Liveness ends at the guard's enclosing block, at
/// `drop(guard)`, or at an explicit rebinding.
fn no_lock_across_call(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    const RULE: &str = "no-lock-across-call";
    let toks = &ctx.lexed.tokens;
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth = 0usize;
    let mut i = 0;
    while i < toks.len() {
        match &toks[i].kind {
            Tok::Punct(b'{') => depth += 1,
            Tok::Punct(b'}') => {
                depth = depth.saturating_sub(1);
                guards.retain(|g| g.depth <= depth);
            }
            Tok::Ident(kw) if kw == "let" && !ctx.in_test(i) => {
                if let Some(guard) = lock_binding(toks, i, depth) {
                    guards.push(guard);
                }
            }
            // `drop(g)` ends g's liveness.
            Tok::Ident(name)
                if name == "drop"
                    && toks.get(i + 1).is_some_and(|t| t.kind.is_punct(b'('))
                    && toks.get(i + 3).is_some_and(|t| t.kind.is_punct(b')')) =>
            {
                if let Some(Tok::Ident(dropped)) = toks.get(i + 2).map(|t| &t.kind) {
                    guards.retain(|g| &g.name != dropped);
                }
            }
            Tok::Ident(name)
                if !ctx.in_test(i)
                    && (name.starts_with("decode")
                        || name.starts_with("train")
                        || name.starts_with("recommend"))
                    && toks.get(i + 1).is_some_and(|t| t.kind.is_punct(b'(')) =>
            {
                if let Some(g) = guards.last() {
                    out.push(finding(
                        ctx,
                        RULE,
                        toks[i].line,
                        format!(
                            "`{name}(…)` runs while lock guard `{}` (taken on line {}) is \
                             still held; drop the guard or scope it before decoding",
                            g.name, g.line
                        ),
                    ));
                }
            }
            _ => {}
        }
        i += 1;
    }
}

/// A live lock-guard binding being tracked by R2.
struct Guard {
    name: String,
    depth: usize,
    line: u32,
}

/// If tokens at `let_idx` start a statement of the shape
/// `let [mut] NAME … = …<.read()|.write()|.lock()>… ;`, return its guard.
///
/// The lock call must sit at the expression's top bracket level: in
/// `let t = { let g = m.read(); g.len() };` the guard is scoped to the
/// inner block and `t` is a plain value, not a guard.
fn lock_binding(toks: &[crate::lexer::Token], let_idx: usize, depth: usize) -> Option<Guard> {
    let mut j = let_idx + 1;
    if toks.get(j)?.kind.ident() == Some("mut") {
        j += 1;
    }
    let name = toks.get(j)?.kind.ident()?.to_string();
    if name == "_" {
        return None; // bound to `_`: dropped immediately
    }
    // Scan to the terminating `;` at bracket depth zero, looking for a
    // top-level `.read()` / `.write()` / `.lock()` call.
    let mut rel_depth = 0isize;
    let mut takes_lock = false;
    let mut k = j + 1;
    while let Some(tok) = toks.get(k) {
        match &tok.kind {
            Tok::Punct(b'(' | b'[' | b'{') => rel_depth += 1,
            Tok::Punct(b')' | b']' | b'}') => rel_depth -= 1,
            Tok::Punct(b';') if rel_depth <= 0 => break,
            Tok::Ident(m) if rel_depth == 0 && matches!(m.as_str(), "read" | "write" | "lock") => {
                let after_dot = toks[k - 1].kind.is_punct(b'.');
                let called = toks.get(k + 1).is_some_and(|t| t.kind.is_punct(b'('));
                if after_dot && called {
                    takes_lock = true;
                }
            }
            _ => {}
        }
        k += 1;
    }
    takes_lock.then(|| Guard {
        name,
        depth,
        line: toks[let_idx].line,
    })
}

// ---------------------------------------------------------------------
// R3: no-stdout-in-lib
// ---------------------------------------------------------------------

/// Flags `println!` / `eprintln!` / `print!` / `eprint!` in non-test
/// library code. Binaries, benches, examples, and tests may use stdio.
fn no_stdout_in_lib(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    const RULE: &str = "no-stdout-in-lib";
    let toks = &ctx.lexed.tokens;
    for (i, tok) in toks.iter().enumerate() {
        if ctx.in_test(i) {
            continue;
        }
        let Tok::Ident(name) = &tok.kind else {
            continue;
        };
        if !matches!(name.as_str(), "println" | "eprintln" | "print" | "eprint") {
            continue;
        }
        if toks.get(i + 1).is_some_and(|t| t.kind.is_punct(b'!')) {
            out.push(finding(
                ctx,
                RULE,
                tok.line,
                format!("`{name}!` in library code; route output through a `Reporter` instead"),
            ));
        }
    }
}

// ---------------------------------------------------------------------
// R4: error-type-hygiene
// ---------------------------------------------------------------------

/// A `pub enum *Error` declaration pending its crate-wide R4 verdict.
struct ErrorEnum {
    crate_name: String,
    type_name: String,
    finding: Finding,
}

/// First pass of R4: record `pub enum *Error` declarations (as pending
/// findings) and every `impl <Trait> for <Type>` in the crate.
fn collect_error_types(
    ctx: &FileContext<'_>,
    enums: &mut Vec<ErrorEnum>,
    impls: &mut HashMap<String, HashSet<(String, String)>>,
) {
    let toks = &ctx.lexed.tokens;
    for i in 0..toks.len() {
        if ctx.in_test(i) {
            continue;
        }
        // `pub enum XError`
        if toks[i].kind.ident() == Some("pub")
            && toks
                .get(i + 1)
                .is_some_and(|t| t.kind.ident() == Some("enum"))
        {
            if let Some(name) = toks.get(i + 2).and_then(|t| t.kind.ident()) {
                if name.ends_with("Error") && !ctx.allowed("error-type-hygiene", toks[i].line) {
                    enums.push(ErrorEnum {
                        crate_name: ctx.file.crate_name.clone(),
                        type_name: name.to_string(),
                        finding: finding(
                            ctx,
                            "error-type-hygiene",
                            toks[i].line,
                            format!(
                                "`{name}` is a public error enum but does not implement both \
                                 `Display` and `std::error::Error`"
                            ),
                        ),
                    });
                }
            }
        }
        // `impl [<…>] path::Trait for Type`
        if toks[i].kind.ident() == Some("impl") {
            if let Some((trait_seg, ty)) = parse_impl(toks, i) {
                impls
                    .entry(ctx.file.crate_name.clone())
                    .or_default()
                    .insert((trait_seg, ty));
            }
        }
    }
}

/// Parse `impl [<generics>] a::b::Trait for Type`, returning the
/// trait's final path segment and the type name.
fn parse_impl(toks: &[crate::lexer::Token], impl_idx: usize) -> Option<(String, String)> {
    let mut j = impl_idx + 1;
    // Skip `<…>` generics (angle brackets are Punct('<') / Punct('>')).
    if toks.get(j)?.kind.is_punct(b'<') {
        let mut depth = 0isize;
        while let Some(t) = toks.get(j) {
            if t.kind.is_punct(b'<') {
                depth += 1;
            } else if t.kind.is_punct(b'>') {
                depth -= 1;
                if depth == 0 {
                    j += 1;
                    break;
                }
            }
            j += 1;
        }
    }
    // Collect path segments up to `for`; bail at `{` (inherent impl).
    let mut last_seg: Option<String> = None;
    loop {
        let tok = toks.get(j)?;
        match &tok.kind {
            Tok::Ident(seg) if seg == "for" => break,
            Tok::Ident(seg) => last_seg = Some(seg.clone()),
            Tok::Punct(b':') => {}
            Tok::Punct(b'<') => {
                // Trait generics, e.g. `From<io::Error>`: skip the group.
                let mut depth = 0isize;
                while let Some(t) = toks.get(j) {
                    if t.kind.is_punct(b'<') {
                        depth += 1;
                    } else if t.kind.is_punct(b'>') {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    j += 1;
                }
            }
            Tok::Punct(b'{') | Tok::Punct(b';') => return None,
            _ => return None,
        }
        j += 1;
    }
    let ty = toks.get(j + 1)?.kind.ident()?.to_string();
    Some((last_seg?, ty))
}

// ---------------------------------------------------------------------
// R5: safety-comments
// ---------------------------------------------------------------------

/// Every `unsafe {` block must be preceded (within two lines) by a
/// comment containing `SAFETY:` explaining why it is sound.
fn safety_comments(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    const RULE: &str = "safety-comments";
    let toks = &ctx.lexed.tokens;
    for (i, tok) in toks.iter().enumerate() {
        if tok.kind.ident() != Some("unsafe") {
            continue;
        }
        if !toks.get(i + 1).is_some_and(|t| t.kind.is_punct(b'{')) {
            continue; // `unsafe fn` / `unsafe impl`: signature, not a block
        }
        let line = tok.line;
        let documented =
            ctx.lexed.comments.iter().any(|c| {
                c.text.contains("SAFETY:") && c.end_line < line + 1 && c.end_line + 2 >= line
            });
        if !documented {
            out.push(finding(
                ctx,
                RULE,
                line,
                "`unsafe` block without a preceding `// SAFETY:` comment".into(),
            ));
        }
    }
}

// ---------------------------------------------------------------------
// R6: shim-surface-drift
// ---------------------------------------------------------------------

/// In crates standardized on `parking_lot`, flags `std::sync::Mutex` /
/// `std::sync::RwLock` paths (including `use std::sync::{Mutex, …}`
/// groups): mixing lock vocabularies reintroduces poisoning semantics
/// the crate was designed away from.
fn shim_surface_drift(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    const RULE: &str = "shim-surface-drift";
    let toks = &ctx.lexed.tokens;
    let mut i = 0;
    while i + 4 < toks.len() {
        let is_std_sync = toks[i].kind.ident() == Some("std")
            && toks[i + 1].kind.is_punct(b':')
            && toks[i + 2].kind.is_punct(b':')
            && toks[i + 3].kind.ident() == Some("sync");
        if !is_std_sync || ctx.in_test(i) {
            i += 1;
            continue;
        }
        let line = toks[i].line;
        // `std::sync::Mutex` or `std::sync::{…, Mutex, …}`.
        let mut j = i + 4;
        if toks.get(j).is_some_and(|t| t.kind.is_punct(b':'))
            && toks.get(j + 1).is_some_and(|t| t.kind.is_punct(b':'))
        {
            j += 2;
        }
        let mut flagged = Vec::new();
        match toks.get(j).map(|t| &t.kind) {
            Some(Tok::Ident(name)) if name == "Mutex" || name == "RwLock" => {
                flagged.push(name.clone());
            }
            Some(Tok::Punct(b'{')) => {
                let mut k = j + 1;
                let mut depth = 1usize;
                while let Some(t) = toks.get(k) {
                    match &t.kind {
                        Tok::Punct(b'{') => depth += 1,
                        Tok::Punct(b'}') => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        Tok::Ident(name) if name == "Mutex" || name == "RwLock" => {
                            flagged.push(name.clone());
                        }
                        _ => {}
                    }
                    k += 1;
                }
            }
            _ => {}
        }
        for name in flagged {
            out.push(finding(
                ctx,
                RULE,
                line,
                format!(
                    "`std::sync::{name}` in a crate standardized on `parking_lot`; \
                     use the workspace `parking_lot` alias"
                ),
            ));
        }
        i = j + 1;
    }
}

// ---------------------------------------------------------------------
// R7: no-alloc-in-metric-path
// ---------------------------------------------------------------------

/// Is `name` a metric recording entry point whose body must stay
/// allocation-free? These are the functions on the single-fetch-add hot
/// path of `qrec-obs`: counters, gauges, histograms, and span entry.
fn is_metric_fn(name: &str) -> bool {
    name.starts_with("record")
        || name.starts_with("enter")
        || name.starts_with("observe")
        || matches!(name, "inc" | "add" | "set")
}

/// Flags per-call allocation (`format!`, `vec!`, `String::…`,
/// `Vec::new`, `Box::new`, `.to_string()`, `.to_owned()`) in metric
/// recording paths:
///
/// - in the `obs` crate, inside the body of any recording function
///   ([`is_metric_fn`]);
/// - in every hot-path crate, inside the argument list of a
///   `Span::in_span` / `Span::in_span_with` call — those closures run
///   under span timing, so an allocation there is both measured as
///   stage time and repeated per request.
///
/// `Vec::with_capacity` is deliberately allowed: registration-time
/// pre-sizing is the pattern the rule exists to protect.
fn no_alloc_in_metric_path(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    const RULE: &str = "no-alloc-in-metric-path";
    let toks = &ctx.lexed.tokens;

    if ctx.file.crate_name == "obs" {
        let mut i = 0;
        while i < toks.len() {
            let is_fn = toks[i].kind.ident() == Some("fn") && !ctx.in_test(i);
            let name = toks.get(i + 1).and_then(|t| t.kind.ident());
            if let (true, Some(name)) = (is_fn, name) {
                if is_metric_fn(name) {
                    if let Some((start, end)) = fn_body(toks, i + 2) {
                        scan_alloc(ctx, RULE, start, end, &format!("fn `{name}`"), out);
                        i = end;
                        continue;
                    }
                }
            }
            i += 1;
        }
    }

    let mut i = 0;
    while i < toks.len() {
        let spanish = matches!(toks[i].kind.ident(), Some("in_span" | "in_span_with"));
        let called = toks.get(i + 1).is_some_and(|t| t.kind.is_punct(b'('));
        if spanish && called && !ctx.in_test(i) {
            if let Some(end) = match_group(toks, i + 1, b'(', b')') {
                let name = toks[i].kind.ident().unwrap_or("in_span");
                scan_alloc(ctx, RULE, i + 2, end, &format!("`{name}` closure"), out);
                i = end;
                continue;
            }
        }
        i += 1;
    }
}

/// Locate a function body starting at or after `from`: the first `{`
/// (nothing in a signature opens a brace before the body) through its
/// matching `}`. Returns the token range strictly inside the braces.
fn fn_body(toks: &[crate::lexer::Token], from: usize) -> Option<(usize, usize)> {
    let open = (from..toks.len()).find(|&i| toks[i].kind.is_punct(b'{'))?;
    let close = match_group(toks, open, b'{', b'}')?;
    Some((open + 1, close))
}

/// Index of the punct closing the group opened at `open_idx`.
fn match_group(
    toks: &[crate::lexer::Token],
    open_idx: usize,
    open: u8,
    close: u8,
) -> Option<usize> {
    let mut depth = 0usize;
    for (i, tok) in toks.iter().enumerate().skip(open_idx) {
        if tok.kind.is_punct(open) {
            depth += 1;
        } else if tok.kind.is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

/// Scan `toks[start..end]` for allocating constructs, reporting each as
/// an R7 finding located in `place`.
fn scan_alloc(
    ctx: &FileContext<'_>,
    rule: &str,
    start: usize,
    end: usize,
    place: &str,
    out: &mut Vec<Finding>,
) {
    let toks = &ctx.lexed.tokens;
    let path_sep = |i: usize| {
        toks.get(i).is_some_and(|t| t.kind.is_punct(b':'))
            && toks.get(i + 1).is_some_and(|t| t.kind.is_punct(b':'))
    };
    for i in start..end.min(toks.len()) {
        let Tok::Ident(name) = &toks[i].kind else {
            continue;
        };
        let bang = toks.get(i + 1).is_some_and(|t| t.kind.is_punct(b'!'));
        let after_dot = i > 0 && toks[i - 1].kind.is_punct(b'.');
        let called = toks.get(i + 1).is_some_and(|t| t.kind.is_punct(b'('));
        let what = match name.as_str() {
            "format" | "vec" if bang => format!("`{name}!`"),
            "String" if path_sep(i + 1) => "`String::…`".to_string(),
            "Vec" | "Box"
                if path_sep(i + 1)
                    && toks
                        .get(i + 3)
                        .is_some_and(|t| t.kind.ident() == Some("new")) =>
            {
                format!("`{name}::new`")
            }
            "to_string" | "to_owned" if after_dot && called => format!("`.{name}()`"),
            _ => continue,
        };
        out.push(finding(
            ctx,
            rule,
            toks[i].line,
            format!(
                "{what} allocates inside the metric recording path ({place}); \
                 pre-register names at startup and keep the record path \
                 allocation-free"
            ),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib_file(crate_name: &str, text: &str) -> SourceFile {
        SourceFile {
            path: format!("crates/{crate_name}/src/x.rs"),
            crate_name: crate_name.into(),
            class: FileClass::Library,
            text: text.into(),
        }
    }

    fn rules_hit(files: &[SourceFile]) -> Vec<String> {
        analyze(files, &Config::default())
            .into_iter()
            .map(|f| f.rule)
            .collect()
    }

    #[test]
    fn unwrap_outside_hot_path_crate_is_fine() {
        let f = lib_file("workload", "fn f() { x.unwrap(); }");
        assert!(rules_hit(&[f]).is_empty());
    }

    #[test]
    fn unwrap_in_hot_path_crate_is_flagged() {
        let f = lib_file("serve", "fn f() { x.unwrap(); }");
        assert_eq!(rules_hit(&[f]), vec!["no-panic-in-hot-path"]);
    }

    #[test]
    fn unwrap_or_variants_are_fine() {
        let f = lib_file(
            "serve",
            "fn f() { x.unwrap_or(0); y.unwrap_or_else(id); z.unwrap_or_default(); }",
        );
        assert!(rules_hit(&[f]).is_empty());
    }

    #[test]
    fn binary_class_may_panic_and_print() {
        let f = SourceFile {
            path: "crates/serve/src/bin/main.rs".into(),
            crate_name: "serve".into(),
            class: FileClass::Binary,
            text: "fn main() { println!(\"x\"); y.unwrap(); }".into(),
        };
        assert!(rules_hit(&[f]).is_empty());
    }

    #[test]
    fn literal_index_flagged_but_computed_index_fine() {
        let bad = lib_file("core", "fn f() { let a = xs[0]; }");
        assert_eq!(rules_hit(&[bad]), vec!["no-panic-in-hot-path"]);
        let ok = lib_file("core", "fn f() { let a = xs[i]; let b = ys[n - 1]; }");
        assert!(rules_hit(&[ok]).is_empty());
        // Array type syntax and slice patterns are not indexing.
        let ty = lib_file("core", "fn f(x: [u8; 4]) -> [f32; 2] { [0.0, 1.0] }");
        assert!(rules_hit(&[ty]).is_empty());
    }

    #[test]
    fn impl_parser_reads_paths_and_generics() {
        assert_eq!(
            parse_impl(
                &crate::lexer::lex("impl fmt::Display for ServeError {").tokens,
                0
            ),
            Some(("Display".into(), "ServeError".into()))
        );
        assert_eq!(
            parse_impl(
                &crate::lexer::lex("impl std::error::Error for X {}").tokens,
                0
            ),
            Some(("Error".into(), "X".into()))
        );
        assert_eq!(
            parse_impl(
                &crate::lexer::lex("impl<T> From<io::Error> for E<T> {}").tokens,
                0
            ),
            Some(("From".into(), "E".into()))
        );
        assert_eq!(
            parse_impl(&crate::lexer::lex("impl ServeError {").tokens, 0),
            None
        );
    }

    #[test]
    fn alloc_in_obs_record_fn_is_flagged() {
        let f = lib_file(
            "obs",
            "pub fn record(v: u64) -> u64 { let s = v.to_string(); s.len() as u64 }",
        );
        assert_eq!(rules_hit(&[f]), vec!["no-alloc-in-metric-path"]);
    }

    #[test]
    fn alloc_outside_record_fns_in_obs_is_fine() {
        // Snapshotting and rendering may allocate; only the record path
        // is constrained.
        let f = lib_file(
            "obs",
            "pub fn snapshot(n: u64) -> String { format!(\"n={n}\") }",
        );
        assert!(rules_hit(&[f]).is_empty());
    }

    #[test]
    fn with_capacity_in_record_path_is_allowed() {
        let f = lib_file(
            "obs",
            "pub fn record_reserve(n: usize) -> Vec<u64> { Vec::with_capacity(n) }",
        );
        assert!(rules_hit(&[f]).is_empty());
    }

    #[test]
    fn alloc_in_span_closure_is_flagged_in_hot_path_crates() {
        let f = lib_file(
            "serve",
            "fn f(h: &H, key: &K) { Span::in_span_with(\"cache\", h, || key.to_string()); }",
        );
        assert_eq!(rules_hit(&[f]), vec!["no-alloc-in-metric-path"]);
        let clean = lib_file(
            "serve",
            "fn f(h: &H, cache: &C, key: &K) -> V { Span::in_span_with(\"cache\", h, || cache.get(key)) }",
        );
        assert!(rules_hit(&[clean]).is_empty());
    }

    #[test]
    fn lock_guard_across_decode_flagged_and_drop_clears() {
        let bad = lib_file(
            "serve",
            "fn f(s: &S) { let g = s.inner.read(); decode_batch(&g); }",
        );
        assert_eq!(rules_hit(&[bad]), vec!["no-lock-across-call"]);
        let ok = lib_file(
            "serve",
            "fn f(s: &S) { let g = s.inner.read(); let t = g.tokens(); drop(g); decode_batch(&t); }",
        );
        assert!(rules_hit(&[ok]).is_empty());
        let scoped = lib_file(
            "serve",
            "fn f(s: &S) { let t = { let g = s.inner.read(); g.tokens() }; decode_batch(&t); }",
        );
        assert!(rules_hit(&[scoped]).is_empty());
    }
}
