//! Lock-acquisition facts: which locks each function takes, in what
//! order, and which calls happen while a lock is held.
//!
//! A lock *identity* is a name, not an object: `self.inner.read()`
//! inside `impl EncCache` becomes `serve:EncCache.inner`, a local or
//! static receiver becomes `serve:GLOBAL`. Identity is deliberately
//! *narrow* (qualified by crate and impl type) — merging two unrelated
//! locks into one node manufactures false deadlock cycles, while a
//! too-narrow identity merely misses an edge, and the runtime sanitizer
//! in `shims/parking_lot` exists to catch what the static pass misses.
//! The call-graph side (see [`crate::callgraph`]) leans the opposite
//! way, merging by simple name, so between the two passes the deadlock
//! rule over-approximates where it is cheap to review and
//! under-approximates only where a false positive would be noise.
//!
//! Only argument-less `.lock()` / `.read()` / `.write()` calls count as
//! acquisitions: `file.read(&mut buf)` and `sock.write(bytes)` are I/O,
//! not locking.

use crate::ast::FnItem;
use crate::file::FileContext;
use crate::lexer::{Tok, Token};

/// One lock acquisition site.
#[derive(Debug, Clone)]
pub struct LockAcq {
    /// Qualified lock identity (`crate:Type.field` / `crate:name`).
    pub lock: String,
    /// 1-based source line.
    pub line: u32,
}

/// An intra-function ordered pair: `to` acquired while `from` is held.
#[derive(Debug, Clone)]
pub struct LockEdge {
    /// The lock already held.
    pub from: String,
    /// The lock being acquired.
    pub to: String,
    /// Line of the `to` acquisition.
    pub line: u32,
}

/// A call made while at least one lock is held.
#[derive(Debug, Clone)]
pub struct LockCall {
    /// Locks held at the call site, acquisition order.
    pub held: Vec<String>,
    /// Simple name of the callee.
    pub callee: String,
    /// 1-based source line of the call.
    pub line: u32,
}

/// Everything the deadlock rule needs to know about one function.
#[derive(Debug, Clone, Default)]
pub struct FnLockFacts {
    /// Direct acquisitions.
    pub acquires: Vec<LockAcq>,
    /// Intra-function acquisition-order edges.
    pub edges: Vec<LockEdge>,
    /// Calls made under a lock.
    pub calls: Vec<LockCall>,
}

/// Identifiers that look like calls but are control flow or declarations.
const NON_CALL_KEYWORDS: [&str; 10] = [
    "if", "while", "match", "for", "loop", "return", "fn", "where", "move", "in",
];

/// Extract the lock facts of one function body.
pub fn lock_facts(ctx: &FileContext<'_>, item: &FnItem) -> FnLockFacts {
    let mut facts = FnLockFacts::default();
    let Some((start, end)) = item.body else {
        return facts;
    };
    let toks = &ctx.lexed.tokens;
    let crate_name = &ctx.file.crate_name;
    let impl_type = item.impl_type.as_deref();

    // Guards held at the current token, innermost last.
    let mut held: Vec<Guard> = Vec::new();
    let mut depth = 0usize;
    // Acquisition tokens already attributed to a `let` guard binding,
    // so the linear scan does not double-count them.
    let mut bound_acqs: Vec<usize> = Vec::new();

    let mut i = start;
    while i < end.min(toks.len()) {
        if ctx.in_test(i) {
            i += 1;
            continue;
        }
        match &toks[i].kind {
            Tok::Punct(b'{') => depth += 1,
            Tok::Punct(b'}') => {
                depth = depth.saturating_sub(1);
                held.retain(|g| g.depth <= depth);
            }
            Tok::Ident(kw) if kw == "let" => {
                if let Some((name, lock_idx)) = guard_binding(toks, i, end) {
                    let lock = lock_identity(toks, lock_idx, crate_name, impl_type);
                    record_acq(&mut facts, &held, &lock, toks[lock_idx].line);
                    held.push(Guard { name, lock, depth });
                    bound_acqs.push(lock_idx);
                }
            }
            // `drop(g)` releases g.
            Tok::Ident(name)
                if name == "drop"
                    && toks.get(i + 1).is_some_and(|t| t.kind.is_punct(b'('))
                    && toks.get(i + 3).is_some_and(|t| t.kind.is_punct(b')')) =>
            {
                if let Some(Tok::Ident(dropped)) = toks.get(i + 2).map(|t| &t.kind) {
                    if let Some(pos) = held.iter().rposition(|g| &g.name == dropped) {
                        held.remove(pos);
                    }
                }
            }
            Tok::Ident(name) if is_lock_method(name, toks, i) && !bound_acqs.contains(&i) => {
                let lock = lock_identity(toks, i, crate_name, impl_type);
                record_acq(&mut facts, &held, &lock, toks[i].line);
            }
            // A lock call already recorded at its `let` binding: not a
            // fresh acquisition, and not a plain call either.
            Tok::Ident(name) if is_lock_method(name, toks, i) => {}
            Tok::Ident(name)
                if toks.get(i + 1).is_some_and(|t| t.kind.is_punct(b'('))
                    && !NON_CALL_KEYWORDS.contains(&name.as_str())
                    && (i == 0 || toks[i - 1].kind.ident() != Some("fn"))
                    && !held.is_empty()
                    && name != "drop" =>
            {
                facts.calls.push(LockCall {
                    held: held.iter().map(|g| g.lock.clone()).collect(),
                    callee: name.clone(),
                    line: toks[i].line,
                });
            }
            _ => {}
        }
        i += 1;
    }
    facts
}

/// A live lock guard being tracked by the scan.
struct Guard {
    name: String,
    lock: String,
    depth: usize,
}

fn record_acq(facts: &mut FnLockFacts, held: &[Guard], lock: &str, line: u32) {
    facts.acquires.push(LockAcq {
        lock: lock.to_string(),
        line,
    });
    for g in held {
        // Same identity re-acquired (sharded locks, loops over a lock
        // array) is not an order fact between *two* locks; skip.
        if g.lock != lock {
            facts.edges.push(LockEdge {
                from: g.lock.clone(),
                to: lock.to_string(),
                line,
            });
        }
    }
}

/// `name` at `i` is an argument-less `.lock()` / `.read()` / `.write()`.
fn is_lock_method(name: &str, toks: &[Token], i: usize) -> bool {
    matches!(name, "lock" | "read" | "write")
        && i > 0
        && toks[i - 1].kind.is_punct(b'.')
        && toks.get(i + 1).is_some_and(|t| t.kind.is_punct(b'('))
        && toks.get(i + 2).is_some_and(|t| t.kind.is_punct(b')'))
}

/// If `let_idx` starts `let [mut] NAME … = … .lock()/.read()/.write() … ;`
/// with the lock call at the binding's top bracket level, return the
/// bound name and the token index of the lock method ident.
fn guard_binding(toks: &[Token], let_idx: usize, limit: usize) -> Option<(String, usize)> {
    let mut j = let_idx + 1;
    if toks.get(j)?.kind.ident() == Some("mut") {
        j += 1;
    }
    let name = toks.get(j)?.kind.ident()?.to_string();
    if name == "_" {
        return None;
    }
    let mut rel = 0isize;
    let mut k = j + 1;
    while k < limit {
        let tok = toks.get(k)?;
        match &tok.kind {
            Tok::Punct(b'(' | b'[' | b'{') => rel += 1,
            Tok::Punct(b')' | b']' | b'}') => rel -= 1,
            Tok::Punct(b';') if rel <= 0 => return None,
            Tok::Ident(m) if rel == 0 && is_lock_method(m, toks, k) => {
                return Some((name, k));
            }
            _ => {}
        }
        k += 1;
    }
    None
}

/// The qualified identity of the lock acquired by the method ident at
/// `method_idx`: walk the receiver chain back one step to the field or
/// binding the lock lives in.
fn lock_identity(
    toks: &[Token],
    method_idx: usize,
    crate_name: &str,
    impl_type: Option<&str>,
) -> String {
    let j = receiver_field_idx(toks, method_idx);
    let field = toks.get(j).and_then(|t| t.kind.ident()).unwrap_or("<expr>");
    // `self.field.lock()` is qualified by the impl type; anything else
    // (locals, params, statics, free paths) by its own name.
    let via_self = j >= 2
        && toks.get(j - 1).is_some_and(|t| t.kind.is_punct(b'.'))
        && toks
            .get(j - 2)
            .is_some_and(|t| t.kind.ident() == Some("self"));
    match (via_self, impl_type) {
        (true, Some(ty)) => format!("{crate_name}:{ty}.{field}"),
        _ => format!("{crate_name}:{field}"),
    }
}

/// Token index of the field/binding ident the method call at
/// `method_idx` is invoked on: `self.inner.read()` → `inner`,
/// `self.slots[idx].lock()` → `slots`, `shard(n).lock()` → `shard`.
/// Shared with the atomics rule, which needs the same walk for
/// `self.epoch.load(Ordering::…)`.
pub(crate) fn receiver_field_idx(toks: &[Token], method_idx: usize) -> usize {
    // toks[method_idx - 1] is the `.`; the receiver ends at - 2.
    let mut j = method_idx.saturating_sub(2);
    // Skip trailing index/call groups.
    loop {
        match toks.get(j).map(|t| &t.kind) {
            Some(Tok::Punct(b']')) => {
                j = rewind_group(toks, j, b'[', b']').saturating_sub(1);
            }
            Some(Tok::Punct(b')')) => {
                j = rewind_group(toks, j, b'(', b')').saturating_sub(1);
            }
            _ => break,
        }
    }
    j
}

/// Index of the token opening the group that closes at `close_idx`.
fn rewind_group(toks: &[Token], close_idx: usize, open: u8, close: u8) -> usize {
    let mut depth = 0isize;
    let mut j = close_idx;
    loop {
        match toks.get(j).map(|t| &t.kind) {
            Some(Tok::Punct(p)) if *p == close => depth += 1,
            Some(Tok::Punct(p)) if *p == open => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
        if j == 0 {
            return 0;
        }
        j -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::parse_fns;
    use crate::file::{FileClass, SourceFile};

    fn facts_of(src: &str) -> Vec<FnLockFacts> {
        let file = SourceFile {
            path: "crates/serve/src/x.rs".into(),
            crate_name: "serve".into(),
            class: FileClass::Library,
            text: src.into(),
        };
        let ctx = FileContext::new(&file);
        parse_fns(&ctx.lexed)
            .iter()
            .map(|item| lock_facts(&ctx, item))
            .collect()
    }

    #[test]
    fn ordered_acquisition_is_an_edge() {
        let f =
            &facts_of("fn f(&self) { let a = self.alpha.lock(); let b = self.beta.lock(); }")[0];
        assert_eq!(f.acquires.len(), 2);
        assert_eq!(f.edges.len(), 1);
        assert_eq!(f.edges[0].from, "serve:alpha");
        assert_eq!(f.edges[0].to, "serve:beta");
    }

    #[test]
    fn impl_type_qualifies_self_fields() {
        let f = &facts_of(
            "impl Cache { fn f(&self) { let a = self.alpha.lock(); let b = self.beta.lock(); } }",
        )[0];
        assert_eq!(f.edges[0].from, "serve:Cache.alpha");
        assert_eq!(f.edges[0].to, "serve:Cache.beta");
    }

    #[test]
    fn drop_and_scope_end_liveness() {
        let f = &facts_of(
            "fn f(&self) { let a = self.alpha.lock(); drop(a); let b = self.beta.lock(); }",
        )[0];
        assert!(f.edges.is_empty(), "{:?}", f.edges);
        let g =
            &facts_of("fn g(&self) { { let a = self.alpha.lock(); } let b = self.beta.lock(); }")
                [0];
        assert!(g.edges.is_empty(), "{:?}", g.edges);
    }

    #[test]
    fn temporary_locks_make_edges_but_do_not_hold() {
        let f = &facts_of(
            "fn f(&self) { let a = self.alpha.lock(); self.beta.lock().push(1); self.gamma.lock().pop(); }",
        )[0];
        // beta and gamma each get an edge from alpha, not from each other.
        let pairs: Vec<(&str, &str)> = f
            .edges
            .iter()
            .map(|e| (e.from.as_str(), e.to.as_str()))
            .collect();
        assert_eq!(
            pairs,
            vec![
                ("serve:alpha", "serve:beta"),
                ("serve:alpha", "serve:gamma")
            ]
        );
    }

    #[test]
    fn io_read_write_are_not_acquisitions() {
        let f =
            &facts_of("fn f(&self, buf: &mut [u8]) { self.file.read(buf); self.sock.write(buf); }")
                [0];
        assert!(f.acquires.is_empty(), "{:?}", f.acquires);
    }

    #[test]
    fn indexed_receivers_use_the_collection_field() {
        let f =
            &facts_of("impl Ring { fn f(&self, i: usize) { let s = self.slots[i].lock(); } }")[0];
        assert_eq!(f.acquires[0].lock, "serve:Ring.slots");
    }

    #[test]
    fn calls_under_lock_are_recorded() {
        let f = &facts_of("fn f(&self) { let a = self.alpha.lock(); helper(&a); }")[0];
        assert_eq!(f.calls.len(), 1);
        assert_eq!(f.calls[0].callee, "helper");
        assert_eq!(f.calls[0].held, vec!["serve:alpha".to_string()]);
        let g = &facts_of("fn g(&self) { helper(); }")[0];
        assert!(g.calls.is_empty());
    }

    #[test]
    fn same_identity_reacquisition_is_not_an_edge() {
        let f = &facts_of(
            "impl S { fn f(&self, i: usize, j: usize) { let a = self.shards[i].lock(); let b = self.shards[j].lock(); } }",
        )[0];
        assert!(f.edges.is_empty(), "{:?}", f.edges);
        assert_eq!(f.acquires.len(), 2);
    }
}
