//! Workspace discovery: find every `.rs` file, classify it, and build
//! the rule configuration from the crate manifests.

use crate::file::{FileClass, SourceFile};
use crate::rules::Config;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// The workspace as the linter sees it.
pub struct Workspace {
    /// Every classified source file.
    pub files: Vec<SourceFile>,
    /// Rule configuration derived from crate manifests.
    pub config: Config,
}

/// Walk the workspace rooted at `root` (the directory holding the
/// top-level `Cargo.toml`) and classify every source file.
///
/// Skips `target/`, hidden directories, and `tests/fixtures/` trees
/// (lint fixtures deliberately contain violations).
///
/// # Errors
///
/// Propagates filesystem errors from directory walks and file reads.
pub fn collect_workspace(root: &Path) -> io::Result<Workspace> {
    let mut files = Vec::new();
    let mut config = Config::default();
    config.parking_lot_crates.clear();

    // Package-name → crate-dir map from the root manifest's
    // `[workspace.dependencies]` (`qrec-obs = { path = "crates/obs" }`
    // → `qrec-obs` → `obs`), for resolving workspace-inherited deps.
    let root_manifest = fs::read_to_string(root.join("Cargo.toml")).unwrap_or_default();
    let pkg_dirs = workspace_dep_dirs(&root_manifest);

    // crates/<name>/…
    for crate_dir in subdirs(&root.join("crates"))? {
        let crate_name = dir_name(&crate_dir);
        let manifest = fs::read_to_string(crate_dir.join("Cargo.toml")).unwrap_or_default();
        if manifest
            .lines()
            .any(|l| l.trim_start().starts_with("parking_lot"))
        {
            config.parking_lot_crates.push(crate_name.clone());
        }
        config
            .crate_deps
            .insert(crate_name.clone(), manifest_deps(&manifest, &pkg_dirs));
        collect_package(root, &crate_dir, &crate_name, &mut files)?;
    }

    // The root package (`src/`, `examples/`, `tests/`).
    config
        .crate_deps
        .insert("qrec".to_string(), manifest_deps(&root_manifest, &pkg_dirs));
    collect_package(root, root, "qrec", &mut files)?;

    // Vendored shims: only ever checked for safety comments — except
    // `polling`, which sits on the serve hot path (the event loop calls
    // it on every tick) and is held to the same bar as first-party
    // library code (R1/R9/R10 via `hot_path_crates`).
    for shim_dir in subdirs(&root.join("shims"))? {
        let dir = dir_name(&shim_dir);
        let (crate_name, class) = if dir == "polling" {
            (dir, FileClass::Library)
        } else {
            (format!("shim:{dir}"), FileClass::Shim)
        };
        collect_tree(root, &shim_dir.join("src"), &crate_name, class, &mut files)?;
    }

    files.sort_by(|a, b| a.path.cmp(&b.path));
    Ok(Workspace { files, config })
}

/// Collect one package's conventional source trees.
fn collect_package(
    root: &Path,
    pkg: &Path,
    crate_name: &str,
    files: &mut Vec<SourceFile>,
) -> io::Result<()> {
    collect_tree(
        root,
        &pkg.join("src"),
        crate_name,
        FileClass::Library,
        files,
    )?;
    collect_tree(
        root,
        &pkg.join("tests"),
        crate_name,
        FileClass::TestFile,
        files,
    )?;
    collect_tree(
        root,
        &pkg.join("benches"),
        crate_name,
        FileClass::Bench,
        files,
    )?;
    collect_tree(
        root,
        &pkg.join("examples"),
        crate_name,
        FileClass::Example,
        files,
    )?;
    Ok(())
}

/// Recursively collect `.rs` files under `dir` with a default class;
/// `src/bin/**` and `src/main.rs` are reclassified as binaries.
fn collect_tree(
    root: &Path,
    dir: &Path,
    crate_name: &str,
    class: FileClass,
    files: &mut Vec<SourceFile>,
) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        for entry in fs::read_dir(&d)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name().to_string_lossy().into_owned();
            if path.is_dir() {
                if name == "target" || name == "fixtures" || name.starts_with('.') {
                    continue;
                }
                stack.push(path);
                continue;
            }
            if path.extension().and_then(|e| e.to_str()) != Some("rs") {
                continue;
            }
            let rel = rel_path(root, &path);
            let class = if rel.contains("/src/bin/") || rel.ends_with("/src/main.rs") {
                FileClass::Binary
            } else {
                class
            };
            files.push(SourceFile {
                path: rel,
                crate_name: crate_name.to_string(),
                class,
                text: fs::read_to_string(&path)?,
            });
        }
    }
    Ok(())
}

/// Package-name → crate-dir pairs from `path = "…"` dependency lines
/// (`qrec-store = { path = "crates/store" }` → `("qrec-store",
/// "store")`).
fn workspace_dep_dirs(manifest: &str) -> Vec<(String, String)> {
    manifest
        .lines()
        .filter_map(|l| {
            let name = l.split('=').next()?.trim();
            if name.is_empty() || name.starts_with('[') || name.starts_with('#') {
                return None;
            }
            let (_, rest) = l.split_once("path = \"")?;
            let (p, _) = rest.split_once('"')?;
            let dir = Path::new(p).file_name()?.to_string_lossy().into_owned();
            Some((name.to_string(), dir))
        })
        .collect()
}

/// The crate directory names a manifest depends on, resolving both
/// direct `path = "…"` entries and workspace-inherited entries
/// (`qrec-obs.workspace = true`) through the root manifest's map.
/// Dev-dependencies count too — over-approximation is the right bias
/// for the call graph's dependency-direction filter.
fn manifest_deps(manifest: &str, pkg_dirs: &[(String, String)]) -> Vec<String> {
    let mut deps: Vec<String> = workspace_dep_dirs(manifest)
        .into_iter()
        .map(|(_, dir)| dir)
        .collect();
    for line in manifest.lines() {
        let Some(name) = line
            .split_once(".workspace")
            .or_else(|| line.split_once("= { workspace"))
            .map(|(n, _)| n.trim())
        else {
            continue;
        };
        if let Some((_, dir)) = pkg_dirs.iter().find(|(pkg, _)| pkg == name) {
            deps.push(dir.clone());
        }
    }
    deps.sort();
    deps.dedup();
    deps
}

fn subdirs(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    if !dir.is_dir() {
        return Ok(out);
    }
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            out.push(path);
        }
    }
    out.sort();
    Ok(out)
}

fn dir_name(path: &Path) -> String {
    path.file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default()
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workspace_root() -> PathBuf {
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
    }

    #[test]
    fn walks_the_real_workspace() {
        let ws = collect_workspace(&workspace_root()).unwrap();
        assert!(ws.files.len() > 50, "found {} files", ws.files.len());
        let find = |p: &str| ws.files.iter().find(|f| f.path == p);
        let batcher = find("crates/serve/src/batcher.rs").expect("batcher present");
        assert_eq!(batcher.class, FileClass::Library);
        assert_eq!(batcher.crate_name, "serve");
        let bin = find("crates/serve/src/bin/qrec-serve.rs").expect("serve bin present");
        assert_eq!(bin.class, FileClass::Binary);
        assert!(
            ws.config.parking_lot_crates.contains(&"serve".to_string()),
            "serve declares parking_lot: {:?}",
            ws.config.parking_lot_crates
        );
    }

    #[test]
    fn fixtures_are_not_walked() {
        let ws = collect_workspace(&workspace_root()).unwrap();
        assert!(
            ws.files.iter().all(|f| !f.path.contains("/fixtures/")),
            "fixture files must not be analyzed as workspace sources"
        );
    }

    #[test]
    fn shims_are_classified_as_shims() {
        let ws = collect_workspace(&workspace_root()).unwrap();
        let shim = ws
            .files
            .iter()
            .find(|f| f.path.starts_with("shims/") && !f.path.starts_with("shims/polling/"))
            .expect("shims present");
        assert_eq!(shim.class, FileClass::Shim);
        assert!(shim.crate_name.starts_with("shim:"));
    }

    #[test]
    fn polling_shim_is_linted_as_hot_path_library_code() {
        // The event loop calls the polling shim on every tick, so it is
        // promoted out of the safety-comments-only Shim class.
        let ws = collect_workspace(&workspace_root()).unwrap();
        let polling = ws
            .files
            .iter()
            .find(|f| f.path.starts_with("shims/polling/"))
            .expect("polling shim present");
        assert_eq!(polling.class, FileClass::Library);
        assert_eq!(polling.crate_name, "polling");
    }
}
