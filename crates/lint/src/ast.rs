//! A brace-tree item parser on top of the token stream.
//!
//! The per-file rules (R1–R7) get away with flat token scans, but the
//! interprocedural rules (R8–R10) need to know *which function* a token
//! belongs to: a lock acquired in `Batcher::submit` and a lock acquired
//! in `worker_loop` are different analysis facts even when the tokens
//! look identical. This module recovers exactly that much structure —
//! `fn` items with their body token ranges, nested inside `mod` and
//! `impl` blocks — by brace-matching the token stream. It is not a Rust
//! parser: generics, where-clauses, and expression grammar are skipped
//! over, because the only invariant the IR needs is "these tokens are
//! the body of this function".

use crate::lexer::{Lexed, Tok, Token};

/// One `fn` item recovered from a file.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The function's simple name (`submit`, `worker_loop`).
    pub name: String,
    /// The enclosing `impl` block's type name, when inside one.
    pub impl_type: Option<String>,
    /// Enclosing `mod` names, outermost first (inline mods only).
    pub mods: Vec<String>,
    /// Token index of the `fn` keyword.
    pub fn_idx: usize,
    /// Token range strictly inside the body braces (`open+1..close`).
    /// `None` for bodyless declarations (trait methods, extern fns).
    pub body: Option<(usize, usize)>,
    /// 1-based source line of the `fn` keyword.
    pub line: u32,
}

impl FnItem {
    /// Display name for diagnostics: `Type::name` or `name`.
    pub fn qual_name(&self) -> String {
        match &self.impl_type {
            Some(ty) => format!("{ty}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// What kind of scope a brace on the context stack opened.
#[derive(Debug)]
enum Scope {
    /// `mod name {` — named module scope.
    Mod(String),
    /// `impl … Type {` — the implementing type's name.
    Impl(String),
    /// Any other brace (fn body, block, match arm, struct literal…).
    Other,
}

/// Parse every `fn` item in the token stream, with its enclosing
/// `impl` / `mod` context and its body token range.
///
/// Nested functions are reported too (their bodies are sub-ranges of
/// the enclosing body); closures are not items and stay part of the
/// surrounding function's body.
pub fn parse_fns(lexed: &Lexed) -> Vec<FnItem> {
    let toks = &lexed.tokens;
    let mut out = Vec::new();
    // Stack of scopes opened by `{` tokens seen so far.
    let mut scopes: Vec<Scope> = Vec::new();
    // When an item header (`mod x` / `impl … X`) has been parsed and we
    // are waiting for its `{`, this holds the scope to push.
    let mut pending: Option<Scope> = None;
    let mut i = 0;
    while i < toks.len() {
        match &toks[i].kind {
            Tok::Punct(b'{') => {
                scopes.push(pending.take().unwrap_or(Scope::Other));
            }
            Tok::Punct(b'}') => {
                scopes.pop();
            }
            Tok::Punct(b';') => {
                // `mod x;` / `impl X;` never materialises: drop it.
                pending = None;
            }
            Tok::Ident(kw) if kw == "mod" => {
                if let Some(name) = toks.get(i + 1).and_then(|t| t.kind.ident()) {
                    pending = Some(Scope::Mod(name.to_string()));
                    i += 1;
                }
            }
            Tok::Ident(kw) if kw == "impl" => {
                pending = Some(Scope::Impl(impl_type_name(toks, i).unwrap_or_default()));
            }
            Tok::Ident(kw) if kw == "fn" => {
                if let Some(name) = toks.get(i + 1).and_then(|t| t.kind.ident()) {
                    let item = fn_item(toks, i, name, &scopes);
                    // Resume at the body's `{` so its scope is pushed
                    // normally and nested fns inside are still seen.
                    let next = item.body.map(|(start, _)| start - 1).unwrap_or(i + 1);
                    out.push(item);
                    i = next;
                    continue;
                }
            }
            _ => {}
        }
        i += 1;
    }
    out
}

/// Build the [`FnItem`] for the `fn` keyword at `fn_idx`.
fn fn_item(toks: &[Token], fn_idx: usize, name: &str, scopes: &[Scope]) -> FnItem {
    let impl_type = scopes.iter().rev().find_map(|s| match s {
        Scope::Impl(ty) => Some(ty.clone()),
        _ => None,
    });
    let mods = scopes
        .iter()
        .filter_map(|s| match s {
            Scope::Mod(m) => Some(m.clone()),
            _ => None,
        })
        .collect();
    FnItem {
        name: name.to_string(),
        impl_type,
        mods,
        fn_idx,
        body: fn_body_range(toks, fn_idx + 2),
        line: toks[fn_idx].line,
    }
}

/// Find the body braces of a `fn` whose signature starts after `from`:
/// the first `{` before a top-level `;` (a `;` means a bodyless
/// declaration). Signatures cannot contain `{`, so the first one seen
/// opens the body.
fn fn_body_range(toks: &[Token], from: usize) -> Option<(usize, usize)> {
    let mut j = from;
    // `;` only terminates the declaration at group depth 0 — array
    // types (`[u8; 4]`) legally put `;` inside `[`…`]` in a signature.
    let mut group = 0isize;
    while let Some(t) = toks.get(j) {
        match &t.kind {
            Tok::Punct(b'(' | b'[') => group += 1,
            Tok::Punct(b')' | b']') => group -= 1,
            Tok::Punct(b'{') => {
                let close = match_brace(toks, j)?;
                return Some((j + 1, close));
            }
            Tok::Punct(b';') if group <= 0 => return None,
            _ => {}
        }
        j += 1;
    }
    None
}

/// Index of the `}` closing the `{` at `open_idx`.
pub fn match_brace(toks: &[Token], open_idx: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (i, tok) in toks.iter().enumerate().skip(open_idx) {
        if tok.kind.is_punct(b'{') {
            depth += 1;
        } else if tok.kind.is_punct(b'}') {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

/// The implementing type of an `impl` header at `impl_idx`:
/// `impl Foo {` → `Foo`, `impl Trait for Foo {` → `Foo`,
/// `impl<T> Trait<U> for Foo<T> {` → `Foo`.
fn impl_type_name(toks: &[Token], impl_idx: usize) -> Option<String> {
    let mut j = impl_idx + 1;
    let mut angle = 0isize;
    let mut last_ident: Option<String> = None;
    let mut after_for: Option<String> = None;
    let mut seen_for = false;
    while let Some(t) = toks.get(j) {
        match &t.kind {
            Tok::Punct(b'<') => angle += 1,
            Tok::Punct(b'>') => angle -= 1,
            Tok::Punct(b'{') | Tok::Punct(b';') if angle <= 0 => break,
            Tok::Ident(seg) if angle == 0 => {
                if seg == "for" {
                    seen_for = true;
                } else if seen_for {
                    if after_for.is_none() {
                        after_for = Some(seg.clone());
                    }
                } else {
                    last_ident = Some(seg.clone());
                }
            }
            _ => {}
        }
        j += 1;
    }
    after_for.or(last_ident)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn fns(src: &str) -> Vec<FnItem> {
        parse_fns(&lex(src))
    }

    #[test]
    fn free_fn_with_body() {
        let items = fns("fn alpha(x: u32) -> u32 { x + 1 }");
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].name, "alpha");
        assert!(items[0].impl_type.is_none());
        assert!(items[0].body.is_some());
    }

    #[test]
    fn impl_methods_know_their_type() {
        let items = fns("impl Batcher { fn submit(&self) {} fn queued(&self) -> usize { 0 } }");
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].qual_name(), "Batcher::submit");
        assert_eq!(items[1].qual_name(), "Batcher::queued");
    }

    #[test]
    fn trait_impl_uses_the_implementing_type() {
        let items = fns("impl Drop for Batcher { fn drop(&mut self) { self.stop(); } }");
        assert_eq!(items[0].qual_name(), "Batcher::drop");
        let items = fns("impl<T: Clone> From<Vec<T>> for Holder<T> { fn from(v: Vec<T>) -> Self { Holder(v) } }");
        assert_eq!(items[0].qual_name(), "Holder::from");
    }

    #[test]
    fn mods_are_tracked_and_bodyless_fns_have_no_range() {
        let items = fns("mod inner { trait T { fn sig(&self); fn given(&self) {} } }");
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].name, "sig");
        assert!(items[0].body.is_none());
        assert_eq!(items[0].mods, vec!["inner".to_string()]);
        assert!(items[1].body.is_some());
    }

    #[test]
    fn nested_fns_are_items_and_struct_literals_are_not_scopes() {
        let src = "fn outer() { let s = S { a: 1 }; fn inner() {} inner(); }";
        let items = fns(src);
        let names: Vec<&str> = items.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["outer", "inner"]);
        // inner's body is a sub-range of outer's.
        let (oo, oc) = items[0].body.unwrap();
        let (io, ic) = items[1].body.unwrap();
        assert!(oo < io && ic <= oc);
    }

    #[test]
    fn generic_return_types_do_not_end_the_signature() {
        let items =
            fns("fn gen<T: Ord>(v: Vec<T>) -> Option<T> where T: Clone { v.into_iter().max() }");
        assert_eq!(items.len(), 1);
        assert!(items[0].body.is_some());
    }
}
