//! Diagnostics: the [`Finding`] type, rustc-style rendering, and the
//! machine-readable JSON encoding behind `--json`.

use serde::Serialize;

/// One rule violation at one source location.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize)]
pub struct Finding {
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// Rule id (`no-panic-in-hot-path`, …).
    pub rule: String,
    /// Human-readable description of the violation.
    pub message: String,
}

impl Finding {
    /// Baseline identity: the triple the ratchet matches on.
    pub fn key(&self) -> (String, String, u32) {
        (self.rule.clone(), self.file.clone(), self.line)
    }

    /// Render in rustc's `error[code]: message` + `--> file:line` shape.
    pub fn render(&self) -> String {
        format!(
            "error[{}]: {}\n  --> {}:{}",
            self.rule, self.message, self.file, self.line
        )
    }
}

/// Encode findings as a JSON array (one object per finding).
pub fn to_json(findings: &[Finding]) -> String {
    serde_json::to_string_pretty(&findings.to_vec()).unwrap_or_else(|_| "[]".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding() -> Finding {
        Finding {
            file: "crates/serve/src/batcher.rs".into(),
            line: 42,
            rule: "no-panic-in-hot-path".into(),
            message: "`.unwrap()` in hot-path library code".into(),
        }
    }

    #[test]
    fn renders_rustc_style() {
        let text = finding().render();
        assert!(text.starts_with("error[no-panic-in-hot-path]:"));
        assert!(text.contains("--> crates/serve/src/batcher.rs:42"));
    }

    #[test]
    fn json_is_machine_readable() {
        let json = to_json(&[finding()]);
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        let arr = parsed.as_array().unwrap();
        assert_eq!(arr.len(), 1);
        let obj = arr[0].as_object().unwrap();
        assert_eq!(
            obj.get("rule").and_then(|v| v.as_str()),
            Some("no-panic-in-hot-path")
        );
        assert_eq!(obj.get("line").and_then(|v| v.as_i128()), Some(42));
    }
}
