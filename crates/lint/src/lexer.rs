//! A lightweight, infallible Rust lexer.
//!
//! Mirrors the token-stream design of `qrec-sql`'s SQL lexer
//! (`crates/sql/src/lexer.rs`): a flat byte scan producing a small token
//! vocabulary. It understands exactly as much Rust as the rules need —
//! idents, numbers, all string flavours (including raw and byte
//! strings), char literals vs lifetimes, nested block comments, and
//! single-byte punctuation. Comments are collected on the side so rules
//! can inspect `// SAFETY:` and `// qrec-lint:` directives.
//!
//! The lexer never fails: malformed input (an unterminated string, a
//! stray byte) degenerates into best-effort tokens rather than an
//! error, because a linter must keep walking the rest of the workspace
//! even when one file is mid-edit.

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token kind (and text, for idents).
    pub kind: Tok,
    /// 1-based source line of the token's first byte.
    pub line: u32,
}

/// The token vocabulary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (`unwrap`, `fn`, `impl`, …).
    Ident(String),
    /// A lifetime such as `'a` (distinguished from char literals).
    Lifetime,
    /// An integer-ish literal chunk (`3`, `0xff`, `14` of `3.14`).
    Number,
    /// Any string literal: `"…"`, `r#"…"#`, `b"…"`.
    Str,
    /// A char or byte literal: `'x'`, `b'\n'`.
    Char,
    /// A single punctuation byte (`.`, `!`, `[`, `{`, `:`, …).
    Punct(u8),
}

impl Tok {
    /// The ident's text, if this is an ident.
    pub fn ident(&self) -> Option<&str> {
        match self {
            Tok::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// True when this token is the punctuation byte `b`.
    pub fn is_punct(&self, b: u8) -> bool {
        matches!(self, Tok::Punct(p) if *p == b)
    }
}

/// A comment, kept out of the main token stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// 1-based line the comment ends on (block comments can span lines).
    pub end_line: u32,
    /// Raw comment text including the `//` / `/* */` markers.
    pub text: String,
}

/// A lexed source file: tokens plus side-channel comments.
#[derive(Debug, Default)]
pub struct Lexed {
    /// The token stream, comments and whitespace removed.
    pub tokens: Vec<Token>,
    /// Every comment, in source order.
    pub comments: Vec<Comment>,
}

/// Lex `src` into tokens and comments. Never fails.
pub fn lex(src: &str) -> Lexed {
    Lexer {
        bytes: src.as_bytes(),
        src,
        pos: 0,
        line: 1,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer<'a> {
    bytes: &'a [u8],
    src: &'a str,
    pos: usize,
    line: u32,
    out: Lexed,
}

impl Lexer<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek_at(&self, off: usize) -> Option<u8> {
        self.bytes.get(self.pos + off).copied()
    }

    fn advance(&mut self) {
        if self.peek() == Some(b'\n') {
            self.line += 1;
        }
        self.pos += 1;
    }

    fn push(&mut self, kind: Tok, line: u32) {
        self.out.tokens.push(Token { kind, line });
    }

    fn run(mut self) -> Lexed {
        while let Some(b) = self.peek() {
            let line = self.line;
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => self.advance(),
                b'/' if self.peek_at(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek_at(1) == Some(b'*') => self.block_comment(),
                b'"' => {
                    self.string_lit();
                    self.push(Tok::Str, line);
                }
                b'\'' => self.char_or_lifetime(line),
                b'r' | b'b' if self.raw_or_byte_prefix() => {
                    self.raw_or_byte_literal(line);
                }
                b'0'..=b'9' => {
                    while matches!(
                        self.peek(),
                        Some(b'0'..=b'9' | b'a'..=b'z' | b'A'..=b'Z' | b'_')
                    ) {
                        self.advance();
                    }
                    self.push(Tok::Number, line);
                }
                b'A'..=b'Z' | b'a'..=b'z' | b'_' => {
                    let start = self.pos;
                    while matches!(
                        self.peek(),
                        Some(b'0'..=b'9' | b'a'..=b'z' | b'A'..=b'Z' | b'_')
                    ) {
                        self.advance();
                    }
                    let text = self.src[start..self.pos].to_string();
                    self.push(Tok::Ident(text), line);
                }
                0x80.. => self.advance(), // non-ASCII outside literals: skip
                other => {
                    self.advance();
                    self.push(Tok::Punct(other), line);
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self) {
        let start = self.pos;
        let line = self.line;
        while let Some(b) = self.peek() {
            if b == b'\n' {
                break;
            }
            self.advance();
        }
        self.out.comments.push(Comment {
            line,
            end_line: line,
            text: self.src[start..self.pos].to_string(),
        });
    }

    fn block_comment(&mut self) {
        let start = self.pos;
        let line = self.line;
        self.advance(); // '/'
        self.advance(); // '*'
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(), self.peek_at(1)) {
                (Some(b'*'), Some(b'/')) => {
                    depth -= 1;
                    self.advance();
                    self.advance();
                }
                (Some(b'/'), Some(b'*')) => {
                    depth += 1;
                    self.advance();
                    self.advance();
                }
                (Some(_), _) => self.advance(),
                (None, _) => break, // unterminated: swallow to EOF
            }
        }
        self.out.comments.push(Comment {
            line,
            end_line: self.line,
            text: self.src[start..self.pos].to_string(),
        });
    }

    /// Consume a `"…"` body (caller pushes the token).
    fn string_lit(&mut self) {
        self.advance(); // opening quote
        while let Some(b) = self.peek() {
            match b {
                b'\\' => {
                    self.advance();
                    if self.peek().is_some() {
                        self.advance();
                    }
                }
                b'"' => {
                    self.advance();
                    return;
                }
                _ => self.advance(),
            }
        }
    }

    /// `'a` (lifetime) vs `'x'` / `'\n'` (char literal).
    fn char_or_lifetime(&mut self, line: u32) {
        // A lifetime is `'` + ident-start not closed by another `'`.
        let one = self.peek_at(1);
        let two = self.peek_at(2);
        let ident_start = matches!(one, Some(b'a'..=b'z' | b'A'..=b'Z' | b'_'));
        if ident_start && two != Some(b'\'') {
            self.advance(); // '
            while matches!(
                self.peek(),
                Some(b'0'..=b'9' | b'a'..=b'z' | b'A'..=b'Z' | b'_')
            ) {
                self.advance();
            }
            self.push(Tok::Lifetime, line);
            return;
        }
        // Char literal: consume until the closing quote (escape-aware).
        self.advance(); // opening '
        while let Some(b) = self.peek() {
            match b {
                b'\\' => {
                    self.advance();
                    if self.peek().is_some() {
                        self.advance();
                    }
                }
                b'\'' => {
                    self.advance();
                    break;
                }
                b'\n' => break, // malformed; stop at EOL
                _ => self.advance(),
            }
        }
        self.push(Tok::Char, line);
    }

    /// Is the current `r`/`b` the start of a raw/byte literal rather
    /// than an ident?
    fn raw_or_byte_prefix(&self) -> bool {
        let mut off = 1;
        if self.peek() == Some(b'b') && self.peek_at(1) == Some(b'r') {
            off = 2;
        }
        if self.peek() == Some(b'b') && self.peek_at(1) == Some(b'\'') {
            return true; // byte char b'x'
        }
        loop {
            match self.peek_at(off) {
                Some(b'#') => off += 1,
                Some(b'"') => return true,
                _ => return false,
            }
        }
    }

    fn raw_or_byte_literal(&mut self, line: u32) {
        if self.peek() == Some(b'b') && self.peek_at(1) == Some(b'\'') {
            self.advance(); // b
            self.char_or_lifetime(line);
            return;
        }
        // Consume prefix letters.
        while matches!(self.peek(), Some(b'r' | b'b')) {
            self.advance();
        }
        let mut hashes = 0usize;
        while self.peek() == Some(b'#') {
            hashes += 1;
            self.advance();
        }
        if self.peek() != Some(b'"') {
            // Not actually a raw string (e.g. `r#ident`); emit an ident.
            self.push(Tok::Ident("r".into()), line);
            return;
        }
        self.advance(); // opening quote
        'outer: while let Some(b) = self.peek() {
            if b == b'"' {
                // Need `hashes` trailing '#'s to close.
                for i in 0..hashes {
                    if self.peek_at(1 + i) != Some(b'#') {
                        self.advance();
                        continue 'outer;
                    }
                }
                self.advance(); // closing quote
                for _ in 0..hashes {
                    self.advance();
                }
                break;
            }
            self.advance();
        }
        self.push(Tok::Str, line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).tokens.into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn idents_and_puncts() {
        assert_eq!(
            kinds("x.unwrap()"),
            vec![
                Tok::Ident("x".into()),
                Tok::Punct(b'.'),
                Tok::Ident("unwrap".into()),
                Tok::Punct(b'('),
                Tok::Punct(b')'),
            ]
        );
    }

    #[test]
    fn strings_hide_contents() {
        // `unwrap` inside a string must not produce an ident token.
        let toks = kinds(r#"let s = "please unwrap me";"#);
        assert!(toks.iter().all(|t| t.ident() != Some("unwrap")));
        assert!(toks.contains(&Tok::Str));
    }

    #[test]
    fn raw_strings_and_hashes() {
        let toks = kinds(r###"let s = r#"panic!("x")"#; done"###);
        assert!(toks.iter().all(|t| t.ident() != Some("panic")));
        assert_eq!(toks.last().unwrap(), &Tok::Ident("done".into()));
    }

    #[test]
    fn lifetimes_vs_chars() {
        assert_eq!(
            kinds("&'a str 'x' '\\n'"),
            vec![
                Tok::Punct(b'&'),
                Tok::Lifetime,
                Tok::Ident("str".into()),
                Tok::Char,
                Tok::Char,
            ]
        );
    }

    #[test]
    fn comments_collected_not_tokenized() {
        let lexed = lex("a // unwrap()\nb /* panic! */ c");
        let idents: Vec<_> = lexed.tokens.iter().filter_map(|t| t.kind.ident()).collect();
        assert_eq!(idents, vec!["a", "b", "c"]);
        assert_eq!(lexed.comments.len(), 2);
        assert!(lexed.comments[0].text.contains("unwrap"));
    }

    #[test]
    fn nested_block_comments() {
        let lexed = lex("/* outer /* inner */ still */ x");
        assert_eq!(lexed.tokens.len(), 1);
        assert_eq!(lexed.comments.len(), 1);
    }

    #[test]
    fn lines_tracked_across_multiline_tokens() {
        let lexed = lex("a\n\"two\nline\"\nb");
        assert_eq!(lexed.tokens[0].line, 1);
        assert_eq!(lexed.tokens[1].line, 2);
        assert_eq!(lexed.tokens[2].line, 4);
    }

    #[test]
    fn byte_char_is_char() {
        assert_eq!(
            kinds("b'x' next"),
            vec![Tok::Char, Tok::Ident("next".into())]
        );
    }

    #[test]
    fn malformed_input_never_panics() {
        for src in ["'", "\"abc", "/* nope", "r#\"open", "\u{1F600} emoji"] {
            let _ = lex(src);
        }
    }
}
