//! Per-file context: classification, `#[cfg(test)]` regions, and the
//! `// qrec-lint: allow(...)` escape hatch.

use crate::diag::Finding;
use crate::lexer::{lex, Lexed, Tok};
use std::collections::HashMap;

/// What kind of source file this is, which determines the rules that
/// apply to it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileClass {
    /// Library code (`src/**`, excluding `src/bin`). The strictest class.
    Library,
    /// A binary entry point (`src/main.rs`, `src/bin/**`). May use stdio.
    Binary,
    /// An integration test (`tests/**`). Panics and stdio are fine.
    TestFile,
    /// A benchmark (`benches/**`).
    Bench,
    /// An example (`examples/**`).
    Example,
    /// A vendored shim crate (`shims/**`). Only safety comments are
    /// checked: shims mirror external APIs and are not project style.
    Shim,
}

/// One source file, ready for analysis.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// Short crate name: the directory under `crates/` (`serve`,
    /// `core`, …), `qrec` for the root package, `shim:<name>` for shims.
    pub crate_name: String,
    /// Classification; see [`FileClass`].
    pub class: FileClass,
    /// Full source text.
    pub text: String,
}

/// Everything the rules need to look at one file: the token stream, a
/// parallel "is this token inside test code" mask, and parsed allow
/// directives.
pub struct FileContext<'a> {
    /// The file under analysis.
    pub file: &'a SourceFile,
    /// Lexed tokens and comments.
    pub lexed: Lexed,
    /// `mask[i]` is true when token `i` is inside a `#[cfg(test)]` item
    /// or a `#[test]` function.
    pub test_mask: Vec<bool>,
    /// Lines covered by a well-formed allow directive, with the rules
    /// each line allows.
    pub allows: HashMap<u32, Vec<String>>,
    /// Malformed directives, reported as findings in their own right.
    pub malformed: Vec<Finding>,
}

impl<'a> FileContext<'a> {
    /// Lex and annotate one file.
    pub fn new(file: &'a SourceFile) -> Self {
        let lexed = lex(&file.text);
        let test_mask = test_mask(&lexed);
        let (allows, malformed) = parse_allows(file, &lexed);
        FileContext {
            file,
            lexed,
            test_mask,
            allows,
            malformed,
        }
    }

    /// True when token index `i` is inside test-only code.
    pub fn in_test(&self, i: usize) -> bool {
        self.test_mask.get(i).copied().unwrap_or(false)
    }

    /// True when `rule` is allowed on `line` by an inline directive.
    pub fn allowed(&self, rule: &str, line: u32) -> bool {
        self.allows
            .get(&line)
            .is_some_and(|rules| rules.iter().any(|r| r == rule))
    }
}

/// Mark every token inside a `#[cfg(test)]` / `#[test]` item.
///
/// Scans for `#[...]` attributes whose token list mentions the ident
/// `test`; the braces of the next item (module, function, impl) are
/// then brace-matched and the whole range masked.
fn test_mask(lexed: &Lexed) -> Vec<bool> {
    let toks = &lexed.tokens;
    let mut mask = vec![false; toks.len()];
    let mut i = 0;
    while i < toks.len() {
        if !(toks[i].kind.is_punct(b'#') && toks.get(i + 1).is_some_and(|t| t.kind.is_punct(b'[')))
        {
            i += 1;
            continue;
        }
        // Find the matching `]` of the attribute.
        let mut depth = 0usize;
        let mut j = i + 1;
        let mut attr_end = None;
        while j < toks.len() {
            match &toks[j].kind {
                Tok::Punct(b'[') => depth += 1,
                Tok::Punct(b']') => {
                    depth -= 1;
                    if depth == 0 {
                        attr_end = Some(j);
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        let Some(attr_end) = attr_end else { break };
        // `#[cfg(not(test))]` guards code compiled for *non*-test
        // builds; treating it as a test region would exempt live code.
        let attr = &toks[i + 2..attr_end];
        let is_test_attr = attr.iter().any(|t| t.kind.ident() == Some("test"))
            && !attr.iter().any(|t| t.kind.ident() == Some("not"));
        if !is_test_attr {
            i = attr_end + 1;
            continue;
        }
        // Mask from the attribute through the item's closing brace.
        // Stop early at a `;` before any `{` (e.g. `mod foo;`).
        let mut k = attr_end + 1;
        let mut open = None;
        while k < toks.len() {
            match &toks[k].kind {
                Tok::Punct(b'{') => {
                    open = Some(k);
                    break;
                }
                Tok::Punct(b';') => break,
                _ => {}
            }
            k += 1;
        }
        let Some(open) = open else {
            for m in mask.iter_mut().take(k.min(toks.len())).skip(i) {
                *m = true;
            }
            i = k + 1;
            continue;
        };
        let mut depth = 0usize;
        let mut close = toks.len() - 1;
        let mut k = open;
        while k < toks.len() {
            match &toks[k].kind {
                Tok::Punct(b'{') => depth += 1,
                Tok::Punct(b'}') => {
                    depth -= 1;
                    if depth == 0 {
                        close = k;
                        break;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        for m in mask.iter_mut().take(close + 1).skip(i) {
            *m = true;
        }
        i = close + 1;
    }
    mask
}

/// The directive grammar: `// qrec-lint: allow(rule-a, rule-b) -- reason`.
///
/// A directive covers its own line and the next line, so it can sit
/// either at the end of the offending line or on its own line above.
/// A directive without a `-- reason` suffix, with an empty rule list,
/// or naming an unknown rule is itself a reportable violation
/// (`malformed-allow`), so the escape hatch cannot silently rot.
///
/// Only plain comments whose body *begins* with `qrec-lint:` are
/// directives; doc comments (`///`, `//!`, `/**`, `/*!`) and prose that
/// merely mentions the syntax are not parsed.
fn parse_allows(file: &SourceFile, lexed: &Lexed) -> (HashMap<u32, Vec<String>>, Vec<Finding>) {
    let mut allows: HashMap<u32, Vec<String>> = HashMap::new();
    let mut malformed = Vec::new();
    for comment in &lexed.comments {
        let Some(body) = directive_body(&comment.text) else {
            continue;
        };
        match parse_directive(body) {
            Ok(rules) => {
                for line in [comment.end_line, comment.end_line + 1] {
                    allows
                        .entry(line)
                        .or_default()
                        .extend(rules.iter().cloned());
                }
            }
            Err(why) => malformed.push(Finding {
                rule: "malformed-allow".into(),
                file: file.path.clone(),
                line: comment.line,
                message: format!(
                    "malformed `qrec-lint:` directive ({why}); expected \
                     `// qrec-lint: allow(<rule>) -- <reason>`"
                ),
            }),
        }
    }
    (allows, malformed)
}

/// Strip the comment markers and return the directive body, or `None`
/// when this comment is a doc comment or does not start with
/// `qrec-lint:`.
fn directive_body(raw: &str) -> Option<&str> {
    let inner = if let Some(rest) = raw.strip_prefix("//") {
        rest
    } else if let Some(rest) = raw.strip_prefix("/*") {
        rest.strip_suffix("*/").unwrap_or(rest)
    } else {
        raw
    };
    // `///x` / `//!x` strip to `/x` / `!x`; `/**` / `/*!` to `*x` / `!x`.
    if inner.starts_with(['/', '!', '*']) {
        return None;
    }
    inner.trim().strip_prefix("qrec-lint:").map(str::trim)
}

fn parse_directive(body: &str) -> Result<Vec<String>, String> {
    let Some(rest) = body.strip_prefix("allow") else {
        return Err("only `allow(...)` is supported".into());
    };
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix('(') else {
        return Err("missing `(` after `allow`".into());
    };
    let Some(close) = rest.find(')') else {
        return Err("missing `)`".into());
    };
    // Aliases (`atomics`, `lock-order`, `blocking`) resolve to their
    // canonical rule ids, so the allows map always holds canonical ids.
    let rules: Vec<String> = rest[..close]
        .split(',')
        .map(str::trim)
        .filter(|r| !r.is_empty())
        .map(|r| {
            crate::rules::resolve_rule(r)
                .map(str::to_string)
                .ok_or_else(|| format!("unknown rule {r:?}"))
        })
        .collect::<Result<_, _>>()?;
    if rules.is_empty() {
        return Err("empty rule list".into());
    }
    let tail = rest[close + 1..].trim();
    let Some(reason) = tail.strip_prefix("--") else {
        return Err("missing `-- <reason>` suffix".into());
    };
    if reason.trim().is_empty() {
        return Err("empty reason after `--`".into());
    }
    Ok(rules)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx_of(text: &str) -> (SourceFile, Vec<bool>) {
        let file = SourceFile {
            path: "x.rs".into(),
            crate_name: "serve".into(),
            class: FileClass::Library,
            text: text.into(),
        };
        let lexed = lex(&file.text);
        let mask = test_mask(&lexed);
        (file, mask)
    }

    #[test]
    fn cfg_test_module_is_masked() {
        let src =
            "fn live() {}\n#[cfg(test)]\nmod tests {\n fn t() { x.unwrap(); }\n}\nfn tail() {}";
        let (file, mask) = ctx_of(src);
        let lexed = lex(&file.text);
        let unwrap_idx = lexed
            .tokens
            .iter()
            .position(|t| t.kind.ident() == Some("unwrap"))
            .unwrap();
        assert!(mask[unwrap_idx]);
        let tail_idx = lexed
            .tokens
            .iter()
            .position(|t| t.kind.ident() == Some("tail"))
            .unwrap();
        assert!(!mask[tail_idx]);
        let live_idx = lexed
            .tokens
            .iter()
            .position(|t| t.kind.ident() == Some("live"))
            .unwrap();
        assert!(!mask[live_idx]);
    }

    #[test]
    fn test_fn_attribute_masks_only_that_fn() {
        let src = "#[test]\nfn t() { a.unwrap(); }\nfn live() { b }";
        let (file, mask) = ctx_of(src);
        let lexed = lex(&file.text);
        let unwrap_idx = lexed
            .tokens
            .iter()
            .position(|t| t.kind.ident() == Some("unwrap"))
            .unwrap();
        assert!(mask[unwrap_idx]);
        let b_idx = lexed
            .tokens
            .iter()
            .position(|t| t.kind.ident() == Some("b"))
            .unwrap();
        assert!(!mask[b_idx]);
    }

    #[test]
    fn non_test_cfg_not_masked() {
        let src = "#[cfg(feature = \"x\")]\nfn f() { y.unwrap() }";
        let (file, mask) = ctx_of(src);
        let lexed = lex(&file.text);
        let unwrap_idx = lexed
            .tokens
            .iter()
            .position(|t| t.kind.ident() == Some("unwrap"))
            .unwrap();
        assert!(!mask[unwrap_idx]);
    }

    #[test]
    fn directive_parsing() {
        assert!(parse_directive("allow(no-panic-in-hot-path) -- spawn failure is fatal").is_ok());
        assert_eq!(
            parse_directive("allow(no-panic-in-hot-path, no-stdout-in-lib) -- two at once")
                .map(|r| r.len()),
            Ok(2)
        );
        assert!(parse_directive("allow(no-panic-in-hot-path)").is_err()); // no reason
        assert!(parse_directive("allow() -- reason").is_err()); // no rules
        assert!(parse_directive("allow(not-a-rule) -- reason").is_err());
        assert!(parse_directive("deny(no-panic-in-hot-path) -- x").is_err());
    }

    #[test]
    fn directive_covers_own_and_next_line() {
        let file = SourceFile {
            path: "x.rs".into(),
            crate_name: "serve".into(),
            class: FileClass::Library,
            text: "// qrec-lint: allow(no-panic-in-hot-path) -- fatal at startup\nx.unwrap();\n"
                .into(),
        };
        let ctx = FileContext::new(&file);
        assert!(ctx.allowed("no-panic-in-hot-path", 1));
        assert!(ctx.allowed("no-panic-in-hot-path", 2));
        assert!(!ctx.allowed("no-panic-in-hot-path", 3));
        assert!(!ctx.allowed("no-stdout-in-lib", 2));
        assert!(ctx.malformed.is_empty());
    }

    #[test]
    fn malformed_directive_is_a_finding() {
        let file = SourceFile {
            path: "x.rs".into(),
            crate_name: "serve".into(),
            class: FileClass::Library,
            text: "// qrec-lint: allow(no-panic-in-hot-path)\nx.unwrap();\n".into(),
        };
        let ctx = FileContext::new(&file);
        assert_eq!(ctx.malformed.len(), 1);
        assert_eq!(ctx.malformed[0].rule, "malformed-allow");
        assert!(!ctx.allowed("no-panic-in-hot-path", 2));
    }
}
