//! # qrec-lint — self-hosted workspace static analysis
//!
//! The serving stack added in `crates/serve` is the code path millions
//! of requests would traverse: a stray `panic!` aborts a worker thread,
//! a lock guard held across a decode call serialises the batcher. The
//! generic clippy lints cannot police those *project* invariants, and
//! the offline build rules out external tools (dylint, cargo-deny), so
//! — like the vendored dataset generators standing in for SDSS and
//! SQLShare — the correctness tooling is reproduced in-repo.
//!
//! The engine reuses the token-stream lexer design proven by
//! `crates/sql/src/lexer.rs`, walks every workspace source file,
//! separates library code from `#[cfg(test)]` modules / test files /
//! binaries / benches, and runs ten rules (see [`rules`]) — seven
//! local ones plus three interprocedural concurrency rules
//! (lock-order inversion, atomics-ordering hygiene, blocking calls in
//! hot paths) that reason over a workspace call graph built by
//! [`ast`], [`callgraph`], and [`lockgraph`]. Violations can be waived
//! inline with `// qrec-lint: allow(<rule>) -- <reason>` (the reason
//! is mandatory) or tolerated via the checked-in `lint-baseline.toml`
//! ratchet; `--check-baseline` additionally fails on stale baseline
//! entries.
//!
//! Run it with `cargo run -p qrec-lint --` (CI does, between clippy and
//! the build); add `--json` for machine-readable output, or
//! `--explain <rule>` for a rule's rationale and a minimal violating
//! example.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ast;
pub mod baseline;
pub mod callgraph;
pub mod diag;
pub mod file;
pub mod lexer;
pub mod lockgraph;
pub mod rules;
pub mod walk;

pub use baseline::{Baseline, BaselineError};
pub use diag::Finding;
pub use file::{FileClass, SourceFile};
pub use rules::{analyze, explain, Config, RULES};
pub use walk::{collect_workspace, Workspace};
