//! A name-based intra-workspace call graph.
//!
//! Nodes are crate-qualified function names (`serve:Batcher::submit`,
//! `tensor:gemm_nt`), matching the `crate:Type.field` vocabulary the
//! lock graph uses. Edges come from three call shapes, resolved with
//! decreasing precision:
//!
//! - `Foo::bar(…)` / `Self::bar(…)` — resolved to the nodes whose
//!   qualified name is `Foo::bar` (with `Self` rewritten to the
//!   caller's impl type); unknown qualifiers fall back to a free
//!   function named `bar`.
//! - `bar(…)` — a free call: the caller's own crate's free `bar` wins,
//!   then free `bar`s in dependency crates, then (callback-style
//!   over-approximation) every method named `bar`.
//! - `x.bar(…)` — a method call with an unknowable receiver type,
//!   linked to *every* reachable workspace method named `bar`.
//!
//! Two filters keep the name merging honest. First, an edge from crate
//! A to crate B only exists when A (transitively) depends on B — the
//! store crate cannot call into serve no matter how the names collide.
//! Second, method names dominated by std receivers (`insert`, `len`,
//! `store`, … — see [`AMBIENT_METHODS`]) never form unqualified edges:
//! a `HashMap::insert` call site says nothing about which workspace
//! `insert` runs, and every such site would otherwise fabricate an
//! edge. Both filters trade a sliver of recall for most of the false
//! positives; the runtime lock-order sanitizer in the `parking_lot`
//! shim covers the residual blind spot.

use crate::ast::FnItem;
use crate::file::FileContext;
use crate::lexer::Tok;
use std::collections::{HashMap, HashSet, VecDeque};

/// Identifiers that look like calls (`if (…)`, `match (…)`) but are
/// control flow, plus declaration keywords that precede `(`.
const NON_CALL_KEYWORDS: [&str; 10] = [
    "if", "while", "match", "for", "loop", "return", "fn", "where", "move", "in",
];

/// Method names dominated by std receivers (containers, atomics, io,
/// guards). An unqualified call to one of these says nothing about
/// which workspace function runs, so it never becomes an edge;
/// qualified calls (`Registry::insert(…)`) still resolve precisely.
const AMBIENT_METHODS: [&str; 31] = [
    // containers and iterators
    "new",
    "default",
    "clone",
    "insert",
    "remove",
    "get",
    "get_mut",
    "take",
    "len",
    "is_empty",
    "push",
    "pop",
    "next",
    "iter",
    "clear",
    "contains",
    "contains_key",
    "entry",
    "extend",
    "retain",
    "drain",
    // sync, atomics, io, formatting
    "drop",
    "store",
    "load",
    "swap",
    "read",
    "write",
    "flush",
    "lock",
    "join",
    "fmt",
];

/// Is `name` too common on std types to mean anything unqualified?
pub fn is_ambient(name: &str) -> bool {
    AMBIENT_METHODS.contains(&name)
}

/// The crate a node string belongs to (`serve:Batcher::submit` →
/// `serve`).
fn node_crate(node: &str) -> &str {
    node.split_once(':').map(|(c, _)| c).unwrap_or("")
}

/// The workspace call graph over crate-qualified function names.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// Crate-qualified names of every function in the analysed set.
    pub defined: HashSet<String>,
    /// simple name → every node carrying it.
    by_simple: HashMap<String, Vec<String>>,
    /// `Type::fn` qualified name → every node carrying it.
    by_qual: HashMap<String, Vec<String>>,
    /// caller node → callee nodes.
    pub calls: HashMap<String, HashSet<String>>,
    /// crate → crates it may call into (transitive deps + itself).
    /// Empty ⇒ no dependency information ⇒ every edge is allowed.
    dep_closure: HashMap<String, HashSet<String>>,
}

impl CallGraph {
    /// Build the graph over the functions of all files. `files` pairs
    /// each file's context with its parsed items; `crate_deps` maps
    /// each crate to its *direct* path dependencies (an empty map
    /// disables dependency-direction filtering).
    pub fn build(
        files: &[(&FileContext<'_>, &[FnItem])],
        crate_deps: &HashMap<String, Vec<String>>,
    ) -> CallGraph {
        let mut graph = CallGraph {
            dep_closure: transitive_deps(crate_deps),
            ..CallGraph::default()
        };
        for (ctx, items) in files {
            for item in *items {
                let node = format!("{}:{}", ctx.file.crate_name, item.qual_name());
                graph
                    .by_simple
                    .entry(item.name.clone())
                    .or_default()
                    .push(node.clone());
                graph
                    .by_qual
                    .entry(item.qual_name())
                    .or_default()
                    .push(node.clone());
                graph.defined.insert(node);
            }
        }
        for (ctx, items) in files {
            for item in *items {
                let Some((start, end)) = item.body else {
                    continue;
                };
                let node = format!("{}:{}", ctx.file.crate_name, item.qual_name());
                let callees = graph.callees_in_range(ctx, start, end, item);
                graph.calls.entry(node).or_default().extend(callees);
            }
        }
        graph
    }

    /// May code in `caller_crate` call into `node`'s crate?
    fn can_call(&self, caller_crate: &str, node: &str) -> bool {
        let target = node_crate(node);
        caller_crate == target
            || self
                .dep_closure
                .get(caller_crate)
                .is_none_or(|deps| deps.contains(target))
    }

    /// Resolve an *unqualified* callee name seen from `caller_crate`:
    /// own-crate free function first, then dependency crates' free
    /// functions, then the method-name merge. Ambient names resolve to
    /// nothing.
    pub fn candidates(&self, caller_crate: &str, simple: &str) -> Vec<String> {
        if is_ambient(simple) {
            return Vec::new();
        }
        let frees: Vec<String> = self
            .by_qual
            .get(simple)
            .into_iter()
            .flatten()
            .filter(|n| self.can_call(caller_crate, n))
            .cloned()
            .collect();
        let own = format!("{caller_crate}:{simple}");
        if frees.contains(&own) {
            return vec![own];
        }
        if !frees.is_empty() {
            return frees;
        }
        self.by_simple
            .get(simple)
            .into_iter()
            .flatten()
            .filter(|n| self.can_call(caller_crate, n))
            .cloned()
            .collect()
    }

    /// Calls inside one body range, resolved to graph nodes.
    fn callees_in_range(
        &self,
        ctx: &FileContext<'_>,
        start: usize,
        end: usize,
        caller: &FnItem,
    ) -> HashSet<String> {
        let toks = &ctx.lexed.tokens;
        let caller_crate = ctx.file.crate_name.as_str();
        let mut out = HashSet::new();
        for i in start..end.min(toks.len()) {
            let Tok::Ident(name) = &toks[i].kind else {
                continue;
            };
            if !toks.get(i + 1).is_some_and(|t| t.kind.is_punct(b'(')) {
                continue;
            }
            if NON_CALL_KEYWORDS.contains(&name.as_str()) {
                continue;
            }
            let prev = i.checked_sub(1).map(|j| &toks[j].kind);
            // `fn name(` declares, does not call.
            if prev.and_then(|k| k.ident()) == Some("fn") {
                continue;
            }
            if prev.is_some_and(|k| k.is_punct(b':')) {
                // Qualified call `Foo::bar(` — resolve exactly.
                let qualifier = i
                    .checked_sub(3)
                    .and_then(|j| toks[j].kind.ident())
                    .filter(|_| toks[i - 2].kind.is_punct(b':'));
                let qualifier = match qualifier {
                    Some("Self") => caller.impl_type.as_deref(),
                    q => q,
                };
                let qual_hits: Vec<String> = qualifier
                    .and_then(|q| self.by_qual.get(&format!("{q}::{name}")))
                    .into_iter()
                    .flatten()
                    .filter(|n| self.can_call(caller_crate, n))
                    .cloned()
                    .collect();
                if !qual_hits.is_empty() {
                    out.extend(qual_hits);
                } else if !qualifier
                    .is_some_and(|q| q.chars().next().is_some_and(char::is_uppercase))
                {
                    // `module::free_fn(` — fall back to the free fn.
                    // A type-like qualifier (`File::open`) with no
                    // workspace match is an external call, not a
                    // merge candidate.
                    out.extend(self.candidates(caller_crate, name));
                }
            } else if prev.is_some_and(|k| k.is_punct(b'.')) {
                // Method call with unknown receiver: merge by name,
                // unless the name is ambient std vocabulary.
                if !is_ambient(name) {
                    out.extend(
                        self.by_simple
                            .get(name.as_str())
                            .into_iter()
                            .flatten()
                            .filter(|n| self.can_call(caller_crate, n))
                            .cloned(),
                    );
                }
            } else {
                out.extend(self.candidates(caller_crate, name));
            }
        }
        out
    }

    /// Every node reachable from `from` (inclusive) by following call
    /// edges.
    pub fn reachable(&self, from: &str) -> HashSet<String> {
        let mut seen = HashSet::new();
        let mut queue = VecDeque::new();
        seen.insert(from.to_string());
        queue.push_back(from.to_string());
        while let Some(f) = queue.pop_front() {
            if let Some(callees) = self.calls.get(&f) {
                for c in callees {
                    if seen.insert(c.clone()) {
                        queue.push_back(c.clone());
                    }
                }
            }
        }
        seen
    }

    /// Shortest call path `from → … → to`, as a list of node names
    /// including both endpoints. `None` when unreachable.
    pub fn path(&self, from: &str, to: &str) -> Option<Vec<String>> {
        if from == to {
            return Some(vec![from.to_string()]);
        }
        let mut parent: HashMap<String, String> = HashMap::new();
        let mut queue = VecDeque::new();
        queue.push_back(from.to_string());
        parent.insert(from.to_string(), String::new());
        while let Some(f) = queue.pop_front() {
            if let Some(callees) = self.calls.get(&f) {
                for c in callees {
                    if parent.contains_key(c) {
                        continue;
                    }
                    parent.insert(c.clone(), f.clone());
                    if c == to {
                        let mut path = vec![c.clone()];
                        let mut cur = f;
                        while !cur.is_empty() {
                            path.push(cur.clone());
                            cur = parent.get(&cur).cloned().unwrap_or_default();
                        }
                        path.reverse();
                        return Some(path);
                    }
                    queue.push_back(c.clone());
                }
            }
        }
        None
    }
}

/// Transitive closure of the direct-dependency map, each crate
/// including itself.
fn transitive_deps(direct: &HashMap<String, Vec<String>>) -> HashMap<String, HashSet<String>> {
    let mut out = HashMap::new();
    for name in direct.keys() {
        let mut seen: HashSet<String> = HashSet::new();
        let mut queue = VecDeque::new();
        seen.insert(name.clone());
        queue.push_back(name.clone());
        while let Some(c) = queue.pop_front() {
            for d in direct.get(&c).into_iter().flatten() {
                if seen.insert(d.clone()) {
                    queue.push_back(d.clone());
                }
            }
        }
        out.insert(name.clone(), seen);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::parse_fns;
    use crate::file::{FileClass, SourceFile};

    fn files_of(sources: &[(&str, &str)]) -> Vec<SourceFile> {
        sources
            .iter()
            .map(|(krate, src)| SourceFile {
                path: format!("crates/{krate}/src/lib.rs"),
                crate_name: krate.to_string(),
                class: FileClass::Library,
                text: src.to_string(),
            })
            .collect()
    }

    fn graph_with_deps(sources: &[(&str, &str)], deps: &[(&str, &[&str])]) -> CallGraph {
        let files = files_of(sources);
        let ctxs: Vec<FileContext<'_>> = files.iter().map(FileContext::new).collect();
        let parsed: Vec<Vec<FnItem>> = ctxs.iter().map(|c| parse_fns(&c.lexed)).collect();
        let input: Vec<(&FileContext<'_>, &[FnItem])> = ctxs
            .iter()
            .zip(parsed.iter())
            .map(|(c, p)| (c, p.as_slice()))
            .collect();
        let dep_map: HashMap<String, Vec<String>> = deps
            .iter()
            .map(|(k, v)| (k.to_string(), v.iter().map(|s| s.to_string()).collect()))
            .collect();
        CallGraph::build(&input, &dep_map)
    }

    fn graph_of(src: &str) -> CallGraph {
        graph_with_deps(&[("x", src)], &[])
    }

    #[test]
    fn direct_and_method_calls_are_edges() {
        let g = graph_of(
            "fn a() { b(); }\n\
             impl S { fn b(&self) { self.c(); } fn c(&self) {} }\n",
        );
        assert!(g.calls["x:a"].contains("x:S::b"));
        assert!(g.calls["x:S::b"].contains("x:S::c"));
        assert!(g.reachable("x:a").contains("x:S::c"));
    }

    #[test]
    fn external_and_ambient_calls_are_not_edges() {
        let g = graph_of(
            "fn a(v: &mut Vec<u32>) { v.push(1); m.insert(0, 1); b(); }\n\
             fn b() {}\n\
             impl M { fn insert(&self) {} }",
        );
        assert_eq!(g.calls["x:a"], HashSet::from(["x:b".to_string()]));
    }

    #[test]
    fn qualified_calls_resolve_exactly() {
        let g = graph_of(
            "impl A { fn go(&self) { B::init(); Self::halt(); HashMap::new(); } fn halt() {} }\n\
             impl B { fn init() {} }\n\
             impl C { fn other() {} }",
        );
        assert_eq!(
            g.calls["x:A::go"],
            HashSet::from(["x:B::init".to_string(), "x:A::halt".to_string()])
        );
    }

    #[test]
    fn same_named_free_fns_in_unrelated_crates_do_not_merge() {
        // `serve` and `tensor` both define a private free `dispatch`;
        // tensor does not depend on serve, so tensor's caller must not
        // gain an edge into serve's dispatch.
        let g = graph_with_deps(
            &[
                (
                    "serve",
                    "fn handle() { dispatch(); } fn dispatch() { hot(); } fn hot() {}",
                ),
                ("tensor", "fn gemm() { dispatch(); } fn dispatch() {}"),
            ],
            &[("serve", &["tensor"]), ("tensor", &[])],
        );
        assert_eq!(
            g.calls["tensor:gemm"],
            HashSet::from(["tensor:dispatch".to_string()])
        );
        assert_eq!(
            g.calls["serve:handle"],
            HashSet::from(["serve:dispatch".to_string()])
        );
        assert!(!g.reachable("tensor:gemm").contains("serve:hot"));
    }

    #[test]
    fn dependency_direction_gates_method_merges() {
        // store does not depend on serve: its `.sweep()` call cannot
        // resolve to serve's method.
        let g = graph_with_deps(
            &[
                ("serve", "impl A { fn sweep(&self) {} }"),
                ("store", "impl B { fn go(&self) { self.x.sweep(); } }"),
            ],
            &[("serve", &["store"]), ("store", &[])],
        );
        assert!(g
            .calls
            .get("store:B::go")
            .map(|c| c.is_empty())
            .unwrap_or(true));
        let g2 = graph_with_deps(
            &[
                ("serve", "impl A { fn go(&self) { self.x.sweep(); } }"),
                ("store", "impl B { fn sweep(&self) {} }"),
            ],
            &[("serve", &["store"]), ("store", &[])],
        );
        assert!(g2.calls["serve:A::go"].contains("store:B::sweep"));
    }

    #[test]
    fn control_flow_parens_are_not_calls() {
        let g = graph_of("fn a(x: bool) { if (x) { } match (x) { _ => {} } }");
        assert!(g.calls.get("x:a").map(|c| c.is_empty()).unwrap_or(true));
    }

    #[test]
    fn path_reconstruction() {
        let g = graph_of("fn a() { b(); } fn b() { c(); } fn c() {} fn d() {}");
        assert_eq!(
            g.path("x:a", "x:c"),
            Some(vec![
                "x:a".to_string(),
                "x:b".to_string(),
                "x:c".to_string()
            ])
        );
        assert_eq!(g.path("x:a", "x:d"), None);
    }

    #[test]
    fn recursion_terminates() {
        let g = graph_of("fn a() { a(); b(); } fn b() { a(); }");
        let r = g.reachable("x:a");
        assert!(r.contains("x:a") && r.contains("x:b"));
    }
}
