//! End-to-end checks against the real workspace: the shipped tree must
//! be clean modulo the checked-in baseline, and the engine must still
//! catch a deliberately injected violation in real serving code.

use qrec_lint::{analyze, Baseline, Config, FileClass, SourceFile};
use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// The acceptance bar for the PR: `cargo run -p qrec-lint` on the real
/// workspace reports zero violations that are not in the baseline.
#[test]
fn real_workspace_has_no_fresh_violations() {
    let root = workspace_root();
    let ws = qrec_lint::collect_workspace(&root).expect("walk workspace");
    assert!(
        ws.files.len() > 50,
        "walker should see the whole workspace, got {} files",
        ws.files.len()
    );
    let baseline = match std::fs::read_to_string(root.join("lint-baseline.toml")) {
        Ok(text) => Baseline::parse(&text).expect("baseline parses"),
        Err(_) => Baseline::default(),
    };
    let fresh: Vec<_> = analyze(&ws.files, &ws.config)
        .into_iter()
        .filter(|f| !baseline.contains(f))
        .collect();
    assert!(
        fresh.is_empty(),
        "fresh violations in the shipped tree:\n{}",
        fresh
            .iter()
            .map(|f| f.render())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// Self-test from the issue: seed a real hot-path file
/// (`crates/serve/src/batcher.rs`) with an `.unwrap()` and prove the
/// engine fails on it. Guards against the rules rotting into no-ops
/// while the workspace stays green.
#[test]
fn injected_unwrap_in_batcher_is_caught() {
    let root = workspace_root();
    let path = root.join("crates/serve/src/batcher.rs");
    let clean = std::fs::read_to_string(&path).expect("read batcher.rs");

    // Splice a panicking line into non-test library code: right after
    // the first `use ` line, well before any `#[cfg(test)]` module.
    let insert_at = clean.find("use ").expect("batcher.rs has imports");
    let line_end = clean[insert_at..].find('\n').expect("newline") + insert_at + 1;
    let seeded = format!(
        "{}fn injected_probe(x: Option<u32>) -> u32 {{ x.unwrap() }}\n{}",
        &clean[..line_end],
        &clean[line_end..]
    );

    let lint = |text: &str| {
        analyze(
            &[SourceFile {
                path: "crates/serve/src/batcher.rs".into(),
                crate_name: "serve".into(),
                class: FileClass::Library,
                text: text.into(),
            }],
            &Config::default(),
        )
    };

    assert!(
        lint(&clean).is_empty(),
        "shipped batcher.rs must be clean for the injection to be the delta"
    );
    let findings = lint(&seeded);
    assert_eq!(findings.len(), 1, "exactly the injected line: {findings:?}");
    assert_eq!(findings[0].rule, "no-panic-in-hot-path");
    assert_eq!(findings[0].file, "crates/serve/src/batcher.rs");
}

/// The tensor crate — home of the GEMM kernel and the compute pool — is
/// hot-path code: the walker must classify its modules as library files
/// and R1 must fire on a panic seeded into either of them.
#[test]
fn tensor_kernel_and_pool_are_hot_path() {
    let root = workspace_root();
    let ws = qrec_lint::collect_workspace(&root).expect("walk workspace");
    assert!(
        ws.config.hot_path_crates.iter().any(|c| c == "tensor"),
        "tensor must be a hot-path crate: {:?}",
        ws.config.hot_path_crates
    );
    for module in ["kernel", "pool"] {
        let rel = format!("crates/tensor/src/{module}.rs");
        let file = ws
            .files
            .iter()
            .find(|f| f.path == rel)
            .unwrap_or_else(|| panic!("walker must see {rel}"));
        assert_eq!(file.class, FileClass::Library, "{rel} is library code");
        assert_eq!(file.crate_name, "tensor");

        // Seed a panic into the real module text and prove R1 catches
        // exactly that delta (the shipped text must already be clean).
        let lint = |text: &str| {
            analyze(
                &[SourceFile {
                    path: rel.clone(),
                    crate_name: "tensor".into(),
                    class: FileClass::Library,
                    text: text.into(),
                }],
                &Config::default(),
            )
        };
        assert!(
            lint(&file.text).is_empty(),
            "shipped {rel} must be clean for the injection to be the delta"
        );
        let seeded = format!(
            "fn injected(x: Option<u32>) -> u32 {{ x.unwrap() }}\n{}",
            file.text
        );
        let findings = lint(&seeded);
        assert_eq!(findings.len(), 1, "exactly the injected line: {findings:?}");
        assert_eq!(findings[0].rule, "no-panic-in-hot-path");
    }
}

/// The incremental-decode state module is hot-path library code in
/// `nn`: the shipped text is clean, and an injected panic is caught as
/// exactly one R1 finding (same self-test shape as the tensor kernel).
#[test]
fn incremental_decode_state_is_hot_path() {
    let root = workspace_root();
    let ws = qrec_lint::collect_workspace(&root).expect("walk workspace");
    assert!(
        ws.config.hot_path_crates.iter().any(|c| c == "nn"),
        "nn must be a hot-path crate: {:?}",
        ws.config.hot_path_crates
    );
    let rel = "crates/nn/src/incremental.rs";
    let file = ws
        .files
        .iter()
        .find(|f| f.path == rel)
        .unwrap_or_else(|| panic!("walker must see {rel}"));
    assert_eq!(file.class, FileClass::Library, "{rel} is library code");
    assert_eq!(file.crate_name, "nn");

    let lint = |text: &str| {
        analyze(
            &[SourceFile {
                path: rel.into(),
                crate_name: "nn".into(),
                class: FileClass::Library,
                text: text.into(),
            }],
            &Config::default(),
        )
    };
    assert!(
        lint(&file.text).is_empty(),
        "shipped {rel} must be clean for the injection to be the delta"
    );
    let seeded = format!(
        "fn injected(x: Option<u32>) -> u32 {{ x.unwrap() }}\n{}",
        file.text
    );
    let findings = lint(&seeded);
    assert_eq!(findings.len(), 1, "exactly the injected line: {findings:?}");
    assert_eq!(findings[0].rule, "no-panic-in-hot-path");
}

/// The metric hot path in `qrec-obs` must stay allocation-free: the
/// shipped `metric.rs` is clean under R7, and an allocation seeded into
/// a recording function is caught as exactly one finding.
#[test]
fn obs_metric_record_path_is_allocation_free() {
    let root = workspace_root();
    let ws = qrec_lint::collect_workspace(&root).expect("walk workspace");
    assert!(
        ws.config.hot_path_crates.iter().any(|c| c == "obs"),
        "obs must be covered by the metric-path rule: {:?}",
        ws.config.hot_path_crates
    );
    let rel = "crates/obs/src/metric.rs";
    let file = ws
        .files
        .iter()
        .find(|f| f.path == rel)
        .unwrap_or_else(|| panic!("walker must see {rel}"));
    assert_eq!(file.class, FileClass::Library, "{rel} is library code");
    assert_eq!(file.crate_name, "obs");

    let lint = |text: &str| {
        analyze(
            &[SourceFile {
                path: rel.into(),
                crate_name: "obs".into(),
                class: FileClass::Library,
                text: text.into(),
            }],
            &Config::default(),
        )
    };
    assert!(
        lint(&file.text).is_empty(),
        "shipped {rel} must be clean for the injection to be the delta"
    );
    let seeded = format!(
        "pub fn record_injected(v: u64) -> usize {{ v.to_string().len() }}\n{}",
        file.text
    );
    let findings = lint(&seeded);
    assert_eq!(
        findings.len(),
        1,
        "exactly the injected allocation: {findings:?}"
    );
    assert_eq!(findings[0].rule, "no-alloc-in-metric-path");
}

/// The telemetry-engine modules — the window ring, the SpaceSaving
/// sketch, and the drift scorer — are metric-path library code in
/// `obs`: each shipped module is clean under R7, and an allocation
/// seeded into a recording function of each is caught as exactly one
/// finding.
#[test]
fn telemetry_modules_keep_record_paths_allocation_free() {
    let root = workspace_root();
    let ws = qrec_lint::collect_workspace(&root).expect("walk workspace");
    for module in ["window", "sketch", "drift"] {
        let rel = format!("crates/obs/src/{module}.rs");
        let file = ws
            .files
            .iter()
            .find(|f| f.path == rel)
            .unwrap_or_else(|| panic!("walker must see {rel}"));
        assert_eq!(file.class, FileClass::Library, "{rel} is library code");
        assert_eq!(file.crate_name, "obs");

        let lint = |text: &str| {
            analyze(
                &[SourceFile {
                    path: rel.clone(),
                    crate_name: "obs".into(),
                    class: FileClass::Library,
                    text: text.into(),
                }],
                &Config::default(),
            )
        };
        assert!(
            lint(&file.text).is_empty(),
            "shipped {rel} must be clean for the injection to be the delta"
        );
        let seeded = format!(
            "pub fn record_injected(v: u64) -> usize {{ v.to_string().len() }}\n{}",
            file.text
        );
        let findings = lint(&seeded);
        assert_eq!(
            findings.len(),
            1,
            "exactly the injected allocation in {rel}: {findings:?}"
        );
        assert_eq!(findings[0].rule, "no-alloc-in-metric-path");
    }
}

/// The durable store is hot-path library code (every session write
/// crosses its WAL): the shipped modules are clean, and an injected
/// panic in the WAL append path is caught as exactly one R1 finding.
#[test]
fn store_wal_path_is_hot_path() {
    let root = workspace_root();
    let ws = qrec_lint::collect_workspace(&root).expect("walk workspace");
    assert!(
        ws.config.hot_path_crates.iter().any(|c| c == "store"),
        "store must be a hot-path crate: {:?}",
        ws.config.hot_path_crates
    );
    assert!(
        ws.config.lock_call_crates.iter().any(|c| c == "store"),
        "store must be covered by the lock-across-call rule: {:?}",
        ws.config.lock_call_crates
    );
    for module in ["wal", "store"] {
        let rel = format!("crates/store/src/{module}.rs");
        let file = ws
            .files
            .iter()
            .find(|f| f.path == rel)
            .unwrap_or_else(|| panic!("walker must see {rel}"));
        assert_eq!(file.class, FileClass::Library, "{rel} is library code");
        assert_eq!(file.crate_name, "store");

        let lint = |text: &str| {
            analyze(
                &[SourceFile {
                    path: rel.clone(),
                    crate_name: "store".into(),
                    class: FileClass::Library,
                    text: text.into(),
                }],
                &Config::default(),
            )
        };
        assert!(
            lint(&file.text).is_empty(),
            "shipped {rel} must be clean for the injection to be the delta"
        );
        let seeded = format!(
            "fn injected(x: Option<u32>) -> u32 {{ x.unwrap() }}\n{}",
            file.text
        );
        let findings = lint(&seeded);
        assert_eq!(findings.len(), 1, "exactly the injected line: {findings:?}");
        assert_eq!(findings[0].rule, "no-panic-in-hot-path");
    }
}

/// The int8 quantization layer — the qi8 kernels in `tensor` and the
/// sidecar plumbing in `nn` — is decode-hot-path library code: the
/// shipped modules are clean, and an injected panic in each is caught
/// as exactly one R1 finding.
#[test]
fn quantized_decode_modules_are_hot_path() {
    let root = workspace_root();
    let ws = qrec_lint::collect_workspace(&root).expect("walk workspace");
    for (rel, crate_name) in [
        ("crates/tensor/src/qi8.rs", "tensor"),
        ("crates/nn/src/quant.rs", "nn"),
        ("crates/nn/src/decode.rs", "nn"),
    ] {
        assert!(
            ws.config.hot_path_crates.iter().any(|c| c == crate_name),
            "{crate_name} must be a hot-path crate: {:?}",
            ws.config.hot_path_crates
        );
        let file = ws
            .files
            .iter()
            .find(|f| f.path == rel)
            .unwrap_or_else(|| panic!("walker must see {rel}"));
        assert_eq!(file.class, FileClass::Library, "{rel} is library code");
        assert_eq!(file.crate_name, crate_name);

        let lint = |text: &str| {
            analyze(
                &[SourceFile {
                    path: rel.into(),
                    crate_name: crate_name.into(),
                    class: FileClass::Library,
                    text: text.into(),
                }],
                &Config::default(),
            )
        };
        assert!(
            lint(&file.text).is_empty(),
            "shipped {rel} must be clean for the injection to be the delta"
        );
        let seeded = format!(
            "fn injected(x: Option<u32>) -> u32 {{ x.unwrap() }}\n{}",
            file.text
        );
        let findings = lint(&seeded);
        assert_eq!(findings.len(), 1, "exactly the injected line: {findings:?}");
        assert_eq!(findings[0].rule, "no-panic-in-hot-path");
    }
}

/// R10 reaches through the quantized kernel module: a decode-named
/// entry seeded into `qi8.rs` whose callee blocks on fsync is flagged,
/// proving the int8 GEMM participates in the hot-entry reachability
/// analysis like any other decode-path code.
#[test]
fn injected_blocking_call_in_qi8_under_decode_entry_is_caught() {
    let root = workspace_root();
    let rel = "crates/tensor/src/qi8.rs";
    let clean = std::fs::read_to_string(root.join(rel)).expect("read qi8.rs");

    let lint = |text: &str| {
        analyze(
            &[SourceFile {
                path: rel.into(),
                crate_name: "tensor".into(),
                class: FileClass::Library,
                text: text.into(),
            }],
            &Config::default(),
        )
    };
    assert!(
        lint(&clean).is_empty(),
        "shipped {rel} must be clean for the injection to be the delta"
    );
    let seeded = format!(
        "fn decode_quant_injected(s: &InjState) {{ injected_flush(s); }}\n\
         fn injected_flush(s: &InjState) {{ s.inj_file.sync_all(); }}\n\
         {clean}"
    );
    let findings = lint(&seeded);
    assert_eq!(
        findings.len(),
        1,
        "exactly the injected fsync: {findings:?}"
    );
    assert_eq!(findings[0].rule, "blocking-call-in-hot-path");
    assert!(
        findings[0].message.contains("tensor:decode_quant_injected"),
        "message names the decode entry: {}",
        findings[0].message
    );
}

/// R8 self-test: seed an ABBA pair into real decoder-state code and
/// prove the inversion is caught as exactly one finding.
#[test]
fn injected_lock_inversion_is_caught() {
    let root = workspace_root();
    let rel = "crates/nn/src/incremental.rs";
    let clean = std::fs::read_to_string(root.join(rel)).expect("read incremental.rs");

    let lint = |text: &str| {
        analyze(
            &[SourceFile {
                path: rel.into(),
                crate_name: "nn".into(),
                class: FileClass::Library,
                text: text.into(),
            }],
            &Config::default(),
        )
    };
    assert!(
        lint(&clean).is_empty(),
        "shipped {rel} must be clean for the injection to be the delta"
    );
    let seeded = format!(
        "fn injected_fwd(p: &InjPair) {{ let _a = p.inj_alpha.lock(); let _b = p.inj_beta.lock(); }}\n\
         fn injected_bwd(p: &InjPair) {{ let _b = p.inj_beta.lock(); let _a = p.inj_alpha.lock(); }}\n\
         {clean}"
    );
    let findings = lint(&seeded);
    assert_eq!(
        findings.len(),
        1,
        "exactly the injected cycle: {findings:?}"
    );
    assert_eq!(findings[0].rule, "lock-order-inversion");
}

/// R9 self-test: seed a `Relaxed` publication store into the real
/// metric module and prove it is caught as exactly one finding.
#[test]
fn injected_relaxed_publication_store_is_caught() {
    let root = workspace_root();
    let rel = "crates/obs/src/metric.rs";
    let clean = std::fs::read_to_string(root.join(rel)).expect("read metric.rs");

    let lint = |text: &str| {
        analyze(
            &[SourceFile {
                path: rel.into(),
                crate_name: "obs".into(),
                class: FileClass::Library,
                text: text.into(),
            }],
            &Config::default(),
        )
    };
    assert!(
        lint(&clean).is_empty(),
        "shipped {rel} must be clean for the injection to be the delta"
    );
    let seeded = format!(
        "fn injected_publish(p: &InjProbe) {{ p.inj_ready.store(true, Ordering::Relaxed); }}\n\
         {clean}"
    );
    let findings = lint(&seeded);
    assert_eq!(
        findings.len(),
        1,
        "exactly the injected store: {findings:?}"
    );
    assert_eq!(findings[0].rule, "atomics-ordering-hygiene");
}

/// R10 self-test: seed a recommend-entry → fsync chain into the real
/// batcher and prove the reachability analysis flags the fsync line.
#[test]
fn injected_blocking_call_under_hot_entry_is_caught() {
    let root = workspace_root();
    let rel = "crates/serve/src/batcher.rs";
    let clean = std::fs::read_to_string(root.join(rel)).expect("read batcher.rs");

    let lint = |text: &str| {
        analyze(
            &[SourceFile {
                path: rel.into(),
                crate_name: "serve".into(),
                class: FileClass::Library,
                text: text.into(),
            }],
            &Config::default(),
        )
    };
    assert!(
        lint(&clean).is_empty(),
        "shipped {rel} must be clean for the injection to be the delta"
    );
    let seeded = format!(
        "fn recommend_injected(s: &InjState) {{ injected_persist(s); }}\n\
         fn injected_persist(s: &InjState) {{ s.inj_file.sync_all(); }}\n\
         {clean}"
    );
    let findings = lint(&seeded);
    assert_eq!(
        findings.len(),
        1,
        "exactly the injected fsync: {findings:?}"
    );
    assert_eq!(findings[0].rule, "blocking-call-in-hot-path");
    assert!(
        findings[0].message.contains("serve:recommend_injected"),
        "message names the entry point: {}",
        findings[0].message
    );
}

/// The serve event loop and the vendored `polling` shim it runs on are
/// both hot-path library code: the walker promotes the shim out of the
/// safety-comments-only class, and R1 fires on a panic seeded into
/// either file.
#[test]
fn eventloop_and_polling_shim_are_hot_path() {
    let root = workspace_root();
    let ws = qrec_lint::collect_workspace(&root).expect("walk workspace");
    assert!(
        ws.config.hot_path_crates.iter().any(|c| c == "polling"),
        "polling must be a hot-path crate: {:?}",
        ws.config.hot_path_crates
    );
    for (rel, crate_name) in [
        ("crates/serve/src/eventloop.rs", "serve"),
        ("shims/polling/src/lib.rs", "polling"),
    ] {
        let file = ws
            .files
            .iter()
            .find(|f| f.path == rel)
            .unwrap_or_else(|| panic!("walker must see {rel}"));
        assert_eq!(file.class, FileClass::Library, "{rel} is library code");
        assert_eq!(file.crate_name, crate_name);

        let lint = |text: &str| {
            analyze(
                &[SourceFile {
                    path: rel.into(),
                    crate_name: crate_name.into(),
                    class: FileClass::Library,
                    text: text.into(),
                }],
                &Config::default(),
            )
        };
        assert!(
            lint(&file.text).is_empty(),
            "shipped {rel} must be clean for the injection to be the delta"
        );
        let seeded = format!(
            "fn injected(x: Option<u32>) -> u32 {{ x.unwrap() }}\n{}",
            file.text
        );
        let findings = lint(&seeded);
        assert_eq!(findings.len(), 1, "exactly the injected line: {findings:?}");
        assert_eq!(findings[0].rule, "no-panic-in-hot-path");
    }
}

/// R10 treats the `tick*` family as hot entries: a tick-named function
/// seeded into the real event-loop module whose callee blocks on fsync
/// is flagged — one stalled tick stalls every connection, so blocking
/// calls must never be reachable from the loop.
#[test]
fn injected_blocking_call_under_tick_entry_is_caught() {
    let root = workspace_root();
    let rel = "crates/serve/src/eventloop.rs";
    let clean = std::fs::read_to_string(root.join(rel)).expect("read eventloop.rs");

    let lint = |text: &str| {
        analyze(
            &[SourceFile {
                path: rel.into(),
                crate_name: "serve".into(),
                class: FileClass::Library,
                text: text.into(),
            }],
            &Config::default(),
        )
    };
    assert!(
        lint(&clean).is_empty(),
        "shipped {rel} must be clean for the injection to be the delta"
    );
    let seeded = format!(
        "fn tick_injected(s: &InjState) {{ injected_flush(s); }}\n\
         fn injected_flush(s: &InjState) {{ s.inj_file.sync_all(); }}\n\
         {clean}"
    );
    let findings = lint(&seeded);
    assert_eq!(
        findings.len(),
        1,
        "exactly the injected fsync: {findings:?}"
    );
    assert_eq!(findings[0].rule, "blocking-call-in-hot-path");
    assert!(
        findings[0].message.contains("serve:tick_injected"),
        "message names the tick entry: {}",
        findings[0].message
    );
}

/// An allow directive without the mandatory `-- <reason>` must not
/// suppress the violation, and is itself reported.
#[test]
fn allow_without_reason_is_rejected() {
    let text = "\
pub fn hot(x: Option<u32>) -> u32 {
    // qrec-lint: allow(no-panic-in-hot-path)
    x.unwrap()
}
";
    let findings = analyze(
        &[SourceFile {
            path: "crates/serve/src/x.rs".into(),
            crate_name: "serve".into(),
            class: FileClass::Library,
            text: text.into(),
        }],
        &Config::default(),
    );
    let rules: Vec<&str> = findings.iter().map(|f| f.rule.as_str()).collect();
    assert!(
        rules.contains(&"malformed-allow"),
        "missing reason is itself a finding: {findings:?}"
    );
    assert!(
        rules.contains(&"no-panic-in-hot-path"),
        "a reasonless allow must not suppress the violation: {findings:?}"
    );
}

/// The same directive *with* a reason suppresses the violation.
#[test]
fn allow_with_reason_suppresses() {
    let text = "\
pub fn hot(x: Option<u32>) -> u32 {
    // qrec-lint: allow(no-panic-in-hot-path) -- invariant: caller checked is_some
    x.unwrap()
}
";
    let findings = analyze(
        &[SourceFile {
            path: "crates/serve/src/x.rs".into(),
            crate_name: "serve".into(),
            class: FileClass::Library,
            text: text.into(),
        }],
        &Config::default(),
    );
    assert!(
        findings.is_empty(),
        "reasoned allow suppresses: {findings:?}"
    );
}
