//! R4 negative fixture: a public error enum implementing both
//! `Display` and `std::error::Error`, plus a non-error enum that the
//! rule must ignore.

pub enum StoreError {
    Missing(String),
    Corrupt { offset: usize },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Missing(k) => write!(f, "missing key {k}"),
            StoreError::Corrupt { offset } => write!(f, "corrupt at {offset}"),
        }
    }
}

impl std::error::Error for StoreError {}

/// Not named `*Error`: out of the rule's scope entirely.
pub enum Verdict {
    Keep,
    Evict,
}
