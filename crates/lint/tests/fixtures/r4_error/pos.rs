//! R4 positive fixture: a public error enum with a `Display` impl but
//! no `std::error::Error` impl — half-finished error hygiene.

pub enum FetchError {
    Timeout,
    Disconnected,
}

impl std::fmt::Display for FetchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FetchError::Timeout => write!(f, "timed out"),
            FetchError::Disconnected => write!(f, "disconnected"),
        }
    }
}
