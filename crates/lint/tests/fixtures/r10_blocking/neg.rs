//! R10 negative fixture: the same fsync exists, but only a flush-path
//! function reaches it — no hot-path entry point does.

pub fn decode_step(state: &State) -> Step {
    advance(state)
}

pub fn flush_manifest(state: &State) {
    state.file.sync_all();
}

fn advance(state: &State) -> Step {
    Step::from(state)
}
