//! R10 positive fixture: a decode entry point reaching an fsync two
//! calls deep — the WAL-on-the-request-path shape the rule exists for.

pub fn decode_step(state: &State) -> Step {
    persist(state);
    advance(state)
}

fn persist(state: &State) {
    state.file.sync_all();
}

fn advance(state: &State) -> Step {
    Step::from(state)
}
