//! R5 negative fixture: a documented `unsafe` block, plus an
//! `unsafe fn` signature, which is a declaration and not a block.

pub fn reinterpret(bytes: &[u8]) -> &[u32] {
    // SAFETY: the caller guarantees `bytes` is 4-byte aligned, and the
    // length is truncated to whole u32 words.
    unsafe { std::slice::from_raw_parts(bytes.as_ptr().cast(), bytes.len() / 4) }
}

pub unsafe fn raw_len(ptr: *const u8) -> usize {
    ptr as usize
}
