//! R5 positive fixture: an `unsafe` block with no safety note at all.

pub fn reinterpret(bytes: &[u8]) -> &[u32] {
    unsafe { std::slice::from_raw_parts(bytes.as_ptr().cast(), bytes.len() / 4) }
}
