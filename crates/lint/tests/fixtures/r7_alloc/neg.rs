//! R7 negative fixture: recording reuses pre-registered state, and
//! registration-time pre-sizing (`Vec::with_capacity`) stays allowed.

pub struct Counter {
    value: u64,
    buf: Vec<u64>,
}

impl Counter {
    pub fn record(&mut self, v: u64) {
        self.value += v;
    }

    /// Pre-sizing inside a recording path is the sanctioned pattern.
    pub fn record_reserve(&mut self, n: usize) {
        if self.buf.capacity() == 0 {
            self.buf = Vec::with_capacity(n);
        }
    }

    /// Allocation outside the recording path (snapshotting) is fine.
    pub fn describe(&self) -> String {
        let mut s = String::new();
        s.push('c');
        s
    }
}

pub fn lookup(key: &Key, cache: &Cache) -> Option<Entry> {
    Span::in_span("cache", || cache.get(key))
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_allocate_freely() {
        let label = format!("value-{}", 1);
        assert!(!label.is_empty());
    }
}

/// Ring rotation without allocation: the sealed bucket is reset in
/// place and the head advances modulo the pre-sized ring.
pub fn record_window_rotate(ring: &mut Ring) {
    let head = (ring.head + 1) % ring.slots.len();
    ring.head = head;
    if let Some(slot) = ring.slots.get_mut(head) {
        slot.reset();
    }
}

/// SpaceSaving update without allocation: the minimum slot is replaced
/// in place when the key is new.
pub fn observe_template(sketch: &mut Sketch, id: u64) {
    if let Some(entry) = sketch.slots.iter_mut().min_by_key(|e| e.count) {
        entry.id = id;
        entry.count += 1;
    }
    sketch.total += 1;
}
