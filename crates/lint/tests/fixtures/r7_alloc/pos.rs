//! R7 positive fixture: per-call allocation on metric recording paths.

pub struct Counter {
    hits: u64,
}

impl Counter {
    /// A recording function that builds a `String` every call.
    pub fn record(&mut self, v: u64) {
        let label = format!("value-{v}");
        self.hits += u64::from(!label.is_empty());
    }
}

/// A span closure that allocates: the allocation is both measured as
/// stage time and repeated per request.
pub fn lookup(key: &Key, cache: &Cache) -> Option<Entry> {
    Span::in_span("cache", || cache.get(&key.text.to_string()))
}

/// A window-seal recording path that builds its delta buffer per call
/// instead of reusing the ring's pre-sized storage.
pub fn record_window_seal(ring: &mut Ring) {
    ring.deltas = vec![0; ring.width];
    ring.head += 1;
}

/// A sketch-update path that stringifies the template id on every hit.
pub fn observe_template(sketch: &mut Sketch, id: u64) {
    sketch.last_label = id.to_string();
    sketch.total += 1;
}
