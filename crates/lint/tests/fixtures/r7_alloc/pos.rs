//! R7 positive fixture: per-call allocation on metric recording paths.

pub struct Counter {
    hits: u64,
}

impl Counter {
    /// A recording function that builds a `String` every call.
    pub fn record(&mut self, v: u64) {
        let label = format!("value-{v}");
        self.hits += u64::from(!label.is_empty());
    }
}

/// A span closure that allocates: the allocation is both measured as
/// stage time and repeated per request.
pub fn lookup(key: &Key, cache: &Cache) -> Option<Entry> {
    Span::in_span("cache", || cache.get(&key.text.to_string()))
}
