//! R1 negative fixture: typed errors, computed indexing, parser-style
//! `expect(Token)` methods, and test code — none of it should fire.

pub fn cool(xs: &[u32]) -> Option<u32> {
    let first = xs.first()?;
    let idx = xs.len() / 2;
    let mid = xs.get(idx)?;
    let fallback = xs.first().copied().unwrap_or(0);
    Some(first + mid + xs[idx] + fallback)
}

/// `.expect(` with a non-string first argument is a user-defined
/// parser method returning `Result`, not `Option/Result::expect`.
pub fn parse(p: &mut Parser) -> Result<(), ParseError> {
    p.expect(Token::LParen)?;
    p.expect(Token::RParen)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_panic_freely() {
        let xs = [1u32];
        assert_eq!(*xs.first().unwrap(), 1);
        assert_eq!(xs[0], 1);
        let _ = xs.first().expect("non-empty in this test");
    }
}
