//! R1 positive fixture: every panicking shape the rule catches.

pub fn hot(xs: &[u32]) -> u32 {
    let first = xs.first().unwrap();
    let second = xs.get(1).expect("second element present");
    if *first > 100 {
        panic!("impossible bucket");
    }
    first + second + xs[0]
}
