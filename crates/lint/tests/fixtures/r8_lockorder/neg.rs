//! R8 negative fixture: both methods agree on alpha → beta, and a
//! third method takes only one lock — a consistent global order.

pub struct Pair {
    alpha: Mutex<u32>,
    beta: Mutex<u32>,
}

impl Pair {
    pub fn forward(&self) -> u32 {
        let a = self.alpha.lock();
        let b = self.beta.lock();
        *a + *b
    }

    pub fn also_forward(&self) -> u32 {
        let a = self.alpha.lock();
        let b = self.beta.lock();
        *a * *b
    }

    pub fn solo(&self) -> u32 {
        *self.beta.lock()
    }
}
