//! R8 positive fixture: the same two locks acquired in both orders by
//! two methods — the canonical ABBA deadlock, one cycle to report.

pub struct Pair {
    alpha: Mutex<u32>,
    beta: Mutex<u32>,
}

impl Pair {
    pub fn forward(&self) -> u32 {
        let a = self.alpha.lock();
        let b = self.beta.lock();
        *a + *b
    }

    pub fn backward(&self) -> u32 {
        let b = self.beta.lock();
        let a = self.alpha.lock();
        *b - *a
    }
}
