//! R9 positive fixture: both halves of the rule — a `Relaxed`
//! publication store, and a `Release` write whose field is never read
//! with `Acquire` anywhere in the crate.

pub struct Flags {
    ready: AtomicBool,
    sealed: AtomicBool,
}

impl Flags {
    pub fn publish(&self) {
        self.ready.store(true, Ordering::Relaxed);
    }

    pub fn seal(&self) {
        self.sealed.store(true, Ordering::Release);
    }

    pub fn peek(&self) -> bool {
        self.sealed.load(Ordering::Relaxed)
    }
}
