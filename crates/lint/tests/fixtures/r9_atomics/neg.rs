//! R9 negative fixture: a properly paired Release/Acquire flag, and a
//! `Relaxed` counter increment — the one relaxed idiom that is fine,
//! since `fetch_add` is a read-modify-write and nothing rides behind a
//! statistics counter.

pub struct Flags {
    ready: AtomicBool,
    hits: AtomicU64,
}

impl Flags {
    pub fn publish(&self) {
        self.ready.store(true, Ordering::Release);
    }

    pub fn is_ready(&self) -> bool {
        self.ready.load(Ordering::Acquire)
    }

    pub fn bump(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }
}
