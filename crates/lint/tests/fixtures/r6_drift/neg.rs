//! R6 negative fixture: `parking_lot` locks plus the `std::sync`
//! items (`Arc`, atomics) that are *not* lock-vocabulary drift.

use parking_lot::{Mutex, RwLock};
use std::sync::atomic::AtomicU64;
use std::sync::Arc;

pub struct Clean {
    inner: Mutex<u32>,
    table: Arc<RwLock<u32>>,
    hits: AtomicU64,
}
