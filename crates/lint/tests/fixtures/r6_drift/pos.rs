//! R6 positive fixture: `std::sync` locks (single path and brace
//! group) creeping back into a crate standardized on `parking_lot`.

use std::sync::Mutex;
use std::sync::{Arc, RwLock};

pub struct Drifted {
    inner: Mutex<u32>,
    table: Arc<RwLock<u32>>,
}
