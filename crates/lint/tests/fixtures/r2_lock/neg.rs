//! R2 negative fixture: guards scoped or dropped before the decode
//! call, the pattern `crates/serve` standardized on in PR 1.

pub fn respond(store: &SessionStore) -> Vec<Hypothesis> {
    let tokens = {
        let guard = store.shard.read();
        guard.tokens.clone()
    };
    decode_candidates(&tokens)
}

pub fn respond_with_drop(store: &SessionStore) -> Vec<Hypothesis> {
    let guard = store.shard.write();
    let tokens = guard.tokens.clone();
    drop(guard);
    decode_candidates(&tokens)
}
