//! R2 positive fixture: a shard guard held across a decode call —
//! exactly the batcher serialisation bug the rule exists to prevent.

pub fn respond(store: &SessionStore) -> Vec<Hypothesis> {
    let guard = store.shard.read();
    decode_candidates(&guard.tokens)
}
