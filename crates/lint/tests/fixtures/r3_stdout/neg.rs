//! R3 negative fixture: output routed through a `Reporter`, with
//! stdio confined to test code.

pub fn report(r: &dyn Reporter, rows: usize) {
    r.out(&format!("processed {rows} rows"));
    r.note("done");
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_print() {
        println!("debugging a test is fine");
    }
}
