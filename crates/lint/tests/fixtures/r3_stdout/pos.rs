//! R3 positive fixture: direct stdio in library code.

pub fn report(rows: usize) {
    println!("processed {rows} rows");
    eprintln!("warning: {rows} rows is a lot");
}
