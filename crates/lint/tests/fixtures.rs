//! Fixture-driven rule tests: every rule has a positive fixture that
//! must fire and a negative fixture that must stay silent.
//!
//! Fixtures live under `tests/fixtures/<rule>/{pos,neg}.rs`. The
//! workspace walker skips directories named `fixtures`, so these files
//! are never linted as workspace sources — only through this harness.

use qrec_lint::{analyze, Config, FileClass, SourceFile};

/// Lint one fixture as library code of `crate_name`, returning the
/// distinct rule ids that fired.
fn rules_hit(crate_name: &str, text: &str) -> Vec<String> {
    let file = SourceFile {
        path: format!("crates/{crate_name}/src/fixture.rs"),
        crate_name: crate_name.to_string(),
        class: FileClass::Library,
        text: text.to_string(),
    };
    let mut rules: Vec<String> = analyze(&[file], &Config::default())
        .into_iter()
        .map(|f| f.rule)
        .collect();
    rules.dedup();
    rules
}

/// Assert the positive fixture fires `rule` and the negative one is
/// entirely clean (no finding of *any* rule — fixtures must not trip
/// neighbouring rules by accident).
fn check_rule(rule: &str, crate_name: &str, pos: &str, neg: &str) {
    let pos_hits = rules_hit(crate_name, pos);
    assert!(
        pos_hits.iter().any(|r| r == rule),
        "positive fixture for {rule} should fire it, got {pos_hits:?}"
    );
    assert!(
        pos_hits.iter().all(|r| r == rule),
        "positive fixture for {rule} tripped other rules: {pos_hits:?}"
    );
    let neg_hits = rules_hit(crate_name, neg);
    assert!(
        neg_hits.is_empty(),
        "negative fixture for {rule} should be clean, got {neg_hits:?}"
    );
}

#[test]
fn r1_no_panic_in_hot_path() {
    let pos = include_str!("fixtures/r1_panic/pos.rs");
    let neg = include_str!("fixtures/r1_panic/neg.rs");
    check_rule("no-panic-in-hot-path", "serve", pos, neg);
    // All four panicking shapes are caught: unwrap, expect("…"),
    // panic!, and indexing by an integer literal.
    let findings = analyze(
        &[SourceFile {
            path: "crates/serve/src/fixture.rs".into(),
            crate_name: "serve".into(),
            class: FileClass::Library,
            text: pos.into(),
        }],
        &Config::default(),
    );
    assert_eq!(findings.len(), 4, "one finding per shape: {findings:?}");
}

#[test]
fn r1_does_not_apply_outside_hot_path_crates() {
    let pos = include_str!("fixtures/r1_panic/pos.rs");
    assert!(
        rules_hit("workload", pos).is_empty(),
        "R1 is scoped to the hot-path crates"
    );
}

#[test]
fn r2_no_lock_across_call() {
    check_rule(
        "no-lock-across-call",
        "serve",
        include_str!("fixtures/r2_lock/pos.rs"),
        include_str!("fixtures/r2_lock/neg.rs"),
    );
}

#[test]
fn r3_no_stdout_in_lib() {
    let pos = include_str!("fixtures/r3_stdout/pos.rs");
    let neg = include_str!("fixtures/r3_stdout/neg.rs");
    check_rule("no-stdout-in-lib", "workload", pos, neg);
    // Binaries may use stdio: the same text is clean as FileClass::Binary.
    let as_bin = analyze(
        &[SourceFile {
            path: "crates/workload/src/bin/tool.rs".into(),
            crate_name: "workload".into(),
            class: FileClass::Binary,
            text: pos.into(),
        }],
        &Config::default(),
    );
    assert!(as_bin.is_empty(), "binaries may print: {as_bin:?}");
}

#[test]
fn r4_error_type_hygiene() {
    check_rule(
        "error-type-hygiene",
        "workload",
        include_str!("fixtures/r4_error/pos.rs"),
        include_str!("fixtures/r4_error/neg.rs"),
    );
}

#[test]
fn r4_impls_in_sibling_file_satisfy_the_enum() {
    // The enum and its impls may live in different files of one crate.
    let decl = SourceFile {
        path: "crates/workload/src/error.rs".into(),
        crate_name: "workload".into(),
        class: FileClass::Library,
        text: "pub enum SplitError { Empty }\n".into(),
    };
    let impls = SourceFile {
        path: "crates/workload/src/display.rs".into(),
        crate_name: "workload".into(),
        class: FileClass::Library,
        text: "impl std::fmt::Display for SplitError {}\n\
               impl std::error::Error for SplitError {}\n"
            .into(),
    };
    let findings = analyze(&[decl, impls], &Config::default());
    assert!(findings.is_empty(), "cross-file impls count: {findings:?}");
}

#[test]
fn r5_safety_comments() {
    check_rule(
        "safety-comments",
        "workload",
        include_str!("fixtures/r5_safety/pos.rs"),
        include_str!("fixtures/r5_safety/neg.rs"),
    );
}

#[test]
fn r5_applies_even_to_shims() {
    // Shims skip the style rules but still owe safety comments.
    let findings = analyze(
        &[SourceFile {
            path: "shims/parking_lot/src/lib.rs".into(),
            crate_name: "shim:parking_lot".into(),
            class: FileClass::Shim,
            text: include_str!("fixtures/r5_safety/pos.rs").into(),
        }],
        &Config::default(),
    );
    assert_eq!(findings.len(), 1);
    assert_eq!(findings[0].rule, "safety-comments");
}

#[test]
fn r6_shim_surface_drift() {
    let pos = include_str!("fixtures/r6_drift/pos.rs");
    let neg = include_str!("fixtures/r6_drift/neg.rs");
    check_rule("shim-surface-drift", "serve", pos, neg);
    // Both the single path and the brace-group import are caught.
    let findings = analyze(
        &[SourceFile {
            path: "crates/serve/src/fixture.rs".into(),
            crate_name: "serve".into(),
            class: FileClass::Library,
            text: pos.into(),
        }],
        &Config::default(),
    );
    assert_eq!(
        findings.len(),
        2,
        "Mutex path + RwLock in group: {findings:?}"
    );
}

#[test]
fn r7_no_alloc_in_metric_path() {
    check_rule(
        "no-alloc-in-metric-path",
        "obs",
        include_str!("fixtures/r7_alloc/pos.rs"),
        include_str!("fixtures/r7_alloc/neg.rs"),
    );
    // All four shapes fire: the allocating record fn, the span closure,
    // the per-call window-seal buffer, and the stringifying sketch
    // update.
    let findings = analyze(
        &[SourceFile {
            path: "crates/obs/src/fixture.rs".into(),
            crate_name: "obs".into(),
            class: FileClass::Library,
            text: include_str!("fixtures/r7_alloc/pos.rs").into(),
        }],
        &Config::default(),
    );
    assert_eq!(
        findings.len(),
        4,
        "record fn + span closure + window seal + sketch update: {findings:?}"
    );
}

#[test]
fn r7_span_closures_are_checked_in_hot_path_crates_too() {
    let pos = include_str!("fixtures/r7_alloc/pos.rs");
    let hits = rules_hit("serve", pos);
    assert_eq!(
        hits,
        vec!["no-alloc-in-metric-path"],
        "the in_span closure check follows hot-path crates"
    );
    assert!(
        rules_hit("workload", pos).is_empty(),
        "R7 is scoped to obs and the hot-path crates"
    );
}

#[test]
fn r6_does_not_apply_outside_parking_lot_crates() {
    let pos = include_str!("fixtures/r6_drift/pos.rs");
    assert!(
        rules_hit("workload", pos).is_empty(),
        "R6 is scoped to the parking_lot crates"
    );
}

#[test]
fn r8_lock_order_inversion() {
    let pos = include_str!("fixtures/r8_lockorder/pos.rs");
    let neg = include_str!("fixtures/r8_lockorder/neg.rs");
    check_rule("lock-order-inversion", "workload", pos, neg);
    // One ABBA cycle is reported exactly once, not once per direction.
    let findings = analyze(
        &[SourceFile {
            path: "crates/workload/src/fixture.rs".into(),
            crate_name: "workload".into(),
            class: FileClass::Library,
            text: pos.into(),
        }],
        &Config::default(),
    );
    assert_eq!(findings.len(), 1, "one cycle, one finding: {findings:?}");
    assert!(
        findings[0].message.contains("opposite order"),
        "message names the counter-witness: {}",
        findings[0].message
    );
}

#[test]
fn r9_atomics_ordering_hygiene() {
    let pos = include_str!("fixtures/r9_atomics/pos.rs");
    let neg = include_str!("fixtures/r9_atomics/neg.rs");
    check_rule("atomics-ordering-hygiene", "core", pos, neg);
    // Both halves fire: the Relaxed publication store and the
    // unpaired Release write.
    let findings = analyze(
        &[SourceFile {
            path: "crates/core/src/fixture.rs".into(),
            crate_name: "core".into(),
            class: FileClass::Library,
            text: pos.into(),
        }],
        &Config::default(),
    );
    assert_eq!(
        findings.len(),
        2,
        "relaxed store + unpaired release: {findings:?}"
    );
}

#[test]
fn r9_does_not_apply_outside_hot_path_crates() {
    let pos = include_str!("fixtures/r9_atomics/pos.rs");
    assert!(
        rules_hit("workload", pos).is_empty(),
        "R9 is scoped to the hot-path crates"
    );
}

#[test]
fn r10_blocking_call_in_hot_path() {
    let pos = include_str!("fixtures/r10_blocking/pos.rs");
    let neg = include_str!("fixtures/r10_blocking/neg.rs");
    check_rule("blocking-call-in-hot-path", "serve", pos, neg);
    // The finding lands on the fsync line and names the path from the
    // entry point.
    let findings = analyze(
        &[SourceFile {
            path: "crates/serve/src/fixture.rs".into(),
            crate_name: "serve".into(),
            class: FileClass::Library,
            text: pos.into(),
        }],
        &Config::default(),
    );
    assert_eq!(findings.len(), 1, "one blocking site: {findings:?}");
    assert!(
        findings[0].message.contains("serve:decode_step")
            && findings[0].message.contains("serve:persist"),
        "message shows the call chain: {}",
        findings[0].message
    );
}

#[test]
fn r10_entries_are_scoped_to_hot_path_crates() {
    let pos = include_str!("fixtures/r10_blocking/pos.rs");
    assert!(
        rules_hit("workload", pos).is_empty(),
        "a decode fn outside the hot-path crates is not an entry point"
    );
}
