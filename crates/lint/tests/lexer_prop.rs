//! Property tests for the lint lexer, using a self-contained xorshift
//! generator (the build is offline, so no proptest crate): thousands of
//! adversarial inputs — random byte soups, rust-flavoured token salads,
//! truncated prefixes of real source — must never panic the lexer, and
//! every token/comment line must stay within the source's line count.
//!
//! Plus pinned regression inputs for the constructs most likely to
//! desync a hand-rolled lexer: nested `/* */` comments, raw strings
//! with `#` fences, and quotes inside comments.

use qrec_lint::lexer::{lex, Lexed};

/// Deterministic xorshift64* PRNG: reproducible failures, no deps.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// Every invariant the rest of the engine relies on: lines are 1-based
/// and never beyond the last source line, comments are well-ordered.
fn check_invariants(src: &str, lexed: &Lexed) {
    // A byte after the last `\n` (including EOF of an unterminated
    // construct) is on line newline-count + 1.
    let line_count = src.bytes().filter(|&b| b == b'\n').count() as u32 + 1;
    for t in &lexed.tokens {
        assert!(
            t.line >= 1 && t.line <= line_count,
            "token line {} outside 1..={line_count} for {:?} in {src:?}",
            t.line,
            t.kind
        );
    }
    for c in &lexed.comments {
        assert!(
            c.line >= 1 && c.end_line >= c.line && c.end_line <= line_count,
            "comment lines {}..{} outside 1..={line_count} in {src:?}",
            c.line,
            c.end_line
        );
    }
}

#[test]
fn random_byte_soup_never_panics() {
    let mut rng = Rng(0x9e37_79b9_7f4a_7c15);
    for _ in 0..2000 {
        let len = rng.below(200);
        // Arbitrary bytes, lossily decoded: covers invalid-UTF-8
        // replacement chars, control bytes, and unpaired delimiters.
        let bytes: Vec<u8> = (0..len).map(|_| (rng.next() & 0xff) as u8).collect();
        let src = String::from_utf8_lossy(&bytes).into_owned();
        check_invariants(&src, &lex(&src));
    }
}

#[test]
fn random_token_salad_never_panics() {
    // Rust-flavoured fragments, including every construct the lexer
    // special-cases, glued in random order: much denser coverage of
    // the tricky state transitions than uniform bytes.
    const PIECES: &[&str] = &[
        "fn ",
        "impl ",
        "self.",
        "lock()",
        "\"str\"",
        "\"unterminated",
        "r#\"raw\"#",
        "r\"",
        "'a",
        "'a'",
        "b'\\n'",
        "b\"bytes\"",
        "/* block */",
        "/* nested /* deep */ still */",
        "/*",
        "// line\n",
        "\n",
        "0xff",
        "3.14",
        "::",
        "=>",
        "{",
        "}",
        "(",
        ")",
        "[",
        "]",
        "#[cfg(test)]",
        "'\\''",
        "r##\"two fences\"##",
        "\\",
        "\u{1f980}",
        "é",
        "*/",
    ];
    let mut rng = Rng(0xdead_beef_cafe_f00d);
    for _ in 0..2000 {
        let n = rng.below(40);
        let src: String = (0..n).map(|_| PIECES[rng.below(PIECES.len())]).collect();
        check_invariants(&src, &lex(&src));
    }
}

#[test]
fn truncated_real_source_never_panics() {
    // Chop this very test file at random byte boundaries (snapped to
    // char boundaries): every prefix of real source must lex cleanly —
    // the shape a half-written file in an editor has.
    let real = include_str!("lexer_prop.rs");
    let mut rng = Rng(0x0123_4567_89ab_cdef);
    for _ in 0..300 {
        let mut cut = rng.below(real.len() + 1);
        while !real.is_char_boundary(cut) {
            cut -= 1;
        }
        let src = &real[..cut];
        check_invariants(src, &lex(src));
    }
}

#[test]
fn nested_block_comments_lex_as_one_comment() {
    let src = "a /* outer /* inner */ tail */ b\n";
    let lexed = lex(src);
    let idents: Vec<_> = lexed.tokens.iter().filter_map(|t| t.kind.ident()).collect();
    assert_eq!(idents, ["a", "b"], "nesting must not end the comment early");
    assert_eq!(lexed.comments.len(), 1);
    assert!(lexed.comments[0].text.contains("inner"));
}

#[test]
fn raw_strings_swallow_quotes_and_comment_markers() {
    let src = "let x = r#\"has \"quotes\" and /* not a comment */ and \\\"#; done()\n";
    let lexed = lex(src);
    assert!(
        lexed.comments.is_empty(),
        "markers inside a raw string are not comments"
    );
    let idents: Vec<_> = lexed.tokens.iter().filter_map(|t| t.kind.ident()).collect();
    assert!(
        idents.contains(&"done"),
        "lexing must resume after the raw string: {idents:?}"
    );
    assert!(
        !idents.contains(&"quotes"),
        "raw-string content must not leak into the token stream"
    );
}

#[test]
fn comment_markers_inside_strings_and_chars_are_inert() {
    let src = "let a = \"// not a comment /* nor this\"; let b = '\"'; let c = \"it's\"; end()\n";
    let lexed = lex(src);
    assert!(lexed.comments.is_empty(), "{:?}", lexed.comments);
    let idents: Vec<_> = lexed.tokens.iter().filter_map(|t| t.kind.ident()).collect();
    assert!(idents.contains(&"end"), "lexer desynced: {idents:?}");
}

#[test]
fn multi_line_block_comment_spans_are_exact() {
    let src = "one()\n/* spans\nthree\nlines */\ntwo()\n";
    let lexed = lex(src);
    assert_eq!(lexed.comments.len(), 1);
    assert_eq!(
        (lexed.comments[0].line, lexed.comments[0].end_line),
        (2, 4),
        "block comment start/end lines"
    );
    let two = lexed
        .tokens
        .iter()
        .find(|t| t.kind.ident() == Some("two"))
        .expect("token after the comment");
    assert_eq!(two.line, 5);
}
