//! Criterion micro-benchmarks for the hot paths of the pipeline:
//! parsing/tokenisation, template extraction, a training step per
//! architecture, greedy/beam inference, and baseline prediction.
//!
//! These back Table 3's timing columns with statistically sound
//! measurements (`cargo bench -p qrec-bench`).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use qrec_core::prelude::*;
use qrec_nn::params::forward_backward;
use qrec_nn::seq2seq::Seq2Seq;
use qrec_nn::trainer::EncodedPair;
use qrec_nn::Strategy;
use qrec_workload::gen::{generate, WorkloadProfile};
use qrec_workload::Split;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

const SQL: &str = "SELECT TOP 10 s.ra, s.z, COUNT(p.objid) FROM SpecObj s \
                   JOIN PhotoObj p ON s.objid = p.objid \
                   WHERE s.z BETWEEN 0.3 AND 0.4 AND p.mode = 'PRIMARY' \
                   GROUP BY s.ra, s.z HAVING COUNT(p.objid) > 5 ORDER BY s.z DESC";

fn bench_sql(c: &mut Criterion) {
    c.bench_function("sql/parse", |b| {
        b.iter(|| qrec_sql::parse(black_box(SQL)).unwrap())
    });
    let q = qrec_sql::parse(SQL).unwrap();
    c.bench_function("sql/template", |b| {
        b.iter(|| qrec_sql::template(black_box(&q)))
    });
    c.bench_function("sql/fragments", |b| {
        b.iter(|| qrec_sql::extract_fragments(black_box(&q)))
    });
    c.bench_function("sql/tokens", |b| {
        b.iter(|| qrec_sql::query_tokens(black_box(&q)))
    });
    c.bench_function("sql/record", |b| {
        b.iter(|| qrec_workload::QueryRecord::new(black_box(SQL)).unwrap())
    });
}

fn bench_workload_gen(c: &mut Criterion) {
    let profile = WorkloadProfile::tiny();
    c.bench_function("workload/generate-tiny", |b| {
        b.iter(|| generate(black_box(&profile), 7))
    });
}

fn setup_training() -> (Vec<EncodedPair>, qrec_workload::Vocab) {
    let (w, _) = generate(&WorkloadProfile::tiny(), 5);
    let mut rng = StdRng::seed_from_u64(1);
    let split = Split::paper(w.pairs(), &mut rng);
    let vocab = qrec_core::data::build_vocab(&split.train, 1);
    let pairs = qrec_core::data::encode_pairs(&split.train, &vocab, SeqMode::Aware);
    (pairs, vocab)
}

fn bench_train_step(c: &mut Criterion) {
    let (pairs, vocab) = setup_training();
    let mut group = c.benchmark_group("train_step");
    group.sample_size(20);
    for arch in [Arch::Transformer, Arch::ConvS2S, Arch::Gru] {
        let mut rng = StdRng::seed_from_u64(2);
        let mut params = qrec_nn::Params::new();
        let model = AnyModel::build(arch, SizePreset::Test, vocab.len(), &mut params, &mut rng);
        let pair = pairs.first().expect("training pairs").clone();
        group.bench_function(arch.label(), |b| {
            b.iter_batched(
                || params.clone(),
                |mut p| {
                    forward_backward(&mut p, &mut rng, |fwd| {
                        let enc = model.encode(fwd, &pair.src);
                        let tgt_in = &pair.tgt[..pair.tgt.len() - 1];
                        let tgt_out = &pair.tgt[1..];
                        let logits = model.decode(fwd, enc, tgt_in);
                        let rows = fwd.graph.value(logits).rows();
                        fwd.graph.cross_entropy(logits, &tgt_out[..rows])
                    })
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_inference(c: &mut Criterion) {
    let (w, _) = generate(&WorkloadProfile::tiny(), 5);
    let mut rng = StdRng::seed_from_u64(1);
    let split = Split::paper(w.pairs(), &mut rng);
    let cfg = RecommenderConfig::test(Arch::Transformer, SeqMode::Aware);
    let (mut rec, _) = Recommender::train(&split, &w, cfg);
    let q = split.test.first().expect("test pairs").current.clone();

    let mut group = c.benchmark_group("inference");
    group.sample_size(20);
    group.bench_function("greedy", |b| {
        b.iter(|| rec.decode_candidates(black_box(&q), Strategy::Greedy))
    });
    group.bench_function("beam5", |b| {
        b.iter(|| rec.decode_candidates(black_box(&q), Strategy::Beam { width: 5 }))
    });
    group.bench_function("diverse-beam", |b| {
        b.iter(|| {
            rec.decode_candidates(
                black_box(&q),
                Strategy::DiverseBeam {
                    width: 4,
                    groups: 2,
                    penalty: 1.0,
                },
            )
        })
    });
    group.bench_function("predict_n5", |b| b.iter(|| rec.predict_n(black_box(&q), 5)));
    group.finish();
}

fn bench_baselines(c: &mut Criterion) {
    let (w, _) = generate(&WorkloadProfile::tiny(), 5);
    let mut rng = StdRng::seed_from_u64(1);
    let split = Split::paper(w.pairs(), &mut rng);
    let q = split.test.first().expect("test pairs").current.clone();
    let mut popular = PopularBaseline::fit(&split.train);
    let mut naive = NaiveQi::fit(&split.train);
    let mut querie = Querie::fit(&split.train, 10);

    let mut group = c.benchmark_group("baselines");
    group.bench_function("popular/predict_n", |b| {
        b.iter(|| popular.predict_n(black_box(&q), 5))
    });
    group.bench_function("naive/predict_set", |b| {
        b.iter(|| naive.predict_set(black_box(&q)))
    });
    group.bench_function("querie/predict_set", |b| {
        b.iter(|| querie.predict_set(black_box(&q)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_sql,
    bench_workload_gen,
    bench_train_step,
    bench_inference,
    bench_baselines
);
criterion_main!(benches);
