//! Run every experiment in sequence: the full reproduction of the
//! paper's evaluation section. Each sub-experiment also runs standalone
//! (`cargo run --release -p qrec-bench --bin exp_table5` etc.); trained
//! models are shared through `target/qrec-cache/`.

use std::process::Command;

const EXPERIMENTS: [&str; 13] = [
    "exp_table2",
    "exp_fig9",
    "exp_fig10",
    "exp_fig11",
    "exp_table3",
    "exp_table5",
    "exp_table6",
    "exp_fig12",
    "exp_fig13",
    "ablation_decode",
    "ablation_arch",
    "ablation_context",
    "ablation_tuning",
];

fn main() {
    let self_path = std::env::current_exe().expect("own path");
    let bin_dir = self_path.parent().expect("bin dir");
    let mut failures = Vec::new();
    for exp in EXPERIMENTS {
        println!("\n{0}\n###  {exp}\n{0}", "#".repeat(72));
        let status = Command::new(bin_dir.join(exp))
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {exp}: {e}"));
        if !status.success() {
            eprintln!("!! {exp} failed with {status}");
            failures.push(exp);
        }
    }
    println!("\n{}", "#".repeat(72));
    if failures.is_empty() {
        println!("all {} experiments completed", EXPERIMENTS.len());
    } else {
        println!("failed experiments: {failures:?}");
        std::process::exit(1);
    }
}
