//! `bench_quant` — wall-clock and memory comparison of the int8
//! weight-quantized decode path against the f32 reference (DESIGN.md
//! §15).
//!
//! ```text
//! bench_quant [--smoke] [--out PATH]
//! ```
//!
//! Both paths run the *same* strategies on the *same* untrained model —
//! one store carrying the int8 sidecar, one without — so the timings
//! isolate the quantized projection GEMMs and quantized KV cache.
//! Unlike `bench_decode`, the two paths are *not* bitwise-equal; each
//! scenario instead reports the per-step top-5 agreement (the
//! `quant_equivalence` suite's gate, ≥ 0.98) measured teacher-forced
//! along the f32 decode's best hypothesis. `mem_ratio` is the combined
//! model + KV-cache resident footprint of the f32 representation over
//! the quantized one. Beam-8 at the serving length cap is the headline
//! speedup. Results go to `BENCH_quant.json` at the repo root (or
//! `target/BENCH_quant_smoke.json` under `--smoke`).
//!
//! Each (scenario, path) timing runs in its **own child process**
//! (`--time-one`): once a process has decoded with the int8 sidecar,
//! later f32 decodes in that process measure up to ~4× slower (heap
//! placement shifts, not algorithmic cost), so in-process A/B numbers
//! are contaminated in whichever order the candidates run. Per-process
//! isolation also mirrors serving reality: `QuantMode` is fixed at
//! boot, a server never interleaves the two representations.

use qrec_bench::timing::{time_stats, RepStats};
use qrec_nn::decode::{decode, Strategy, SOS};
use qrec_nn::params::{forward_eval, Params};
use qrec_nn::transformer::{Transformer, TransformerConfig};
use qrec_nn::Seq2Seq;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde_json::json;
use std::hint::black_box;
use std::path::PathBuf;
use std::process::ExitCode;

const SRC: [usize; 7] = [SOS, 4, 9, 5, 7, 3, 2];
const TOP_K: usize = 5;

/// An untrained model with near-uniform output distributions: decodes
/// run to the length cap, which is what a throughput benchmark needs.
/// The shape mirrors the serving configuration's decode load (the
/// vocab-sized output head and the d_model projections dominate).
fn bench_model(smoke: bool) -> (Params, Transformer) {
    let cfg = if smoke {
        TransformerConfig::test(30)
    } else {
        TransformerConfig {
            vocab: 4000,
            d_model: 160,
            heads: 4,
            layers: 2,
            d_ff: 320,
            dropout: 0.0,
            max_len: 96,
        }
    };
    let mut params = Params::new();
    let mut rng = StdRng::seed_from_u64(42);
    let model = Transformer::new(&mut params, cfg, &mut rng);
    (params, model)
}

struct Scenario {
    label: &'static str,
    strategy: Strategy,
    max_len: usize,
    /// Decode-state batch the scenario sustains (for KV accounting).
    batch: usize,
}

fn scenarios(smoke: bool) -> Vec<Scenario> {
    if smoke {
        return vec![
            Scenario {
                label: "smoke greedy",
                strategy: Strategy::Greedy,
                max_len: 4,
                batch: 1,
            },
            Scenario {
                label: "smoke beam-4",
                strategy: Strategy::Beam { width: 4 },
                max_len: 6,
                batch: 4,
            },
        ];
    }
    vec![
        Scenario {
            label: "greedy len 16",
            strategy: Strategy::Greedy,
            max_len: 16,
            batch: 1,
        },
        Scenario {
            label: "greedy len 64",
            strategy: Strategy::Greedy,
            max_len: 64,
            batch: 1,
        },
        Scenario {
            label: "beam-8 len 64",
            strategy: Strategy::Beam { width: 8 },
            max_len: 64,
            batch: 8,
        },
    ]
}

/// Indices of the k largest logits (ties by index).
fn top_k(row: &[f32], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..row.len()).collect();
    idx.sort_by(|&a, &b| row[b].total_cmp(&row[a]).then(a.cmp(&b)));
    idx.truncate(k);
    idx
}

/// Teacher-forced walk collecting one logits row per fed token.
fn step_rows(model: &Transformer, params: &Params, prefix: &[usize]) -> Vec<Vec<f32>> {
    let mut rng = StdRng::seed_from_u64(0);
    let enc = forward_eval(params, &mut rng, |fwd| {
        let e = model.encode(fwd, &SRC);
        fwd.graph.value_shared(e)
    });
    let mut state = forward_eval(params, &mut rng, |fwd| model.begin_decode(fwd, &enc, 1));
    let mut rows = Vec::with_capacity(prefix.len());
    for &tok in prefix {
        let t = forward_eval(params, &mut rng, |fwd| {
            model.step_logits(fwd, &mut state, &[tok])
        });
        rows.push(t.row(0).to_vec());
    }
    rows
}

/// Mean per-step tie-aware top-5 agreement along the f32 decode's best
/// hypothesis: the fraction of the quantized top-5 whose **f32** logit
/// reaches the f32 rank-5 boundary less 1% of the f32 top-5 spread —
/// the `quant_equivalence` suite's definition (DESIGN.md §15).
fn topk_agreement(model: &Transformer, fp: &Params, qp: &Params, best_ids: &[usize]) -> f64 {
    let prefix: Vec<usize> = std::iter::once(SOS)
        .chain(best_ids.iter().copied())
        .collect();
    let f_rows = step_rows(model, fp, &prefix);
    let q_rows = step_rows(model, qp, &prefix);
    let total: f64 = f_rows
        .iter()
        .zip(&q_rows)
        .map(|(a, b)| {
            let ta = top_k(a, TOP_K);
            let tb = top_k(b, TOP_K);
            let boundary = a[ta[TOP_K - 1]];
            let tau = 0.01 * (a[ta[0]] - boundary).abs() + 1e-6;
            tb.iter().filter(|&&i| a[i] >= boundary - tau).count() as f64 / TOP_K as f64
        })
        .sum();
    total / f_rows.len().max(1) as f64
}

/// Resident KV-cache bytes after `steps` decode steps at `batch` rows.
fn kv_resident_bytes(model: &Transformer, params: &Params, batch: usize, steps: usize) -> usize {
    let mut rng = StdRng::seed_from_u64(0);
    let enc = forward_eval(params, &mut rng, |fwd| {
        let e = model.encode(fwd, &SRC);
        fwd.graph.value_shared(e)
    });
    let mut state = forward_eval(params, &mut rng, |fwd| model.begin_decode(fwd, &enc, batch));
    let feed = vec![3usize; batch];
    for _ in 0..steps {
        forward_eval(params, &mut rng, |fwd| {
            model.step_logits(fwd, &mut state, &feed)
        });
    }
    state.resident_cache_bytes()
}

/// Resident bytes of the model's weight representation: all-f32, or
/// packed int8 panels + scales with the unquantized tensors in f32.
fn model_resident_bytes(params: &Params) -> usize {
    let all_f32 = params.scalar_count() * 4;
    match params.quant() {
        None => all_f32,
        Some(sidecar) => {
            let quantized_scalars: usize = sidecar
                .export()
                .iter()
                .map(|(_, rows, cols, _, _)| rows * cols)
                .sum();
            all_f32 - quantized_scalars * 4 + sidecar.packed_bytes()
        }
    }
}

struct Row {
    label: &'static str,
    strategy: String,
    max_len: usize,
    tokens: usize,
    f32_time: RepStats,
    quant_time: RepStats,
    topk_agreement: f64,
    f32_bytes: usize,
    quant_bytes: usize,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.f32_time.best_s / self.quant_time.best_s
    }

    fn mem_ratio(&self) -> f64 {
        self.f32_bytes as f64 / self.quant_bytes as f64
    }

    fn to_json(&self) -> serde_json::Value {
        json!({
            "label": self.label,
            "strategy": self.strategy,
            "max_len": self.max_len,
            "tokens": self.tokens,
            "f32_s": self.f32_time.best_s,
            "quant_s": self.quant_time.best_s,
            "f32_percentiles": self.f32_time.to_json(),
            "quant_percentiles": self.quant_time.to_json(),
            "speedup": self.speedup(),
            "topk_agreement": self.topk_agreement,
            "f32_resident_bytes": self.f32_bytes,
            "quant_resident_bytes": self.quant_bytes,
            "mem_ratio": self.mem_ratio(),
        })
    }
}

/// Child-process entry: time one (scenario, path) pair and print the
/// `RepStats` JSON fragment on stdout.
fn time_one(smoke: bool, scenario_idx: usize, quantized: bool) -> Result<(), String> {
    let (fp, model) = bench_model(smoke);
    let params = if quantized {
        let mut qp = fp.clone();
        qp.quantize();
        qp
    } else {
        fp
    };
    let all = scenarios(smoke);
    let s = all
        .get(scenario_idx)
        .ok_or_else(|| format!("scenario index {scenario_idx} out of range"))?;
    let budget = if smoke { 0.1 } else { 3.0 };
    let reps = if smoke { 4 } else { 40 };
    let stats = time_stats(
        &mut [&mut || {
            black_box(decode(
                &model,
                &params,
                &SRC,
                s.strategy,
                s.max_len,
                &mut StdRng::seed_from_u64(17),
            ));
        }],
        budget,
        reps,
    )[0];
    let line = serde_json::to_string(&stats.to_json()).map_err(|e| format!("serialise: {e}"))?;
    println!("{line}");
    Ok(())
}

/// Run one (scenario, path) timing in a fresh child process and parse
/// the `RepStats` it prints.
fn child_time(smoke: bool, scenario_idx: usize, quantized: bool) -> Result<RepStats, String> {
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let mut cmd = std::process::Command::new(exe);
    cmd.arg("--time-one")
        .arg(scenario_idx.to_string())
        .arg(if quantized { "int8" } else { "f32" });
    if smoke {
        cmd.arg("--smoke");
    }
    let out = cmd.output().map_err(|e| format!("spawn child: {e}"))?;
    if !out.status.success() {
        return Err(format!(
            "child timing failed ({}): {}",
            out.status,
            String::from_utf8_lossy(&out.stderr)
        ));
    }
    let v: serde_json::Value =
        serde_json::from_slice(&out.stdout).map_err(|e| format!("parse child stats: {e}"))?;
    let f = |key: &str| {
        v.as_object()
            .and_then(|o| o.get(key))
            .and_then(serde_json::Value::as_f64)
    };
    match (f("best_s"), f("p50_s"), f("p95_s"), f("p99_s"), f("reps")) {
        (Some(best_s), Some(p50_s), Some(p95_s), Some(p99_s), Some(reps)) => Ok(RepStats {
            best_s,
            p50_s,
            p95_s,
            p99_s,
            reps: reps as u64,
        }),
        _ => Err("child stats missing fields".into()),
    }
}

fn bench_scenario(
    s: &Scenario,
    s_idx: usize,
    fp: &Params,
    qp: &Params,
    model: &Transformer,
    smoke: bool,
) -> Result<Row, String> {
    let seed = 17u64;
    let f_hyps = decode(
        model,
        fp,
        &SRC,
        s.strategy,
        s.max_len,
        &mut StdRng::seed_from_u64(seed),
    );
    let q_hyps = decode(
        model,
        qp,
        &SRC,
        s.strategy,
        s.max_len,
        &mut StdRng::seed_from_u64(seed),
    );
    assert_eq!(
        f_hyps.len(),
        q_hyps.len(),
        "{}: hypothesis counts diverged",
        s.label
    );
    let tokens = f_hyps.iter().map(|h| h.ids.len()).max().unwrap_or(0);
    let agreement = topk_agreement(model, fp, qp, &f_hyps[0].ids);

    // Combined model + sustained KV footprint per representation.
    let steps = tokens.max(1);
    let f32_bytes = model_resident_bytes(fp) + kv_resident_bytes(model, fp, s.batch, steps);
    let quant_bytes = model_resident_bytes(qp) + kv_resident_bytes(model, qp, s.batch, steps);

    // Each path times in its own child process (see module docs): once
    // int8 has run in a process, later f32 decodes there measure far
    // slower than a pure-f32 process would, so in-process A/B minima
    // are not comparable.
    let f32_time = child_time(smoke, s_idx, false)?;
    let quant_time = child_time(smoke, s_idx, true)?;
    Ok(Row {
        label: s.label,
        strategy: format!("{:?}", s.strategy),
        max_len: s.max_len,
        tokens,
        f32_time,
        quant_time,
        topk_agreement: agreement,
        f32_bytes,
        quant_bytes,
    })
}

fn run(smoke: bool, out: Option<PathBuf>) -> Result<(), String> {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let out = out.unwrap_or_else(|| {
        if smoke {
            root.join("target/BENCH_quant_smoke.json")
        } else {
            root.join("BENCH_quant.json")
        }
    });

    eprintln!("bench_quant: mode={}", if smoke { "smoke" } else { "full" });
    let (fp, model) = bench_model(smoke);
    let mut qp = fp.clone();
    qp.quantize();

    let mut rows = Vec::new();
    for (s_idx, s) in scenarios(smoke).iter().enumerate() {
        eprintln!("  timing {} ...", s.label);
        rows.push(bench_scenario(s, s_idx, &fp, &qp, &model, smoke)?);
    }

    // Headline numbers the acceptance gate reads: beam-8 speedup and
    // memory ratio at the serving length cap, and the worst per-row
    // top-5 agreement (must clear the 0.98 gate the equivalence suite
    // enforces on the test shapes).
    let beam8 = rows.iter().find(|r| r.label.starts_with("beam-8"));
    let beam8_speedup = beam8.map_or(f64::NAN, Row::speedup);
    let beam8_mem_ratio = beam8.map_or(f64::NAN, Row::mem_ratio);
    let min_agreement = rows
        .iter()
        .map(|r| r.topk_agreement)
        .fold(f64::INFINITY, f64::min);

    let report = json!({
        "benchmark": "qrec-nn int8 weight-quantized decode vs f32",
        "mode": if smoke { "smoke" } else { "full" },
        "rows": rows.iter().map(Row::to_json).collect::<Vec<_>>(),
        "beam8_speedup_vs_f32": if smoke { json!(null) } else { json!(beam8_speedup) },
        "beam8_mem_ratio": if smoke { json!(null) } else { json!(beam8_mem_ratio) },
        "min_topk_agreement": min_agreement,
    });

    if let Some(dir) = out.parent() {
        std::fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    }
    let bytes = serde_json::to_vec_pretty(&report).map_err(|e| format!("serialise: {e}"))?;
    std::fs::write(&out, bytes).map_err(|e| format!("write {}: {e}", out.display()))?;

    // Re-read and parse: the file on disk must be well-formed JSON with
    // at least one scenario row.
    let text = std::fs::read_to_string(&out).map_err(|e| format!("read back: {e}"))?;
    let parsed: serde_json::Value =
        serde_json::from_str(&text).map_err(|e| format!("round-trip parse: {e}"))?;
    let row_count = parsed
        .as_object()
        .and_then(|o| o.get("rows"))
        .and_then(|s| s.as_array())
        .map_or(0, <[serde_json::Value]>::len);
    if row_count == 0 {
        return Err("no scenario rows in the written report".into());
    }

    println!(
        "{:<16} {:>6} {:>12} {:>12} {:>9} {:>8} {:>9}",
        "scenario", "tokens", "f32 (s)", "int8 (s)", "speedup", "top5", "mem"
    );
    for r in &rows {
        println!(
            "{:<16} {:>6} {:>12.6} {:>12.6} {:>8.2}x {:>8.4} {:>8.2}x",
            r.label,
            r.tokens,
            r.f32_time.best_s,
            r.quant_time.best_s,
            r.speedup(),
            r.topk_agreement,
            r.mem_ratio(),
        );
    }
    if !smoke {
        println!("beam-8 speedup vs f32: {beam8_speedup:.2}x");
        println!("beam-8 model+KV memory ratio: {beam8_mem_ratio:.2}x");
    }
    println!("min top-5 agreement: {min_agreement:.4}");
    println!("[results written to {}]", out.display());
    Ok(())
}

fn main() -> ExitCode {
    let mut smoke = false;
    let mut out = None;
    let mut time_one_args: Option<(usize, bool)> = None;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--smoke" => smoke = true,
            "--out" => match it.next() {
                Some(p) => out = Some(PathBuf::from(p)),
                None => {
                    eprintln!("missing value for --out");
                    return ExitCode::FAILURE;
                }
            },
            // Internal child-process mode: time one (scenario, path).
            "--time-one" => match (it.next().map(|s| s.parse::<usize>()), it.next()) {
                (Some(Ok(idx)), Some(path)) if path == "f32" || path == "int8" => {
                    time_one_args = Some((idx, path == "int8"));
                }
                _ => {
                    eprintln!("usage: bench_quant --time-one IDX f32|int8 [--smoke]");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                eprintln!("usage: bench_quant [--smoke] [--out PATH]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown flag {other:?}");
                return ExitCode::FAILURE;
            }
        }
    }
    let result = match time_one_args {
        Some((idx, quantized)) => time_one(smoke, idx, quantized),
        None => run(smoke, out),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("bench_quant failed: {msg}");
            ExitCode::FAILURE
        }
    }
}
