//! **Table 2** — workload statistics for the SDSS-like and SQLShare-like
//! synthetic workloads, printed next to the paper's reference values.
//!
//! Reproduction target (shape, not absolutes — our corpora are scaled
//! down): SDSS ≫ SQLShare in pairs; near-equal unique-query counts;
//! SDSS has 1 dataset and 56 tables vs SQLShare's 64 datasets and many
//! more tables; fragment-diversity orderings per Section 5.3.1.

use qrec_bench::{both_datasets, print_table, write_results};
use qrec_workload::stats::workload_stats;
use serde_json::json;

/// The paper's Table 2, for the side-by-side print-out.
const PAPER: [(&str, u64, u64); 11] = [
    ("Total pairs", 814_855, 16_452),
    ("Unique pairs", 187_762, 15_710),
    ("Unique queries", 15_094, 15_792),
    ("Sessions", 28_395, 2_697),
    ("Datasets", 1, 64),
    ("Vocabulary", 4_648, 7_761),
    ("Tables", 56, 1_722),
    ("Columns", 3_756, 4_564),
    ("Functions", 110, 455),
    ("Literals", 636, 685),
    ("Templates", 2_975, 3_485),
];

fn main() {
    let r = &qrec_bench::StdioReporter;
    let datasets = both_datasets();
    let stats: Vec<_> = datasets
        .iter()
        .map(|d| (d.name.clone(), workload_stats(&d.workload)))
        .collect();
    let (sdss, sqlshare) = (&stats[0].1, &stats[1].1);

    let ours = [
        ("Total pairs", sdss.total_pairs, sqlshare.total_pairs),
        ("Unique pairs", sdss.unique_pairs, sqlshare.unique_pairs),
        (
            "Unique queries",
            sdss.unique_queries,
            sqlshare.unique_queries,
        ),
        ("Sessions", sdss.sessions, sqlshare.sessions),
        ("Datasets", sdss.datasets, sqlshare.datasets),
        ("Vocabulary", sdss.vocabulary, sqlshare.vocabulary),
        ("Tables", sdss.tables, sqlshare.tables),
        ("Columns", sdss.columns, sqlshare.columns),
        ("Functions", sdss.functions, sqlshare.functions),
        ("Literals", sdss.literals, sqlshare.literals),
        ("Templates", sdss.templates, sqlshare.templates),
    ];

    let rows: Vec<Vec<String>> = ours
        .iter()
        .zip(PAPER.iter())
        .map(|((name, s, q), (_, ps, pq))| {
            vec![
                name.to_string(),
                s.to_string(),
                q.to_string(),
                ps.to_string(),
                pq.to_string(),
            ]
        })
        .collect();

    print_table(
        r,
        "Table 2: workload statistics (ours vs paper)",
        &[
            "Statistic",
            "SDSS (ours)",
            "SQLShare (ours)",
            "SDSS (paper)",
            "SQLShare (paper)",
        ],
        &rows,
    );

    println!("\nshape checks:");
    let checks = [
        (
            "SDSS has many times more pairs than SQLShare",
            sdss.total_pairs > 3 * sqlshare.total_pairs,
        ),
        ("SDSS is single-dataset", sdss.datasets == 1),
        ("SDSS uses (almost) all 56 tables", sdss.tables >= 54),
        (
            "SQLShare has many more tables than SDSS",
            sqlshare.tables > 2 * sdss.tables,
        ),
        (
            "SDSS diversity: columns > literals > functions > tables",
            sdss.columns > sdss.literals
                && sdss.literals > sdss.functions
                && sdss.functions > sdss.tables,
        ),
        (
            "SQLShare diversity: columns > tables > literals > functions",
            sqlshare.columns > sqlshare.tables
                && sqlshare.tables > sqlshare.literals
                && sqlshare.literals > sqlshare.functions,
        ),
        (
            "duplicate pairs exist (total > unique), SDSS-dominant",
            sdss.total_pairs - sdss.unique_pairs > sqlshare.total_pairs - sqlshare.unique_pairs,
        ),
    ];
    let mut ok = true;
    for (label, passed) in checks {
        println!("  [{}] {}", if passed { "ok" } else { "MISS" }, label);
        ok &= passed;
    }

    write_results(
        r,
        "table2",
        &json!({
            "sdss": sdss,
            "sqlshare": sqlshare,
            "all_shape_checks_pass": ok,
        }),
    );
}
