//! **Figure 12** — N-fragments prediction: micro F1 per fragment type
//! for N ∈ [1, 5], for the deep models (beam-search decoding) and the
//! `popular` baseline, on both datasets.
//!
//! Reproduction targets (Section 6.3.2): on SDSS seq-aware models vastly
//! outperform seq-less and `popular`; `popular` performs drastically
//! better on SDSS than on SQLShare (shared schema vs per-user datasets);
//! the Transformer generally beats ConvS2S.

use qrec_bench::{both_datasets, f3, print_table, trained_recommender, write_results};
use qrec_core::eval::eval_n_fragments_curve;
use qrec_core::prelude::*;
use qrec_sql::FragmentKind;
use serde_json::json;

/// Cap the pairs scored per configuration: beam decoding costs a model
/// forward per step per live hypothesis, and the curves stabilise well
/// before the full test split (the cap is printed, nothing is silent).
const MAX_EVAL_PAIRS: usize = 150;

fn main() {
    let r = &qrec_bench::StdioReporter;
    let ns = [1usize, 2, 3, 4, 5];
    let mut results = Vec::new();
    for data in both_datasets() {
        let test: Vec<_> = data
            .split
            .test
            .iter()
            .take(MAX_EVAL_PAIRS)
            .cloned()
            .collect();
        println!(
            "\n### Figure 12 ({}): scoring {} of {} test pairs",
            data.name,
            test.len(),
            data.split.test.len()
        );

        let mut methods: Vec<(String, Box<dyn FragmentPredictor>)> = vec![
            (
                "popular".into(),
                Box::new(PopularBaseline::fit(&data.split.train)),
            ),
            ("naive-Qi".into(), Box::new(NaiveQi::fit(&data.split.train))),
        ];
        for seq_mode in [SeqMode::Less, SeqMode::Aware] {
            for arch in [Arch::ConvS2S, Arch::Transformer] {
                let (rec, _) = trained_recommender(r, &data, arch, seq_mode);
                methods.push((rec.name(), Box::new(rec)));
            }
        }

        // Compute every method's full curve with one ranking per pair.
        let mut curves = Vec::new();
        for (name, m) in methods.iter_mut() {
            curves.push((name.clone(), eval_n_fragments_curve(m.as_mut(), &test, &ns)));
        }
        for kind in FragmentKind::ALL {
            let mut rows = Vec::new();
            for (name, curve) in &curves {
                let series: Vec<f64> = curve.iter().map(|m| m.get(kind).f1()).collect();
                let mut row = vec![name.clone()];
                row.extend(series.iter().map(|&v| f3(v)));
                rows.push(row);
                results.push(json!({
                    "dataset": data.name,
                    "method": name,
                    "kind": kind.label(),
                    "n": ns,
                    "f1": series,
                }));
            }
            print_table(
                r,
                &format!(
                    "Figure 12 ({}, {} prediction): F1 at N",
                    data.name,
                    kind.label()
                ),
                &["method", "N=1", "N=2", "N=3", "N=4", "N=5"],
                &rows,
            );
        }
    }
    write_results(r, "fig12", &json!(results));
}
