//! **Ablation: preceding-query context** — does `Q_i` alone carry the
//! predictive signal, as the paper argues in Section 2 ("the immediate
//! successor encodes most of the necessary information")?
//!
//! We compare three context variants for next template prediction:
//!  * `none`       — the popular baseline (no input at all);
//!  * `Q_i`        — the paper's choice (our standard classifier);
//!  * `Q_{i-1}+Q_i` — two preceding queries concatenated, the extension
//!    the paper sketches for seq2seq inputs.
//!
//! Expected shape: `Q_i` ≫ `none`; adding `Q_{i-1}` helps only
//! marginally (or hurts, with longer inputs and fixed capacity),
//! supporting the single-preceding-query design.

use qrec_bench::{clf_config, dataset, f3, print_table, trained_classifier, write_results};
use qrec_core::data::TemplateClasses;
use qrec_core::prelude::*;
use qrec_nn::classifier::{classify, ClassifierHead};
use qrec_nn::params::Params;
use qrec_nn::seq2seq::Seq2Seq;
use qrec_nn::trainer::{train_classifier, LabeledSeq};
use qrec_workload::{OwnedPair, Vocab};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde_json::json;

/// Two-query context pairs: for each session, triples
/// `(Q_{i-1}, Q_i) → template(Q_{i+1})`.
struct TwoQueryData {
    train: Vec<LabeledSeq>,
    val: Vec<LabeledSeq>,
    /// `(tokens of Q_{i-1}+Q_i, true template)` for the test pairs.
    test: Vec<(Vec<usize>, qrec_sql::Template)>,
}

fn two_query_context(
    data: &qrec_bench::ExpData,
    vocab: &Vocab,
    classes: &TemplateClasses,
) -> TwoQueryData {
    // Rebuild triples from sessions, then split by the same pair
    // membership as the standard split (train pairs stay train).
    let mut member = std::collections::HashMap::new();
    for (tag, part) in [
        (0u8, &data.split.train),
        (1, &data.split.val),
        (2, &data.split.test),
    ] {
        for p in part.iter() {
            member.insert(
                (
                    p.session_id,
                    p.current.canonical.clone(),
                    p.next.canonical.clone(),
                ),
                tag,
            );
        }
    }
    let mut out = TwoQueryData {
        train: Vec::new(),
        val: Vec::new(),
        test: Vec::new(),
    };
    for s in &data.workload.sessions {
        for w in s.queries.windows(3) {
            let (prev, cur, next) = (&w[0], &w[1], &w[2]);
            let key = (s.id, cur.canonical.clone(), next.canonical.clone());
            let Some(&tag) = member.get(&key) else {
                continue;
            };
            let mut tokens = prev.tokens.clone();
            tokens.push("<SEP>".to_string());
            tokens.extend(cur.tokens.iter().cloned());
            let src = vocab.encode(&tokens);
            match tag {
                2 => out.test.push((src, next.template.clone())),
                t => {
                    if let Some(label) = classes.index_of(&next.template) {
                        let ex = LabeledSeq { src, label };
                        if t == 0 {
                            out.train.push(ex);
                        } else {
                            out.val.push(ex);
                        }
                    }
                }
            }
        }
    }
    out
}

fn main() {
    let r = &qrec_bench::StdioReporter;
    let mut results = Vec::new();
    for data in [dataset("sdss"), dataset("sqlshare")] {
        let test: Vec<OwnedPair> = data.split.test.clone();
        let mut rows = Vec::new();

        // none: popular baseline.
        let mut popular = PopularBaseline::fit(&data.split.train);
        let none_acc = eval_templates(&mut popular, &test, 1).accuracy();
        rows.push(vec!["none (popular)".into(), f3(none_acc)]);

        // Q_i: the standard fine-tuned transformer classifier.
        let (mut clf, _) = trained_classifier(r, &data, Arch::Transformer, SeqMode::Aware, true);
        let qi_acc = eval_templates(&mut clf, &test, 1).accuracy();
        rows.push(vec!["Q_i (paper)".into(), f3(qi_acc)]);

        // Q_{i-1}+Q_i: a fresh classifier over concatenated contexts.
        let cfg = clf_config(&data.name);
        let vocab = qrec_core::data::build_vocab(&data.split.train, 2);
        let classes = TemplateClasses::from_pairs(&data.split.train, cfg.min_support);
        let two = two_query_context(&data, &vocab, &classes);
        eprintln!(
            "  training two-query-context classifier on {} ({} triples) …",
            data.name,
            two.train.len()
        );
        let mut rng = StdRng::seed_from_u64(cfg.train.seed);
        let mut params = Params::new();
        let model = AnyModel::build(
            Arch::Transformer,
            SizePreset::Small,
            vocab.len(),
            &mut params,
            &mut rng,
        );
        let head = ClassifierHead::new(
            &mut params,
            model.d_model(),
            cfg.hidden,
            classes.len().max(1),
            cfg.dropout,
            &mut rng,
        );
        let _ = train_classifier(&model, &head, &mut params, &two.train, &two.val, &cfg.train);
        let mut hits = 0usize;
        for (src, actual) in &two.test {
            let ranked = classify(&model, &head, &params, src, &mut rng);
            if let Some(&(class, _)) = ranked.first() {
                if classes.template(class) == actual {
                    hits += 1;
                }
            }
        }
        let two_acc = hits as f64 / two.test.len().max(1) as f64;
        rows.push(vec![
            format!("Q_i-1 + Q_i ({} triples)", two.test.len()),
            f3(two_acc),
        ]);

        print_table(
            r,
            &format!("Context ablation ({}): top-1 template accuracy", data.name),
            &["context", "accuracy"],
            &rows,
        );
        results.push(json!({
            "dataset": data.name,
            "none": none_acc,
            "qi": qi_acc,
            "two_query": two_acc,
            "two_query_test_size": two.test.len(),
        }));
    }
    write_results(r, "ablation_context", &json!(results));
}
