//! `bench_obs` — measured overhead of the observability spine on the
//! live serving path (DESIGN.md §12).
//!
//! ```text
//! bench_obs [--smoke] [--out PATH] [--threshold FRAC] [--rounds N] [--requests N]
//! ```
//!
//! Boots the real TCP server on a tiny trained model and drives two
//! scenarios through a real client:
//!
//! - **cache-hit** — the same window repeated, so each request is
//!   session push + cache lookup + rank (no decode). This is the
//!   worst case for relative overhead: the request is cheap, so span
//!   and flight-recording cost is the largest possible fraction of it.
//! - **decode-heavy** — alternating windows against a one-entry cache,
//!   so every request runs the full encoder/decoder path.
//!
//! Each round times both scenarios with recording forced **on**
//! (`qrec_obs::set_enabled(true)`: spans, traces, and flight records
//! all active) and forced **off**. The two modes are interleaved at
//! sub-block granularity — a round is split into [`SUB_BLOCKS`]
//! alternating on/off request blocks, with the leading mode flipping
//! per block pair — so the modes are measured within milliseconds of
//! each other and frequency-scaling or load drift hits both equally.
//! Fast scenarios run a request multiple (`weight`) so every block has
//! enough samples. Per round each mode reports the mean of its fastest
//! half of per-request timings (latency noise is one-sided: the slow
//! half is scheduler spikes, not signal), giving one on/off ratio per
//! round; per scenario the **median** ratio across rounds discards
//! outlier rounds entirely. The geometric mean of the per-scenario
//! median ratios must not exceed `1 + threshold` (default 3%, override
//! with `--threshold` or `QREC_OBS_OVERHEAD_MAX`). Results go to
//! `BENCH_obs.json` (or `target/BENCH_obs_smoke.json` with `--smoke`);
//! a breach exits non-zero so CI fails.
//!
//! The report also carries a `micro` section timing the two telemetry
//! hot-path operations in isolation — recording into a window-tracked
//! counter (plus the periodic seal) and a SpaceSaving sketch update
//! under constant eviction pressure — so a regression in either shows
//! up as an absolute ns/op number, not just as a shift in the
//! end-to-end ratio.
//!
//! `--smoke` shrinks rounds/requests for CI schema checks and, unless
//! `--threshold`/`QREC_OBS_OVERHEAD_MAX` is given, relaxes the budget
//! to 15%: with so few samples the ratio is noise-dominated, and the
//! tight 3% gate is enforced by `scripts/ci.sh` at full settings.

use qrec_bench::timing::{time_stats, RepStats};
use qrec_core::{Arch, Recommender, RecommenderConfig, SeqMode};
use qrec_obs::{Counter, TemplateSketch, WindowSet};
use qrec_serve::{Client, EngineConfig, Server, ServerConfig};
use qrec_workload::gen::{generate, WorkloadProfile};
use qrec_workload::Split;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde_json::json;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::{Duration, Instant};

fn train_tiny(seed: u64) -> Recommender {
    let (workload, _catalog) = generate(&WorkloadProfile::tiny(), seed);
    let mut rng = StdRng::seed_from_u64(seed);
    let split = Split::paper(workload.pairs(), &mut rng);
    let mut cfg = RecommenderConfig::test(Arch::Transformer, SeqMode::Aware);
    cfg.train.epochs = 2;
    let (model, _report) = Recommender::try_train(&split, &workload, cfg).expect("tiny training");
    model
}

/// One-entry cache: the decode-heavy scenario alternates two windows so
/// every request misses, while the cache-hit scenario repeats one
/// window so every timed request hits.
fn server_config() -> ServerConfig {
    ServerConfig {
        conn_threads: 2,
        engine: EngineConfig {
            workers: 1,
            queue_cap: 64,
            max_batch: 4,
            ..EngineConfig::default()
        },
        session_ttl: Duration::from_secs(600),
        sweep_interval: Duration::from_secs(600),
        cache_capacity: 1,
        ..ServerConfig::default()
    }
}

struct Scenario {
    label: &'static str,
    session: &'static str,
    sqls: &'static [&'static str],
    /// Multiplier on `--requests` for this scenario: fast requests need
    /// many more reps before a timed block rises above scheduler noise.
    weight: usize,
}

const SCENARIOS: [Scenario; 2] = [
    Scenario {
        label: "cache-hit",
        session: "obs-cache",
        sqls: &["SELECT a FROM t WHERE b < 2"],
        weight: 16,
    },
    Scenario {
        label: "decode-heavy",
        session: "obs-decode",
        sqls: &["SELECT a FROM t", "SELECT b FROM t WHERE a > 1"],
        weight: 1,
    },
];

/// How many alternating on/off request blocks one round is split into
/// (per mode). Finer interleaving keeps the two modes' samples close in
/// time, so slow drift cancels in the per-round ratio.
const SUB_BLOCKS: usize = 10;

/// Time `requests` requests, appending per-request latencies (seconds)
/// to `lat`. `cursor` carries the sql rotation across blocks: if every
/// block restarted at sql 0, a block whose predecessor ended on sql 0
/// would open with a recommendation-cache hit, polluting the
/// decode-heavy sample with ~50× faster outliers.
fn run_block(
    client: &mut Client,
    s: &Scenario,
    requests: usize,
    cursor: &mut usize,
    lat: &mut Vec<f64>,
) -> Result<(), String> {
    for _ in 0..requests {
        let sql = s.sqls[*cursor % s.sqls.len()];
        *cursor += 1;
        let t0 = Instant::now();
        client
            .recommend(s.session, sql, 5)
            .map_err(|e| format!("{}: {e}", s.label))?;
        lat.push(t0.elapsed().as_secs_f64());
    }
    Ok(())
}

/// Robust per-request latency, in seconds: the mean of the fastest
/// half of the individual timings. Latency noise is one-sided
/// (scheduler preemption and page faults only ever add time), so
/// discarding the slow half removes the spikes while still averaging
/// enough samples to resolve sub-microsecond deltas.
fn fastest_half_mean(lat: &mut [f64]) -> f64 {
    lat.sort_by(f64::total_cmp);
    let half = lat.len().div_ceil(2).max(1);
    lat[..half].iter().sum::<f64>() / half as f64
}

/// One round of a scenario: `SUB_BLOCKS` alternating (on, off) block
/// pairs, with the leading mode flipping per pair. Returns the round's
/// `(on, off)` fastest-half means.
fn run_round(
    client: &mut Client,
    s: &Scenario,
    requests_per_mode: usize,
    round: usize,
) -> Result<(f64, f64), String> {
    let block = (requests_per_mode / SUB_BLOCKS).max(1);
    let mut lat = [Vec::with_capacity(requests_per_mode), Vec::new()];
    let mut cursor = 0usize;
    for pair in 0..SUB_BLOCKS {
        let first_on = (round + pair).is_multiple_of(2);
        for on in [first_on, !first_on] {
            qrec_obs::set_enabled(on);
            run_block(client, s, block, &mut cursor, &mut lat[usize::from(!on)])?;
        }
    }
    let [mut on_lat, mut off_lat] = lat;
    Ok((
        fastest_half_mean(&mut on_lat),
        fastest_half_mean(&mut off_lat),
    ))
}

/// Ops per microbench rep: large enough that one rep rises well above
/// timer granularity, small enough that `time_stats` fits many reps
/// into its budget and the percentiles mean something.
const MICRO_OPS: usize = 10_000;

/// Time the two telemetry hot-path operations in isolation.
///
/// - **window-record** — `MICRO_OPS` increments of a window-tracked
///   counter followed by one `WindowSet::seal`, i.e. exactly what one
///   busy window costs the server (the seal amortises to nothing; the
///   per-increment cost is what the request path pays).
/// - **sketch-update** — `MICRO_OPS` SpaceSaving updates over 256
///   distinct keys against a 64-slot sketch, so every miss evicts: the
///   structure's worst case, which is what a template-churn workload
///   produces.
///
/// Returns `(window_record, sketch_update)` rep stats; one rep is
/// `MICRO_OPS` operations.
fn microbench() -> (RepStats, RepStats) {
    let windows = WindowSet::new(64);
    let counter = std::sync::Arc::new(Counter::new("bench.obs.micro"));
    windows.track_counter(std::sync::Arc::clone(&counter));
    let mut unix_ms = 0u64;
    let mut window_record = || {
        for _ in 0..MICRO_OPS {
            counter.inc();
        }
        unix_ms += 1000;
        std::hint::black_box(windows.seal(unix_ms));
    };

    let sketch = TemplateSketch::new(64);
    let mut key = 0u64;
    let mut sketch_update = || {
        for _ in 0..MICRO_OPS {
            // LCG folded to 256 distinct ids: 4x the sketch capacity,
            // so updates alternate hits and evictions.
            key = key
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            sketch.observe(key >> 56);
        }
        std::hint::black_box(sketch.total());
    };

    let stats = time_stats(&mut [&mut window_record, &mut sketch_update], 0.5, 256);
    (stats[0], stats[1])
}

/// The `micro` report entry for one operation's rep stats.
fn micro_entry(s: &RepStats) -> serde_json::Value {
    json!({
        "ops_per_rep": MICRO_OPS,
        "best_ns_per_op": s.best_s * 1e9 / MICRO_OPS as f64,
        "p50_ns_per_op": s.p50_s * 1e9 / MICRO_OPS as f64,
        "percentiles": s.to_json(),
    })
}

/// The median of `xs` (mean of the middle two when even).
fn median(xs: &[f64]) -> f64 {
    let mut xs = xs.to_vec();
    xs.sort_by(f64::total_cmp);
    let n = xs.len();
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        (xs[n / 2 - 1] + xs[n / 2]) / 2.0
    }
}

struct Args {
    out: Option<PathBuf>,
    threshold: Option<f64>,
    rounds: usize,
    requests: usize,
    smoke: bool,
}

fn run(args: &Args) -> Result<(), String> {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let out = args.out.clone().unwrap_or_else(|| {
        if args.smoke {
            root.join("target/BENCH_obs_smoke.json")
        } else {
            root.join("BENCH_obs.json")
        }
    });
    let threshold = args
        .threshold
        .or_else(|| {
            std::env::var("QREC_OBS_OVERHEAD_MAX")
                .ok()
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(if args.smoke { 0.15 } else { 0.03 });

    eprintln!("bench_obs: timing telemetry micro-ops ...");
    let (window_micro, sketch_micro) = microbench();

    eprintln!("bench_obs: training tiny model ...");
    let mut server = Server::start(train_tiny(1), "127.0.0.1:0", server_config())
        .map_err(|e| format!("start server: {e}"))?;
    let mut client = Client::connect(server.local_addr()).map_err(|e| format!("connect: {e}"))?;

    // Per-round on/off ratios (and last round's means, for the report),
    // per scenario. Round 0 is warm-up and is not kept.
    let rounds = args.rounds.max(2);
    let mut round_ratios: [Vec<f64>; 2] = [Vec::new(), Vec::new()];
    let mut last_means = [[0.0f64; 2]; 2];
    for round in 0..rounds {
        for (si, s) in SCENARIOS.iter().enumerate() {
            let (on, off) = run_round(&mut client, s, args.requests * s.weight, round)?;
            if round > 0 {
                round_ratios[si].push(on / off);
                last_means[si] = [on, off];
            }
        }
    }
    qrec_obs::set_enabled(true);

    let ratios: Vec<f64> = round_ratios.iter().map(|r| median(r)).collect();
    let geomean = (ratios.iter().map(|r| r.ln()).sum::<f64>() / ratios.len() as f64).exp();
    let overhead = geomean - 1.0;
    let pass = overhead <= threshold;

    let report = json!({
        "benchmark": "qrec-obs serving overhead (recording on vs off)",
        "rounds": rounds,
        "requests_base": args.requests,
        "sub_blocks": SUB_BLOCKS,
        "threshold": threshold,
        "scenarios": SCENARIOS.iter().enumerate().map(|(si, s)| json!({
            "label": s.label,
            "requests_per_mode_per_round": args.requests * s.weight,
            "last_round_fast_half_mean_on_s": last_means[si][0],
            "last_round_fast_half_mean_off_s": last_means[si][1],
            "round_ratios": round_ratios[si],
            "median_ratio": ratios[si],
        })).collect::<Vec<_>>(),
        "geomean_ratio": geomean,
        "overhead": overhead,
        "pass": pass,
        "micro": json!({
            "window_record": micro_entry(&window_micro),
            "sketch_update": micro_entry(&sketch_micro),
        }),
    });
    if let Some(dir) = out.parent() {
        std::fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    }
    let bytes = serde_json::to_vec_pretty(&report).map_err(|e| format!("serialise: {e}"))?;
    std::fs::write(&out, bytes).map_err(|e| format!("write {}: {e}", out.display()))?;

    for (si, s) in SCENARIOS.iter().enumerate() {
        println!(
            "{:<14} last on {:.6}s  off {:.6}s  median ratio {:.4}  (rounds: {})",
            s.label,
            last_means[si][0],
            last_means[si][1],
            ratios[si],
            round_ratios[si]
                .iter()
                .map(|r| format!("{r:.4}"))
                .collect::<Vec<_>>()
                .join(" ")
        );
    }
    for (name, s) in [
        ("window-record", &window_micro),
        ("sketch-update", &sketch_micro),
    ] {
        println!(
            "micro {:<14} best {:.1} ns/op  p50 {:.1} ns/op  ({} reps)",
            name,
            s.best_s * 1e9 / MICRO_OPS as f64,
            s.p50_s * 1e9 / MICRO_OPS as f64,
            s.reps
        );
    }
    println!(
        "geomean overhead: {:+.2}% (threshold {:.1}%)",
        overhead * 100.0,
        threshold * 100.0
    );
    println!("[results written to {}]", out.display());

    drop(client);
    server.shutdown();
    if pass {
        Ok(())
    } else {
        Err(format!(
            "observability overhead {:.2}% exceeds the {:.1}% budget",
            overhead * 100.0,
            threshold * 100.0
        ))
    }
}

fn main() -> ExitCode {
    let mut args = Args {
        out: None,
        threshold: None,
        // Rounds are cheap (~0.2 s each; model training dominates the
        // wall time), and the median across rounds is what kills
        // outliers — so default to plenty of them.
        rounds: 10,
        requests: 50,
        smoke: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        let parsed = match flag.as_str() {
            "--smoke" => {
                args.smoke = true;
                args.rounds = 5;
                args.requests = 20;
                Ok(())
            }
            "--out" => value("--out").map(|p| args.out = Some(PathBuf::from(p))),
            "--threshold" => value("--threshold").and_then(|v| {
                v.parse()
                    .map(|t| args.threshold = Some(t))
                    .map_err(|e| format!("--threshold: {e}"))
            }),
            "--rounds" => value("--rounds").and_then(|v| {
                v.parse()
                    .map(|r| args.rounds = r)
                    .map_err(|e| format!("--rounds: {e}"))
            }),
            "--requests" => value("--requests").and_then(|v| {
                v.parse()
                    .map(|r| args.requests = r)
                    .map_err(|e| format!("--requests: {e}"))
            }),
            "--help" | "-h" => {
                eprintln!(
                    "usage: bench_obs [--smoke] [--out PATH] [--threshold FRAC] \
                     [--rounds N] [--requests N]"
                );
                return ExitCode::SUCCESS;
            }
            other => Err(format!("unknown flag {other:?}")),
        };
        if let Err(msg) = parsed {
            eprintln!("bench_obs: {msg}");
            return ExitCode::FAILURE;
        }
    }
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("bench_obs failed: {msg}");
            ExitCode::FAILURE
        }
    }
}
