//! `bench_store` — durability cost baselines for the qrec-store WAL
//! (README "Durability", DESIGN.md §13).
//!
//! ```text
//! bench_store [--smoke] [--out PATH] [--appends N]
//! ```
//!
//! Two questions, answered with wall-clock numbers:
//!
//! - **What does an acknowledged write cost?** Per-append latency of
//!   session-record-sized WAL appends under each fsync policy
//!   (`always` pays a disk sync per write, `every-64` amortises it,
//!   `never` leaves syncing to the OS). Reported as best/p50/p95/p99
//!   from the individual timings, alongside the store's own
//!   instrumented log2-histogram quantiles so the `STATS` numbers can
//!   be sanity-checked against ground truth.
//! - **What does recovery cost?** Time for `Store::open` to replay a
//!   WAL holding N session records back into the memtable, for growing
//!   N — the startup tax a SIGKILL'd server pays.
//!
//! Full runs write `BENCH_store.json` at the repo root; `--smoke` uses
//! small counts and writes `target/BENCH_store_smoke.json`.

use qrec_store::{FsyncPolicy, Store, StoreConfig};
use serde_json::json;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

/// A session-record-sized value: what the serve tier actually persists
/// per acknowledged write (a JSON list of recent SQL statements).
fn value(i: u64) -> Vec<u8> {
    format!(
        "[\"SELECT a, b FROM t{} WHERE id = {} ORDER BY a\",\"SELECT count(*) FROM t{}\"]",
        i % 23,
        i,
        i % 23
    )
    .into_bytes()
}

fn key(i: u64) -> Vec<u8> {
    format!("session/user-{:06}", i % 512).into_bytes()
}

fn quantile_us(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)] * 1e6
}

struct AppendRow {
    policy: &'static str,
    appends: u64,
    best_us: f64,
    p50_us: f64,
    p95_us: f64,
    p99_us: f64,
    appends_per_s: f64,
    instrumented_p50_us: u64,
    instrumented_p99_us: u64,
    wal_bytes: u64,
}

struct RecoveryRow {
    records: u64,
    recovery_ms: f64,
    records_per_s: f64,
    recovered_records: u64,
    instrumented_recovery_us: u64,
}

/// Time `n` appends under `policy` into a fresh store; returns the
/// report row.
fn bench_appends(
    scratch: &std::path::Path,
    label: &'static str,
    policy: FsyncPolicy,
    n: u64,
) -> Result<AppendRow, String> {
    let dir = scratch.join(format!("append-{label}"));
    let cfg = StoreConfig {
        fsync: policy,
        // Large budget: measure the WAL, not flush interference.
        memtable_bytes: 1 << 26,
        ..StoreConfig::default()
    };
    let store = Store::open(&dir, cfg).map_err(|e| format!("open {label}: {e}"))?;
    let mut lat = Vec::with_capacity(n as usize);
    let t0 = Instant::now();
    for i in 0..n {
        let t = Instant::now();
        store
            .put(&key(i), &value(i))
            .map_err(|e| format!("put {label}: {e}"))?;
        lat.push(t.elapsed().as_secs_f64());
    }
    let total = t0.elapsed().as_secs_f64();
    lat.sort_by(f64::total_cmp);
    let stats = store.stats();
    Ok(AppendRow {
        policy: label,
        appends: n,
        best_us: quantile_us(&lat, 0.0),
        p50_us: quantile_us(&lat, 0.50),
        p95_us: quantile_us(&lat, 0.95),
        p99_us: quantile_us(&lat, 0.99),
        appends_per_s: n as f64 / total,
        instrumented_p50_us: stats.wal_append_p50_us,
        instrumented_p99_us: stats.wal_append_p99_us,
        wal_bytes: stats.wal_bytes,
    })
}

/// Write `n` records, drop the store, and time the WAL replay a fresh
/// `Store::open` performs.
fn bench_recovery(scratch: &std::path::Path, n: u64) -> Result<RecoveryRow, String> {
    let dir = scratch.join(format!("recovery-{n}"));
    let cfg = StoreConfig {
        fsync: FsyncPolicy::Never,
        memtable_bytes: 1 << 26,
        ..StoreConfig::default()
    };
    {
        let store = Store::open(&dir, cfg).map_err(|e| format!("open for load: {e}"))?;
        for i in 0..n {
            // Distinct keys: recovery replays every record into the
            // memtable rather than collapsing overwrites.
            let k = format!("session/user-{i:08}").into_bytes();
            store
                .put(&k, &value(i))
                .map_err(|e| format!("load put: {e}"))?;
        }
        store.sync().map_err(|e| format!("sync: {e}"))?;
    }
    let t0 = Instant::now();
    let store = Store::open(&dir, cfg).map_err(|e| format!("recovering open: {e}"))?;
    let wall = t0.elapsed().as_secs_f64();
    let stats = store.stats();
    if stats.recovered_records != n {
        return Err(format!(
            "recovery replayed {} of {} records",
            stats.recovered_records, n
        ));
    }
    Ok(RecoveryRow {
        records: n,
        recovery_ms: wall * 1e3,
        records_per_s: n as f64 / wall,
        recovered_records: stats.recovered_records,
        instrumented_recovery_us: stats.recovery_us,
    })
}

struct Args {
    smoke: bool,
    out: Option<PathBuf>,
    appends: Option<u64>,
}

fn run(args: &Args) -> Result<(), String> {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let out = args.out.clone().unwrap_or_else(|| {
        if args.smoke {
            root.join("target/BENCH_store_smoke.json")
        } else {
            root.join("BENCH_store.json")
        }
    });
    let appends = args.appends.unwrap_or(if args.smoke { 300 } else { 2000 });
    let recovery_counts: &[u64] = if args.smoke {
        &[200, 1000]
    } else {
        &[1000, 5000, 20000]
    };

    let scratch = std::env::temp_dir().join(format!("qrec-bench-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    std::fs::create_dir_all(&scratch).map_err(|e| format!("scratch dir: {e}"))?;

    let policies = [
        ("always", FsyncPolicy::Always),
        ("every-64", FsyncPolicy::EveryN(64)),
        ("never", FsyncPolicy::Never),
    ];
    let mut append_rows = Vec::new();
    for (label, policy) in policies {
        eprintln!("bench_store: {appends} appends, fsync {label} ...");
        let row = bench_appends(&scratch, label, policy, appends)?;
        println!(
            "append fsync={:<9} p50 {:>9.1}us  p99 {:>9.1}us  ({:.0}/s)",
            label, row.p50_us, row.p99_us, row.appends_per_s,
        );
        append_rows.push(row);
    }

    let mut recovery_rows = Vec::new();
    for &n in recovery_counts {
        eprintln!("bench_store: recovery of {n} records ...");
        let row = bench_recovery(&scratch, n)?;
        println!(
            "recovery {:>6} records  {:>8.2} ms  ({:.0}/s)",
            n, row.recovery_ms, row.records_per_s,
        );
        recovery_rows.push(row);
    }
    let _ = std::fs::remove_dir_all(&scratch);

    let report = json!({
        "benchmark": "qrec-store WAL append latency and recovery time",
        "smoke": args.smoke,
        "value_bytes": value(0).len(),
        "append": append_rows.iter().map(|r| json!({
            "policy": r.policy,
            "appends": r.appends,
            "best_us": r.best_us,
            "p50_us": r.p50_us,
            "p95_us": r.p95_us,
            "p99_us": r.p99_us,
            "appends_per_s": r.appends_per_s,
            "instrumented_p50_us": r.instrumented_p50_us,
            "instrumented_p99_us": r.instrumented_p99_us,
            "wal_bytes": r.wal_bytes,
        })).collect::<Vec<_>>(),
        "recovery": recovery_rows.iter().map(|r| json!({
            "records": r.records,
            "recovery_ms": r.recovery_ms,
            "records_per_s": r.records_per_s,
            "recovered_records": r.recovered_records,
            "instrumented_recovery_us": r.instrumented_recovery_us,
        })).collect::<Vec<_>>(),
    });
    if let Some(dir) = out.parent() {
        std::fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    }
    let bytes = serde_json::to_vec_pretty(&report).map_err(|e| format!("serialise: {e}"))?;
    std::fs::write(&out, bytes).map_err(|e| format!("write {}: {e}", out.display()))?;
    println!("[results written to {}]", out.display());
    Ok(())
}

fn main() -> ExitCode {
    let mut args = Args {
        smoke: false,
        out: None,
        appends: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        let parsed = match flag.as_str() {
            "--smoke" => {
                args.smoke = true;
                Ok(())
            }
            "--out" => value("--out").map(|p| args.out = Some(PathBuf::from(p))),
            "--appends" => value("--appends").and_then(|v| {
                v.parse()
                    .map(|n| args.appends = Some(n))
                    .map_err(|e| format!("--appends: {e}"))
            }),
            "--help" | "-h" => {
                eprintln!("usage: bench_store [--smoke] [--out PATH] [--appends N]");
                return ExitCode::SUCCESS;
            }
            other => Err(format!("unknown flag {other:?}")),
        };
        if let Err(msg) = parsed {
            eprintln!("bench_store: {msg}");
            return ExitCode::FAILURE;
        }
    }
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("bench_store failed: {msg}");
            ExitCode::FAILURE
        }
    }
}
