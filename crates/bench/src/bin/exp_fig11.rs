//! **Figure 11** — SQLShare session-level ((a)–(e)) and pair-level
//! ((f)–(l)) workload analysis.
//!
//! Reproduction targets (Section 5.3.2/5.3.3): ~68% of sessions use ≥2
//! templates and ~55% change templates twice; at the pair level ~62% of
//! pairs change template (clearly above SDSS), with smaller per-property
//! increase rates than SDSS.

use qrec_bench::{dataset, session_pair_figure, write_results};

fn main() {
    let r = &qrec_bench::StdioReporter;
    let data = dataset("sqlshare");
    let results = session_pair_figure(r, &data, "Figure 11");
    write_results(r, "fig11", &results);
}
