//! **Table 5** — fragment-*set* prediction: micro F-measure per fragment
//! type (table / column / function / literal) for every method on both
//! datasets.
//!
//! Reproduction targets (Section 6.3.1): on SDSS the seq-aware deep
//! models beat the baselines on tables/columns/functions (strong
//! sequence effect); on SQLShare the seq-less models lead (weak sequence
//! effect — `Q_{i+1}` is closer to `Q_i` and there is far less data);
//! `naive Q_i` is a strong anchor everywhere; the Transformer generally
//! edges out ConvS2S.

use qrec_bench::{both_datasets, f3, print_table, trained_recommender, write_results};
use qrec_core::prelude::*;
use serde_json::json;

fn main() {
    let r = &qrec_bench::StdioReporter;
    let mut results = Vec::new();
    for data in both_datasets() {
        let test = &data.split.test;
        let mut rows = Vec::new();

        // Baselines.
        let mut methods: Vec<(String, Box<dyn FragmentPredictor>)> = vec![
            ("naive-Qi".into(), Box::new(NaiveQi::fit(&data.split.train))),
            (
                "popular".into(),
                Box::new(PopularBaseline::fit(&data.split.train)),
            ),
            (
                "querie".into(),
                Box::new(Querie::fit(&data.split.train, 10)),
            ),
        ];
        // Deep models.
        for seq_mode in [SeqMode::Less, SeqMode::Aware] {
            for arch in [Arch::ConvS2S, Arch::Transformer] {
                let (rec, _) = trained_recommender(r, &data, arch, seq_mode);
                methods.push((rec.name(), Box::new(rec)));
            }
        }

        for (name, mut m) in methods {
            let metrics = eval_fragment_set(m.as_mut(), test);
            rows.push(vec![
                name.clone(),
                f3(metrics.table.f1()),
                f3(metrics.column.f1()),
                f3(metrics.function.f1()),
                f3(metrics.literal.f1()),
            ]);
            results.push(json!({
                "dataset": data.name,
                "method": name,
                "f1": {
                    "table": metrics.table.f1(),
                    "column": metrics.column.f1(),
                    "function": metrics.function.f1(),
                    "literal": metrics.literal.f1(),
                },
                "precision": {
                    "table": metrics.table.precision(),
                    "column": metrics.column.precision(),
                    "function": metrics.function.precision(),
                    "literal": metrics.literal.precision(),
                },
                "recall": {
                    "table": metrics.table.recall(),
                    "column": metrics.column.recall(),
                    "function": metrics.function.recall(),
                    "literal": metrics.literal.recall(),
                },
            }));
        }

        print_table(
            r,
            &format!(
                "Table 5 ({}): fragment-set prediction, micro F1 over {} test pairs",
                data.name,
                test.len()
            ),
            &["method", "table", "column", "function", "literal"],
            &rows,
        );
    }
    write_results(r, "table5", &json!(results));
}
