//! **Ablation: architecture** — Transformer vs ConvS2S vs GRU (the RNN
//! variant the paper defers to its full version) on fragment-set
//! prediction and validation loss, seq-aware, both datasets.
//!
//! Expected shape (Section 6.3.3): the Transformer leads overall; the
//! GRU is competitive on short queries but trails on long ones where
//! relating distant tokens matters.

use qrec_bench::{dataset, f3, print_table, rec_config, trained_recommender, write_results};
use qrec_core::prelude::*;
use serde_json::json;

fn main() {
    let r = &qrec_bench::StdioReporter;
    let mut results = Vec::new();
    for data in [dataset("sdss"), dataset("sqlshare")] {
        let test = &data.split.test;
        let mut rows = Vec::new();
        for arch in [Arch::Transformer, Arch::ConvS2S, Arch::Gru] {
            // Transformer/ConvS2S come from the shared cache; the GRU is
            // trained here with the same per-dataset budget.
            let (mut rec, report) = if arch == Arch::Gru {
                let cfg = rec_config(&data.name, arch, SeqMode::Aware);
                eprintln!("  training seq-aware gru on {} …", data.name);
                Recommender::train(&data.split, &data.workload, cfg)
            } else {
                trained_recommender(r, &data, arch, SeqMode::Aware)
            };
            let metrics = eval_fragment_set(&mut rec, test);
            rows.push(vec![
                arch.label().to_string(),
                f3(metrics.table.f1()),
                f3(metrics.column.f1()),
                f3(metrics.function.f1()),
                f3(metrics.literal.f1()),
                format!("{:.3}", report.best_val_loss()),
                rec.param_count().to_string(),
            ]);
            results.push(json!({
                "dataset": data.name,
                "arch": arch.label(),
                "f1": {
                    "table": metrics.table.f1(),
                    "column": metrics.column.f1(),
                    "function": metrics.function.f1(),
                    "literal": metrics.literal.f1(),
                },
                "val_loss": report.best_val_loss(),
                "params": rec.param_count(),
            }));
        }
        print_table(
            r,
            &format!(
                "Architecture ablation ({}): seq-aware fragment-set F1 over {} pairs",
                data.name,
                test.len()
            ),
            &[
                "arch", "table", "column", "function", "literal", "val loss", "#params",
            ],
            &rows,
        );
    }
    write_results(r, "ablation_arch", &json!(results));
}
