//! **Table 6** — top-1 next-template prediction accuracy for every
//! method on both datasets.
//!
//! Reproduction targets (Section 6.4.1): every deep model beats the
//! baselines; on SDSS the seq-aware variants clearly beat their seq-less
//! counterparts (strong sequence effect); the fine-tuned Transformer is
//! the best model overall; `naive Q_i`'s accuracy equals the
//! template-same rate of the test pairs (the anchor).

use qrec_bench::{both_datasets, f3, print_table, trained_classifier, write_results};
use qrec_core::prelude::*;
use serde_json::json;

fn main() {
    let r = &qrec_bench::StdioReporter;
    let mut results = Vec::new();
    for data in both_datasets() {
        let test = &data.split.test;
        let mut rows = Vec::new();

        let mut methods: Vec<(String, Box<dyn TemplatePredictor>)> = vec![
            ("naive-Qi".into(), Box::new(NaiveQi::fit(&data.split.train))),
            (
                "popular".into(),
                Box::new(PopularBaseline::fit(&data.split.train)),
            ),
            (
                "querie".into(),
                Box::new(Querie::fit(&data.split.train, 10)),
            ),
        ];
        // Untuned classifiers (one per architecture; encoder from scratch).
        for arch in [Arch::ConvS2S, Arch::Transformer] {
            let (clf, _) = trained_classifier(r, &data, arch, SeqMode::Aware, false);
            methods.push((clf.name(), Box::new(clf)));
        }
        // Fine-tuned classifiers on top of each trained seq2seq encoder.
        for seq_mode in [SeqMode::Less, SeqMode::Aware] {
            for arch in [Arch::ConvS2S, Arch::Transformer] {
                let (clf, _) = trained_classifier(r, &data, arch, seq_mode, true);
                methods.push((clf.name(), Box::new(clf)));
            }
        }

        for (name, mut m) in methods {
            let metrics = eval_templates(m.as_mut(), test, 1);
            rows.push(vec![name.clone(), f3(metrics.accuracy())]);
            results.push(json!({
                "dataset": data.name,
                "method": name,
                "top1_accuracy": metrics.accuracy(),
            }));
        }

        // The anchor identity from Section 5.4.2.
        let same_rate = test
            .iter()
            .filter(|p| p.current.template == p.next.template)
            .count() as f64
            / test.len().max(1) as f64;

        print_table(
            r,
            &format!(
                "Table 6 ({}): top-1 template prediction accuracy over {} test pairs",
                data.name,
                test.len()
            ),
            &["method", "accuracy"],
            &rows,
        );
        println!(
            "  (test template-same rate = {:.3}; naive-Qi must equal it)",
            same_rate
        );
    }
    write_results(r, "table6", &json!(results));
}
