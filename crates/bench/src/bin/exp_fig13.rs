//! **Figure 13** — N-templates prediction: accuracy, MRR, and NDCG for
//! N ∈ [1, 5] for every template predictor, on both datasets. (The
//! paper's figure shows accuracy and MRR and defers NDCG to its full
//! version due to similarity; we print all three.)
//!
//! Reproduction targets (Section 6.4.2): on SDSS the seq-aware
//! fine-tuned Transformer dominates both metrics; on SQLShare seq-aware
//! models pick up as N grows (the sequence effect becomes more relevant
//! when the user asks for more than one recommendation); the rank-aware
//! MRR separates the tuned Transformer further from ConvS2S.

use qrec_bench::{both_datasets, f3, print_table, trained_classifier, write_results};
use qrec_core::prelude::*;
use serde_json::json;

fn main() {
    let r = &qrec_bench::StdioReporter;
    let ns = [1usize, 2, 3, 4, 5];
    let mut results = Vec::new();
    for data in both_datasets() {
        let test = &data.split.test;

        let mut methods: Vec<(String, Box<dyn TemplatePredictor>)> = vec![
            ("naive-Qi".into(), Box::new(NaiveQi::fit(&data.split.train))),
            (
                "popular".into(),
                Box::new(PopularBaseline::fit(&data.split.train)),
            ),
            (
                "querie".into(),
                Box::new(Querie::fit(&data.split.train, 10)),
            ),
        ];
        for seq_mode in [SeqMode::Less, SeqMode::Aware] {
            for arch in [Arch::ConvS2S, Arch::Transformer] {
                let (clf, _) = trained_classifier(r, &data, arch, seq_mode, true);
                methods.push((clf.name(), Box::new(clf)));
            }
        }

        for metric in ["accuracy", "MRR", "NDCG"] {
            let mut rows = Vec::new();
            for (name, m) in methods.iter_mut() {
                let mut row = vec![name.clone()];
                let mut series = Vec::new();
                for &n in &ns {
                    let metrics = eval_templates(m.as_mut(), test, n);
                    let v = match metric {
                        "accuracy" => metrics.accuracy(),
                        "MRR" => metrics.mrr(),
                        _ => metrics.ndcg(),
                    };
                    row.push(f3(v));
                    series.push(v);
                }
                rows.push(row);
                results.push(json!({
                    "dataset": data.name,
                    "method": name,
                    "metric": metric,
                    "n": ns,
                    "values": series,
                }));
            }
            print_table(
                r,
                &format!(
                    "Figure 13 ({}, {metric}): N-templates prediction over {} test pairs",
                    data.name,
                    test.len()
                ),
                &["method", "N=1", "N=2", "N=3", "N=4", "N=5"],
                &rows,
            );
        }
    }
    write_results(r, "fig13", &json!(results));
}
