//! `bench_tensor` — reproducible performance baseline for the GEMM
//! kernel and the end-to-end decode path (DESIGN.md §10).
//!
//! ```text
//! bench_tensor [--smoke] [--out PATH]
//! ```
//!
//! Times the shapes the models actually emit — single-token decode
//! vectors, full-sequence training tiles, and the 512³ scale shape —
//! under four kernels: the seed's branchy naive loop (kept verbatim
//! below as the fixed baseline), the canonical naive reference, the
//! blocked serial kernel, and the pool-parallel kernel at 1 and 8
//! threads. Also measures mean end-to-end `decode()` latency on a
//! freshly trained tiny model. Results go to `BENCH_tensor.json` at the
//! repo root (or `target/BENCH_tensor_smoke.json` under `--smoke`,
//! which shrinks shapes and budgets so CI can validate the harness in
//! seconds).

use qrec_bench::timing::{time_stats, RepStats};
use qrec_core::{Arch, Recommender, RecommenderConfig, SeqMode};
use qrec_nn::transformer::TransformerConfig;
use qrec_nn::Strategy;
use qrec_tensor::kernel;
use qrec_tensor::pool::{configured_threads, Pool};
use qrec_workload::gen::{generate, WorkloadProfile};
use qrec_workload::Split;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde_json::json;
use std::hint::black_box;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

/// The seed repository's matmul inner loop, copied verbatim so every
/// future run compares against the same fixed baseline: row-major ikj
/// with a per-element `a == 0.0` skip branch.
fn seed_naive(a: &[f32], b: &[f32], n: usize, k: usize, m: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; n * m];
    for i in 0..n {
        let arow = &a[i * k..(i + 1) * k];
        let orow = &mut out[i * m..(i + 1) * m];
        for (kk, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let brow = &b[kk * m..(kk + 1) * m];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
    out
}

/// Deterministic pseudo-random matrix data (no RNG state to drift).
fn fill(len: usize, salt: usize) -> Vec<f32> {
    (0..len)
        .map(|i| (((i + salt) * 2654435761) % 2000) as f32 * 1e-3 - 1.0)
        .collect()
}

struct Shape {
    label: &'static str,
    n: usize,
    k: usize,
    m: usize,
    /// Decode-path shape: must stay serial, gated by the ≤10% rule.
    decode: bool,
}

fn shapes(smoke: bool) -> Vec<Shape> {
    if smoke {
        return vec![
            Shape {
                label: "smoke 1x16.16x32",
                n: 1,
                k: 16,
                m: 32,
                decode: true,
            },
            Shape {
                label: "smoke 8x16.16x16",
                n: 8,
                k: 16,
                m: 16,
                decode: false,
            },
            Shape {
                label: "smoke 48x48.48x48",
                n: 48,
                k: 48,
                m: 48,
                decode: false,
            },
        ];
    }
    let cfg = TransformerConfig::small(2000);
    let (d, ff, vocab, len) = (cfg.d_model, cfg.d_ff, cfg.vocab, cfg.max_len);
    vec![
        Shape {
            label: "decode 1xd.dxd (attention proj)",
            n: 1,
            k: d,
            m: d,
            decode: true,
        },
        Shape {
            label: "decode 1xd.dxff (ffn expand)",
            n: 1,
            k: d,
            m: ff,
            decode: true,
        },
        Shape {
            label: "decode 1xd.dxvocab (vocab proj)",
            n: 1,
            k: d,
            m: vocab,
            decode: true,
        },
        Shape {
            label: "train Lxd.dxd (attention proj)",
            n: len,
            k: d,
            m: d,
            decode: false,
        },
        Shape {
            label: "train Lxd.dxvocab (vocab proj)",
            n: len,
            k: d,
            m: vocab,
            decode: false,
        },
        Shape {
            label: "scale 512x512x512",
            n: 512,
            k: 512,
            m: 512,
            decode: false,
        },
    ]
}

/// Measured timings for one shape (best-of-N plus rep percentiles per
/// kernel).
struct ShapeRow {
    label: &'static str,
    n: usize,
    k: usize,
    m: usize,
    decode: bool,
    path_8t: String,
    seed: RepStats,
    naive: RepStats,
    blocked: RepStats,
    gemm_1t: RepStats,
    gemm_8t: RepStats,
}

impl ShapeRow {
    fn seed_s(&self) -> f64 {
        self.seed.best_s
    }

    fn gemm_1t_s(&self) -> f64 {
        self.gemm_1t.best_s
    }

    fn gemm_8t_s(&self) -> f64 {
        self.gemm_8t.best_s
    }

    fn to_json(&self) -> serde_json::Value {
        let percentiles = json!({
            "seed_naive": self.seed.to_json(),
            "naive": self.naive.to_json(),
            "blocked": self.blocked.to_json(),
            "gemm_1t": self.gemm_1t.to_json(),
            "gemm_8t": self.gemm_8t.to_json(),
        });
        json!({
            "label": self.label,
            "n": self.n, "k": self.k, "m": self.m,
            "flops": 2 * self.n * self.k * self.m,
            "decode_shape": self.decode,
            "kernel_path_8t": self.path_8t,
            "seed_naive_s": self.seed.best_s,
            "naive_s": self.naive.best_s,
            "blocked_s": self.blocked.best_s,
            "gemm_1t_s": self.gemm_1t.best_s,
            "gemm_8t_s": self.gemm_8t.best_s,
            "percentiles": percentiles,
            "speedup_1t_vs_seed": self.seed.best_s / self.gemm_1t.best_s,
            "speedup_8t_vs_seed": self.seed.best_s / self.gemm_8t.best_s,
        })
    }
}

/// Time one shape under every kernel.
fn bench_shape(s: &Shape, pool1: &Pool, pool8: &Pool, smoke: bool) -> ShapeRow {
    let a = fill(s.n * s.k, 1);
    let b = fill(s.k * s.m, 2);
    let flops = 2 * s.n * s.k * s.m;
    let budget = if smoke {
        0.1
    } else if flops > 1 << 24 {
        4.0
    } else {
        1.0
    };
    let reps = if flops > 1 << 24 { 400 } else { 4096 };
    let (n, k, m) = (s.n, s.k, s.m);
    let times = time_stats(
        &mut [
            &mut || drop(black_box(seed_naive(&a, &b, n, k, m))),
            &mut || drop(black_box(kernel::naive(&a, &b, n, k, m))),
            &mut || drop(black_box(kernel::blocked(&a, &b, n, k, m))),
            &mut || drop(black_box(kernel::gemm_on(pool1, &a, &b, n, k, m))),
            &mut || drop(black_box(kernel::gemm_on(pool8, &a, &b, n, k, m))),
        ],
        budget,
        reps,
    );
    ShapeRow {
        label: s.label,
        n,
        k,
        m,
        decode: s.decode,
        path_8t: format!("{:?}", kernel::select(n, k, m, pool8.threads())),
        seed: times[0],
        naive: times[1],
        blocked: times[2],
        gemm_1t: times[3],
        gemm_8t: times[4],
    }
}

/// Mean end-to-end `decode()` latency: train the tiny demo model and
/// greedy-decode test queries through the full tokenizer→model path.
fn decode_latency(smoke: bool) -> (f64, usize, f64) {
    let (workload, _catalog) = generate(&WorkloadProfile::tiny(), 1);
    let mut rng = StdRng::seed_from_u64(1);
    let split = Split::paper(workload.pairs(), &mut rng);
    let cfg = RecommenderConfig::test(Arch::Transformer, SeqMode::Aware);
    let t0 = Instant::now();
    let (mut rec, _report) =
        Recommender::try_train(&split, &workload, cfg).expect("tiny training succeeds");
    let train_s = t0.elapsed().as_secs_f64();

    let queries: Vec<_> = split.test.iter().take(if smoke { 5 } else { 40 }).collect();
    for q in &queries {
        let _ = rec.decode_candidates(&q.current, Strategy::Greedy); // warm-up
    }
    let t0 = Instant::now();
    for q in &queries {
        let _ = black_box(rec.decode_candidates(&q.current, Strategy::Greedy));
    }
    let mean = t0.elapsed().as_secs_f64() / queries.len().max(1) as f64;
    (mean, queries.len(), train_s)
}

fn run(smoke: bool, out: Option<PathBuf>) -> Result<(), String> {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let out = out.unwrap_or_else(|| {
        if smoke {
            root.join("target/BENCH_tensor_smoke.json")
        } else {
            root.join("BENCH_tensor.json")
        }
    });

    let pool1 = Pool::new(1);
    let pool8 = Pool::new(8);
    eprintln!(
        "bench_tensor: mode={}, default pool size would be {} (QREC_THREADS overrides)",
        if smoke { "smoke" } else { "full" },
        configured_threads()
    );

    let mut rows = Vec::new();
    for s in shapes(smoke) {
        eprintln!("  timing {} ...", s.label);
        rows.push(bench_shape(&s, &pool1, &pool8, smoke));
    }

    // Headline numbers the acceptance gate reads: the 512³ speedup and
    // the worst decode-shape slowdown of the new dispatch vs the seed.
    let scale_speedup = rows
        .iter()
        .filter(|r| r.label.starts_with("scale"))
        .map(|r| r.seed_s() / r.gemm_8t_s())
        .fold(f64::NAN, f64::max);
    let decode_regression = rows
        .iter()
        .filter(|r| r.decode)
        .map(|r| r.gemm_1t_s() / r.seed_s() - 1.0)
        .fold(f64::NEG_INFINITY, f64::max);

    eprintln!("  timing end-to-end decode ...");
    let (decode_mean_s, decode_queries, train_s) = decode_latency(smoke);

    let report = json!({
        "benchmark": "qrec-tensor GEMM kernel + end-to-end decode",
        "mode": if smoke { "smoke" } else { "full" },
        "threads": { "configured_default": configured_threads(), "bench_pools": [1, 8] },
        "shapes": rows.iter().map(ShapeRow::to_json).collect::<Vec<_>>(),
        "scale_512_speedup_8t_vs_seed": if smoke { json!(null) } else { json!(scale_speedup) },
        "decode_shape_max_regression": decode_regression,
        "decode_e2e": {
            "queries": decode_queries,
            "train_s": train_s,
            "mean_decode_s": decode_mean_s,
        },
    });

    if let Some(dir) = out.parent() {
        std::fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    }
    let bytes = serde_json::to_vec_pretty(&report).map_err(|e| format!("serialise: {e}"))?;
    std::fs::write(&out, bytes).map_err(|e| format!("write {}: {e}", out.display()))?;

    // Re-read and parse: the file on disk must be well-formed JSON with
    // at least one shape row.
    let text = std::fs::read_to_string(&out).map_err(|e| format!("read back: {e}"))?;
    let parsed: serde_json::Value =
        serde_json::from_str(&text).map_err(|e| format!("round-trip parse: {e}"))?;
    let shape_count = parsed
        .as_object()
        .and_then(|o| o.get("shapes"))
        .and_then(|s| s.as_array())
        .map_or(0, <[serde_json::Value]>::len);
    if shape_count == 0 {
        return Err("no shape rows in the written report".into());
    }

    println!(
        "{:<36} {:>12} {:>12} {:>12} {:>9}",
        "shape", "seed (s)", "gemm 1t (s)", "gemm 8t (s)", "speedup"
    );
    for r in &rows {
        println!(
            "{:<36} {:>12.6} {:>12.6} {:>12.6} {:>8.2}x",
            r.label,
            r.seed_s(),
            r.gemm_1t_s(),
            r.gemm_8t_s(),
            r.seed_s() / r.gemm_8t_s(),
        );
    }
    if !smoke {
        println!("512^3 speedup (8t vs seed): {scale_speedup:.2}x");
    }
    println!(
        "decode-shape max regression vs seed: {:+.1}%",
        decode_regression * 100.0
    );
    println!("end-to-end decode: {decode_mean_s:.4} s/query over {decode_queries} queries");
    println!("[results written to {}]", out.display());
    Ok(())
}

fn main() -> ExitCode {
    let mut smoke = false;
    let mut out = None;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--smoke" => smoke = true,
            "--out" => match it.next() {
                Some(p) => out = Some(PathBuf::from(p)),
                None => {
                    eprintln!("missing value for --out");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                eprintln!("usage: bench_tensor [--smoke] [--out PATH]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown flag {other:?}");
                return ExitCode::FAILURE;
            }
        }
    }
    match run(smoke, out) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("bench_tensor failed: {msg}");
            ExitCode::FAILURE
        }
    }
}
