//! **Ablation: decoding strategy** — the three beam-search strategies of
//! Section 4.2.2 (beam, diverse beam, stochastic sampling) plus greedy,
//! compared on N-fragments prediction (N = 5) with the seq-aware
//! Transformer.
//!
//! Expected shape: the multi-candidate strategies beat greedy on recall
//! at N=5 (greedy explores a single path); diverse beam trades a little
//! precision for coverage; sampling sits between, depending on the
//! probability floor.

use qrec_bench::{dataset, f3, print_table, trained_recommender, write_results};
use qrec_core::prelude::*;
use qrec_nn::Strategy;
use qrec_sql::FragmentKind;
use serde_json::json;
use std::collections::BTreeSet;

const MAX_EVAL_PAIRS: usize = 120;
const N: usize = 5;

fn main() {
    let r = &qrec_bench::StdioReporter;
    let strategies: Vec<(&str, Strategy)> = vec![
        ("greedy", Strategy::Greedy),
        ("beam-5", Strategy::Beam { width: 5 }),
        (
            "diverse-beam-5x2",
            Strategy::DiverseBeam {
                width: 5,
                groups: 2,
                penalty: 1.0,
            },
        ),
        (
            "sampling-8@0.05",
            Strategy::Sampling {
                samples: 8,
                min_prob: 0.05,
            },
        ),
    ];

    let mut results = Vec::new();
    for data in [dataset("sdss"), dataset("sqlshare")] {
        let test: Vec<_> = data
            .split
            .test
            .iter()
            .take(MAX_EVAL_PAIRS)
            .cloned()
            .collect();
        let (mut rec, _) = trained_recommender(r, &data, Arch::Transformer, SeqMode::Aware);
        println!(
            "\n### decoding ablation ({}): seq-aware transformer, N={N}, {} pairs",
            data.name,
            test.len()
        );

        let mut rows = Vec::new();
        for (name, strategy) in &strategies {
            let mut metrics: PerKind<SetMetrics> = PerKind::default();
            for p in &test {
                let ranked = rec.ranked_fragments(&p.current, *strategy);
                for kind in FragmentKind::ALL {
                    let pred: BTreeSet<String> = ranked.get(kind).iter().take(N).cloned().collect();
                    metrics
                        .get_mut(kind)
                        .record(&pred, p.next.fragments.of(kind));
                }
            }
            rows.push(vec![
                name.to_string(),
                f3(metrics.table.f1()),
                f3(metrics.column.f1()),
                f3(metrics.function.f1()),
                f3(metrics.literal.f1()),
                f3(metrics.column.recall()),
            ]);
            results.push(json!({
                "dataset": data.name,
                "strategy": name,
                "f1": {
                    "table": metrics.table.f1(),
                    "column": metrics.column.f1(),
                    "function": metrics.function.f1(),
                    "literal": metrics.literal.f1(),
                },
                "column_recall": metrics.column.recall(),
            }));
        }
        print_table(
            r,
            &format!("Decoding-strategy ablation ({}), F1 at N={N}", data.name),
            &[
                "strategy",
                "table",
                "column",
                "function",
                "literal",
                "col-recall",
            ],
            &rows,
        );
    }
    write_results(r, "ablation_decode", &json!(results));
}
