//! `bench_decode` — wall-clock comparison of the incremental, KV-cached,
//! step-batched decoder against the pre-optimisation full-prefix path
//! (DESIGN.md §11).
//!
//! ```text
//! bench_decode [--smoke] [--out PATH]
//! ```
//!
//! Both paths run the *same* strategies on the *same* untrained model
//! and produce bitwise-identical hypotheses (enforced by the
//! `decode_equivalence` suite and re-checked here per scenario), so the
//! timings isolate the cost of re-running the decoder over the whole
//! prefix every step versus carrying per-layer caches forward. Greedy is
//! timed at several length caps to expose per-token scaling — the
//! reference path's per-token cost grows with the prefix, the
//! incremental path's stays flat — and beam-8 at the serving length cap
//! is the headline batched-speedup number. Results go to
//! `BENCH_decode.json` at the repo root (or
//! `target/BENCH_decode_smoke.json` under `--smoke`).

use qrec_bench::timing::{time_stats, RepStats};
use qrec_nn::decode::{decode, decode_reference, Strategy, SOS};
use qrec_nn::params::Params;
use qrec_nn::transformer::{Transformer, TransformerConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde_json::json;
use std::hint::black_box;
use std::path::PathBuf;
use std::process::ExitCode;

/// An untrained model with near-uniform output distributions: decodes
/// run to the length cap (EOS is almost never the argmax of 500 logits),
/// which is exactly what a scaling benchmark needs. The shape mirrors
/// the serving configuration's decode load.
fn bench_model(smoke: bool) -> (Params, Transformer) {
    let cfg = if smoke {
        TransformerConfig::test(30)
    } else {
        TransformerConfig {
            vocab: 500,
            d_model: 48,
            heads: 4,
            layers: 2,
            d_ff: 96,
            dropout: 0.0,
            max_len: 96,
        }
    };
    let mut params = Params::new();
    let mut rng = StdRng::seed_from_u64(42);
    let model = Transformer::new(&mut params, cfg, &mut rng);
    (params, model)
}

struct Scenario {
    label: &'static str,
    strategy: Strategy,
    max_len: usize,
}

fn scenarios(smoke: bool) -> Vec<Scenario> {
    if smoke {
        return vec![
            Scenario {
                label: "smoke greedy",
                strategy: Strategy::Greedy,
                max_len: 4,
            },
            Scenario {
                label: "smoke beam-4",
                strategy: Strategy::Beam { width: 4 },
                max_len: 6,
            },
        ];
    }
    vec![
        Scenario {
            label: "greedy len 16",
            strategy: Strategy::Greedy,
            max_len: 16,
        },
        Scenario {
            label: "greedy len 32",
            strategy: Strategy::Greedy,
            max_len: 32,
        },
        Scenario {
            label: "greedy len 64",
            strategy: Strategy::Greedy,
            max_len: 64,
        },
        Scenario {
            label: "beam-8 len 64",
            strategy: Strategy::Beam { width: 8 },
            max_len: 64,
        },
    ]
}

struct Row {
    label: &'static str,
    strategy: String,
    max_len: usize,
    /// Longest emitted hypothesis (the step count both paths executed).
    tokens: usize,
    reference: RepStats,
    incremental: RepStats,
}

impl Row {
    fn reference_s(&self) -> f64 {
        self.reference.best_s
    }

    fn incremental_s(&self) -> f64 {
        self.incremental.best_s
    }

    fn speedup(&self) -> f64 {
        self.reference.best_s / self.incremental.best_s
    }

    fn to_json(&self) -> serde_json::Value {
        let per_tok = |s: f64| s / self.tokens.max(1) as f64;
        json!({
            "label": self.label,
            "strategy": self.strategy,
            "max_len": self.max_len,
            "tokens": self.tokens,
            "reference_s": self.reference.best_s,
            "incremental_s": self.incremental.best_s,
            "reference_percentiles": self.reference.to_json(),
            "incremental_percentiles": self.incremental.to_json(),
            "reference_per_token_s": per_tok(self.reference.best_s),
            "incremental_per_token_s": per_tok(self.incremental.best_s),
            "speedup": self.speedup(),
        })
    }
}

fn bench_scenario(s: &Scenario, params: &Params, model: &Transformer, smoke: bool) -> Row {
    let src = [SOS, 4, 9, 5, 7, 3, 2];
    let seed = 17u64;

    // One checked run of each path: identical hypothesis ids or the
    // timings compare different work.
    let want = decode_reference(
        model,
        params,
        &src,
        s.strategy,
        s.max_len,
        &mut StdRng::seed_from_u64(seed),
    );
    let got = decode(
        model,
        params,
        &src,
        s.strategy,
        s.max_len,
        &mut StdRng::seed_from_u64(seed),
    );
    assert_eq!(
        want.iter().map(|h| &h.ids).collect::<Vec<_>>(),
        got.iter().map(|h| &h.ids).collect::<Vec<_>>(),
        "{}: paths diverged",
        s.label
    );
    let tokens = want.iter().map(|h| h.ids.len()).max().unwrap_or(0);

    let budget = if smoke { 0.2 } else { 6.0 };
    let reps = if smoke { 4 } else { 40 };
    let times = time_stats(
        &mut [
            &mut || {
                black_box(decode_reference(
                    model,
                    params,
                    &src,
                    s.strategy,
                    s.max_len,
                    &mut StdRng::seed_from_u64(seed),
                ));
            },
            &mut || {
                black_box(decode(
                    model,
                    params,
                    &src,
                    s.strategy,
                    s.max_len,
                    &mut StdRng::seed_from_u64(seed),
                ));
            },
        ],
        budget,
        reps,
    );
    Row {
        label: s.label,
        strategy: format!("{:?}", s.strategy),
        max_len: s.max_len,
        tokens,
        reference: times[0],
        incremental: times[1],
    }
}

fn run(smoke: bool, out: Option<PathBuf>) -> Result<(), String> {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let out = out.unwrap_or_else(|| {
        if smoke {
            root.join("target/BENCH_decode_smoke.json")
        } else {
            root.join("BENCH_decode.json")
        }
    });

    eprintln!(
        "bench_decode: mode={}",
        if smoke { "smoke" } else { "full" }
    );
    let (params, model) = bench_model(smoke);

    let mut rows = Vec::new();
    for s in scenarios(smoke) {
        eprintln!("  timing {} ...", s.label);
        rows.push(bench_scenario(&s, &params, &model, smoke));
    }

    // Headline numbers the acceptance gate reads: the beam-8 speedup at
    // the serving length cap, and per-token growth from the shortest to
    // the longest greedy cap (the reference path grows with prefix
    // length; the incremental path must not).
    let beam8_speedup = rows
        .iter()
        .filter(|r| r.label.starts_with("beam-8"))
        .map(Row::speedup)
        .fold(f64::NAN, f64::max);
    let greedy: Vec<&Row> = rows
        .iter()
        .filter(|r| r.label.starts_with("greedy"))
        .collect();
    let per_token_growth = |pick: &dyn Fn(&Row) -> f64| -> Option<f64> {
        let first = greedy.first()?;
        let last = greedy.last()?;
        Some((pick(last) / last.tokens.max(1) as f64) / (pick(first) / first.tokens.max(1) as f64))
    };
    let ref_growth = per_token_growth(&|r: &Row| r.reference_s());
    let inc_growth = per_token_growth(&|r: &Row| r.incremental_s());

    let report = json!({
        "benchmark": "qrec-nn incremental decode vs full-prefix reference",
        "mode": if smoke { "smoke" } else { "full" },
        "rows": rows.iter().map(Row::to_json).collect::<Vec<_>>(),
        "beam8_speedup_vs_reference": if smoke { json!(null) } else { json!(beam8_speedup) },
        "greedy_per_token_growth_reference": ref_growth,
        "greedy_per_token_growth_incremental": inc_growth,
    });

    if let Some(dir) = out.parent() {
        std::fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    }
    let bytes = serde_json::to_vec_pretty(&report).map_err(|e| format!("serialise: {e}"))?;
    std::fs::write(&out, bytes).map_err(|e| format!("write {}: {e}", out.display()))?;

    // Re-read and parse: the file on disk must be well-formed JSON with
    // at least one scenario row.
    let text = std::fs::read_to_string(&out).map_err(|e| format!("read back: {e}"))?;
    let parsed: serde_json::Value =
        serde_json::from_str(&text).map_err(|e| format!("round-trip parse: {e}"))?;
    let row_count = parsed
        .as_object()
        .and_then(|o| o.get("rows"))
        .and_then(|s| s.as_array())
        .map_or(0, <[serde_json::Value]>::len);
    if row_count == 0 {
        return Err("no scenario rows in the written report".into());
    }

    println!(
        "{:<16} {:>6} {:>12} {:>14} {:>9}",
        "scenario", "tokens", "ref (s)", "incr (s)", "speedup"
    );
    for r in &rows {
        println!(
            "{:<16} {:>6} {:>12.6} {:>14.6} {:>8.2}x",
            r.label,
            r.tokens,
            r.reference_s(),
            r.incremental_s(),
            r.speedup(),
        );
    }
    if !smoke {
        println!("beam-8 speedup vs reference: {beam8_speedup:.2}x");
    }
    if let (Some(rg), Some(ig)) = (ref_growth, inc_growth) {
        println!(
            "greedy per-token growth {}→{} tokens: reference {rg:.2}x, incremental {ig:.2}x",
            greedy.first().map_or(0, |r| r.tokens),
            greedy.last().map_or(0, |r| r.tokens)
        );
    }
    println!("[results written to {}]", out.display());
    Ok(())
}

fn main() -> ExitCode {
    let mut smoke = false;
    let mut out = None;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--smoke" => smoke = true,
            "--out" => match it.next() {
                Some(p) => out = Some(PathBuf::from(p)),
                None => {
                    eprintln!("missing value for --out");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                eprintln!("usage: bench_decode [--smoke] [--out PATH]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown flag {other:?}");
                return ExitCode::FAILURE;
            }
        }
    }
    match run(smoke, out) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("bench_decode failed: {msg}");
            ExitCode::FAILURE
        }
    }
}
