//! **Table 3** — model statistics: training time, inference time per
//! query, and parameter counts for seq-less/seq-aware × ConvS2S/
//! Transformer on both datasets.
//!
//! Reproduction target (relative, per the paper): Transformer training
//! is slower than ConvS2S at matched width; absolute numbers differ —
//! the paper trains full-size models on a GPU for hours, we train
//! scaled-down models on one CPU core for seconds.

use qrec_bench::{both_datasets, print_table, trained_recommender, write_results};
use qrec_core::prelude::*;
use qrec_nn::Strategy;
use serde_json::json;
use std::time::Instant;

fn main() {
    let r = &qrec_bench::StdioReporter;
    let mut rows = Vec::new();
    let mut results = Vec::new();
    for data in both_datasets() {
        for seq_mode in [SeqMode::Less, SeqMode::Aware] {
            for arch in [Arch::ConvS2S, Arch::Transformer] {
                let (mut rec, report) = trained_recommender(r, &data, arch, seq_mode);

                // Inference time: mean greedy decode latency per query on
                // (a sample of) the test split.
                let sample: Vec<_> = data.split.test.iter().take(40).collect();
                let t0 = Instant::now();
                for p in &sample {
                    let _ = rec.decode_candidates(&p.current, Strategy::Greedy);
                }
                let infer = t0.elapsed().as_secs_f64() / sample.len().max(1) as f64;

                rows.push(vec![
                    format!("{} {} {}", data.name, seq_mode.label(), arch.label()),
                    format!("{:.1}", report.train_time.as_secs_f64()),
                    format!("{:.4}", infer),
                    rec.param_count().to_string(),
                    report.epoch_losses.len().to_string(),
                    format!("{:.3}", report.best_val_loss()),
                ]);
                results.push(json!({
                    "dataset": data.name,
                    "seq_mode": seq_mode.label(),
                    "arch": arch.label(),
                    "train_seconds": report.train_time.as_secs_f64(),
                    "infer_seconds_per_query": infer,
                    "params": rec.param_count(),
                    "epochs": report.epoch_losses.len(),
                    "best_val_loss": report.best_val_loss(),
                }));
            }
        }
    }
    print_table(
        r,
        "Table 3: model statistics (paper reports T_train in hours on GPU; ours are CPU seconds)",
        &[
            "model",
            "T_train (s)",
            "T_infer (s/query)",
            "#params",
            "epochs",
            "val loss",
        ],
        &rows,
    );

    println!(
        "\npaper-shape checks: ConvS2S trains faster per run than the Transformer at matched \
         width; the Transformer carries the larger parameter budget here (as in the paper's \
         SDSS column, 72.7M tfm vs 8.0M convs2s)."
    );
    write_results(r, "table3", &json!(results));
}
