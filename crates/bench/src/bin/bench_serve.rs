//! `bench_serve` — front-end connection scaling: event loop versus
//! thread pool (README "Serving", DESIGN.md §16).
//!
//! ```text
//! bench_serve [--smoke] [--out PATH]
//! bench_serve --server-child --frontend F --conn-threads N ...   (internal)
//! bench_serve --client-child --addr A --conns N ...              (internal)
//! ```
//!
//! The orchestrator spawns the server and the load as *separate
//! processes* — client fd budgets, allocator arenas, and scheduler
//! pressure stay off the server's books, like a real deployment:
//!
//! - **Connection scaling** (closed loop): N client processes × M
//!   connections, one outstanding `RECOMMEND` per connection, warmed
//!   cache. Rows report throughput and p50/p95/p99 latency per
//!   front end and connection count, plus the server's thread count
//!   under load — the number the event loop exists to bound.
//! - **Open loop**: each connection fires at a fixed interval,
//!   regardless of responses (pipelined up to the protocol's cap), so
//!   queueing delay shows up as latency instead of reduced offered
//!   load.
//! - **Idle herd** (slowloris shape): thousands of connections that
//!   never send a byte, held open while the loop serves a probe —
//!   checks admission, bounded threads, and per-connection memory.
//! - **Slow client**: a reader that stops draining mid-burst must be
//!   disconnected with the typed `slow_consumer` error, not buffered
//!   without bound.
//!
//! The client side is itself a small readiness loop on the same
//! `polling` shim the server uses — one thread drives all M
//! connections, so a 1024-connection row needs 3 processes, not 1024
//! threads.
//!
//! Full runs write `BENCH_serve.json` at the repo root; `--smoke` uses
//! small counts and writes `target/BENCH_serve_smoke.json`.

use polling::{Events, Interest, Poller, Token};
use qrec_core::{Arch, Recommender, RecommenderConfig, SeqMode};
use qrec_serve::{EngineConfig, FrameBuf, Frontend, Server, ServerConfig};
use qrec_workload::gen::{generate, WorkloadProfile};
use qrec_workload::Split;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde_json::json;
use std::io::{BufRead, BufReader, ErrorKind, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, ExitCode, Stdio};
use std::time::{Duration, Instant};

/// The statements every load connection cycles through. Three distinct
/// windows keep the server's LRU cache hot after the first lap, so rows
/// measure front-end overhead rather than decode throughput.
const SQLS: [&str; 3] = [
    "SELECT a FROM t1",
    "SELECT b FROM t2",
    "SELECT a, b FROM t3",
];

/// Walk `path` through nested JSON objects (the vendored serde shim's
/// `Value` has no `Index` impl).
fn field<'a>(v: &'a serde_json::Value, path: &[&str]) -> Option<&'a serde_json::Value> {
    let mut cur = v;
    for k in path {
        cur = cur.as_object()?.get(k)?;
    }
    Some(cur)
}

fn field_u64(v: &serde_json::Value, path: &[&str]) -> u64 {
    field(v, path).and_then(|x| x.as_i128()).unwrap_or(0) as u64
}

fn field_f64(v: &serde_json::Value, path: &[&str]) -> f64 {
    field(v, path).and_then(|x| x.as_f64()).unwrap_or(0.0)
}

fn json_line(v: &serde_json::Value) -> String {
    serde_json::to_string(v).unwrap_or_else(|_| "{}".into())
}

fn train_tiny(seed: u64) -> Recommender {
    let (workload, _catalog) = generate(&WorkloadProfile::tiny(), seed);
    let mut rng = StdRng::seed_from_u64(seed);
    let split = Split::paper(workload.pairs(), &mut rng);
    let mut cfg = RecommenderConfig::test(Arch::Transformer, SeqMode::Aware);
    cfg.train.epochs = 2;
    let (model, _report) = Recommender::try_train(&split, &workload, cfg).expect("train");
    model
}

// ---------------------------------------------------------------- server

/// Child process hosting the server: prints `READY <addr>` once bound,
/// serves until a client sends SHUTDOWN.
fn run_server_child(frontend: Frontend, conn_threads: usize, max_conns: usize) -> ExitCode {
    let cfg = ServerConfig {
        frontend,
        conn_threads,
        max_connections: max_conns,
        engine: EngineConfig {
            workers: 1,
            queue_cap: 4096,
            max_batch: 16,
            ..EngineConfig::default()
        },
        session_ttl: Duration::from_secs(600),
        sweep_interval: Duration::from_secs(600),
        cache_capacity: 256,
        ..ServerConfig::default()
    };
    let mut server = match Server::start(train_tiny(1), "127.0.0.1:0", cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bench_serve server: bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("READY {}", server.local_addr());
    server.wait_for_shutdown_request(None);
    server.shutdown();
    ExitCode::SUCCESS
}

// ---------------------------------------------------------------- client

struct LoadConn {
    stream: TcpStream,
    frame: FrameBuf,
    outbox: Vec<u8>,
    out_pos: usize,
    /// Send instants of requests whose responses are still due, oldest
    /// first (closed loop keeps this at ≤ 1).
    sent_at: std::collections::VecDeque<Instant>,
    /// Open loop: when this connection owes its next send.
    next_send: Instant,
    sql_idx: usize,
    id: usize,
}

impl LoadConn {
    fn push_request(&mut self, now: Instant) {
        let sql = SQLS[self.sql_idx % SQLS.len()];
        self.sql_idx += 1;
        self.outbox.extend_from_slice(
            format!(
                r#"{{"verb":"RECOMMEND","session":"load-{}","sql":"{}","n":3}}"#,
                self.id, sql
            )
            .as_bytes(),
        );
        self.outbox.push(b'\n');
        self.sent_at.push_back(now);
    }
}

struct LoadResult {
    sent: u64,
    received: u64,
    errors: u64,
    latencies_us: Vec<u64>,
}

/// Drive `conns` connections for `duration` from one thread on a
/// readiness loop. `interval` None = closed loop (send on receive);
/// Some(i) = open loop (send every `i` regardless of responses).
fn run_load(
    addr: &str,
    conns: usize,
    duration: Duration,
    warmup: Duration,
    interval: Option<Duration>,
) -> Result<LoadResult, String> {
    let poller = Poller::new().map_err(|e| format!("poller: {e}"))?;
    let mut pool = Vec::with_capacity(conns);
    let t0 = Instant::now();
    for i in 0..conns {
        let stream = TcpStream::connect(addr).map_err(|e| format!("connect {i}: {e}"))?;
        stream.set_nodelay(true).ok();
        stream
            .set_nonblocking(true)
            .map_err(|e| format!("nonblocking: {e}"))?;
        poller
            .register(&stream, Token(i), Interest::BOTH)
            .map_err(|e| format!("register: {e}"))?;
        let mut conn = LoadConn {
            stream,
            frame: FrameBuf::new(1 << 20),
            outbox: Vec::new(),
            out_pos: 0,
            sent_at: std::collections::VecDeque::new(),
            next_send: t0,
            sql_idx: i, // desynchronise the sql cycle across conns
            id: i,
        };
        conn.push_request(Instant::now());
        pool.push(Some(conn));
    }

    let started = Instant::now();
    let measure_from = started + warmup;
    let deadline = started + duration;
    let mut result = LoadResult {
        sent: conns as u64,
        received: 0,
        errors: 0,
        latencies_us: Vec::new(),
    };
    let mut events = Events::new();
    let mut scratch = vec![0u8; 64 * 1024];
    loop {
        let now = Instant::now();
        if now >= deadline {
            break;
        }
        let mut timeout = deadline - now;
        if let Some(iv) = interval {
            timeout = timeout.min(iv / 2).max(Duration::from_millis(1));
        }
        poller
            .wait(&mut events, Some(timeout))
            .map_err(|e| format!("wait: {e}"))?;
        for ev in events.iter() {
            let Token(idx) = ev.token;
            let Some(conn) = pool.get_mut(idx).and_then(|c| c.as_mut()) else {
                continue;
            };
            let mut dead = false;
            if ev.readable || ev.hangup {
                loop {
                    match conn.stream.read(&mut scratch) {
                        Ok(0) => {
                            dead = true;
                            break;
                        }
                        Ok(n) => {
                            conn.frame.feed(&scratch[..n]);
                            while let Ok(Some(line)) = conn.frame.pop_frame() {
                                let t_recv = Instant::now();
                                if let Some(sent) = conn.sent_at.pop_front() {
                                    result.received += 1;
                                    // Cheap error check: full parsing at
                                    // 100k+ responses would become the
                                    // client's own bottleneck.
                                    if line.starts_with(br#"{"ok":false"#) {
                                        result.errors += 1;
                                    }
                                    if t_recv >= measure_from {
                                        result
                                            .latencies_us
                                            .push(t_recv.duration_since(sent).as_micros() as u64);
                                    }
                                }
                                if interval.is_none() {
                                    conn.push_request(t_recv);
                                    result.sent += 1;
                                }
                            }
                        }
                        Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                        Err(_) => {
                            dead = true;
                            break;
                        }
                    }
                }
            }
            if !dead && ev.writable && conn.out_pos < conn.outbox.len() {
                loop {
                    match conn.stream.write(&conn.outbox[conn.out_pos..]) {
                        Ok(0) => {
                            dead = true;
                            break;
                        }
                        Ok(n) => {
                            conn.out_pos += n;
                            if conn.out_pos == conn.outbox.len() {
                                conn.outbox.clear();
                                conn.out_pos = 0;
                                break;
                            }
                        }
                        Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                        Err(_) => {
                            dead = true;
                            break;
                        }
                    }
                }
            }
            if dead {
                pool[idx] = None;
            }
        }
        // Open loop: owed sends fire on schedule whether or not any
        // response came back — queueing shows up as latency, not as
        // reduced offered load. The protocol's pipelining cap bounds
        // how far a connection may run ahead.
        if let Some(iv) = interval {
            let now = Instant::now();
            for conn in pool.iter_mut().flatten() {
                while now >= conn.next_send && conn.sent_at.len() < 48 {
                    conn.push_request(now);
                    result.sent += 1;
                    conn.next_send += iv;
                }
            }
        }
    }
    Ok(result)
}

/// Child process driving load; prints one JSON summary line on exit.
#[allow(clippy::too_many_arguments)]
fn run_client_child(
    addr: &str,
    conns: usize,
    duration_ms: u64,
    warmup_ms: u64,
    mode: &str,
    interval_us: u64,
) -> ExitCode {
    let interval = match mode {
        "closed" => None,
        "open" => Some(Duration::from_micros(interval_us.max(1))),
        "idle" => {
            // Connect, send nothing, hold until the deadline.
            let mut herd = Vec::with_capacity(conns);
            for i in 0..conns {
                match TcpStream::connect(addr) {
                    Ok(s) => herd.push(s),
                    Err(e) => {
                        eprintln!("bench_serve client: idle connect {i}: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            std::thread::sleep(Duration::from_millis(duration_ms));
            println!(
                "{}",
                json_line(&json!({
                    "sent": 0, "received": 0, "errors": 0,
                    "held": herd.len(), "latencies_us": [],
                }))
            );
            return ExitCode::SUCCESS;
        }
        other => {
            eprintln!("bench_serve client: unknown mode {other:?}");
            return ExitCode::FAILURE;
        }
    };
    match run_load(
        addr,
        conns,
        Duration::from_millis(duration_ms),
        Duration::from_millis(warmup_ms),
        interval,
    ) {
        Ok(r) => {
            println!(
                "{}",
                json_line(&json!({
                    "sent": r.sent,
                    "received": r.received,
                    "errors": r.errors,
                    "held": 0,
                    "latencies_us": r.latencies_us,
                }))
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("bench_serve client: {e}");
            ExitCode::FAILURE
        }
    }
}

// ----------------------------------------------------------- orchestrator

struct ServerHandle {
    child: Child,
    addr: String,
}

fn spawn_server(
    frontend: &str,
    conn_threads: usize,
    max_conns: usize,
) -> Result<ServerHandle, String> {
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let mut child = Command::new(exe)
        .args([
            "--server-child",
            "--frontend",
            frontend,
            "--conn-threads",
            &conn_threads.to_string(),
            "--max-conns",
            &max_conns.to_string(),
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .map_err(|e| format!("spawn server: {e}"))?;
    let stdout = child.stdout.take().ok_or("server stdout")?;
    let mut reader = BufReader::new(stdout);
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|e| format!("server READY: {e}"))?;
    let addr = line
        .trim()
        .strip_prefix("READY ")
        .ok_or_else(|| format!("unexpected server banner: {line:?}"))?
        .to_string();
    Ok(ServerHandle { child, addr })
}

impl ServerHandle {
    /// Threads of the server process right now (from /proc).
    fn threads(&self) -> u64 {
        std::fs::read_to_string(format!("/proc/{}/status", self.child.id()))
            .ok()
            .and_then(|s| {
                s.lines()
                    .find_map(|l| l.strip_prefix("Threads:"))
                    .and_then(|v| v.trim().parse().ok())
            })
            .unwrap_or(0)
    }

    fn stats(&self) -> Result<serde_json::Value, String> {
        let mut s = TcpStream::connect(&self.addr).map_err(|e| format!("stats connect: {e}"))?;
        s.write_all(b"{\"verb\":\"STATS\"}\n")
            .map_err(|e| format!("stats send: {e}"))?;
        let mut line = String::new();
        BufReader::new(s)
            .read_line(&mut line)
            .map_err(|e| format!("stats read: {e}"))?;
        serde_json::from_str(line.trim()).map_err(|e| format!("stats parse: {e}"))
    }

    fn shutdown(mut self) {
        if let Ok(mut s) = TcpStream::connect(&self.addr) {
            let _ = s.write_all(b"{\"verb\":\"SHUTDOWN\"}\n");
            let mut ack = String::new();
            let _ = BufReader::new(s).read_line(&mut ack);
        }
        let _ = self.child.wait();
    }
}

struct ClientSummary {
    sent: u64,
    received: u64,
    errors: u64,
    held: u64,
    latencies_us: Vec<u64>,
}

fn spawn_clients(
    addr: &str,
    processes: usize,
    conns_each: usize,
    duration_ms: u64,
    warmup_ms: u64,
    mode: &str,
    interval_us: u64,
) -> Result<Vec<Child>, String> {
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    (0..processes)
        .map(|_| {
            Command::new(&exe)
                .args([
                    "--client-child",
                    "--addr",
                    addr,
                    "--conns",
                    &conns_each.to_string(),
                    "--duration-ms",
                    &duration_ms.to_string(),
                    "--warmup-ms",
                    &warmup_ms.to_string(),
                    "--mode",
                    mode,
                    "--interval-us",
                    &interval_us.to_string(),
                ])
                .stdout(Stdio::piped())
                .stderr(Stdio::inherit())
                .spawn()
                .map_err(|e| format!("spawn client: {e}"))
        })
        .collect()
}

fn join_clients(children: Vec<Child>) -> Result<ClientSummary, String> {
    let mut total = ClientSummary {
        sent: 0,
        received: 0,
        errors: 0,
        held: 0,
        latencies_us: Vec::new(),
    };
    for mut child in children {
        let mut out = String::new();
        if let Some(mut stdout) = child.stdout.take() {
            let _ = stdout.read_to_string(&mut out);
        }
        let status = child.wait().map_err(|e| format!("client wait: {e}"))?;
        if !status.success() {
            return Err(format!("client exited with {status}"));
        }
        let v: serde_json::Value =
            serde_json::from_str(out.trim()).map_err(|e| format!("client summary: {e}"))?;
        total.sent += field_u64(&v, &["sent"]);
        total.received += field_u64(&v, &["received"]);
        total.errors += field_u64(&v, &["errors"]);
        total.held += field_u64(&v, &["held"]);
        if let Some(lat) = field(&v, &["latencies_us"]).and_then(|x| x.as_array()) {
            total
                .latencies_us
                .extend(lat.iter().filter_map(|x| x.as_i128()).map(|x| x as u64));
        }
    }
    Ok(total)
}

fn quantile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// One closed- or open-loop scaling row against a fresh server.
#[allow(clippy::too_many_arguments)]
fn bench_row(
    frontend: &str,
    conns: usize,
    duration_ms: u64,
    mode: &str,
    interval_us: u64,
) -> Result<serde_json::Value, String> {
    // The thread pool gets one handler thread per connection — its
    // fair configuration, and exactly the cost the row documents.
    let conn_threads = if frontend == "threadpool" { conns } else { 4 };
    let server = spawn_server(frontend, conn_threads, 32 * 1024)?;
    let processes = if conns >= 64 { 2 } else { 1 };
    let conns_each = conns / processes;
    let warmup_ms = duration_ms / 4;
    let clients = spawn_clients(
        &server.addr,
        processes,
        conns_each,
        duration_ms,
        warmup_ms,
        mode,
        interval_us,
    )?;
    // Sample the thread count mid-run, while every connection is live.
    std::thread::sleep(Duration::from_millis(duration_ms / 2));
    let threads = server.threads();
    let summary = join_clients(clients)?;
    server.shutdown();

    let mut lat = summary.latencies_us;
    lat.sort_unstable();
    let measured_s = (duration_ms - warmup_ms) as f64 / 1e3;
    Ok(json!({
        "frontend": frontend,
        "mode": mode,
        "conns": conns,
        "client_processes": processes,
        "duration_ms": duration_ms,
        "sent": summary.sent,
        "received": summary.received,
        "errors": summary.errors,
        "throughput_rps": lat.len() as f64 / measured_s,
        "p50_us": quantile(&lat, 0.50),
        "p95_us": quantile(&lat, 0.95),
        "p99_us": quantile(&lat, 0.99),
        "server_threads": threads,
    }))
}

/// The idle herd: `conns` silent connections held open while a probe
/// keeps getting answers.
fn bench_idle(conns: usize, hold_ms: u64) -> Result<serde_json::Value, String> {
    let server = spawn_server("eventloop", 4, conns + 64)?;
    let threads_before = server.threads();
    let clients = spawn_clients(&server.addr, 1, conns, hold_ms, 0, "idle", 0)?;

    // Wait until the herd is admitted (or fail loudly).
    let deadline = Instant::now() + Duration::from_millis(hold_ms.saturating_sub(500).max(1000));
    let mut open = 0u64;
    while Instant::now() < deadline {
        let stats = server.stats()?;
        open = field_u64(&stats, &["stats", "metrics", "frontend", "conns_open"]);
        if open >= conns as u64 {
            break;
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    let threads_held = server.threads();
    let probe = {
        let t0 = Instant::now();
        let mut s = TcpStream::connect(&server.addr).map_err(|e| format!("probe: {e}"))?;
        s.write_all(b"{\"verb\":\"PING\"}\n")
            .map_err(|e| format!("probe send: {e}"))?;
        let mut line = String::new();
        BufReader::new(s)
            .read_line(&mut line)
            .map_err(|e| format!("probe read: {e}"))?;
        if !line.contains("\"ok\":true") {
            return Err(format!("probe got {line:?} under idle herd"));
        }
        t0.elapsed().as_micros() as u64
    };
    let summary = join_clients(clients)?;
    server.shutdown();
    if summary.held < conns as u64 {
        return Err(format!("idle client held {}/{conns}", summary.held));
    }
    Ok(json!({
        "frontend": "eventloop",
        "conns": conns,
        "held": summary.held,
        "conns_open_observed": open,
        "server_threads_before": threads_before,
        "server_threads_held": threads_held,
        "probe_rtt_us": probe,
    }))
}

/// The slow client: burst DUMPs, never read, expect the typed
/// disconnect.
fn bench_slow_client() -> Result<serde_json::Value, String> {
    let server = spawn_server("eventloop", 4, 1024)?;
    let mut stream = TcpStream::connect(&server.addr).map_err(|e| format!("slow connect: {e}"))?;
    // Enough multi-KiB DUMP responses to overflow the kernel socket
    // buffer plus the server's 1 MiB outbox hard cap several times
    // over.
    let burst = b"{\"verb\":\"DUMP\"}\n".repeat(2048);
    stream
        .write_all(&burst)
        .map_err(|e| format!("slow burst: {e}"))?;
    // Never read. The server must cut us loose rather than buffer the
    // whole burst of multi-KiB responses.
    let deadline = Instant::now() + Duration::from_secs(15);
    let mut disconnects = 0u64;
    while Instant::now() < deadline {
        let stats = server.stats()?;
        disconnects = field_u64(
            &stats,
            &["stats", "metrics", "frontend", "slow_disconnects"],
        );
        if disconnects >= 1 {
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    server.shutdown();
    if disconnects == 0 {
        return Err("slow client was never disconnected".into());
    }
    Ok(json!({"slow_disconnects": disconnects, "disconnected": true}))
}

// ------------------------------------------------------------------ main

struct Args {
    smoke: bool,
    out: Option<PathBuf>,
}

fn run(args: &Args) -> Result<(), String> {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let out = args.out.clone().unwrap_or_else(|| {
        if args.smoke {
            root.join("target/BENCH_serve_smoke.json")
        } else {
            root.join("BENCH_serve.json")
        }
    });

    // Thread-pool rows stop at 256 connections (256 OS threads on this
    // box is already the pathology being documented); the event loop
    // continues to 4× that.
    let (tp_conns, el_conns, duration_ms): (&[usize], &[usize], u64) = if args.smoke {
        (&[4], &[4], 1_000)
    } else {
        (&[16, 64, 256], &[16, 64, 256, 1024], 4_000)
    };

    let mut rows = Vec::new();
    for &conns in tp_conns {
        eprintln!("bench_serve: threadpool, {conns} conns, closed loop ...");
        rows.push(bench_row("threadpool", conns, duration_ms, "closed", 0)?);
    }
    for &conns in el_conns {
        eprintln!("bench_serve: eventloop, {conns} conns, closed loop ...");
        rows.push(bench_row("eventloop", conns, duration_ms, "closed", 0)?);
    }
    // One open-loop row per front end at a moderate per-connection
    // rate: ~200 req/s × 64 conns ≈ 12.8k offered rps.
    let open_conns = if args.smoke { 4 } else { 64 };
    for frontend in ["threadpool", "eventloop"] {
        eprintln!("bench_serve: {frontend}, {open_conns} conns, open loop ...");
        rows.push(bench_row(frontend, open_conns, duration_ms, "open", 5_000)?);
    }
    for row in &rows {
        println!(
            "{:<11} {:>5} conns [{}]  {:>9.0} rps  p50 {:>7}us  p95 {:>7}us  p99 {:>7}us  {:>4} threads",
            field(row, &["frontend"]).and_then(|v| v.as_str()).unwrap_or("?"),
            field_u64(row, &["conns"]),
            field(row, &["mode"]).and_then(|v| v.as_str()).unwrap_or("?"),
            field_f64(row, &["throughput_rps"]),
            field_u64(row, &["p50_us"]),
            field_u64(row, &["p95_us"]),
            field_u64(row, &["p99_us"]),
            field_u64(row, &["server_threads"]),
        );
    }

    let idle_conns = if args.smoke { 64 } else { 10_000 };
    let hold_ms = if args.smoke { 2_000 } else { 8_000 };
    eprintln!("bench_serve: idle herd of {idle_conns} connections ...");
    let idle = bench_idle(idle_conns, hold_ms)?;
    println!(
        "idle herd  {:>6} conns held  server threads {} -> {}  probe rtt {}us",
        field_u64(&idle, &["held"]),
        field_u64(&idle, &["server_threads_before"]),
        field_u64(&idle, &["server_threads_held"]),
        field_u64(&idle, &["probe_rtt_us"]),
    );

    eprintln!("bench_serve: slow-client disconnect ...");
    let slow = bench_slow_client()?;
    println!(
        "slow client disconnected (typed) after {} disconnect(s)",
        field_u64(&slow, &["slow_disconnects"])
    );

    let report = json!({
        "benchmark": "qrec-serve front-end connection scaling (event loop vs thread pool)",
        "smoke": args.smoke,
        "cpus": std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        "rows": rows,
        "idle": idle,
        "slow_client": slow,
    });
    std::fs::write(
        &out,
        serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?,
    )
    .map_err(|e| format!("write {}: {e}", out.display()))?;
    eprintln!("bench_serve: wrote {}", out.display());
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let get = |flag: &str| -> Option<String> {
        argv.iter()
            .position(|a| a == flag)
            .and_then(|i| argv.get(i + 1).cloned())
    };
    if argv.iter().any(|a| a == "--server-child") {
        let frontend = match Frontend::parse(&get("--frontend").unwrap_or_default()) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("bench_serve: {e}");
                return ExitCode::FAILURE;
            }
        };
        let conn_threads = get("--conn-threads")
            .and_then(|v| v.parse().ok())
            .unwrap_or(4);
        let max_conns = get("--max-conns")
            .and_then(|v| v.parse().ok())
            .unwrap_or(8192);
        return run_server_child(frontend, conn_threads, max_conns);
    }
    if argv.iter().any(|a| a == "--client-child") {
        let addr = get("--addr").unwrap_or_default();
        let conns = get("--conns").and_then(|v| v.parse().ok()).unwrap_or(1);
        let duration_ms = get("--duration-ms")
            .and_then(|v| v.parse().ok())
            .unwrap_or(1000);
        let warmup_ms = get("--warmup-ms").and_then(|v| v.parse().ok()).unwrap_or(0);
        let mode = get("--mode").unwrap_or_else(|| "closed".into());
        let interval_us = get("--interval-us")
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        return run_client_child(&addr, conns, duration_ms, warmup_ms, &mode, interval_us);
    }
    let args = Args {
        smoke: argv.iter().any(|a| a == "--smoke"),
        out: get("--out").map(PathBuf::from),
    };
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("bench_serve: {e}");
            ExitCode::FAILURE
        }
    }
}
