//! **Figure 9** — the long-tailed template popularity distribution.
//!
//! The paper plots template frequency against popularity rank for both
//! workloads and uses the long tail to motivate the `popular` baseline
//! and the min-support-3 template classes. We print the rank/frequency
//! series (log-bucketed) and an ASCII rendering of the tail.

use qrec_bench::{both_datasets, print_table, write_results};
use qrec_workload::stats::{template_classes, template_frequencies};
use serde_json::json;

fn main() {
    let r = &qrec_bench::StdioReporter;
    let mut results = serde_json::Map::new();
    for data in both_datasets() {
        let freqs = template_frequencies(&data.workload);
        let counts: Vec<usize> = freqs.iter().map(|(_, c)| *c).collect();
        let total: usize = counts.iter().sum();
        let classes3 = template_classes(&data.workload, 3).len();

        // Log-spaced rank sample points, like reading values off Figure 9.
        let mut rows = Vec::new();
        let mut rank = 1usize;
        while rank <= counts.len() {
            let freq = counts[rank - 1];
            let cum: usize = counts[..rank].iter().sum();
            rows.push(vec![
                rank.to_string(),
                freq.to_string(),
                format!("{:.1}%", 100.0 * cum as f64 / total as f64),
            ]);
            rank = if rank < 10 { rank + 3 } else { rank * 2 };
        }
        print_table(r,
            &format!(
                "Figure 9 ({}): template frequency by popularity rank ({} templates, {} occurrences)",
                data.name,
                counts.len(),
                total
            ),
            &["rank", "frequency", "cumulative share"],
            &rows,
        );

        // ASCII long-tail sketch.
        println!("\n  frequency (log bars):");
        let max = counts[0] as f64;
        let mut r = 1usize;
        while r <= counts.len() {
            let f = counts[r - 1] as f64;
            let bar = ((f.ln_1p() / max.ln_1p()) * 48.0).round() as usize;
            println!(
                "  rank {:>5} | {:<48} {}",
                r,
                "#".repeat(bar),
                counts[r - 1]
            );
            r *= 4;
        }

        let head_share = counts.iter().take(10).sum::<usize>() as f64 / total as f64;
        let singleton_share =
            counts.iter().filter(|&&c| c == 1).count() as f64 / counts.len() as f64;
        println!(
            "\n  top-10 templates cover {:.1}% of queries; {:.1}% of templates occur once; \
             {} classes survive min-support 3 (paper: 830 SDSS / 552 SQLShare)",
            100.0 * head_share,
            100.0 * singleton_share,
            classes3
        );

        results.insert(
            data.name.clone(),
            json!({
                "templates": counts.len(),
                "occurrences": total,
                "frequencies_head": counts.iter().take(50).collect::<Vec<_>>(),
                "top10_share": head_share,
                "singleton_share": singleton_share,
                "classes_min_support_3": classes3,
            }),
        );
    }
    write_results(r, "fig9", &serde_json::Value::Object(results));
}
