//! **Figure 10** — SDSS session-level ((a)–(e)) and pair-level ((f)–(l))
//! workload analysis.
//!
//! Reproduction targets (Section 5.3.2/5.3.3): >70% of sessions have ≥2
//! unique queries, 79%-ish use ≥2 templates, 64%-ish change templates at
//! least twice; at the pair level >40% of pairs change template while
//! over 50% keep it, and increases in the six syntactic properties sit
//! in the 8–16% band of the paper (direction preserved at our scale).

use qrec_bench::{dataset, session_pair_figure, write_results};

fn main() {
    let r = &qrec_bench::StdioReporter;
    let data = dataset("sdss");
    let results = session_pair_figure(r, &data, "Figure 10");
    write_results(r, "fig10", &results);
}
