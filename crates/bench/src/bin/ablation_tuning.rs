//! **Ablation: hyper-parameter tuning** — the paper's per-dataset grid
//! search (Section 6.2.4) run on the SQLShare-scale workload (cheap
//! enough to retrain per candidate): batch size × learning rate,
//! selected by best validation loss with early stopping.

use qrec_bench::{dataset, print_table, write_results};
use qrec_core::prelude::*;
use qrec_core::tuning::{grid_search, paper_grid};
use serde_json::json;

fn main() {
    let r = &qrec_bench::StdioReporter;
    let data = dataset("sqlshare");
    let mut base = qrec_bench::rec_config("sqlshare", Arch::Transformer, SeqMode::Aware);
    base.train.patience = 2;
    let grid = paper_grid(8);
    eprintln!(
        "grid-searching {} candidates on {} ({} train pairs) …",
        grid.len(),
        data.name,
        data.split.train.len()
    );
    let result = grid_search(base, &grid, &data.split, &data.workload);

    let rows: Vec<Vec<String>> = result
        .trials
        .iter()
        .enumerate()
        .map(|(i, t)| {
            vec![
                format!(
                    "batch={} lr={:.0e}{}",
                    t.candidate.batch_size,
                    t.candidate.lr,
                    if i == result.best { "  ← best" } else { "" }
                ),
                format!("{:.3}", t.val_loss),
                t.epochs_run.to_string(),
            ]
        })
        .collect();
    print_table(
        r,
        "Hyper-parameter grid search (sqlshare, seq-aware transformer)",
        &["candidate", "best val loss", "epochs run"],
        &rows,
    );
    println!(
        "\nwinner: batch={} lr={:.0e} (val loss {:.3}) — the paper likewise found the best \
         settings dataset-dependent.",
        result.best_candidate().batch_size,
        result.best_candidate().lr,
        result.best_val_loss()
    );
    write_results(
        r,
        "ablation_tuning",
        &json!({
            "trials": result.trials,
            "best": result.best,
        }),
    );
}
