//! Round-robin wall-clock timing with per-rep latency distributions.
//!
//! Every benchmark binary used to keep only the best-of-N time per
//! candidate; this module additionally feeds each rep into a
//! fine-grained [`qrec_obs::Histogram`] (geometric 5%-step bounds from
//! 100 ns to 100 s) so reports can carry p50/p95/p99 alongside the
//! minimum. Candidates are still timed round-robin — one rep of each
//! per round — so machine-load drift hits every candidate equally and
//! the minima stay comparable.

use qrec_obs::Histogram;
use std::time::Instant;

/// Timing summary of one candidate: the best rep plus distribution
/// percentiles over every rep taken.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RepStats {
    /// Fastest single rep, seconds.
    pub best_s: f64,
    /// Median rep, seconds (histogram bucket resolution, ~5%).
    pub p50_s: f64,
    /// 95th-percentile rep, seconds.
    pub p95_s: f64,
    /// 99th-percentile rep, seconds.
    pub p99_s: f64,
    /// Number of reps measured.
    pub reps: u64,
}

impl RepStats {
    /// The percentile fields as a JSON object fragment, for embedding
    /// in `BENCH_*.json` rows.
    pub fn to_json(&self) -> serde_json::Value {
        serde_json::json!({
            "best_s": self.best_s,
            "p50_s": self.p50_s,
            "p95_s": self.p95_s,
            "p99_s": self.p99_s,
            "reps": self.reps,
        })
    }
}

/// Geometric bucket bounds in nanoseconds: 5% steps spanning 100 ns to
/// 100 s (~460 buckets), fine enough that percentile error is bounded
/// by the step width.
fn rep_bounds() -> Vec<u64> {
    let mut bounds = Vec::with_capacity(512);
    let mut v = 100.0f64;
    while v < 1e11 {
        bounds.push(v as u64);
        v *= 1.05;
    }
    bounds
}

/// Time each candidate round-robin until `budget_s` elapses (at least
/// two rounds — one warm), returning best-of-N plus per-rep
/// percentiles for each.
pub fn time_stats(fns: &mut [&mut dyn FnMut()], budget_s: f64, max_reps: usize) -> Vec<RepStats> {
    let bounds = rep_bounds();
    let hists: Vec<Histogram> = (0..fns.len())
        .map(|_| Histogram::with_bounds("bench.rep_ns", &bounds))
        .collect();
    let mut best = vec![f64::INFINITY; fns.len()];
    let started = Instant::now();
    for rep in 0..max_reps.max(2) {
        for (i, f) in fns.iter_mut().enumerate() {
            let t0 = Instant::now();
            f();
            let elapsed = t0.elapsed();
            best[i] = best[i].min(elapsed.as_secs_f64());
            if let Some(h) = hists.get(i) {
                h.record(elapsed.as_nanos().min(u128::from(u64::MAX)) as u64);
            }
        }
        if rep >= 1 && started.elapsed().as_secs_f64() > budget_s {
            break;
        }
    }
    best.iter()
        .zip(&hists)
        .map(|(&best_s, h)| {
            let snap = h.snapshot();
            let q = |q: f64| snap.quantile(q) as f64 * 1e-9;
            RepStats {
                best_s,
                p50_s: q(0.50),
                p95_s: q(0.95),
                p99_s: q(0.99),
                reps: snap.count,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_are_ordered_and_counted() {
        let mut spin = || {
            let t0 = Instant::now();
            while t0.elapsed().as_micros() < 50 {
                std::hint::black_box(0u64);
            }
        };
        let stats = time_stats(&mut [&mut spin], 0.05, 64);
        assert_eq!(stats.len(), 1);
        let s = stats[0];
        assert!(s.reps >= 2);
        assert!(s.best_s > 0.0);
        // Percentiles are monotone and bracket the best rep (p50 is a
        // bucket upper bound, so it sits at or above the minimum).
        assert!(s.p50_s <= s.p95_s && s.p95_s <= s.p99_s);
        assert!(s.p50_s >= s.best_s * 0.5);
    }

    #[test]
    fn bounds_are_strictly_increasing() {
        let b = rep_bounds();
        assert!(b.len() > 100);
        assert!(b.windows(2).all(|w| w[0] < w[1]));
    }
}
