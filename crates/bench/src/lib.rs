//! # qrec-bench — experiment drivers and benchmarks
//!
//! One binary per table / figure of the paper (see DESIGN.md §4):
//!
//! | binary       | reproduces |
//! |--------------|------------|
//! | `exp_table2` | Table 2 — workload statistics |
//! | `exp_table3` | Table 3 — model statistics (train/infer time, #params) |
//! | `exp_table5` | Table 5 — fragment-set prediction F-measure |
//! | `exp_table6` | Table 6 — top-1 template prediction accuracy |
//! | `exp_fig9`   | Figure 9 — template popularity long tail |
//! | `exp_fig10`  | Figure 10 — SDSS session/pair-level analysis |
//! | `exp_fig11`  | Figure 11 — SQLShare session/pair-level analysis |
//! | `exp_fig12`  | Figure 12 — N-fragments prediction, N ∈ 1..5 |
//! | `exp_fig13`  | Figure 13 — N-templates accuracy and MRR, N ∈ 1..5 |
//! | `ablation_*` | design-choice ablations (decoding, architecture, context) |
//! | `run_all`    | everything above in sequence |
//!
//! Trained models are cached under `target/qrec-cache/` so binaries can
//! be re-run (or run individually) without retraining; delete the cache
//! directory to force retraining. Each binary prints its table and also
//! writes a JSON result file next to the cache for EXPERIMENTS.md.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod timing;

use qrec_core::prelude::*;
use qrec_nn::trainer::TrainReport;
use qrec_nn::{ClassifierHead, Params};
use qrec_workload::gen::{generate, Catalog, WorkloadProfile};
use qrec_workload::{Split, Vocab, Workload};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{de::DeserializeOwned, Deserialize, Serialize};
use std::path::PathBuf;

/// Workload-generation seed shared by every experiment.
pub const GEN_SEED: u64 = 1234;
/// Split seed shared by every experiment.
pub const SPLIT_SEED: u64 = 5678;

// ---------------------------------------------------------------------
// Output sink
// ---------------------------------------------------------------------

/// Where experiment output goes. Library code never prints directly —
/// the experiment binaries pass [`StdioReporter`] and tests pass
/// [`SilentReporter`], so running the suite stays quiet and the one
/// sanctioned stdout sink is this trait's stdio implementation.
pub trait Reporter {
    /// A result line: tables, figures, summary rows (stdout channel).
    fn out(&self, line: &str);
    /// A progress/diagnostic note: training started, cache misses
    /// (stderr channel).
    fn note(&self, line: &str);
}

/// Reporter for the experiment binaries: results to stdout, notes to
/// stderr.
pub struct StdioReporter;

impl Reporter for StdioReporter {
    fn out(&self, line: &str) {
        // qrec-lint: allow(no-stdout-in-lib) -- the one sanctioned stdout sink; every other lib fn goes through Reporter
        println!("{line}");
    }

    fn note(&self, line: &str) {
        // qrec-lint: allow(no-stdout-in-lib) -- the one sanctioned stderr sink; every other lib fn goes through Reporter
        eprintln!("{line}");
    }
}

/// Reporter that swallows all output (used by tests).
pub struct SilentReporter;

impl Reporter for SilentReporter {
    fn out(&self, _line: &str) {}
    fn note(&self, _line: &str) {}
}

/// A fully prepared experiment dataset.
pub struct ExpData {
    /// `"sdss"` or `"sqlshare"`.
    pub name: String,
    /// The generated workload.
    pub workload: Workload,
    /// Its catalog.
    pub catalog: Catalog,
    /// The 80/10/10 pair split.
    pub split: Split,
}

/// Generate one of the two benchmark datasets deterministically.
pub fn dataset(name: &str) -> ExpData {
    let profile = match name {
        "sdss" => WorkloadProfile::sdss(),
        "sqlshare" => WorkloadProfile::sqlshare(),
        other => panic!("unknown dataset {other:?} (use \"sdss\" or \"sqlshare\")"),
    };
    let (workload, catalog) = generate(&profile, GEN_SEED);
    let mut rng = StdRng::seed_from_u64(SPLIT_SEED);
    let split = Split::paper(workload.pairs(), &mut rng);
    ExpData {
        name: name.to_string(),
        workload,
        catalog,
        split,
    }
}

/// Both datasets, in the paper's order.
pub fn both_datasets() -> Vec<ExpData> {
    vec![dataset("sdss"), dataset("sqlshare")]
}

/// Cache-format version: bump when the generator or configs change so
/// stale trained models are not reused.
pub const CACHE_VERSION: u32 = 4;

/// The experiment-scale recommender configuration. Budgets are
/// per-dataset: SQLShare is ~5x smaller, so it affords many more epochs
/// at the same wall-clock cost (mirroring the paper's per-dataset
/// hyper-parameter tuning, Section 6.2.4).
pub fn rec_config(dataset: &str, arch: Arch, seq_mode: SeqMode) -> RecommenderConfig {
    let mut cfg = RecommenderConfig::new(arch, seq_mode);
    cfg.train.batch_size = 16;
    cfg.train.adam.lr = 1.5e-3;
    match dataset {
        "sdss" => {
            cfg.train.epochs = 14;
            cfg.train.patience = 2;
        }
        _ => {
            cfg.train.epochs = 40;
            cfg.train.patience = 4;
        }
    }
    cfg
}

/// The experiment-scale classifier configuration (per-dataset budget).
/// Fine-tuning uses a gentler learning rate than pre-training so the
/// encoder's learned query representation is adapted, not destroyed.
pub fn clf_config(dataset: &str) -> TemplateClfConfig {
    let mut cfg = TemplateClfConfig::default();
    cfg.train.batch_size = 16;
    cfg.train.adam.lr = 6e-4;
    match dataset {
        "sdss" => {
            cfg.train.epochs = 16;
            cfg.train.patience = 3;
        }
        _ => {
            cfg.train.epochs = 60;
            cfg.train.patience = 8;
        }
    }
    cfg
}

// ---------------------------------------------------------------------
// Model cache
// ---------------------------------------------------------------------

fn cache_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/qrec-cache");
    std::fs::create_dir_all(&dir).expect("create cache dir");
    dir
}

fn load_cached<T: DeserializeOwned>(r: &dyn Reporter, file: &str) -> Option<T> {
    let path = cache_dir().join(file);
    let bytes = std::fs::read(&path).ok()?;
    match serde_json::from_slice(&bytes) {
        Ok(v) => Some(v),
        Err(e) => {
            r.note(&format!("  (cache {file} unreadable: {e}; retraining)"));
            None
        }
    }
}

fn store_cached<T: Serialize>(r: &dyn Reporter, file: &str, value: &T) {
    let path = cache_dir().join(file);
    match serde_json::to_vec(value) {
        Ok(bytes) => {
            if let Err(e) = std::fs::write(&path, bytes) {
                r.note(&format!("  (could not write cache {file}: {e})"));
            }
        }
        Err(e) => r.note(&format!("  (could not serialise cache {file}: {e})")),
    }
}

#[derive(Serialize, Deserialize)]
struct RecBundle {
    cfg: RecommenderConfig,
    model: AnyModel,
    params: Params,
    vocab: Vocab,
    lexicon: FragmentLexicon,
    report: TrainReport,
}

/// Load a trained recommender from cache, or train and cache it.
pub fn trained_recommender(
    r: &dyn Reporter,
    data: &ExpData,
    arch: Arch,
    seq_mode: SeqMode,
) -> (Recommender, TrainReport) {
    let cfg = rec_config(&data.name, arch, seq_mode);
    let file = format!(
        "v{CACHE_VERSION}-{}-{}-{}.json",
        data.name,
        arch.label(),
        seq_mode.label()
    );
    if let Some(bundle) = load_cached::<RecBundle>(r, &file) {
        if bundle.cfg == cfg {
            let rec = Recommender::from_parts(
                bundle.cfg,
                bundle.model,
                bundle.params,
                bundle.vocab,
                bundle.lexicon,
            );
            return (rec, bundle.report);
        }
    }
    r.note(&format!(
        "  training {} {} on {} …",
        seq_mode.label(),
        arch.label(),
        data.name
    ));
    let (rec, report) = Recommender::train(&data.split, &data.workload, cfg);
    let bundle = RecBundle {
        cfg: *rec.config(),
        model: rec.model().clone(),
        params: rec.params().clone(),
        vocab: rec.vocab().clone(),
        lexicon: rec.lexicon().clone(),
        report: report.clone(),
    };
    store_cached(r, &file, &bundle);
    (rec, report)
}

#[derive(Serialize, Deserialize)]
struct ClfBundle {
    name: String,
    model: AnyModel,
    head: ClassifierHead,
    params: Params,
    vocab: Vocab,
    classes: TemplateClasses,
    report: TrainReport,
}

/// Load a trained template classifier from cache, or train and cache it.
/// `tuned` selects the fine-tuned construction (from the cached seq2seq
/// recommender) versus the from-scratch ablation.
pub fn trained_classifier(
    r: &dyn Reporter,
    data: &ExpData,
    arch: Arch,
    seq_mode: SeqMode,
    tuned: bool,
) -> (TemplateModel, TrainReport) {
    let kind = if tuned { "tuned" } else { "untuned" };
    let file = format!(
        "v{CACHE_VERSION}-{}-clf-{}-{}-{}.json",
        data.name,
        arch.label(),
        seq_mode.label(),
        kind
    );
    if let Some(bundle) = load_cached::<ClfBundle>(r, &file) {
        let clf = TemplateModel::from_parts(
            bundle.name,
            bundle.model,
            bundle.head,
            bundle.params,
            bundle.vocab,
            bundle.classes,
            clf_config(&data.name).train.seed,
        );
        return (clf, bundle.report);
    }
    let cfg = clf_config(&data.name);
    let (clf, report) = if tuned {
        let (rec, _) = trained_recommender(r, data, arch, seq_mode);
        r.note(&format!(
            "  fine-tuning classifier for {} {} on {} …",
            seq_mode.label(),
            arch.label(),
            data.name
        ));
        TemplateModel::train_fine_tuned(&rec, &data.split, cfg)
    } else {
        r.note(&format!(
            "  training untuned classifier for {} on {} …",
            arch.label(),
            data.name
        ));
        TemplateModel::train_from_scratch(
            arch,
            SizePreset::Small,
            seq_mode,
            &data.split,
            cfg,
            2,
            cfg.train.seed,
        )
    };
    let (name, model, head, params, vocab, classes) = clf.parts();
    let bundle = ClfBundle {
        name: name.to_string(),
        model: model.clone(),
        head: head.clone(),
        params: params.clone(),
        vocab: vocab.clone(),
        classes: classes.clone(),
        report: report.clone(),
    };
    store_cached(r, &file, &bundle);
    (clf, report)
}

// ---------------------------------------------------------------------
// Reporting
// ---------------------------------------------------------------------

/// Print an aligned text table through the reporter.
pub fn print_table(r: &dyn Reporter, title: &str, headers: &[&str], rows: &[Vec<String>]) {
    r.out(&format!("\n== {title} =="));
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let w = widths.get(i).copied().unwrap_or(c.len());
                if i == 0 {
                    format!("{c:<w$}")
                } else {
                    format!("{c:>w$}")
                }
            })
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    r.out(&fmt_row(&header_cells));
    r.out(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
    for row in rows {
        r.out(&fmt_row(row));
    }
}

/// Persist experiment results as JSON under `target/qrec-cache/results/`.
pub fn write_results(r: &dyn Reporter, experiment: &str, value: &serde_json::Value) {
    let dir = cache_dir().join("results");
    std::fs::create_dir_all(&dir).expect("create results dir");
    let path = dir.join(format!("{experiment}.json"));
    std::fs::write(&path, serde_json::to_vec_pretty(value).expect("serialise"))
        .expect("write results");
    r.out(&format!("\n[results written to {}]", path.display()));
}

/// Shared implementation of Figures 10 and 11: the session-level (a)–(e)
/// and pair-level (f)–(l) analysis of one workload, printed as
/// histograms and summary fractions.
pub fn session_pair_figure(r: &dyn Reporter, data: &ExpData, figure: &str) -> serde_json::Value {
    use qrec_workload::stats::{pair_stats, session_stats};

    let ss = session_stats(&data.workload);
    let ps = pair_stats(&data.workload);

    // (a)-(e): histograms of per-session measures.
    let hist = |take: &dyn Fn(&qrec_workload::stats::SessionRow) -> usize| {
        let mut buckets = [0usize; 7]; // 0,1,2,3,4,5-9,10+
        for row in &ss.rows {
            let v = take(row);
            let b = match v {
                0..=4 => v,
                5..=9 => 5,
                _ => 6,
            };
            buckets[b] += 1;
        }
        buckets
    };
    let labels = ["0", "1", "2", "3", "4", "5-9", "10+"];
    let measures: Vec<(&str, [usize; 7])> = vec![
        ("(a) queries", hist(&|r| r.queries)),
        ("(b) unique queries", hist(&|r| r.unique_queries)),
        ("(c) sequential changes", hist(&|r| r.sequential_changes)),
        ("(d) unique templates", hist(&|r| r.unique_templates)),
        ("(e) template changes", hist(&|r| r.template_changes)),
    ];
    let mut rows: Vec<Vec<String>> = Vec::new();
    for (name, buckets) in &measures {
        let mut row = vec![name.to_string()];
        row.extend(buckets.iter().map(|b| b.to_string()));
        rows.push(row);
    }
    let mut headers = vec!["per-session measure"];
    headers.extend(labels);
    print_table(
        r,
        &format!(
            "{figure} ({}) session-level histograms (#sessions per bucket)",
            data.name
        ),
        &headers,
        &rows,
    );
    r.out(&format!(
        "  ≥2 unique queries: {}   ≥2 unique templates: {}   ≥2 template changes: {}",
        pct(ss.frac_ge2_unique_queries),
        pct(ss.frac_ge2_unique_templates),
        pct(ss.frac_ge2_template_changes)
    ));

    // (f)-(l): pair-level template change + syntactic deltas.
    let mut rows: Vec<Vec<String>> = vec![vec![
        "(f) template".into(),
        pct(ps.template_change_rate),
        pct(1.0 - ps.template_change_rate),
        "-".into(),
    ]];
    for (i, (name, inc, same, dec)) in ps.property_deltas.iter().enumerate() {
        let tag = (b'g' + i as u8) as char;
        rows.push(vec![
            format!("({tag}) {name}"),
            pct(*inc),
            pct(*same),
            pct(*dec),
        ]);
    }
    print_table(
        r,
        &format!(
            "{figure} ({}) pair-level deltas over {} pairs (f: changed/same; g-l: +/=/-)",
            data.name, ps.pairs
        ),
        &["pair-level measure", "increase/changed", "same", "decrease"],
        &rows,
    );

    serde_json::json!({
        "session": {
            "frac_ge2_unique_queries": ss.frac_ge2_unique_queries,
            "frac_ge2_unique_templates": ss.frac_ge2_unique_templates,
            "frac_ge2_template_changes": ss.frac_ge2_template_changes,
            "mean_sequential_changes": ss.mean_sequential_changes,
            "histograms": measures.iter().map(|(n, b)| (n.to_string(), b.to_vec())).collect::<Vec<_>>(),
        },
        "pair": {
            "pairs": ps.pairs,
            "template_change_rate": ps.template_change_rate,
            "property_deltas": ps.property_deltas,
        },
    })
}

/// Format a float with three decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Format a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(f3(0.12345), "0.123");
        assert_eq!(pct(0.4567), "45.7%");
        assert_eq!(pct(1.0), "100.0%");
    }

    #[test]
    fn datasets_are_deterministic() {
        let a = dataset("sdss");
        let b = dataset("sdss");
        assert_eq!(a.workload, b.workload);
        assert_eq!(a.split.train.len(), b.split.train.len());
        assert_eq!(
            a.split.train.first().map(|p| p.current.canonical.clone()),
            b.split.train.first().map(|p| p.current.canonical.clone())
        );
    }

    #[test]
    #[should_panic(expected = "unknown dataset")]
    fn unknown_dataset_panics() {
        let _ = dataset("tpch");
    }

    #[test]
    fn configs_differ_per_dataset() {
        let sdss = rec_config("sdss", Arch::Transformer, SeqMode::Aware);
        let ss = rec_config("sqlshare", Arch::Transformer, SeqMode::Aware);
        assert!(ss.train.epochs > sdss.train.epochs);
        let c_sdss = clf_config("sdss");
        let c_ss = clf_config("sqlshare");
        assert!(c_ss.train.epochs > c_sdss.train.epochs);
    }

    #[test]
    fn cache_roundtrip() {
        #[derive(Serialize, serde::Deserialize, PartialEq, Debug)]
        struct Probe {
            x: u32,
        }
        store_cached(&SilentReporter, "test-probe.json", &Probe { x: 7 });
        let back: Option<Probe> = load_cached(&SilentReporter, "test-probe.json");
        assert_eq!(back, Some(Probe { x: 7 }));
        let missing: Option<Probe> = load_cached(&SilentReporter, "no-such-file.json");
        assert!(missing.is_none());
    }
}
