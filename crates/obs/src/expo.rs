//! Prometheus-style text exposition of a registry snapshot.
//!
//! Renders `# HELP`/`# TYPE` headers, plain `name value` lines for
//! counters and gauges, and cumulative `_bucket{le="…"}`/`_sum`/`_count`
//! lines for histograms, plus a synthetic `qrec_obs_scrape_unix_seconds`
//! gauge stamping when the exposition was produced (standard scrapers
//! use it for staleness checks). All metric names are prefixed `qrec_`
//! and sanitised to `[a-zA-Z0-9_]`. This is the body of the `DUMP`
//! protocol verb.

use crate::registry::{Registry, RegistrySnapshot};
use std::fmt::Write as _;
use std::time::{SystemTime, UNIX_EPOCH};

/// Render the current state of `reg` as exposition text.
pub fn render(reg: &Registry) -> String {
    render_snapshot(&reg.snapshot())
}

/// Render an already-taken snapshot as exposition text. The scrape
/// timestamp gauge reads the wall clock at call time.
pub fn render_snapshot(snap: &RegistrySnapshot) -> String {
    let mut out = String::new();
    for c in &snap.counters {
        let name = sanitize(&c.name);
        let _ = writeln!(out, "# HELP qrec_{name} qrec metric {}", c.name);
        let _ = writeln!(out, "# TYPE qrec_{name} counter");
        let _ = writeln!(out, "qrec_{name} {}", c.value);
    }
    for g in &snap.gauges {
        let name = sanitize(&g.name);
        let _ = writeln!(out, "# HELP qrec_{name} qrec metric {}", g.name);
        let _ = writeln!(out, "# TYPE qrec_{name} gauge");
        let _ = writeln!(out, "qrec_{name} {}", g.value);
    }
    for h in &snap.histograms {
        let name = sanitize(&h.name);
        let _ = writeln!(out, "# HELP qrec_{name} qrec metric {}", h.name);
        let _ = writeln!(out, "# TYPE qrec_{name} histogram");
        let mut cumulative = 0u64;
        for (i, bound) in h.bounds.iter().enumerate() {
            cumulative += h.counts.get(i).copied().unwrap_or(0);
            let _ = writeln!(out, "qrec_{name}_bucket{{le=\"{bound}\"}} {cumulative}");
        }
        let _ = writeln!(out, "qrec_{name}_bucket{{le=\"+Inf\"}} {}", h.count);
        let _ = writeln!(out, "qrec_{name}_sum {}", h.sum);
        let _ = writeln!(out, "qrec_{name}_count {}", h.count);
    }
    let scrape = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let _ = writeln!(
        out,
        "# HELP qrec_obs_scrape_unix_seconds wall-clock time this exposition was produced"
    );
    let _ = writeln!(out, "# TYPE qrec_obs_scrape_unix_seconds gauge");
    let _ = writeln!(out, "qrec_obs_scrape_unix_seconds {scrape}");
    out
}

/// Map a metric name onto the exposition charset (`[a-zA-Z0-9_]`).
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_counters_gauges_and_cumulative_buckets() {
        let reg = Registry::new();
        reg.counter("serve.requests").add(12);
        reg.gauge("pool.threads").set(4);
        let h = reg.histogram("serve.latency_us", &[10, 100]);
        h.record(5);
        h.record(50);
        h.record(5000);
        let text = render(&reg);
        assert!(text.contains("# HELP qrec_serve_requests qrec metric serve.requests\n"));
        assert!(text.contains("# TYPE qrec_serve_requests counter\n"));
        assert!(text.contains("qrec_serve_requests 12\n"));
        assert!(text.contains("qrec_pool_threads 4\n"));
        assert!(text.contains("qrec_serve_latency_us_bucket{le=\"10\"} 1\n"));
        assert!(text.contains("qrec_serve_latency_us_bucket{le=\"100\"} 2\n"));
        assert!(text.contains("qrec_serve_latency_us_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("qrec_serve_latency_us_sum 5055\n"));
        assert!(text.contains("qrec_serve_latency_us_count 3\n"));
    }

    #[test]
    fn scrape_timestamp_gauge_is_present_and_current() {
        let before = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .expect("clock")
            .as_secs();
        let text = render(&Registry::new());
        let value: u64 = text
            .lines()
            .find_map(|l| l.strip_prefix("qrec_obs_scrape_unix_seconds "))
            .expect("scrape gauge line")
            .parse()
            .expect("numeric");
        assert!(value >= before && value <= before + 5, "stale scrape stamp");
        assert!(text.contains("# TYPE qrec_obs_scrape_unix_seconds gauge\n"));
    }

    /// Exposition-format conformance: every sample belongs to a metric
    /// family announced by a `# HELP` line then a `# TYPE` line, types
    /// are legal, and names stay in the exposition charset.
    #[test]
    fn exposition_is_conformant_for_a_standard_scraper() {
        let reg = Registry::new();
        reg.counter("a.counter").inc();
        reg.gauge("b.gauge").set(2);
        reg.histogram("c.hist", &[1, 10]).record(3);
        let text = render(&reg);

        let mut helped: Vec<String> = Vec::new();
        let mut typed: Vec<(String, String)> = Vec::new();
        for line in text.lines() {
            assert!(!line.is_empty(), "no blank lines inside the exposition");
            if let Some(rest) = line.strip_prefix("# HELP ") {
                let name = rest.split_whitespace().next().expect("HELP names a metric");
                assert!(
                    !typed.iter().any(|(n, _)| n == name),
                    "HELP must precede TYPE for {name}"
                );
                helped.push(name.to_string());
            } else if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut parts = rest.split_whitespace();
                let name = parts.next().expect("TYPE names a metric");
                let kind = parts.next().expect("TYPE carries a type");
                assert!(
                    matches!(kind, "counter" | "gauge" | "histogram"),
                    "illegal type {kind}"
                );
                assert!(
                    helped.iter().any(|h| h == name),
                    "metric {name} typed without HELP"
                );
                typed.push((name.to_string(), kind.to_string()));
            } else {
                let sample = line.split_whitespace().next().expect("sample line");
                let family = sample
                    .split('{')
                    .next()
                    .expect("metric name")
                    .trim_end_matches("_bucket")
                    .trim_end_matches("_sum")
                    .trim_end_matches("_count");
                let known = typed
                    .iter()
                    .any(|(n, _)| n == family || n.as_str() == sample.split('{').next().unwrap());
                assert!(known, "sample {sample} has no TYPE header");
                assert!(
                    sample
                        .split('{')
                        .next()
                        .unwrap()
                        .chars()
                        .all(|c| c.is_ascii_alphanumeric() || c == '_'),
                    "name outside exposition charset: {sample}"
                );
            }
        }
        assert!(helped.iter().any(|h| h == "qrec_obs_scrape_unix_seconds"));
    }

    #[test]
    fn sanitize_maps_punctuation_to_underscores() {
        assert_eq!(sanitize("a.b-c/d e"), "a_b_c_d_e");
        assert_eq!(sanitize("plain_name9"), "plain_name9");
    }
}
