//! Prometheus-style text exposition of a registry snapshot.
//!
//! Renders `# TYPE` headers, plain `name value` lines for counters and
//! gauges, and cumulative `_bucket{le="…"}`/`_sum`/`_count` lines for
//! histograms. All metric names are prefixed `qrec_` and sanitised to
//! `[a-zA-Z0-9_]`. This is the body of the `DUMP` protocol verb.

use crate::registry::{Registry, RegistrySnapshot};
use std::fmt::Write as _;

/// Render the current state of `reg` as exposition text.
pub fn render(reg: &Registry) -> String {
    render_snapshot(&reg.snapshot())
}

/// Render an already-taken snapshot as exposition text.
pub fn render_snapshot(snap: &RegistrySnapshot) -> String {
    let mut out = String::new();
    for c in &snap.counters {
        let name = sanitize(&c.name);
        let _ = writeln!(out, "# TYPE qrec_{name} counter");
        let _ = writeln!(out, "qrec_{name} {}", c.value);
    }
    for g in &snap.gauges {
        let name = sanitize(&g.name);
        let _ = writeln!(out, "# TYPE qrec_{name} gauge");
        let _ = writeln!(out, "qrec_{name} {}", g.value);
    }
    for h in &snap.histograms {
        let name = sanitize(&h.name);
        let _ = writeln!(out, "# TYPE qrec_{name} histogram");
        let mut cumulative = 0u64;
        for (i, bound) in h.bounds.iter().enumerate() {
            cumulative += h.counts.get(i).copied().unwrap_or(0);
            let _ = writeln!(out, "qrec_{name}_bucket{{le=\"{bound}\"}} {cumulative}");
        }
        let _ = writeln!(out, "qrec_{name}_bucket{{le=\"+Inf\"}} {}", h.count);
        let _ = writeln!(out, "qrec_{name}_sum {}", h.sum);
        let _ = writeln!(out, "qrec_{name}_count {}", h.count);
    }
    out
}

/// Map a metric name onto the exposition charset (`[a-zA-Z0-9_]`).
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_counters_gauges_and_cumulative_buckets() {
        let reg = Registry::new();
        reg.counter("serve.requests").add(12);
        reg.gauge("pool.threads").set(4);
        let h = reg.histogram("serve.latency_us", &[10, 100]);
        h.record(5);
        h.record(50);
        h.record(5000);
        let text = render(&reg);
        assert!(text.contains("# TYPE qrec_serve_requests counter\n"));
        assert!(text.contains("qrec_serve_requests 12\n"));
        assert!(text.contains("qrec_pool_threads 4\n"));
        assert!(text.contains("qrec_serve_latency_us_bucket{le=\"10\"} 1\n"));
        assert!(text.contains("qrec_serve_latency_us_bucket{le=\"100\"} 2\n"));
        assert!(text.contains("qrec_serve_latency_us_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("qrec_serve_latency_us_sum 5055\n"));
        assert!(text.contains("qrec_serve_latency_us_count 3\n"));
    }

    #[test]
    fn sanitize_maps_punctuation_to_underscores() {
        assert_eq!(sanitize("a.b-c/d e"), "a_b_c_d_e");
        assert_eq!(sanitize("plain_name9"), "plain_name9");
    }
}
