//! Per-request trace contexts and the thread-local span stack.
//!
//! A [`TraceContext`] is created at the protocol front end, travels with
//! the request through the batcher hand-off (it is plain data, `Send`),
//! and is installed into thread-local storage on whichever thread is
//! currently working on the request. Spans entered while a context is
//! installed append [`StageRec`]s with their nesting depth, so the
//! finished record reconstructs the stage tree (request → batch wait →
//! encode → per-step decode → rank). Annotation helpers (`note_*`) are
//! cheap no-ops when no context is installed, which keeps call sites in
//! nn/serve unconditional.

use crate::flight::{FlightRecord, StageSpan};
use std::cell::RefCell;
use std::ops::Deref;
use std::time::{Duration, Instant};

/// Hard cap on stages kept per trace; later stages are dropped rather
/// than growing mid-request. The full serving chain (session →
/// batch_wait → cache → encode → decode → rank) is ~8 deep, and the
/// list is copied inline through every thread hand-off, so the cap is
/// kept tight.
pub const MAX_STAGES: usize = 16;

/// Hard cap on span-stack depth tracked per thread.
const MAX_DEPTH: usize = 16;

/// One completed stage inside a trace: name, nesting depth, and timing
/// relative to the trace origin. Plain copyable data — no allocation on
/// the recording path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageRec {
    /// Static stage name (e.g. `"decode"`).
    pub name: &'static str,
    /// Nesting depth at the time the span was entered (0 = top level).
    pub depth: u8,
    /// Offset of the stage start from the trace origin, microseconds.
    pub start_us: u64,
    /// Stage duration, microseconds.
    pub dur_us: u64,
}

/// Inline fixed-capacity list of completed stages. The storage lives in
/// the struct itself (not behind a heap `Vec`), so starting a trace and
/// recording a stage are allocation-free — the trace is plain copyable
/// data from birth to flight-recorder slot.
#[derive(Clone, Copy)]
pub struct StageList {
    recs: [StageRec; MAX_STAGES],
    len: u8,
}

impl StageList {
    const EMPTY: StageRec = StageRec {
        name: "",
        depth: 0,
        start_us: 0,
        dur_us: 0,
    };

    /// An empty list (all capacity inline, nothing heap-allocated).
    pub const fn new() -> StageList {
        StageList {
            recs: [StageList::EMPTY; MAX_STAGES],
            len: 0,
        }
    }

    /// Append a stage; silently dropped once [`MAX_STAGES`] is reached.
    pub fn push(&mut self, rec: StageRec) {
        if let Some(slot) = self.recs.get_mut(self.len as usize) {
            *slot = rec;
            self.len += 1;
        }
    }

    /// The recorded stages, in completion order.
    pub fn as_slice(&self) -> &[StageRec] {
        &self.recs[..self.len as usize]
    }
}

impl Default for StageList {
    fn default() -> StageList {
        StageList::new()
    }
}

impl Deref for StageList {
    type Target = [StageRec];
    fn deref(&self) -> &[StageRec] {
        self.as_slice()
    }
}

impl std::fmt::Debug for StageList {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

impl PartialEq for StageList {
    fn eq(&self, other: &StageList) -> bool {
        self.as_slice() == other.as_slice()
    }
}

/// Everything recorded about one in-flight request.
///
/// Fields are filled in as the request moves through the pipeline; the
/// context is sealed into a [`FinishedTrace`] at [`TraceContext::finish`]
/// — a plain field move, so the whole request path stays allocation-free.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceContext {
    /// Process-unique id from [`crate::next_request_id`].
    pub request_id: u64,
    /// Monotonic origin all stage offsets are measured from.
    pub origin: Instant,
    /// Completed stages, capped at [`MAX_STAGES`].
    pub stages: StageList,
    /// Batcher queue depth observed at enqueue time.
    pub queue_depth: u64,
    /// Size of the batch this request was decoded in.
    pub batch_size: u64,
    /// Whether the recommendation cache answered the request.
    pub cache_hit: bool,
    /// Model epoch that served the request.
    pub epoch: u64,
    /// Decode strategy name (`"greedy"`, `"beam"`, `"sample"`).
    pub strategy: &'static str,
    /// Beam width when the strategy is beam search, else 0.
    pub beam_width: u64,
    /// Decoder steps executed for this request.
    pub decode_steps: u64,
    /// Encoder-cache hits attributed to this request.
    pub enc_cache_hits: u64,
    /// Encoder-cache misses attributed to this request.
    pub enc_cache_misses: u64,
}

impl TraceContext {
    /// Start a trace for `request_id`, or `None` when the spine is
    /// disabled (callers thread the `Option` through untouched).
    ///
    /// Boxed on purpose: the context is ~700 B of inline stage storage
    /// and crosses two thread-local installs and two channel hand-offs
    /// per request, so it is allocated once at birth and moved as a
    /// pointer everywhere after — the only allocation a request trace
    /// ever makes.
    pub fn start(request_id: u64) -> Option<Box<TraceContext>> {
        if !crate::enabled() {
            return None;
        }
        Some(Box::new(TraceContext {
            request_id,
            origin: Instant::now(),
            stages: StageList::new(),
            queue_depth: 0,
            batch_size: 0,
            cache_hit: false,
            epoch: 0,
            strategy: "",
            beam_width: 0,
            decode_steps: 0,
            enc_cache_hits: 0,
            enc_cache_misses: 0,
        }))
    }

    /// Append a completed stage (dropped silently past [`MAX_STAGES`]).
    pub fn push_stage(&mut self, rec: StageRec) {
        self.stages.push(rec);
    }

    /// Seal the context into its stored form. A plain field move — no
    /// strings, no heap — so the record path stays allocation-free; the
    /// wire conversion happens only when a reader asks
    /// ([`FinishedTrace::to_record`]).
    pub fn finish(self, total: Duration) -> FinishedTrace {
        FinishedTrace {
            request_id: self.request_id,
            total_us: total.as_micros().min(u128::from(u64::MAX)) as u64,
            queue_depth: self.queue_depth,
            batch_size: self.batch_size,
            cache_hit: self.cache_hit,
            epoch: self.epoch,
            strategy: self.strategy,
            beam_width: self.beam_width,
            decode_steps: self.decode_steps,
            enc_cache_hits: self.enc_cache_hits,
            enc_cache_misses: self.enc_cache_misses,
            stages: self.stages,
        }
    }
}

/// A completed trace in its in-memory form: plain copyable data with the
/// stage list inline. The flight recorder stores these by value, so
/// recording a finished request performs zero heap allocation; the
/// wire-format [`FlightRecord`] (strings, `Vec`s) is only built when a
/// `TRACE`/`DUMP` reader calls [`FinishedTrace::to_record`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FinishedTrace {
    /// Process-unique request id.
    pub request_id: u64,
    /// End-to-end request duration, microseconds.
    pub total_us: u64,
    /// Batcher queue depth observed at enqueue time.
    pub queue_depth: u64,
    /// Size of the decode batch the request rode in.
    pub batch_size: u64,
    /// Whether the recommendation cache answered the request.
    pub cache_hit: bool,
    /// Model epoch that served the request.
    pub epoch: u64,
    /// Decode strategy name (`"greedy"`, `"beam"`, `"sample"`, or empty).
    pub strategy: &'static str,
    /// Beam width when beam search, else 0.
    pub beam_width: u64,
    /// Decoder steps executed.
    pub decode_steps: u64,
    /// Encoder-cache hits attributed to the request.
    pub enc_cache_hits: u64,
    /// Encoder-cache misses attributed to the request.
    pub enc_cache_misses: u64,
    /// Per-stage breakdown, in completion order.
    pub stages: StageList,
}

impl FinishedTrace {
    /// Build the wire-format record. This is where trace data finally
    /// allocates, and it runs on the `TRACE`/`DUMP` read path — never on
    /// the per-request record path.
    pub fn to_record(&self) -> FlightRecord {
        FlightRecord {
            request_id: self.request_id,
            total_us: self.total_us,
            queue_depth: self.queue_depth,
            batch_size: self.batch_size,
            cache_hit: self.cache_hit,
            epoch: self.epoch,
            strategy: self.strategy.to_string(),
            beam_width: self.beam_width,
            decode_steps: self.decode_steps,
            enc_cache_hits: self.enc_cache_hits,
            enc_cache_misses: self.enc_cache_misses,
            stages: self
                .stages
                .iter()
                .map(|s| StageSpan {
                    name: s.name.to_string(),
                    depth: u64::from(s.depth),
                    start_us: s.start_us,
                    dur_us: s.dur_us,
                })
                .collect(),
        }
    }
}

struct Active {
    trace: Option<Box<TraceContext>>,
    stack: Vec<&'static str>,
}

thread_local! {
    // `const`-initialised: every access is a plain TLS offset load with
    // no lazy-init or destructor-registration check, which matters
    // because the note_* helpers run on every decoder step.
    static ACTIVE: RefCell<Active> = const {
        RefCell::new(Active {
            trace: None,
            stack: Vec::new(),
        })
    };
}

/// Install `ctx` as this thread's active trace; spans entered until
/// [`uninstall`] append their timings to it. The context stays boxed so
/// install/uninstall move a pointer, not the inline stage storage.
pub fn install(ctx: Box<TraceContext>) {
    ACTIVE.with(|a| a.borrow_mut().trace = Some(ctx));
}

/// Remove and return this thread's active trace, if any.
pub fn uninstall() -> Option<Box<TraceContext>> {
    ACTIVE.with(|a| a.borrow_mut().trace.take())
}

/// Record a stage measured externally (e.g. the batch-wait interval the
/// worker measures from the job's enqueue instant) into the active
/// trace. No-op without an active trace.
pub fn record_stage(name: &'static str, start: Instant, dur: Duration) {
    ACTIVE.with(|a| {
        let mut a = a.borrow_mut();
        let depth = a.stack.len().min(u8::MAX as usize) as u8;
        if let Some(t) = a.trace.as_mut() {
            let start_us = start
                .saturating_duration_since(t.origin)
                .as_micros()
                .min(u128::from(u64::MAX)) as u64;
            t.push_stage(StageRec {
                name,
                depth,
                start_us,
                dur_us: dur.as_micros().min(u128::from(u64::MAX)) as u64,
            });
        }
    });
}

/// Note the batcher queue depth observed for the active request.
pub fn note_queue_depth(n: u64) {
    ACTIVE.with(|a| {
        if let Some(t) = a.borrow_mut().trace.as_mut() {
            t.queue_depth = n;
        }
    });
}

/// Note the batch the active request was decoded in.
pub fn note_batch(size: u64, epoch: u64) {
    ACTIVE.with(|a| {
        if let Some(t) = a.borrow_mut().trace.as_mut() {
            t.batch_size = size;
            t.epoch = epoch;
        }
    });
}

/// Note whether the recommendation cache answered the active request.
pub fn note_cache_hit(hit: bool) {
    ACTIVE.with(|a| {
        if let Some(t) = a.borrow_mut().trace.as_mut() {
            t.cache_hit = hit;
        }
    });
}

/// Note the decode strategy (and beam width, 0 when not beam search).
pub fn note_strategy(name: &'static str, beam_width: u64) {
    ACTIVE.with(|a| {
        if let Some(t) = a.borrow_mut().trace.as_mut() {
            t.strategy = name;
            t.beam_width = beam_width;
        }
    });
}

/// Attribute one decoder step to the active request.
pub fn note_decode_step() {
    ACTIVE.with(|a| {
        if let Some(t) = a.borrow_mut().trace.as_mut() {
            t.decode_steps += 1;
        }
    });
}

/// Attribute one encoder-cache lookup to the active request.
pub fn note_enc_cache(hit: bool) {
    ACTIVE.with(|a| {
        if let Some(t) = a.borrow_mut().trace.as_mut() {
            if hit {
                t.enc_cache_hits += 1;
            } else {
                t.enc_cache_misses += 1;
            }
        }
    });
}

/// Push `name` onto this thread's span stack; returns the depth the
/// span was entered at. Used by [`crate::span::SpanGuard`].
pub(crate) fn stack_push(name: &'static str) -> u8 {
    let depth = ACTIVE.with(|a| {
        let mut a = a.borrow_mut();
        let depth = a.stack.len().min(u8::MAX as usize) as u8;
        if a.stack.len() < MAX_DEPTH {
            a.stack.push(name);
        }
        depth
    });
    crate::prof::on_push(name, depth);
    depth
}

/// Pop `name` off the span stack and append the completed stage to the
/// active trace. Used by [`crate::span::SpanGuard`] on drop.
pub(crate) fn stack_pop_record(name: &'static str, depth: u8, start: Instant, dur: Duration) {
    crate::prof::on_pop(depth);
    ACTIVE.with(|a| {
        let mut a = a.borrow_mut();
        if a.stack.last() == Some(&name) {
            a.stack.pop();
        }
        if let Some(t) = a.trace.as_mut() {
            let start_us = start
                .saturating_duration_since(t.origin)
                .as_micros()
                .min(u128::from(u64::MAX)) as u64;
            t.push_stage(StageRec {
                name,
                depth,
                start_us,
                dur_us: dur.as_micros().min(u128::from(u64::MAX)) as u64,
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn annotations_require_an_installed_trace() {
        crate::set_enabled(true);
        assert!(uninstall().is_none());
        note_decode_step(); // must not panic without a trace
        let ctx = TraceContext::start(7).expect("enabled");
        install(ctx);
        note_queue_depth(3);
        note_batch(4, 2);
        note_cache_hit(true);
        note_strategy("beam", 8);
        note_decode_step();
        note_enc_cache(true);
        note_enc_cache(false);
        let t = uninstall().expect("installed");
        assert_eq!(t.request_id, 7);
        assert_eq!(t.queue_depth, 3);
        assert_eq!((t.batch_size, t.epoch), (4, 2));
        assert!(t.cache_hit);
        assert_eq!((t.strategy, t.beam_width), ("beam", 8));
        assert_eq!(t.decode_steps, 1);
        assert_eq!((t.enc_cache_hits, t.enc_cache_misses), (1, 1));
    }

    #[test]
    fn start_returns_none_when_disabled() {
        crate::set_enabled(false);
        assert!(TraceContext::start(1).is_none());
        crate::set_enabled(true);
    }

    #[test]
    fn finish_seals_and_to_record_converts_to_wire_format() {
        crate::set_enabled(true);
        let mut ctx = TraceContext::start(11).expect("enabled");
        ctx.push_stage(StageRec {
            name: "session",
            depth: 0,
            start_us: 1,
            dur_us: 5,
        });
        let sealed = ctx.finish(Duration::from_micros(42));
        assert_eq!(sealed.request_id, 11);
        assert_eq!(sealed.total_us, 42);
        assert_eq!(sealed.stages.len(), 1);
        let rec = sealed.to_record();
        assert_eq!(rec.request_id, 11);
        assert_eq!(rec.total_us, 42);
        assert_eq!(rec.stages.len(), 1);
        assert_eq!(rec.stages[0].name, "session");
        assert_eq!(rec.stages[0].dur_us, 5);
    }

    #[test]
    fn stage_cap_drops_excess() {
        crate::set_enabled(true);
        let mut ctx = TraceContext::start(1).expect("enabled");
        for i in 0..(MAX_STAGES + 10) {
            ctx.push_stage(StageRec {
                name: "s",
                depth: 0,
                start_us: i as u64,
                dur_us: 1,
            });
        }
        assert_eq!(ctx.stages.len(), MAX_STAGES);
        // The last pushes past the cap were dropped, not wrapped.
        assert_eq!(ctx.stages[MAX_STAGES - 1].start_us, (MAX_STAGES - 1) as u64);
    }
}
