//! Workload drift scoring between sealed telemetry windows.
//!
//! ROADMAP item 3's drift detector needs a number that jumps when the
//! workload changes shape. This module compares consecutive windows on
//! two axes:
//!
//! * **Template distribution** — the heavy-hitter sketch of one window
//!   versus the previous one, scored with Jensen–Shannon divergence
//!   (symmetric, bounded to `[0, ln 2]`, defined even when supports
//!   differ) and a chi-square statistic (scale-sensitive, so it also
//!   reacts to volume shifts within the same shape).
//! * **Per-metric rates** — a z-score of each tracked counter's latest
//!   window delta against the mean/stddev of its recent history, so a
//!   throughput cliff registers even when the template mix is stable.
//!
//! Scores are exported as gauges in fixed-point **micro-units**
//! (score × 1e6 rounded, since [`crate::Gauge`] carries `u64`):
//! `obs.drift.js_divergence_micros`, `obs.drift.chi_square_micros`,
//! `obs.drift.max_rate_z_micros`. All scoring runs on the window-seal
//! path (cold); nothing here touches metric recording.

use crate::metric::Gauge;
use crate::registry::Registry;
use crate::sketch::SketchEntry;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// How many recent window deltas the rate z-score baselines against.
const RATE_HISTORY: usize = 32;

/// Jensen–Shannon divergence (natural log, so in `[0, ln 2]`) between
/// the count distributions of two sketch-entry sets. Empty-vs-empty is
/// 0; empty-vs-nonempty is the maximum `ln 2` (total support change).
pub fn js_divergence(p: &[SketchEntry], q: &[SketchEntry]) -> f64 {
    let pt: u64 = p.iter().map(|e| e.count).sum();
    let qt: u64 = q.iter().map(|e| e.count).sum();
    match (pt, qt) {
        (0, 0) => return 0.0,
        (0, _) | (_, 0) => return std::f64::consts::LN_2,
        _ => {}
    }
    let prob = |entries: &[SketchEntry], total: u64, key: u64| -> f64 {
        entries
            .iter()
            .find(|e| e.key == key)
            .map(|e| e.count as f64 / total as f64)
            .unwrap_or(0.0)
    };
    let mut keys: Vec<u64> = p.iter().chain(q.iter()).map(|e| e.key).collect();
    keys.sort_unstable();
    keys.dedup();
    let mut js = 0.0;
    for key in keys {
        let pi = prob(p, pt, key);
        let qi = prob(q, qt, key);
        let mi = 0.5 * (pi + qi);
        if pi > 0.0 {
            js += 0.5 * pi * (pi / mi).ln();
        }
        if qi > 0.0 {
            js += 0.5 * qi * (qi / mi).ln();
        }
    }
    js.max(0.0)
}

/// Chi-square statistic of observed counts `q` against counts `p`
/// scaled to `q`'s total (so pure volume growth with an identical shape
/// scores 0). Keys absent from `p` contribute via a 0.5 pseudo-count,
/// keeping novel templates visible without dividing by zero.
pub fn chi_square(p: &[SketchEntry], q: &[SketchEntry]) -> f64 {
    let pt: u64 = p.iter().map(|e| e.count).sum();
    let qt: u64 = q.iter().map(|e| e.count).sum();
    if qt == 0 {
        return 0.0;
    }
    if pt == 0 {
        // No baseline: every observed count is "unexpected".
        return qt as f64;
    }
    let mut keys: Vec<u64> = p.iter().chain(q.iter()).map(|e| e.key).collect();
    keys.sort_unstable();
    keys.dedup();
    let count = |entries: &[SketchEntry], key: u64| -> f64 {
        entries
            .iter()
            .find(|e| e.key == key)
            .map(|e| e.count as f64)
            .unwrap_or(0.0)
    };
    let scale = qt as f64 / pt as f64;
    let mut chi = 0.0;
    for key in keys {
        let expected = (count(p, key) * scale).max(0.5);
        let observed = count(q, key);
        let d = observed - expected;
        chi += d * d / expected;
    }
    chi
}

/// Z-score of `current` against the mean and standard deviation of
/// `history`. Returns 0 with fewer than two history points or zero
/// variance (a constant baseline gives no scale to judge against).
pub fn rate_z_score(history: &[f64], current: f64) -> f64 {
    if history.len() < 2 {
        return 0.0;
    }
    let n = history.len() as f64;
    let mean = history.iter().sum::<f64>() / n;
    let var = history.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
    if var <= f64::EPSILON {
        return 0.0;
    }
    (current - mean) / var.sqrt()
}

/// Drift score of one window against its predecessor.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct DriftScore {
    /// Jensen–Shannon divergence of the template distributions, nats.
    pub js_divergence: f64,
    /// Chi-square statistic of the template counts.
    pub chi_square: f64,
    /// Largest-magnitude rate z-score across tracked metrics.
    pub max_rate_z: f64,
}

struct RateTrack {
    name: String,
    history: Vec<f64>,
}

/// Stateful window-over-window drift scorer.
///
/// Feed it each sealed window's drained sketch entries and counter
/// deltas ([`DriftDetector::advance`]); it scores against the previous
/// window, maintains per-metric rate histories, and publishes the
/// latest score to its gauges.
pub struct DriftDetector {
    prev: Option<Vec<SketchEntry>>,
    rates: Vec<RateTrack>,
    js_gauge: Arc<Gauge>,
    chi_gauge: Arc<Gauge>,
    z_gauge: Arc<Gauge>,
}

impl DriftDetector {
    /// A detector publishing its scores into `registry` as the
    /// `obs.drift.*_micros` gauges.
    pub fn new(registry: &Registry) -> DriftDetector {
        DriftDetector {
            prev: None,
            rates: Vec::new(),
            js_gauge: registry.gauge("obs.drift.js_divergence_micros"),
            chi_gauge: registry.gauge("obs.drift.chi_square_micros"),
            z_gauge: registry.gauge("obs.drift.max_rate_z_micros"),
        }
    }

    /// Score the freshly sealed window (`entries` from the drained
    /// template sketch, `deltas` as `(metric name, window delta)`)
    /// against the previous one, update the gauges, and return the
    /// score. The first window scores 0 (nothing to compare against).
    pub fn advance(&mut self, entries: Vec<SketchEntry>, deltas: &[(String, u64)]) -> DriftScore {
        let mut score = DriftScore::default();
        if let Some(prev) = &self.prev {
            score.js_divergence = js_divergence(prev, &entries);
            score.chi_square = chi_square(prev, &entries);
        }
        for (name, delta) in deltas {
            let idx = match self.rates.iter().position(|t| &t.name == name) {
                Some(i) => i,
                None => {
                    self.rates.push(RateTrack {
                        name: name.clone(),
                        history: Vec::with_capacity(RATE_HISTORY),
                    });
                    self.rates.len() - 1
                }
            };
            let Some(track) = self.rates.get_mut(idx) else {
                continue;
            };
            let z = rate_z_score(&track.history, *delta as f64);
            if z.abs() > score.max_rate_z.abs() {
                score.max_rate_z = z;
            }
            if track.history.len() == RATE_HISTORY {
                track.history.remove(0);
            }
            track.history.push(*delta as f64);
        }
        self.prev = Some(entries);
        self.js_gauge.set(to_micros(score.js_divergence));
        self.chi_gauge.set(to_micros(score.chi_square));
        self.z_gauge.set(to_micros(score.max_rate_z.abs()));
        score
    }

    /// The latest published scores, decoded from the gauges.
    pub fn latest(&self) -> DriftScore {
        DriftScore {
            js_divergence: from_micros(self.js_gauge.get()),
            chi_square: from_micros(self.chi_gauge.get()),
            max_rate_z: from_micros(self.z_gauge.get()),
        }
    }
}

/// Encode a non-negative score as fixed-point micro-units for a `u64`
/// gauge (saturating; negatives clamp to 0).
pub fn to_micros(score: f64) -> u64 {
    if !score.is_finite() || score <= 0.0 {
        return 0;
    }
    (score * 1e6).round().min(u64::MAX as f64) as u64
}

/// Decode a gauge's micro-unit value back to a score.
pub fn from_micros(v: u64) -> f64 {
    v as f64 / 1e6
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entries(pairs: &[(u64, u64)]) -> Vec<SketchEntry> {
        pairs
            .iter()
            .map(|&(key, count)| SketchEntry { key, count, err: 0 })
            .collect()
    }

    #[test]
    fn identical_distributions_score_zero() {
        let p = entries(&[(1, 50), (2, 30), (3, 20)]);
        assert!(js_divergence(&p, &p) < 1e-12);
        // Same shape at double the volume: JS zero, chi small (only the
        // pseudo-count floor keeps it from exactly zero).
        let q = entries(&[(1, 100), (2, 60), (3, 40)]);
        assert!(js_divergence(&p, &q) < 1e-12);
        assert!(chi_square(&p, &q) < 1e-9);
    }

    #[test]
    fn disjoint_distributions_score_maximal_js() {
        let p = entries(&[(1, 100)]);
        let q = entries(&[(2, 100)]);
        let js = js_divergence(&p, &q);
        assert!(
            (js - std::f64::consts::LN_2).abs() < 1e-12,
            "disjoint supports hit the ln 2 bound, got {js}"
        );
        assert!(chi_square(&p, &q) > 100.0);
    }

    #[test]
    fn popularity_flip_scores_high() {
        let before = entries(&[(1, 90), (2, 10)]);
        let after = entries(&[(1, 10), (2, 90)]);
        let js = js_divergence(&before, &after);
        assert!(js > 0.2, "a 90/10 flip is major drift, got {js}");
        assert!(js_divergence(&before, &before) < js / 100.0);
    }

    #[test]
    fn empty_edges_are_defined() {
        let p = entries(&[(1, 10)]);
        assert_eq!(js_divergence(&[], &[]), 0.0);
        assert!((js_divergence(&[], &p) - std::f64::consts::LN_2).abs() < 1e-12);
        assert_eq!(chi_square(&p, &[]), 0.0);
        assert_eq!(chi_square(&[], &p), 10.0);
    }

    #[test]
    fn z_score_flags_rate_cliffs() {
        let steady: Vec<f64> = (0..16).map(|i| 100.0 + (i % 3) as f64).collect();
        assert!(rate_z_score(&steady, 101.0).abs() < 2.0);
        assert!(rate_z_score(&steady, 500.0) > 10.0);
        assert_eq!(rate_z_score(&[], 5.0), 0.0);
        assert_eq!(rate_z_score(&[3.0, 3.0, 3.0], 9.0), 0.0, "zero variance");
    }

    #[test]
    fn detector_publishes_micro_gauges() {
        let reg = Registry::new();
        let mut det = DriftDetector::new(&reg);
        let first = det.advance(entries(&[(1, 90), (2, 10)]), &[("reqs".into(), 100)]);
        assert_eq!(first, DriftScore::default(), "first window has no prior");
        let flipped = det.advance(entries(&[(1, 10), (2, 90)]), &[("reqs".into(), 100)]);
        assert!(flipped.js_divergence > 0.2);
        let snap = reg.snapshot();
        let js = snap
            .gauges
            .iter()
            .find(|g| g.name == "obs.drift.js_divergence_micros")
            .expect("gauge registered")
            .value;
        assert_eq!(js, to_micros(flipped.js_divergence));
        assert!(det.latest().js_divergence > 0.2);
    }

    #[test]
    fn micros_encoding_round_trips() {
        assert_eq!(to_micros(0.523125), 523_125);
        assert!((from_micros(523_125) - 0.523125).abs() < 1e-9);
        assert_eq!(to_micros(-1.0), 0);
        assert_eq!(to_micros(f64::NAN), 0);
    }
}
