//! The flight recorder: last-N completed request traces plus a
//! slowest-K reservoir.
//!
//! The ring is a fixed array of slots addressed by a monotonically
//! increasing cursor (`fetch_add % capacity`), so writers claim distinct
//! slots without coordinating; each slot holds a [`FinishedTrace`] *by
//! value* behind its own mutex, held only for the copy. Storing the
//! plain-data form means recording a completed request performs zero
//! heap allocation — the wire-format [`FlightRecord`] (strings, `Vec`s)
//! is only built on the `TRACE`/`DUMP` read path. Memory is strictly
//! bounded and fixed: `(RING_CAPACITY + SLOWEST_CAPACITY) ×
//! size_of::<FinishedTrace>()`, each trace capped at
//! [`crate::trace::MAX_STAGES`] inline stages.

use crate::trace::{FinishedTrace, TraceContext};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Duration;

/// How many recent request traces the ring keeps.
pub const RING_CAPACITY: usize = 64;

/// How many slowest-ever request traces the reservoir keeps.
pub const SLOWEST_CAPACITY: usize = 8;

/// One completed stage in wire format.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct StageSpan {
    /// Stage name (e.g. `"decode"`).
    pub name: String,
    /// Nesting depth (0 = top level).
    pub depth: u64,
    /// Offset from request start, microseconds.
    pub start_us: u64,
    /// Stage duration, microseconds.
    pub dur_us: u64,
}

/// One completed request trace in wire format — what `TRACE` returns.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FlightRecord {
    /// Process-unique request id.
    pub request_id: u64,
    /// End-to-end request duration, microseconds.
    pub total_us: u64,
    /// Batcher queue depth observed at enqueue time.
    pub queue_depth: u64,
    /// Size of the decode batch the request rode in.
    pub batch_size: u64,
    /// Whether the recommendation cache answered the request.
    pub cache_hit: bool,
    /// Model epoch that served the request.
    pub epoch: u64,
    /// Decode strategy (`"greedy"`, `"beam"`, `"sample"`, or empty).
    pub strategy: String,
    /// Beam width when beam search, else 0.
    pub beam_width: u64,
    /// Decoder steps executed.
    pub decode_steps: u64,
    /// Encoder-cache hits attributed to the request.
    pub enc_cache_hits: u64,
    /// Encoder-cache misses attributed to the request.
    pub enc_cache_misses: u64,
    /// Per-stage breakdown, in completion order.
    pub stages: Vec<StageSpan>,
}

/// Bounded store of completed request traces.
pub struct FlightRecorder {
    slots: Vec<Mutex<Option<FinishedTrace>>>,
    cursor: AtomicU64,
    slowest_cap: usize,
    /// Sorted descending by `total_us`.
    slowest: Mutex<Vec<FinishedTrace>>,
    /// Admission floor for the reservoir: once it is full, records at or
    /// below this `total_us` are rejected with a relaxed load — fast
    /// requests never touch the `slowest` lock. Zero until full.
    slow_floor: AtomicU64,
}

impl FlightRecorder {
    /// A recorder keeping `ring` recent traces and `slowest` slow ones.
    pub fn with_capacity(ring: usize, slowest: usize) -> FlightRecorder {
        FlightRecorder {
            slots: (0..ring.max(1)).map(|_| Mutex::new(None)).collect(),
            cursor: AtomicU64::new(0),
            slowest_cap: slowest,
            slowest: Mutex::new(Vec::with_capacity(slowest)),
            slow_floor: AtomicU64::new(0),
        }
    }

    /// Finish `ctx` and store it. No-op when the spine is disabled.
    /// Allocation-free: sealing and storing are plain field copies (the
    /// box the context lived in is freed here, after the copy).
    pub fn record(&self, ctx: Box<TraceContext>, total: Duration) {
        if !crate::enabled() {
            return;
        }
        self.store(ctx.finish(total));
    }

    /// Store an already-sealed trace (used by tests and by callers that
    /// finish the context themselves).
    pub fn store(&self, rec: FinishedTrace) {
        let idx = (self.cursor.fetch_add(1, Ordering::Relaxed) as usize) % self.slots.len();
        if let Some(slot) = self.slots.get(idx) {
            *slot.lock() = Some(rec);
        }
        if self.slowest_cap == 0 {
            return;
        }
        // Lock-free rejection: the floor is the slowest entry's cutoff
        // once the reservoir is full (zero before that), so steady-state
        // fast requests bail on one relaxed load.
        let floor = self.slow_floor.load(Ordering::Relaxed);
        if floor > 0 && rec.total_us <= floor {
            return;
        }
        let mut slow = self.slowest.lock();
        let full = slow.len() >= self.slowest_cap;
        if full
            && slow
                .last()
                .is_some_and(|last| rec.total_us <= last.total_us)
        {
            return;
        }
        let pos = slow.partition_point(|r| r.total_us > rec.total_us);
        slow.insert(pos, rec);
        slow.truncate(self.slowest_cap);
        if slow.len() >= self.slowest_cap {
            if let Some(last) = slow.last() {
                // qrec-lint: allow(atomics) -- the floor is an approximate admission hint; a stale read only costs one wasted reservoir comparison, no data rides behind it
                self.slow_floor.store(last.total_us, Ordering::Relaxed);
            }
        }
    }

    /// Up to `n` most recent traces in wire format, newest first. The
    /// stored-to-wire conversion allocates here, on the read path.
    pub fn recent(&self, n: usize) -> Vec<FlightRecord> {
        let end = self.cursor.load(Ordering::Relaxed) as usize;
        let mut out = Vec::with_capacity(n.min(self.slots.len()));
        for back in 1..=self.slots.len().min(end) {
            if out.len() >= n {
                break;
            }
            let idx = (end - back) % self.slots.len();
            if let Some(rec) = self.slots.get(idx).and_then(|s| *s.lock()) {
                out.push(rec.to_record());
            }
        }
        out
    }

    /// The slowest traces seen so far in wire format, slowest first.
    pub fn slowest(&self) -> Vec<FlightRecord> {
        let slow: Vec<FinishedTrace> = self.slowest.lock().clone();
        slow.iter().map(FinishedTrace::to_record).collect()
    }
}

impl Default for FlightRecorder {
    fn default() -> FlightRecorder {
        FlightRecorder::with_capacity(RING_CAPACITY, SLOWEST_CAPACITY)
    }
}

/// The process-wide recorder that the `TRACE` verb reads from.
pub fn global() -> &'static FlightRecorder {
    static G: OnceLock<FlightRecorder> = OnceLock::new();
    G.get_or_init(FlightRecorder::default)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn rec(id: u64, total_us: u64) -> FinishedTrace {
        FinishedTrace {
            request_id: id,
            total_us,
            ..FinishedTrace::default()
        }
    }

    #[test]
    fn ring_keeps_the_most_recent_records_newest_first() {
        let fr = FlightRecorder::with_capacity(4, 2);
        for id in 1..=6 {
            fr.store(rec(id, id * 10));
        }
        let ids: Vec<u64> = fr.recent(10).iter().map(|r| r.request_id).collect();
        assert_eq!(ids, vec![6, 5, 4, 3]);
        let two: Vec<u64> = fr.recent(2).iter().map(|r| r.request_id).collect();
        assert_eq!(two, vec![6, 5]);
    }

    #[test]
    fn slowest_reservoir_survives_ring_eviction() {
        let fr = FlightRecorder::with_capacity(2, 2);
        fr.store(rec(1, 900));
        for id in 2..=8 {
            fr.store(rec(id, 10));
        }
        fr.store(rec(9, 500));
        let slow: Vec<u64> = fr.slowest().iter().map(|r| r.request_id).collect();
        assert_eq!(slow, vec![1, 9], "slowest first, kept past eviction");
        let recent: Vec<u64> = fr.recent(10).iter().map(|r| r.request_id).collect();
        assert_eq!(recent, vec![9, 8]);
    }

    #[test]
    fn record_is_gated_by_enabled() {
        crate::set_enabled(true);
        let fr = FlightRecorder::with_capacity(4, 2);
        let ctx = TraceContext::start(3).expect("enabled");
        fr.record(ctx, Duration::from_micros(50));
        assert_eq!(fr.recent(10).len(), 1);

        crate::set_enabled(false);
        // A context started while enabled, finished after disabling.
        let fr2 = FlightRecorder::with_capacity(4, 2);
        crate::set_enabled(true);
        let ctx = TraceContext::start(4).expect("enabled");
        crate::set_enabled(false);
        fr2.record(ctx, Duration::from_micros(50));
        assert!(fr2.recent(10).is_empty());
        crate::set_enabled(true);
    }

    #[test]
    fn concurrent_stores_never_lose_the_ring_invariants() {
        let fr = Arc::new(FlightRecorder::with_capacity(8, 4));
        let writers: Vec<_> = (0..4)
            .map(|w| {
                let fr = Arc::clone(&fr);
                std::thread::spawn(move || {
                    for i in 0..500u64 {
                        fr.store(rec(w * 1000 + i, i));
                    }
                })
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
        assert_eq!(fr.recent(100).len(), 8);
        let slow = fr.slowest();
        assert_eq!(slow.len(), 4);
        assert!(slow.windows(2).all(|w| w[0].total_us >= w[1].total_us));
        assert!(
            slow.iter().all(|r| r.total_us == 499),
            "4 writers each hit 499"
        );
    }

    #[test]
    fn flight_record_round_trips_through_serde() {
        let mut r = FlightRecord {
            request_id: 42,
            total_us: 1234,
            strategy: "beam".to_string(),
            beam_width: 8,
            cache_hit: true,
            ..FlightRecord::default()
        };
        r.stages.push(StageSpan {
            name: "decode".to_string(),
            depth: 1,
            start_us: 10,
            dur_us: 900,
        });
        let json = serde_json::to_string(&r).expect("serialize");
        let back: FlightRecord = serde_json::from_str(&json).expect("parse");
        assert_eq!(back, r);
    }
}
