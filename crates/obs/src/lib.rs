//! # qrec-obs — the workspace observability spine
//!
//! Serving-grade performance work needs per-stage evidence, not endpoint
//! totals: when a RECOMMEND request is slow, the question is whether the
//! time went to session lookup, batcher queueing, an encoder-cache miss,
//! or the per-step decode loop. This crate is the shared substrate every
//! runtime crate (serve, nn, tensor) records into:
//!
//! * [`metric`] — allocation-free [`Counter`]s, [`Gauge`]s, and bucketed
//!   [`Histogram`]s (log2 by default). Recording is relaxed atomic
//!   fetch-adds; snapshots derive `count`/`sum` from one pass over the
//!   copied bucket arrays so they are internally consistent.
//! * [`registry`] — a process-wide [`Registry`] of named metrics behind
//!   [`global()`]. Registration allocates; recording never does (a
//!   dedicated qrec-lint rule, `no-alloc-in-metric-path`, enforces it).
//! * [`span`] — scoped monotonic-clock timing with a thread-local span
//!   stack, so nested stages (request → batch wait → encode → per-step
//!   decode → rank) aggregate into a stage-time breakdown.
//! * [`trace`] / [`flight`] — per-request [`TraceContext`]s that travel
//!   with a request across thread hand-offs and land in a lock-free
//!   ring-buffer [`FlightRecorder`] (last N completed requests plus an
//!   always-kept slowest-K reservoir).
//! * [`expo`] — Prometheus-style text exposition of the registry, served
//!   by qrec-serve's `DUMP` verb.
//! * [`window`] — sliding-window delta rings over registered metrics:
//!   sealed epoch buckets answer "how many in the last minute" without
//!   touching the recording hot path.
//! * [`sketch`] — fixed-capacity SpaceSaving heavy-hitter sketches, so
//!   serve tracks the top query templates per window with bounded
//!   memory.
//! * [`drift`] — Jensen–Shannon / chi-square / rate-z drift scores
//!   between window pairs, exported as gauges.
//! * [`prof`] — an opt-in sampling wall-clock profiler that walks
//!   registered threads' span stacks from a dedicated sampler thread.
//!
//! The whole spine can be switched off with `QREC_OBS=off` (or at
//! runtime with [`set_enabled`]): spans and flight recording become
//! no-ops while plain counters and histograms — which STATS accounting
//! depends on — keep recording.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod drift;
pub mod expo;
pub mod flight;
pub mod metric;
pub mod prof;
pub mod registry;
pub mod sketch;
pub mod span;
pub mod trace;
pub mod window;

pub use drift::{DriftDetector, DriftScore};
pub use flight::{FlightRecord, FlightRecorder, StageSpan};
pub use metric::{Counter, Gauge, Histogram, HistogramSnapshot};
pub use prof::ProfReport;
pub use registry::{global, Registry, RegistrySnapshot};
pub use sketch::{SketchEntry, TemplateSketch};
pub use span::{Span, SpanGuard};
pub use trace::{FinishedTrace, StageList, TraceContext};
pub use window::{WindowBucket, WindowSet};

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::OnceLock;

/// Runtime override of the `QREC_OBS` environment default:
/// 0 = follow the environment, 1 = forced on, 2 = forced off.
static FORCED: AtomicU8 = AtomicU8::new(0);

/// Whether span timing and flight recording are active.
///
/// Resolution order: a [`set_enabled`] override wins; otherwise the
/// `QREC_OBS` environment variable, read once per process (`off`, `0`,
/// or `false` disable; anything else — including unset — enables).
#[inline]
pub fn enabled() -> bool {
    match FORCED.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => env_default(),
    }
}

/// Force the spine on or off at runtime, overriding `QREC_OBS`.
///
/// Exists so one process can measure its own instrumentation overhead
/// (the CI obs-overhead smoke stage toggles this between rounds).
pub fn set_enabled(on: bool) {
    // qrec-lint: allow(atomics) -- standalone on/off flag: readers only branch on the value itself, no memory is published behind it
    FORCED.store(if on { 1 } else { 2 }, Ordering::Relaxed);
}

fn env_default() -> bool {
    static DEFAULT: OnceLock<bool> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        !std::env::var("QREC_OBS").is_ok_and(|v| {
            v.eq_ignore_ascii_case("off") || v == "0" || v.eq_ignore_ascii_case("false")
        })
    })
}

static NEXT_REQUEST_ID: AtomicU64 = AtomicU64::new(1);

/// Allocate a process-unique request id for flight recording. Ids are
/// assigned once at the protocol front end and travel with the request
/// through every thread hand-off, so a flight record's stages all carry
/// the id of the request that produced them.
pub fn next_request_id() -> u64 {
    NEXT_REQUEST_ID.fetch_add(1, Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_ids_are_unique_and_monotonic() {
        let a = next_request_id();
        let b = next_request_id();
        assert!(b > a);
    }

    #[test]
    fn set_enabled_overrides_default() {
        set_enabled(false);
        assert!(!enabled());
        set_enabled(true);
        assert!(enabled());
    }
}
