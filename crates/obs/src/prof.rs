//! Opt-in sampling wall-clock profiler over the span stacks.
//!
//! Spans already tell each thread what stage it is in right now; this
//! module makes that observable from outside. Worker and loop threads
//! **register** a fixed mirror slot ([`register_thread`]); every span
//! push/pop updates the registered slot with the current stack (a
//! handful of relaxed atomic stores — nothing when no slot is
//! registered or the profiler is off). A dedicated sampler thread wakes
//! ~97 times a second (a prime rate, so it cannot phase-lock with the
//! serve timer wheel's 10 ms ticks), reads every slot, and folds the
//! observed stacks into a fixed-capacity flamegraph-style table that
//! the serve `PROF` verb reports.
//!
//! ## Safety and accuracy notes
//!
//! The sampler never stops, signals, or otherwise touches the sampled
//! threads — it only reads their atomic mirror slots, so it cannot
//! block or crash them (and the crate stays `forbid(unsafe_code)`).
//! The price is that a sampled stack is *not* a consistent snapshot:
//! a thread mid-push can show a stale leaf for one sample, and samples
//! land between pushes, not at them. Both effects are standard
//! sampling-profiler noise — bounded by one sample each — and wash out
//! at any realistic sample count. Sampling is wall-clock: a thread
//! blocked in a span is attributed to that span, which is exactly what
//! a "where did the latency go" investigation wants.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// Mirror-slot depth cap; matches the trace span-stack cap.
const MAX_DEPTH: usize = 16;

/// Fixed capacity of the fold table; distinct stacks beyond this are
/// counted in `dropped` rather than grown into.
const FOLD_CAP: usize = 256;

/// Sampling rate. Prime on purpose: 97 Hz cannot alias against the
/// 10 ms timer wheel or any whole-millisecond periodic work.
pub const SAMPLE_HZ: u64 = 97;

/// Whether the sampler is running (and slots should be maintained).
static PROF_ON: AtomicBool = AtomicBool::new(false);

/// One registered thread's mirror of its span stack. Frames hold
/// interned name ids offset by one (0 = empty slot).
struct ThreadSlot {
    label: String,
    frames: [AtomicU32; MAX_DEPTH],
    depth: AtomicUsize,
    samples: AtomicUsize,
}

impl ThreadSlot {
    fn new(label: String) -> ThreadSlot {
        ThreadSlot {
            label,
            frames: std::array::from_fn(|_| AtomicU32::new(0)),
            depth: AtomicUsize::new(0),
            samples: AtomicUsize::new(0),
        }
    }
}

fn slots() -> &'static Mutex<Vec<Arc<ThreadSlot>>> {
    static SLOTS: OnceLock<Mutex<Vec<Arc<ThreadSlot>>>> = OnceLock::new();
    SLOTS.get_or_init(|| Mutex::new(Vec::new()))
}

/// Interned span names: id = index. Names are `&'static str` from span
/// call sites, so the table is tiny and append-only.
fn names() -> &'static Mutex<Vec<&'static str>> {
    static NAMES: OnceLock<Mutex<Vec<&'static str>>> = OnceLock::new();
    NAMES.get_or_init(|| Mutex::new(Vec::with_capacity(32)))
}

fn intern(name: &'static str) -> u32 {
    // Fast path: a per-thread cache keyed by the `&'static str` data
    // pointer, so steady-state interning takes no lock. Distinct call
    // sites with equal text still resolve to one id via the global
    // by-content scan below.
    thread_local! {
        static CACHE: RefCell<Vec<(usize, u32)>> = const { RefCell::new(Vec::new()) };
    }
    let ptr = name.as_ptr() as usize;
    let cached = CACHE.with(|c| {
        c.borrow()
            .iter()
            .find(|(p, _)| *p == ptr)
            .map(|(_, id)| *id)
    });
    if let Some(id) = cached {
        return id;
    }
    let mut table = names().lock();
    let id = match table.iter().position(|n| *n == name) {
        Some(i) => i as u32,
        None => {
            table.push(name);
            (table.len() - 1) as u32
        }
    };
    drop(table);
    CACHE.with(|c| c.borrow_mut().push((ptr, id)));
    id
}

/// Drops the thread's slot out of the global list when the thread
/// exits, so long-lived processes that start and stop many servers do
/// not accumulate dead slots.
struct SlotGuard(Arc<ThreadSlot>);

impl Drop for SlotGuard {
    fn drop(&mut self) {
        slots().lock().retain(|s| !Arc::ptr_eq(s, &self.0));
    }
}

thread_local! {
    static MY_SLOT: RefCell<Option<SlotGuard>> = const { RefCell::new(None) };
}

/// Register the calling thread for profiling under `label`. Idempotent
/// per thread (re-registering replaces the label). Worker and loop
/// threads call this once at startup; unregistration is automatic at
/// thread exit.
pub fn register_thread(label: &str) {
    let slot = Arc::new(ThreadSlot::new(label.to_string()));
    slots().lock().push(Arc::clone(&slot));
    MY_SLOT.with(|s| *s.borrow_mut() = Some(SlotGuard(slot)));
}

/// Span-push hook: mirror `name` at `depth` in this thread's slot.
/// Called by `trace::stack_push`; free when the profiler is off or the
/// thread never registered.
pub(crate) fn on_push(name: &'static str, depth: u8) {
    if !PROF_ON.load(Ordering::Acquire) {
        return;
    }
    MY_SLOT.with(|s| {
        if let Some(guard) = s.borrow().as_ref() {
            let slot = &guard.0;
            let d = usize::from(depth);
            if let Some(frame) = slot.frames.get(d) {
                let id = intern(name);
                // qrec-lint: allow(atomics) -- sampler tolerates torn stacks by design (see module docs); Release here would not make the sample consistent anyway
                frame.store(id + 1, Ordering::Relaxed);
                // qrec-lint: allow(atomics) -- sampler tolerates torn stacks by design (see module docs); Release here would not make the sample consistent anyway
                slot.depth.store(d + 1, Ordering::Relaxed);
            }
        }
    });
}

/// Span-pop hook: `depth` is the absolute stack depth after the pop,
/// so one pop fully resynchronises the mirror even if earlier updates
/// were skipped while the profiler was off.
pub(crate) fn on_pop(depth: u8) {
    if !PROF_ON.load(Ordering::Acquire) {
        return;
    }
    MY_SLOT.with(|s| {
        if let Some(guard) = s.borrow().as_ref() {
            // qrec-lint: allow(atomics) -- same torn-sample tolerance as on_push
            guard.0.depth.store(usize::from(depth), Ordering::Relaxed);
        }
    });
}

/// One folded stack in the sample table.
#[derive(Clone, Copy)]
struct FoldEntry {
    frames: [u32; MAX_DEPTH],
    depth: u8,
    count: u64,
}

#[derive(Default)]
struct Fold {
    entries: Vec<FoldEntry>,
    samples: u64,
    dropped: u64,
}

fn fold() -> &'static Mutex<Fold> {
    static FOLD: OnceLock<Mutex<Fold>> = OnceLock::new();
    FOLD.get_or_init(|| {
        Mutex::new(Fold {
            entries: Vec::with_capacity(FOLD_CAP),
            samples: 0,
            dropped: 0,
        })
    })
}

struct Sampler {
    stop: Arc<AtomicBool>,
    join: Option<std::thread::JoinHandle<()>>,
}

#[derive(Default)]
struct Control {
    refs: usize,
    sampler: Option<Sampler>,
}

fn control() -> &'static Mutex<Control> {
    static CONTROL: OnceLock<Mutex<Control>> = OnceLock::new();
    CONTROL.get_or_init(|| Mutex::new(Control::default()))
}

/// Take one sample of every registered slot into the fold table.
fn sample_once() {
    let slot_list: Vec<Arc<ThreadSlot>> = slots().lock().clone();
    let mut f = fold().lock();
    for slot in &slot_list {
        let depth = slot.depth.load(Ordering::Relaxed).min(MAX_DEPTH);
        let mut frames = [0u32; MAX_DEPTH];
        for (i, frame) in frames.iter_mut().enumerate().take(depth) {
            if let Some(v) = slot.frames.get(i) {
                *frame = v.load(Ordering::Relaxed);
            }
        }
        slot.samples.fetch_add(1, Ordering::Relaxed);
        f.samples += 1;
        let found = f
            .entries
            .iter()
            .position(|e| usize::from(e.depth) == depth && e.frames == frames);
        match found {
            Some(i) => {
                if let Some(e) = f.entries.get_mut(i) {
                    e.count += 1;
                }
            }
            None if f.entries.len() < FOLD_CAP => f.entries.push(FoldEntry {
                frames,
                depth: depth as u8,
                count: 1,
            }),
            None => f.dropped += 1,
        }
    }
}

/// Start the sampler (refcounted: the first caller spawns the thread,
/// later callers just pin it). Returns `true` when this call actually
/// started sampling.
pub fn start() -> bool {
    let mut ctl = control().lock();
    ctl.refs += 1;
    if ctl.sampler.is_some() {
        return false;
    }
    PROF_ON.store(true, Ordering::Release);
    let stop_flag = Arc::new(AtomicBool::new(false));
    let stop = Arc::clone(&stop_flag);
    let period = Duration::from_micros(1_000_000 / SAMPLE_HZ);
    let join = std::thread::Builder::new()
        .name("qrec-obs-prof".into())
        .spawn(move || {
            while !stop.load(Ordering::Acquire) {
                sample_once();
                std::thread::sleep(period);
            }
        })
        .ok();
    if join.is_none() {
        // Spawn failed (fd/thread exhaustion): leave the profiler off
        // rather than pretending to sample.
        PROF_ON.store(false, Ordering::Release);
        ctl.refs -= 1;
        return false;
    }
    ctl.sampler = Some(Sampler {
        stop: stop_flag,
        join,
    });
    true
}

/// Release one [`start`] reference; the last release stops and joins
/// the sampler thread. Fold data is kept for post-mortem reads until
/// [`reset`] or the next [`start`].
pub fn stop() {
    let sampler = {
        let mut ctl = control().lock();
        ctl.refs = ctl.refs.saturating_sub(1);
        if ctl.refs > 0 {
            return;
        }
        PROF_ON.store(false, Ordering::Release);
        ctl.sampler.take()
    };
    if let Some(mut s) = sampler {
        s.stop.store(true, Ordering::Release);
        if let Some(join) = s.join.take() {
            let _ = join.join();
        }
    }
}

/// Whether the sampler thread is currently running.
pub fn running() -> bool {
    control().lock().sampler.is_some()
}

/// Clear the fold table and per-thread sample counts.
pub fn reset() {
    let mut f = fold().lock();
    f.entries.clear();
    f.samples = 0;
    f.dropped = 0;
    drop(f);
    for slot in slots().lock().iter() {
        // qrec-lint: allow(atomics) -- per-thread sample counts are best-effort accounting; readers tolerate stale values
        slot.samples.store(0, Ordering::Relaxed);
    }
}

/// Build the report: the top `top` folded stacks by sample count, with
/// interned ids resolved back to span names. Runs entirely on the read
/// path; the sampler keeps folding while a report is built.
pub fn report(top: usize) -> ProfReport {
    // Read the control lock first (and release it) so no other
    // profiler lock is ever held while `control` is acquired.
    let is_running = running();
    let name_table = names().lock().clone();
    let resolve = |id: u32| -> String {
        if id == 0 {
            return "?".to_string();
        }
        name_table
            .get((id - 1) as usize)
            .map(|n| (*n).to_string())
            .unwrap_or_else(|| "?".to_string())
    };
    let f = fold().lock();
    let mut frames: Vec<ProfFrame> = f
        .entries
        .iter()
        .map(|e| ProfFrame {
            stack: e.frames[..usize::from(e.depth)]
                .iter()
                .map(|&id| resolve(id))
                .collect(),
            count: e.count,
        })
        .collect();
    let (samples, dropped) = (f.samples, f.dropped);
    drop(f);
    frames.sort_by(|a, b| b.count.cmp(&a.count).then(a.stack.cmp(&b.stack)));
    frames.truncate(top);
    let threads = slots()
        .lock()
        .iter()
        .map(|s| ProfThread {
            label: s.label.clone(),
            samples: s.samples.load(Ordering::Relaxed) as u64,
        })
        .collect();
    ProfReport {
        running: is_running,
        hz: SAMPLE_HZ,
        samples,
        dropped,
        threads,
        frames,
    }
}

/// One folded stack: outermost span first, and how many samples saw it.
/// An empty stack means the thread was sampled outside any span (idle
/// or un-instrumented work).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ProfFrame {
    /// Span names, outermost first.
    pub stack: Vec<String>,
    /// Samples that observed exactly this stack.
    pub count: u64,
}

/// Per-registered-thread sample accounting.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ProfThread {
    /// Label given to [`register_thread`].
    pub label: String,
    /// Samples taken of this thread.
    pub samples: u64,
}

/// The profiler's wire-format report, served by the `PROF` verb.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ProfReport {
    /// Whether the sampler thread was running when the report was built.
    pub running: bool,
    /// Sampling rate in Hz.
    pub hz: u64,
    /// Total samples folded (one per registered thread per tick).
    pub samples: u64,
    /// Samples dropped because the fold table was full.
    pub dropped: u64,
    /// Per-thread sample counts.
    pub threads: Vec<ProfThread>,
    /// Folded stacks, heaviest first.
    pub frames: Vec<ProfFrame>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Span;

    /// The whole lifecycle in one test: the profiler is process-global
    /// state, so splitting into several `#[test]`s would race.
    #[test]
    fn sampler_folds_registered_thread_stacks() {
        crate::set_enabled(true);
        reset();
        assert!(!running());
        assert!(start(), "first start spawns the sampler");
        assert!(!start(), "second start only pins it");
        assert!(running());

        let worker = std::thread::spawn(|| {
            register_thread("prof-test-worker");
            let deadline = std::time::Instant::now() + Duration::from_millis(400);
            while std::time::Instant::now() < deadline {
                Span::in_span("prof_outer", || {
                    Span::in_span("prof_inner", || {
                        std::thread::sleep(Duration::from_millis(2));
                    });
                });
            }
        });
        worker.join().expect("worker");

        let rep = report(16);
        assert!(rep.running);
        assert_eq!(rep.hz, SAMPLE_HZ);
        assert!(rep.samples > 0, "sampler must have sampled: {rep:?}");
        let nested = rep
            .frames
            .iter()
            .find(|f| f.stack == ["prof_outer", "prof_inner"]);
        assert!(
            nested.is_some_and(|f| f.count > 0),
            "the nested stack must dominate the worker's samples: {rep:?}"
        );

        stop(); // releases the pin from the second start()
        assert!(running(), "still one reference holding the sampler");
        stop();
        assert!(!running(), "last stop joins the sampler");
        // Post-mortem reads still work.
        assert!(report(4).samples > 0);
        reset();
        assert_eq!(report(4).samples, 0);
    }

    #[test]
    fn interning_is_stable_by_content() {
        let a = intern("prof-intern-x");
        let b = intern("prof-intern-x");
        let c = intern("prof-intern-y");
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn report_round_trips_through_serde() {
        let rep = ProfReport {
            running: true,
            hz: 97,
            samples: 10,
            dropped: 1,
            threads: vec![ProfThread {
                label: "w0".into(),
                samples: 10,
            }],
            frames: vec![ProfFrame {
                stack: vec!["a".into(), "b".into()],
                count: 9,
            }],
        };
        let json = serde_json::to_string(&rep).expect("serialize");
        let back: ProfReport = serde_json::from_str(&json).expect("parse");
        assert_eq!(back, rep);
    }
}
