//! SpaceSaving heavy-hitter sketch over `u64` keys.
//!
//! Serve needs "which query templates dominated the last window"
//! without keeping a map that grows with every distinct template ever
//! seen. The SpaceSaving algorithm (Metwally, Agrawal, El Abbadi 2005)
//! answers that with a fixed number of slots: while a slot is free, a
//! new key claims it; once full, a new key *evicts the current minimum*
//! and inherits its count as an error bound. Any key whose true
//! frequency exceeds N/capacity is guaranteed to be present, and every
//! reported count overestimates the truth by at most the slot's `err`.
//!
//! All storage is allocated at construction ([`TemplateSketch::new`]);
//! [`TemplateSketch::observe`] is a linear scan over the fixed slot
//! arrays under a short mutex hold — no allocation, as the
//! `no-alloc-in-metric-path` lint rule (which scans `observe*` bodies
//! in this crate) enforces. Capacities are small (64 slots by default
//! in serve), so the scan is a few cache lines.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

struct Slots {
    keys: Vec<u64>,
    counts: Vec<u64>,
    errs: Vec<u64>,
    len: usize,
    /// Total observations, including ones absorbed into evicted slots.
    total: u64,
}

/// A fixed-capacity SpaceSaving sketch keyed by `u64` (query-template
/// ids in serve, but any stable id works).
pub struct TemplateSketch {
    inner: Mutex<Slots>,
}

impl TemplateSketch {
    /// A sketch with `capacity` slots (clamped to at least 1). This is
    /// the only allocation the sketch ever performs.
    pub fn new(capacity: usize) -> TemplateSketch {
        let capacity = capacity.max(1);
        TemplateSketch {
            inner: Mutex::new(Slots {
                keys: vec![0; capacity],
                counts: vec![0; capacity],
                errs: vec![0; capacity],
                len: 0,
                total: 0,
            }),
        }
    }

    /// Count one occurrence of `key`: bump its slot, claim a free slot,
    /// or evict the current minimum and inherit its count as the error
    /// bound. Allocation-free by construction.
    pub fn observe(&self, key: u64) {
        let mut s = self.inner.lock();
        s.total += 1;
        let mut min_idx = 0usize;
        let mut min_count = u64::MAX;
        let mut i = 0usize;
        while i < s.len {
            if s.keys[i] == key {
                s.counts[i] += 1;
                return;
            }
            if s.counts[i] < min_count {
                min_count = s.counts[i];
                min_idx = i;
            }
            i += 1;
        }
        if s.len < s.keys.len() {
            let i = s.len;
            s.keys[i] = key;
            s.counts[i] = 1;
            s.errs[i] = 0;
            s.len += 1;
        } else {
            // SpaceSaving eviction: the newcomer takes over the minimum
            // slot at `min + 1`, remembering `min` as its overcount.
            s.keys[min_idx] = key;
            s.errs[min_idx] = min_count;
            s.counts[min_idx] = min_count + 1;
        }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.inner.lock().keys.len()
    }

    /// Total observations since construction or the last
    /// [`TemplateSketch::drain`].
    pub fn total(&self) -> u64 {
        self.inner.lock().total
    }

    /// The occupied slots as [`SketchEntry`]s, sorted by count
    /// descending (key ascending on ties, for determinism).
    pub fn entries(&self) -> Vec<SketchEntry> {
        let s = self.inner.lock();
        let mut out: Vec<SketchEntry> = (0..s.len)
            .map(|i| SketchEntry {
                key: s.keys[i],
                count: s.counts[i],
                err: s.errs[i],
            })
            .collect();
        drop(s);
        out.sort_by(|a, b| b.count.cmp(&a.count).then(a.key.cmp(&b.key)));
        out
    }

    /// The top `k` entries by count.
    pub fn top(&self, k: usize) -> Vec<SketchEntry> {
        let mut e = self.entries();
        e.truncate(k);
        e
    }

    /// Snapshot the occupied slots and reset the sketch, so each sealed
    /// window gets its own template distribution. Returns the entries
    /// sorted as in [`TemplateSketch::entries`] plus the drained total.
    pub fn drain(&self) -> (Vec<SketchEntry>, u64) {
        let mut s = self.inner.lock();
        let mut out: Vec<SketchEntry> = (0..s.len)
            .map(|i| SketchEntry {
                key: s.keys[i],
                count: s.counts[i],
                err: s.errs[i],
            })
            .collect();
        let total = s.total;
        s.len = 0;
        s.total = 0;
        drop(s);
        out.sort_by(|a, b| b.count.cmp(&a.count).then(a.key.cmp(&b.key)));
        (out, total)
    }
}

/// One heavy-hitter slot: `count` overestimates the key's true
/// frequency by at most `err`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SketchEntry {
    /// The tracked key (a query-template id in serve).
    pub key: u64,
    /// Estimated occurrences (true count ≤ `count` ≤ true count + `err`).
    pub count: u64,
    /// Overcount bound inherited from the slot's eviction history.
    pub err: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_while_under_capacity() {
        let s = TemplateSketch::new(8);
        for _ in 0..5 {
            s.observe(1);
        }
        for _ in 0..3 {
            s.observe(2);
        }
        s.observe(3);
        let e = s.entries();
        assert_eq!(e.len(), 3);
        assert_eq!((e[0].key, e[0].count, e[0].err), (1, 5, 0));
        assert_eq!((e[1].key, e[1].count, e[1].err), (2, 3, 0));
        assert_eq!(s.total(), 9);
    }

    #[test]
    fn eviction_keeps_heavy_hitters_and_bounds_error() {
        let s = TemplateSketch::new(8);
        // Two genuinely heavy keys plus a churn of 50 singletons. Total
        // N = 250, so the SpaceSaving guarantee (present if true count
        // > N/capacity ≈ 31) covers both heavy keys.
        for i in 0..50u64 {
            s.observe(1);
            s.observe(1);
            s.observe(2);
            s.observe(2);
            s.observe(1000 + i);
        }
        let e = s.entries();
        assert_eq!(e.len(), 8);
        for heavy in [1u64, 2] {
            let entry = e
                .iter()
                .find(|x| x.key == heavy)
                .unwrap_or_else(|| panic!("heavy hitter {heavy} evicted: {e:?}"));
            // SpaceSaving invariant: count - err ≤ true count ≤ count.
            assert!(entry.count >= 100 && entry.count.saturating_sub(entry.err) <= 100);
        }
        // The two heavy keys outrank every singleton slot.
        assert!(e[0].key <= 2 && e[1].key <= 2, "{e:?}");
    }

    #[test]
    fn drain_resets_for_the_next_window() {
        let s = TemplateSketch::new(4);
        s.observe(7);
        s.observe(7);
        s.observe(8);
        let (entries, total) = s.drain();
        assert_eq!(total, 3);
        assert_eq!(
            entries[0],
            SketchEntry {
                key: 7,
                count: 2,
                err: 0
            }
        );
        assert!(s.entries().is_empty(), "drain must reset the slots");
        assert_eq!(s.total(), 0);
        s.observe(9);
        assert_eq!(s.entries().len(), 1);
    }

    #[test]
    fn top_truncates_sorted_entries() {
        let s = TemplateSketch::new(8);
        for k in 1..=5u64 {
            for _ in 0..k {
                s.observe(k);
            }
        }
        let top2 = s.top(2);
        assert_eq!(top2.len(), 2);
        assert_eq!(top2[0].key, 5);
        assert_eq!(top2[1].key, 4);
    }

    #[test]
    fn entries_round_trip_through_serde() {
        let e = SketchEntry {
            key: 42,
            count: 7,
            err: 1,
        };
        let json = serde_json::to_string(&e).expect("serialize");
        let back: SketchEntry = serde_json::from_str(&json).expect("parse");
        assert_eq!(back, e);
    }
}
