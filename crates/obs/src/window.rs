//! Sliding-window aggregation: a fixed ring of sealed epoch buckets
//! over any registered counter or histogram.
//!
//! The lifetime aggregates of [`crate::metric`] answer "how many, ever";
//! workload analytics needs "how many, in the last minute". This module
//! adds that without touching the recording hot path at all: a
//! [`WindowSet`] holds `Arc` handles to already-registered metrics and,
//! each time a window is **sealed**, subtracts the previous cumulative
//! reading from the current one to produce that window's delta. The
//! per-call path therefore stays the exact PR-5 contract — one relaxed
//! `fetch_add` on pre-registered storage, no locks, no allocation (the
//! `no-alloc-in-metric-path` lint rule keeps covering it) — while the
//! seal path, which runs once per window tick on a cold thread, may
//! allocate freely.
//!
//! Sealed windows land in a fixed ring (e.g. 60 buckets × 10 s ≈ ten
//! minutes of history); older buckets fall off the front. Readers get
//! per-window [`WindowBucket`] snapshots and per-metric delta/rate
//! series. The clock is the caller's: [`WindowSet::seal`] takes the
//! wall-clock timestamp to stamp the bucket with, so tests drive the
//! windows with a fake clock and zero sleeps.

use crate::metric::{Counter, Histogram};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::sync::Arc;

/// A tracked counter: the shared handle plus the cumulative value at the
/// last seal, so the next seal can emit the delta.
struct TrackedCounter {
    handle: Arc<Counter>,
    last: u64,
}

/// A tracked histogram: deltas are taken on the derived `count`/`sum`
/// pair (per-bucket deltas would multiply the snapshot size by the
/// bucket count for little analytic value).
struct TrackedHistogram {
    handle: Arc<Histogram>,
    last_count: u64,
    last_sum: u64,
}

struct Inner {
    counters: Vec<TrackedCounter>,
    histograms: Vec<TrackedHistogram>,
    ring: VecDeque<WindowBucket>,
    seq: u64,
}

/// A fixed ring of sealed windows over a set of tracked metrics.
///
/// Thread-safe: registration, sealing, and reading all go through one
/// mutex. None of them is on a metric recording path — recording keeps
/// writing the underlying [`Counter`]/[`Histogram`] directly.
pub struct WindowSet {
    capacity: usize,
    inner: Mutex<Inner>,
}

impl WindowSet {
    /// A window ring keeping the most recent `capacity` sealed buckets
    /// (clamped to at least 1).
    pub fn new(capacity: usize) -> WindowSet {
        let capacity = capacity.max(1);
        WindowSet {
            capacity,
            inner: Mutex::new(Inner {
                counters: Vec::new(),
                histograms: Vec::new(),
                ring: VecDeque::with_capacity(capacity),
                seq: 0,
            }),
        }
    }

    /// Ring capacity in buckets.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Track `counter`: every future seal reports its per-window delta.
    ///
    /// The baseline is the counter's value *now*, so the first sealed
    /// window after tracking covers only activity since this call.
    pub fn track_counter(&self, counter: Arc<Counter>) {
        let last = counter.get();
        self.inner.lock().counters.push(TrackedCounter {
            handle: counter,
            last,
        });
    }

    /// Track `histogram`: every future seal reports its per-window
    /// observation count and value-sum deltas.
    pub fn track_histogram(&self, histogram: Arc<Histogram>) {
        let snap = histogram.snapshot();
        self.inner.lock().histograms.push(TrackedHistogram {
            handle: histogram,
            last_count: snap.count,
            last_sum: snap.sum,
        });
    }

    /// Seal the current window: read every tracked metric, emit the
    /// delta since the previous seal as a new [`WindowBucket`] stamped
    /// `unix_ms`, and drop the oldest bucket once the ring is full.
    ///
    /// Returns a clone of the sealed bucket so callers (the serve
    /// telemetry tick) can stream/persist it without re-locking.
    pub fn seal(&self, unix_ms: u64) -> WindowBucket {
        let mut inner = self.inner.lock();
        let seq = inner.seq;
        inner.seq += 1;
        let counters = inner
            .counters
            .iter_mut()
            .map(|t| {
                let cur = t.handle.get();
                let delta = cur.saturating_sub(t.last);
                t.last = cur;
                MetricDelta {
                    name: t.handle.name().to_string(),
                    delta,
                }
            })
            .collect();
        let histograms = inner
            .histograms
            .iter_mut()
            .map(|t| {
                let snap = t.handle.snapshot();
                let count = snap.count.saturating_sub(t.last_count);
                let sum = snap.sum.saturating_sub(t.last_sum);
                t.last_count = snap.count;
                t.last_sum = snap.sum;
                HistogramDelta {
                    name: snap.name,
                    count,
                    sum,
                }
            })
            .collect();
        let bucket = WindowBucket {
            seq,
            unix_ms,
            counters,
            histograms,
        };
        if inner.ring.len() == self.capacity {
            inner.ring.pop_front();
        }
        inner.ring.push_back(bucket.clone());
        bucket
    }

    /// All sealed buckets, oldest first.
    pub fn buckets(&self) -> Vec<WindowBucket> {
        self.inner.lock().ring.iter().cloned().collect()
    }

    /// Per-window deltas for the counter (or histogram count) named
    /// `name`, oldest first. Empty when the metric is not tracked.
    pub fn delta_series(&self, name: &str) -> Vec<u64> {
        self.inner
            .lock()
            .ring
            .iter()
            .filter_map(|b| b.delta(name))
            .collect()
    }

    /// Per-window rates (delta / window length in seconds) for `name`,
    /// oldest first. The first bucket has no predecessor timestamp, so
    /// the series is one shorter than [`WindowSet::delta_series`];
    /// non-advancing timestamps yield a rate of 0.
    pub fn rate_series(&self, name: &str) -> Vec<f64> {
        let inner = self.inner.lock();
        inner
            .ring
            .iter()
            .zip(inner.ring.iter().skip(1))
            .filter_map(|(prev, cur)| {
                let dt_ms = cur.unix_ms.saturating_sub(prev.unix_ms);
                let delta = cur.delta(name)?;
                Some(if dt_ms == 0 {
                    0.0
                } else {
                    delta as f64 / (dt_ms as f64 / 1000.0)
                })
            })
            .collect()
    }

    /// Restore sealed buckets (e.g. replayed from the durable telemetry
    /// log) into the ring, oldest first, before new seals are taken.
    /// Ring capacity still applies; the internal sequence continues
    /// after the highest restored `seq`.
    pub fn restore(&self, buckets: Vec<WindowBucket>) {
        let mut inner = self.inner.lock();
        for b in buckets {
            inner.seq = inner.seq.max(b.seq + 1);
            if inner.ring.len() == self.capacity {
                inner.ring.pop_front();
            }
            inner.ring.push_back(b);
        }
    }
}

/// One tracked counter's activity inside a sealed window.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricDelta {
    /// Metric name.
    pub name: String,
    /// Increment over the window.
    pub delta: u64,
}

/// One tracked histogram's activity inside a sealed window.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct HistogramDelta {
    /// Metric name.
    pub name: String,
    /// Observations recorded during the window.
    pub count: u64,
    /// Sum of values recorded during the window.
    pub sum: u64,
}

/// One sealed window: deltas of every tracked metric over one epoch.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct WindowBucket {
    /// Monotonic window sequence number (survives ring eviction).
    pub seq: u64,
    /// Wall-clock seal time, milliseconds since the Unix epoch (caller
    /// supplied, so tests can use a fake clock).
    pub unix_ms: u64,
    /// Counter deltas, in registration order.
    pub counters: Vec<MetricDelta>,
    /// Histogram count/sum deltas, in registration order.
    pub histograms: Vec<HistogramDelta>,
}

impl WindowBucket {
    /// The delta recorded for `name` in this bucket: a counter delta,
    /// or a histogram's observation-count delta.
    pub fn delta(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.delta)
            .or_else(|| {
                self.histograms
                    .iter()
                    .find(|h| h.name == name)
                    .map(|h| h.count)
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seals_emit_deltas_not_cumulative_values() {
        let c = Arc::new(Counter::new("reqs"));
        c.add(5);
        let w = WindowSet::new(4);
        w.track_counter(Arc::clone(&c));
        c.add(3);
        let b1 = w.seal(1_000);
        c.add(10);
        let b2 = w.seal(2_000);
        // The pre-tracking 5 never shows up; each window sees its own.
        assert_eq!(b1.delta("reqs"), Some(3));
        assert_eq!(b2.delta("reqs"), Some(10));
        assert_eq!(w.delta_series("reqs"), vec![3, 10]);
    }

    #[test]
    fn histogram_windows_carry_count_and_sum() {
        let h = Arc::new(Histogram::log2("lat_us"));
        let w = WindowSet::new(4);
        w.track_histogram(Arc::clone(&h));
        h.record(100);
        h.record(200);
        let b = w.seal(1_000);
        assert_eq!(b.histograms.len(), 1);
        assert_eq!(b.histograms[0].count, 2);
        assert_eq!(b.histograms[0].sum, 300);
        let empty = w.seal(2_000);
        assert_eq!(empty.histograms[0].count, 0);
    }

    #[test]
    fn ring_is_bounded_and_drops_oldest() {
        let c = Arc::new(Counter::new("x"));
        let w = WindowSet::new(3);
        w.track_counter(Arc::clone(&c));
        for i in 0..5 {
            c.add(i + 1);
            w.seal(i * 1_000);
        }
        let buckets = w.buckets();
        assert_eq!(buckets.len(), 3);
        // Oldest two (deltas 1, 2) evicted; seq keeps counting.
        assert_eq!(w.delta_series("x"), vec![3, 4, 5]);
        assert_eq!(buckets[0].seq, 2);
        assert_eq!(buckets[2].seq, 4);
    }

    #[test]
    fn rate_series_uses_caller_timestamps() {
        let c = Arc::new(Counter::new("r"));
        let w = WindowSet::new(8);
        w.track_counter(Arc::clone(&c));
        w.seal(0);
        c.add(50);
        w.seal(10_000); // 50 increments over 10 s → 5/s
        c.add(30);
        w.seal(12_000); // 30 over 2 s → 15/s
        let rates = w.rate_series("r");
        assert_eq!(rates.len(), 2);
        assert!((rates[0] - 5.0).abs() < 1e-9, "{rates:?}");
        assert!((rates[1] - 15.0).abs() < 1e-9, "{rates:?}");
    }

    #[test]
    fn restore_reloads_history_and_continues_sequence() {
        let c = Arc::new(Counter::new("x"));
        let w = WindowSet::new(4);
        w.track_counter(Arc::clone(&c));
        let old = vec![
            WindowBucket {
                seq: 7,
                unix_ms: 1_000,
                counters: vec![MetricDelta {
                    name: "x".into(),
                    delta: 9,
                }],
                histograms: Vec::new(),
            },
            WindowBucket {
                seq: 8,
                unix_ms: 2_000,
                counters: Vec::new(),
                histograms: Vec::new(),
            },
        ];
        w.restore(old);
        c.inc();
        let sealed = w.seal(3_000);
        assert_eq!(sealed.seq, 9, "sequence continues after restored max");
        assert_eq!(w.buckets().len(), 3);
        assert_eq!(w.buckets()[0].delta("x"), Some(9));
    }

    #[test]
    fn bucket_round_trips_through_serde() {
        let c = Arc::new(Counter::new("a"));
        let h = Arc::new(Histogram::log2("b"));
        let w = WindowSet::new(2);
        w.track_counter(Arc::clone(&c));
        w.track_histogram(Arc::clone(&h));
        c.add(2);
        h.record(9);
        let bucket = w.seal(5_000);
        let json = serde_json::to_string(&bucket).expect("serialize");
        let back: WindowBucket = serde_json::from_str(&json).expect("parse");
        assert_eq!(back, bucket);
    }
}
