//! Allocation-free metric primitives: counters, gauges, and bucketed
//! histograms.
//!
//! Every recording path is one or two relaxed atomic fetch-adds on
//! storage allocated at registration time — no locks, no allocation, no
//! formatting (the `no-alloc-in-metric-path` lint rule keeps it that
//! way). Snapshots copy the atomics and derive every aggregate from the
//! copies, so a snapshot is always internally consistent: `count` is
//! exactly the sum of its own `counts`, and `sum` the sum of its own
//! per-bucket sums.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of power-of-two bounds in a [`Histogram::log2`] histogram
/// (`1, 2, 4, …, 2^39`); values above the last bound land in the
/// overflow bucket.
pub const LOG2_BOUNDS: usize = 40;

/// A monotonically increasing counter.
#[derive(Debug)]
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
}

impl Counter {
    /// A zeroed counter. Prefer [`crate::Registry::counter`] so the
    /// counter shows up in snapshots and the `DUMP` exposition.
    pub fn new(name: &'static str) -> Counter {
        Counter {
            name,
            value: AtomicU64::new(0),
        }
    }

    /// The name given at registration.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Increment by one (relaxed).
    #[inline]
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Increment by `n` (relaxed).
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-write-wins gauge.
#[derive(Debug)]
pub struct Gauge {
    name: &'static str,
    value: AtomicU64,
}

impl Gauge {
    /// A zeroed gauge. Prefer [`crate::Registry::gauge`].
    pub fn new(name: &'static str) -> Gauge {
        Gauge {
            name,
            value: AtomicU64::new(0),
        }
    }

    /// The name given at registration.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Overwrite the value (relaxed).
    #[inline]
    pub fn set(&self, v: u64) {
        // qrec-lint: allow(atomics) -- a gauge is a standalone sampled value scraped for display; no other memory is published with it
        self.value.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A bucketed histogram with a per-bucket count *and* a per-bucket sum.
///
/// The parallel sum array is what makes snapshots consistent: deriving
/// `sum` from per-bucket sums copied in the same pass as the counts
/// removes the torn-read skew a separate `count`/`sum` atomic pair has
/// under concurrent recording.
#[derive(Debug)]
pub struct Histogram {
    name: &'static str,
    /// Inclusive upper bounds, ascending; `counts`/`sums` carry one
    /// extra overflow slot.
    bounds: Vec<u64>,
    /// True when `bounds` is exactly the [`Histogram::log2`] layout, so
    /// `record` can index with a bit-scan instead of a binary search.
    log2_bounds: bool,
    counts: Vec<AtomicU64>,
    sums: Vec<AtomicU64>,
}

impl Histogram {
    /// A histogram over explicit inclusive upper `bounds` (sorted and
    /// deduplicated internally). Prefer [`crate::Registry::histogram`].
    pub fn with_bounds(name: &'static str, bounds: &[u64]) -> Histogram {
        let mut sorted: Vec<u64> = bounds.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let slots = sorted.len() + 1;
        let log2_bounds = sorted.len() == LOG2_BOUNDS
            && sorted
                .iter()
                .enumerate()
                .all(|(i, &b)| b == 1u64 << (i as u32));
        Histogram {
            name,
            bounds: sorted,
            log2_bounds,
            counts: (0..slots).map(|_| AtomicU64::new(0)).collect(),
            sums: (0..slots).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// A histogram over power-of-two bounds `1, 2, 4, …, 2^39` — a
    /// fixed ~2× relative resolution across nine decades, which is
    /// plenty for latency work. Prefer
    /// [`crate::Registry::histogram_log2`].
    pub fn log2(name: &'static str) -> Histogram {
        let bounds: Vec<u64> = (0..LOG2_BOUNDS as u32).map(|i| 1u64 << i).collect();
        Histogram::with_bounds(name, &bounds)
    }

    /// The name given at registration.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The inclusive bucket upper bounds.
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Record one observation: two atomic fetch-adds, no allocation.
    ///
    /// The sum is bumped before the count (release), and snapshots load
    /// counts (acquire) before sums, so every observation a snapshot
    /// counts has already contributed its value — `sum` never trails
    /// `count`.
    #[inline]
    pub fn record(&self, value: u64) {
        // For the log2 layout the bucket index is the bit position of
        // the value's rounded-up power of two; the general layout binary
        // searches. Both agree: the index counts bounds strictly below
        // `value` (inclusive upper bounds).
        let idx = if self.log2_bounds {
            if value <= 1 {
                0
            } else {
                (64 - (value - 1).leading_zeros() as usize).min(self.bounds.len())
            }
        } else {
            self.bounds.partition_point(|&b| b < value)
        };
        if let (Some(c), Some(s)) = (self.counts.get(idx), self.sums.get(idx)) {
            s.fetch_add(value, Ordering::Relaxed);
            c.fetch_add(1, Ordering::Release);
        }
    }

    /// Record a duration in microseconds.
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_micros().min(u128::from(u64::MAX)) as u64);
    }

    /// Copy the buckets and derive every aggregate from the copies.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let counts: Vec<u64> = self
            .counts
            .iter()
            .map(|c| c.load(Ordering::Acquire))
            .collect();
        let sums: Vec<u64> = self
            .sums
            .iter()
            .map(|s| s.load(Ordering::Relaxed))
            .collect();
        HistogramSnapshot {
            name: self.name.to_string(),
            bounds: self.bounds.clone(),
            count: counts.iter().sum(),
            sum: sums.iter().fold(0u64, |a, &b| a.saturating_add(b)),
            counts,
        }
    }
}

/// Serialisable view of a [`Histogram`], internally consistent by
/// construction (`count == counts.iter().sum()`).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: String,
    /// Inclusive bucket upper bounds (parallel to `counts`, which has
    /// one extra overflow slot).
    pub bounds: Vec<u64>,
    /// Observation counts per bucket, plus the overflow bucket.
    pub counts: Vec<u64>,
    /// Total observations, derived from `counts`.
    pub count: u64,
    /// Sum of all observed values, derived from the per-bucket sums.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Estimate the `q`-quantile (`0.0..=1.0`) as the upper bound of the
    /// bucket containing it; observations in the overflow bucket report
    /// the largest finite bound.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return self
                    .bounds
                    .get(i)
                    .or_else(|| self.bounds.last())
                    .copied()
                    .unwrap_or(0);
            }
        }
        self.bounds.last().copied().unwrap_or(0)
    }

    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new("x");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new("y");
        g.set(9);
        g.set(3);
        assert_eq!(g.get(), 3);
    }

    #[test]
    fn histogram_bucketing_is_inclusive_upper() {
        let h = Histogram::with_bounds("h", &[10, 100, 1000]);
        for v in [1, 10, 11, 100, 5000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.counts, vec![2, 2, 0, 1]);
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 1 + 10 + 11 + 100 + 5000);
    }

    #[test]
    fn log2_histogram_covers_microseconds_to_minutes() {
        let h = Histogram::log2("us");
        h.record(1);
        h.record(1 << 20);
        h.record(u64::MAX); // overflow bucket
        let s = h.snapshot();
        assert_eq!(s.count, 3);
        assert_eq!(s.bounds.len(), LOG2_BOUNDS);
        assert_eq!(s.counts.len(), LOG2_BOUNDS + 1);
        assert_eq!(*s.counts.last().unwrap(), 1);
    }

    #[test]
    fn quantiles_report_bucket_upper_bounds() {
        let h = Histogram::with_bounds("h", &[10, 100, 1000]);
        for _ in 0..90 {
            h.record(5);
        }
        for _ in 0..10 {
            h.record(500);
        }
        let s = h.snapshot();
        assert_eq!(s.quantile(0.5), 10);
        assert_eq!(s.quantile(0.95), 1000);
        assert_eq!(HistogramSnapshot::default().quantile(0.5), 0);
    }

    /// The satellite invariant: under concurrent recording, every
    /// snapshot's `count` equals the sum of its own buckets, and `sum`
    /// is never behind `count` (per-bucket sums are copied after the
    /// counts, so they have seen at least as many records).
    #[test]
    fn snapshots_are_internally_consistent_under_concurrency() {
        let h = Arc::new(Histogram::log2("mt"));
        let writers: Vec<_> = (0..4)
            .map(|_| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for _ in 0..20_000 {
                        h.record(100);
                    }
                })
            })
            .collect();
        for _ in 0..200 {
            let s = h.snapshot();
            assert_eq!(
                s.count,
                s.counts.iter().sum::<u64>(),
                "count must be derived from the same bucket copy"
            );
            assert_eq!(s.sum % 100, 0, "all observations are 100");
            assert!(s.sum >= s.count * 100, "sums are copied after counts");
        }
        for w in writers {
            w.join().unwrap();
        }
        let s = h.snapshot();
        assert_eq!(s.count, 80_000);
        assert_eq!(s.sum, 80_000 * 100);
    }
}
