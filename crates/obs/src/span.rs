//! Scoped monotonic-clock stage timing.
//!
//! A [`Span`] is entered at the top of a pipeline stage and measures
//! wall time until its guard drops. While a [`crate::trace::TraceContext`]
//! is installed on the thread, the completed span is also appended to
//! that request's stage list with its nesting depth, so the flight
//! record reconstructs the stage tree. When the spine is disabled
//! ([`crate::enabled`] is false) entering a span is a branch and nothing
//! else — no clock read, no TLS write.

use crate::metric::Histogram;
use crate::trace;
use std::time::Instant;

/// Entry points for scoped stage timing.
pub struct Span;

impl Span {
    /// Enter a stage; timing stops when the guard drops.
    #[inline]
    pub fn enter(name: &'static str) -> SpanGuard<'static> {
        Span::begin(name, None)
    }

    /// Enter a stage and also record its duration into `hist` (in
    /// microseconds) when the guard drops. The guard borrows the
    /// histogram — no refcount traffic on the hot path.
    #[inline]
    pub fn enter_with<'a>(name: &'static str, hist: &'a Histogram) -> SpanGuard<'a> {
        Span::begin(name, Some(hist))
    }

    /// Run `f` inside a span named `name`.
    #[inline]
    pub fn in_span<R>(name: &'static str, f: impl FnOnce() -> R) -> R {
        let _guard = Span::enter(name);
        f()
    }

    /// Run `f` inside a span named `name`, recording the duration into
    /// `hist`.
    #[inline]
    pub fn in_span_with<R>(name: &'static str, hist: &Histogram, f: impl FnOnce() -> R) -> R {
        let _guard = Span::enter_with(name, hist);
        f()
    }

    fn begin<'a>(name: &'static str, hist: Option<&'a Histogram>) -> SpanGuard<'a> {
        if !crate::enabled() {
            return SpanGuard {
                name,
                hist: None,
                start: None,
                depth: 0,
            };
        }
        let depth = trace::stack_push(name);
        SpanGuard {
            name,
            hist,
            start: Some(Instant::now()),
            depth,
        }
    }
}

/// Live span; completes (and records) when dropped.
pub struct SpanGuard<'a> {
    name: &'static str,
    hist: Option<&'a Histogram>,
    /// `None` when the spine was disabled at entry — drop is a no-op.
    start: Option<Instant>,
    depth: u8,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let dur = start.elapsed();
            if let Some(h) = self.hist {
                h.record_duration(dur);
            }
            trace::stack_pop_record(self.name, self.depth, start, dur);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceContext;
    use std::time::Duration;

    #[test]
    fn nested_spans_record_depths_into_the_active_trace() {
        crate::set_enabled(true);
        trace::install(TraceContext::start(5).expect("enabled"));
        {
            let _outer = Span::enter("request");
            Span::in_span("decode", || {
                std::thread::sleep(Duration::from_micros(200));
            });
        }
        let t = trace::uninstall().expect("installed");
        // Inner span completes (and is pushed) before the outer one.
        assert_eq!(t.stages.len(), 2);
        assert_eq!((t.stages[0].name, t.stages[0].depth), ("decode", 1));
        assert_eq!((t.stages[1].name, t.stages[1].depth), ("request", 0));
        assert!(t.stages[0].dur_us > 0, "sleep must register");
        assert!(t.stages[1].dur_us >= t.stages[0].dur_us);
    }

    #[test]
    fn enter_with_records_into_the_histogram() {
        crate::set_enabled(true);
        let h = Histogram::log2("span_us");
        Span::in_span_with("stage", &h, || {
            std::thread::sleep(Duration::from_micros(100));
        });
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        assert!(s.sum > 0);
    }

    #[test]
    fn disabled_spans_are_inert() {
        crate::set_enabled(false);
        let h = Histogram::log2("off_us");
        trace::install(Box::new(TraceContext {
            request_id: 1,
            origin: Instant::now(),
            stages: trace::StageList::new(),
            queue_depth: 0,
            batch_size: 0,
            cache_hit: false,
            epoch: 0,
            strategy: "",
            beam_width: 0,
            decode_steps: 0,
            enc_cache_hits: 0,
            enc_cache_misses: 0,
        }));
        Span::in_span_with("stage", &h, || {});
        let t = trace::uninstall().expect("installed");
        crate::set_enabled(true);
        assert!(t.stages.is_empty(), "disabled span must not record stages");
        assert_eq!(h.snapshot().count, 0);
    }
}
