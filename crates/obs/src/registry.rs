//! Process-wide registry of named metrics.
//!
//! Registration hands back an `Arc` to a freshly allocated metric and
//! remembers it for snapshotting; the caller caches the `Arc` and
//! records through it without ever touching the registry again, so the
//! registry lock is never on a hot path. Duplicate names are allowed —
//! each `Metrics` instance in a test process registers its own storage —
//! and snapshots aggregate same-named instruments (counters/gauges by
//! sum/max, histograms element-wise when their bounds agree).

use crate::metric::{Counter, Gauge, Histogram, HistogramSnapshot};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::{Arc, OnceLock};

#[derive(Default)]
struct Inner {
    counters: Vec<Arc<Counter>>,
    gauges: Vec<Arc<Gauge>>,
    histograms: Vec<Arc<Histogram>>,
}

/// A set of named metrics that can be snapshotted together.
///
/// Use [`global()`] for the process-wide instance that `STATS`/`DUMP`
/// report from; standalone registries are for tests and tools.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<Inner>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Register a new counter under `name`.
    pub fn counter(&self, name: &'static str) -> Arc<Counter> {
        let c = Arc::new(Counter::new(name));
        self.inner.lock().counters.push(Arc::clone(&c));
        c
    }

    /// Register a new gauge under `name`.
    pub fn gauge(&self, name: &'static str) -> Arc<Gauge> {
        let g = Arc::new(Gauge::new(name));
        self.inner.lock().gauges.push(Arc::clone(&g));
        g
    }

    /// Register a new histogram under `name` with explicit bounds.
    pub fn histogram(&self, name: &'static str, bounds: &[u64]) -> Arc<Histogram> {
        let h = Arc::new(Histogram::with_bounds(name, bounds));
        self.inner.lock().histograms.push(Arc::clone(&h));
        h
    }

    /// Register a new log2-bucketed histogram under `name`.
    pub fn histogram_log2(&self, name: &'static str) -> Arc<Histogram> {
        let h = Arc::new(Histogram::log2(name));
        self.inner.lock().histograms.push(Arc::clone(&h));
        h
    }

    /// Snapshot every registered metric, aggregating duplicates by name.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let inner = self.inner.lock();
        let mut counters: Vec<CounterValue> = Vec::new();
        for c in &inner.counters {
            match counters.iter_mut().find(|v| v.name == c.name()) {
                Some(v) => v.value += c.get(),
                None => counters.push(CounterValue {
                    name: c.name().to_string(),
                    value: c.get(),
                }),
            }
        }
        let mut gauges: Vec<CounterValue> = Vec::new();
        for g in &inner.gauges {
            match gauges.iter_mut().find(|v| v.name == g.name()) {
                Some(v) => v.value = v.value.max(g.get()),
                None => gauges.push(CounterValue {
                    name: g.name().to_string(),
                    value: g.get(),
                }),
            }
        }
        let mut histograms: Vec<HistogramSnapshot> = Vec::new();
        for h in &inner.histograms {
            let snap = h.snapshot();
            match histograms
                .iter_mut()
                .find(|s| s.name == snap.name && s.bounds == snap.bounds)
            {
                Some(agg) => {
                    for (a, b) in agg.counts.iter_mut().zip(&snap.counts) {
                        *a += b;
                    }
                    agg.count += snap.count;
                    agg.sum += snap.sum;
                }
                None => histograms.push(snap),
            }
        }
        drop(inner);
        counters.sort_by(|a, b| a.name.cmp(&b.name));
        gauges.sort_by(|a, b| a.name.cmp(&b.name));
        histograms.sort_by(|a, b| a.name.cmp(&b.name));
        RegistrySnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

/// The process-wide registry that `STATS` and `DUMP` report from.
pub fn global() -> &'static Registry {
    static G: OnceLock<Registry> = OnceLock::new();
    G.get_or_init(Registry::new)
}

/// A named counter or gauge reading.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CounterValue {
    /// Metric name.
    pub name: String,
    /// Aggregated value.
    pub value: u64,
}

/// Serialisable view of a [`Registry`], names sorted, duplicates merged.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RegistrySnapshot {
    /// All counters, summed by name.
    pub counters: Vec<CounterValue>,
    /// All gauges, merged by max.
    pub gauges: Vec<CounterValue>,
    /// All histograms, merged element-wise when name and bounds match.
    pub histograms: Vec<HistogramSnapshot>,
}

impl RegistrySnapshot {
    /// Look up an aggregated counter value by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// Look up an aggregated histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicate_counters_aggregate_by_name() {
        let reg = Registry::new();
        let a = reg.counter("hits");
        let b = reg.counter("hits");
        let c = reg.counter("misses");
        a.add(3);
        b.add(4);
        c.inc();
        let snap = reg.snapshot();
        assert_eq!(snap.counter("hits"), Some(7));
        assert_eq!(snap.counter("misses"), Some(1));
        assert_eq!(snap.counter("absent"), None);
    }

    #[test]
    fn gauges_merge_by_max_and_histograms_elementwise() {
        let reg = Registry::new();
        let g1 = reg.gauge("depth");
        let g2 = reg.gauge("depth");
        g1.set(2);
        g2.set(9);
        let h1 = reg.histogram("lat", &[10, 100]);
        let h2 = reg.histogram("lat", &[10, 100]);
        h1.record(5);
        h2.record(50);
        h2.record(5000);
        let snap = reg.snapshot();
        assert_eq!(
            snap.gauges,
            vec![CounterValue {
                name: "depth".into(),
                value: 9
            }]
        );
        let lat = snap.histogram("lat").expect("lat registered");
        assert_eq!(lat.counts, vec![1, 1, 1]);
        assert_eq!(lat.count, 3);
        assert_eq!(lat.sum, 5 + 50 + 5000);
    }

    #[test]
    fn snapshot_round_trips_through_serde() {
        let reg = Registry::new();
        reg.counter("c").inc();
        reg.histogram_log2("h").record(17);
        let snap = reg.snapshot();
        let json = serde_json::to_string(&snap).expect("serialize");
        let back: RegistrySnapshot = serde_json::from_str(&json).expect("parse");
        assert_eq!(back, snap);
    }

    #[test]
    fn global_registry_is_shared() {
        let c = global().counter("test.registry.shared");
        c.add(2);
        let snap = global().snapshot();
        assert!(snap.counter("test.registry.shared").is_some_and(|v| v >= 2));
    }
}
