//! Component-level cost attribution for the tracing hot path.
//!
//! Ignored by default (it times, it doesn't assert); run it when tuning
//! the spine to see where the per-request nanoseconds go:
//!
//! ```text
//! cargo test --release -p qrec-obs --test microbench -- --ignored --nocapture
//! ```
//!
//! The "full request path" row is the per-request cost ceiling the
//! serving overhead gate (`bench_obs`) budgets against; clock reads
//! (`Instant::now`, two per span) dominate it.

use qrec_obs::{flight, trace, Span, TraceContext};
use std::time::{Duration, Instant};

fn time_n(label: &str, n: usize, mut f: impl FnMut()) {
    // warmup
    for _ in 0..n / 10 {
        f();
    }
    let t0 = Instant::now();
    for _ in 0..n {
        f();
    }
    let per = t0.elapsed().as_nanos() as f64 / n as f64;
    println!("{label:<40} {per:>10.1} ns/iter");
}

#[test]
#[ignore]
fn microbench() {
    qrec_obs::set_enabled(true);
    let n = 200_000;
    let hist = qrec_obs::global().histogram_log2("mb.stage_us");

    time_n("Instant::now", n, || {
        std::hint::black_box(Instant::now());
    });
    time_n("Instant::now + elapsed", n, || {
        let t0 = Instant::now();
        std::hint::black_box(t0.elapsed());
    });
    time_n("hist.record", n, || {
        hist.record(std::hint::black_box(1234));
    });
    time_n("note_decode_step (no trace)", n, || {
        trace::note_decode_step();
    });
    time_n("start+install+uninstall", n, || {
        if let Some(ctx) = TraceContext::start(qrec_obs::next_request_id()) {
            trace::install(ctx);
        }
        std::hint::black_box(trace::uninstall());
    });

    time_n("span (no trace installed)", n, || {
        Span::in_span_with("stage", &hist, || std::hint::black_box(1u64));
    });

    time_n("full request path (5 spans+finish+flight)", n, || {
        let t0 = Instant::now();
        if let Some(ctx) = TraceContext::start(qrec_obs::next_request_id()) {
            trace::install(ctx);
        }
        Span::in_span_with("session", &hist, || std::hint::black_box(1u64));
        trace::note_queue_depth(3);
        let ctx = trace::uninstall();
        // simulate worker-side hand-off
        if let Some(ctx) = ctx {
            trace::install(ctx);
        }
        trace::record_stage("batch_wait", t0, Duration::from_micros(1));
        trace::note_batch(1, 0);
        trace::note_strategy("beam", 4);
        Span::in_span_with("cache", &hist, || std::hint::black_box(1u64));
        trace::note_cache_hit(true);
        Span::in_span_with("decode", &hist, || {
            for _ in 0..8 {
                trace::note_decode_step();
            }
        });
        Span::in_span_with("rank", &hist, || std::hint::black_box(1u64));
        let ctx = trace::uninstall();
        if let Some(ctx) = ctx {
            flight::global().record(ctx, t0.elapsed());
        }
    });

    time_n("disabled request path", n, || {
        qrec_obs::set_enabled(false);
        let t0 = Instant::now();
        if let Some(ctx) = TraceContext::start(qrec_obs::next_request_id()) {
            trace::install(ctx);
        }
        Span::in_span_with("session", &hist, || std::hint::black_box(1u64));
        let ctx = trace::uninstall();
        if let Some(ctx) = ctx {
            flight::global().record(ctx, t0.elapsed());
        }
        qrec_obs::set_enabled(true);
    });
}
