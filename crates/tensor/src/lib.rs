//! # qrec-tensor — dense tensors and reverse-mode autodiff
//!
//! The deep-learning substrate of `qrec`, written from scratch because the
//! reproduction must be self-contained (no ML framework dependency):
//!
//! * [`tensor::Tensor`] — a dense row-major 2-D `f32` matrix with the
//!   linear-algebra and elementwise operations the sequence models need.
//! * [`graph::Graph`] — a single-use autodiff tape: build a forward
//!   computation, call [`graph::Graph::backward`], read leaf gradients.
//!   Every op's gradient is validated against central finite differences
//!   in the test suite.
//! * [`init`] — Xavier / Kaiming / Gaussian weight initialisers.
//! * [`kernel`] — the cache-blocked GEMM behind `Tensor::matmul{,_nt,_tn}`,
//!   with bitwise-deterministic parallel execution on [`pool::Pool`]
//!   (sized by `QREC_THREADS`; see DESIGN.md §10).
//!
//! ```
//! use qrec_tensor::{Graph, Tensor};
//!
//! let mut g = Graph::new();
//! let x = g.input(Tensor::from_vec(1, 2, vec![1.0, 2.0]));
//! let w = g.input(Tensor::from_vec(2, 1, vec![0.5, -1.0]));
//! let y = g.matmul(x, w);            // 1x1: 1*0.5 + 2*(-1) = -1.5
//! g.backward(y);
//! assert_eq!(g.value(y).item(), -1.5);
//! assert_eq!(g.grad(w).unwrap().data(), &[1.0, 2.0]);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod graph;
pub mod init;
pub mod kernel;
pub mod pool;
pub mod qi8;
pub mod tensor;

pub use graph::{Graph, NodeId};
pub use tensor::Tensor;
