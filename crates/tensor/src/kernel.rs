//! Cache-blocked GEMM kernels behind `Tensor::matmul{,_nt,_tn}`.
//!
//! ## Blocking scheme
//!
//! The blocked kernel is BLIS-shaped: `B` is packed once into NR-wide
//! column panels (panel-major, row-major inside a panel, zero-padded on
//! the right edge), split into KC-deep slabs along `k`. The micro-kernel
//! then computes an MR×NR register tile per call, reading MR contiguous
//! unpacked rows of `A` and one packed panel of `B`; the inner loops are
//! written as exact-size slice iteration so the autovectorizer emits
//! branch-free FMA lanes. Row tiles are grouped MC at a time so the
//! active slice of `A` stays L2-resident across panels.
//!
//! ## Determinism
//!
//! Every path — the naive references, the blocked serial kernel, and the
//! pool-parallel kernel at any thread or chunk count — computes each
//! output element as the *same* fold: `acc = fmadd(a[i][kk], b[kk][j],
//! acc)` over ascending `kk` with a single accumulator. KC slabs do not
//! reorder `k`; row partitioning never splits a single element's
//! reduction; spilling a partial accumulator to memory and reloading it
//! does not change an `f32`. Parallel output is therefore **bitwise
//! identical** to single-threaded output, and the blocked kernel is
//! bitwise identical to [`naive`] — property-tested in
//! `tests/gemm_equivalence.rs`.
//!
//! [`fmadd`] is compiled as fused `mul_add` only when the target has a
//! hardware FMA unit (see `.cargo/config.toml`), so a given build is
//! internally consistent; builds for different targets may round
//! differently, as with any float kernel.
//!
//! ## Threshold policy
//!
//! [`select`] keeps small products (decode-time 1×d vectors, tiny
//! training tiles) on [`naive`], whose only overhead is the call itself;
//! mid-size products use the blocked serial kernel; large products split
//! into contiguous row ranges on the shared [`Pool`]. The split depends
//! only on `(n, threads)` — never on timing — so repeated calls take
//! identical paths.

use crate::pool::Pool;
use crossbeam::channel;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Rows per register tile.
const MR: usize = 4;
/// Columns per packed panel (and per register tile).
const NR: usize = 32;
/// Depth of a packed slab along `k`.
const KC: usize = 256;
/// Row-block size keeping the active `A` slice cache-resident.
const MC: usize = 128;

/// Products with fewer than this many flops (`2·n·k·m`) stay on the
/// naive kernel: packing B costs more than it saves.
const NAIVE_MAX_FLOPS: usize = 1 << 17;
/// Products with fewer than this many flops never go parallel: the
/// clone + channel round-trip costs more than it saves.
const PAR_MIN_FLOPS: usize = 1 << 24;
/// A parallel chunk is never thinner than this many rows.
const MIN_ROWS_PER_CHUNK: usize = 32;

/// How long the gather loop waits for worker results before falling
/// back to recomputing missing chunks inline.
const GATHER_TIMEOUT: Duration = Duration::from_secs(30);

static SERIAL_CALLS: AtomicU64 = AtomicU64::new(0);
static PARALLEL_CALLS: AtomicU64 = AtomicU64::new(0);

/// Per-path dispatch counters in the process-wide observability
/// registry: the legacy serial/parallel pair folds naive and blocked
/// together, but the size-class split is what tuning the
/// `NAIVE_MAX_FLOPS` / `PAR_MIN_FLOPS` thresholds actually needs.
struct DispatchCounters {
    naive: Arc<qrec_obs::Counter>,
    blocked: Arc<qrec_obs::Counter>,
    parallel: Arc<qrec_obs::Counter>,
}

fn dispatch() -> &'static DispatchCounters {
    static D: std::sync::OnceLock<DispatchCounters> = std::sync::OnceLock::new();
    D.get_or_init(|| DispatchCounters {
        naive: qrec_obs::global().counter("tensor.gemm.naive"),
        blocked: qrec_obs::global().counter("tensor.gemm.blocked"),
        parallel: qrec_obs::global().counter("tensor.gemm.parallel"),
    })
}

/// Process-wide GEMM dispatch counters, for serving metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelCounters {
    /// Calls that ran on the calling thread (naive or blocked path).
    pub serial: u64,
    /// Calls that fanned out over the compute pool.
    pub parallel: u64,
}

/// Snapshot the dispatch counters (monotonic since process start).
pub fn counters() -> KernelCounters {
    KernelCounters {
        serial: SERIAL_CALLS.load(Ordering::Relaxed),
        parallel: PARALLEL_CALLS.load(Ordering::Relaxed),
    }
}

/// Fused multiply-add when the hardware has it, plain `a*b + acc`
/// otherwise. The cfg split keeps non-FMA builds off the libm softfloat
/// path while every build stays internally bitwise-consistent.
#[inline(always)]
fn fmadd(a: f32, b: f32, acc: f32) -> f32 {
    #[cfg(target_feature = "fma")]
    {
        a.mul_add(b, acc)
    }
    #[cfg(not(target_feature = "fma"))]
    {
        acc + a * b
    }
}

// ---------------------------------------------------------------------
// Path selection
// ---------------------------------------------------------------------

/// The execution path [`gemm`] takes for an `n×k · k×m` product.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelPath {
    /// Small product: plain ikj loop, zero setup cost.
    Naive,
    /// Mid-size product: packed blocked kernel on the calling thread.
    Blocked,
    /// Large product: blocked kernel over `chunks` row ranges on the pool.
    Parallel {
        /// Number of contiguous row ranges the output is split into.
        chunks: usize,
    },
}

/// Pick the kernel path for an `n×k · k×m` product at `threads` workers.
///
/// Pure and deterministic: the same shape and thread count always select
/// the same path, and every path produces bitwise-identical output, so
/// selection is a pure performance decision.
pub fn select(n: usize, k: usize, m: usize, threads: usize) -> KernelPath {
    let flops = 2usize.saturating_mul(n).saturating_mul(k).saturating_mul(m);
    if n < MR || flops < NAIVE_MAX_FLOPS {
        KernelPath::Naive
    } else if threads < 2 || flops < PAR_MIN_FLOPS || n < 2 * MIN_ROWS_PER_CHUNK {
        KernelPath::Blocked
    } else {
        KernelPath::Parallel {
            chunks: threads.min(n / MIN_ROWS_PER_CHUNK),
        }
    }
}

// ---------------------------------------------------------------------
// Naive references (canonical accumulation order)
// ---------------------------------------------------------------------

/// Reference `n×k · k×m` product in canonical accumulation order.
///
/// This is the semantic ground truth the blocked and parallel kernels
/// are property-tested against (bitwise, not epsilon), and the fast path
/// for small products.
pub fn naive(a: &[f32], b: &[f32], n: usize, k: usize, m: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; n * m];
    for i in 0..n {
        let arow = &a[i * k..(i + 1) * k];
        let orow = &mut out[i * m..(i + 1) * m];
        for (kk, &av) in arow.iter().enumerate() {
            let brow = &b[kk * m..(kk + 1) * m];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o = fmadd(av, bv, *o);
            }
        }
    }
    out
}

/// Reference `A · Bᵀ` where `a` is `n×k` and `b` is `m×k`, in canonical
/// accumulation order (ascending `k` per element).
pub fn naive_nt(a: &[f32], b: &[f32], n: usize, k: usize, m: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; n * m];
    for i in 0..n {
        let arow = &a[i * k..(i + 1) * k];
        let orow = &mut out[i * m..(i + 1) * m];
        for (j, o) in orow.iter_mut().enumerate() {
            let brow = &b[j * k..(j + 1) * k];
            let mut s = 0.0f32;
            for (&av, &bv) in arow.iter().zip(brow) {
                s = fmadd(av, bv, s);
            }
            *o = s;
        }
    }
    out
}

/// Reference `Aᵀ · B` where `a` is `k×n` and `b` is `k×m`, in canonical
/// accumulation order (ascending `k` per element).
pub fn naive_tn(a: &[f32], b: &[f32], n: usize, k: usize, m: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; n * m];
    for kk in 0..k {
        let arow = &a[kk * n..(kk + 1) * n];
        let brow = &b[kk * m..(kk + 1) * m];
        for (i, &av) in arow.iter().enumerate() {
            let orow = &mut out[i * m..(i + 1) * m];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o = fmadd(av, bv, *o);
            }
        }
    }
    out
}

/// Transpose a `rows×cols` row-major matrix into `cols×rows`.
fn transpose(x: &[f32], rows: usize, cols: usize) -> Vec<f32> {
    let mut t = vec![0.0f32; rows * cols];
    for r in 0..rows {
        for (c, &v) in x[r * cols..(r + 1) * cols].iter().enumerate() {
            t[c * rows + r] = v;
        }
    }
    t
}

// ---------------------------------------------------------------------
// Public entry points
// ---------------------------------------------------------------------

/// `n×k · k×m` product with automatic path selection on the global pool.
///
/// Small products never touch (or lazily spawn) the pool at all.
pub fn gemm(a: &[f32], b: &[f32], n: usize, k: usize, m: usize) -> Vec<f32> {
    if select(n, k, m, 1) == KernelPath::Naive {
        SERIAL_CALLS.fetch_add(1, Ordering::Relaxed);
        dispatch().naive.inc();
        return naive(a, b, n, k, m);
    }
    gemm_on(Pool::global(), a, b, n, k, m)
}

/// `A · Bᵀ` (`a` is `n×k`, `b` is `m×k`) with automatic path selection.
///
/// Small products use a dot-form serial loop; large ones transpose `b`
/// (O(k·m), negligible next to O(n·k·m)) and reuse the blocked kernel.
/// Both compute the identical ascending-`k` fold per element.
pub fn gemm_nt(a: &[f32], b: &[f32], n: usize, k: usize, m: usize) -> Vec<f32> {
    if select(n, k, m, 1) == KernelPath::Naive {
        SERIAL_CALLS.fetch_add(1, Ordering::Relaxed);
        dispatch().naive.inc();
        return naive_nt(a, b, n, k, m);
    }
    let bt = transpose(b, m, k);
    gemm_on(Pool::global(), a, &bt, n, k, m)
}

/// `Aᵀ · B` (`a` is `k×n`, `b` is `k×m`) with automatic path selection.
///
/// Small products use a kk-outer serial loop; large ones transpose `a`
/// and reuse the blocked kernel. Both compute the identical
/// ascending-`k` fold per element.
pub fn gemm_tn(a: &[f32], b: &[f32], n: usize, k: usize, m: usize) -> Vec<f32> {
    if select(n, k, m, 1) == KernelPath::Naive {
        SERIAL_CALLS.fetch_add(1, Ordering::Relaxed);
        dispatch().naive.inc();
        return naive_tn(a, b, n, k, m);
    }
    let at = transpose(a, k, n);
    gemm_on(Pool::global(), &at, b, n, k, m)
}

/// [`gemm`] with an explicit pool (tests and benchmarks pin thread
/// counts through this).
pub fn gemm_on(pool: &Pool, a: &[f32], b: &[f32], n: usize, k: usize, m: usize) -> Vec<f32> {
    match select(n, k, m, pool.threads()) {
        KernelPath::Naive => {
            SERIAL_CALLS.fetch_add(1, Ordering::Relaxed);
            dispatch().naive.inc();
            naive(a, b, n, k, m)
        }
        KernelPath::Blocked => {
            SERIAL_CALLS.fetch_add(1, Ordering::Relaxed);
            dispatch().blocked.inc();
            blocked(a, b, n, k, m)
        }
        KernelPath::Parallel { chunks } => {
            // Fan-out beyond the machine's physical parallelism only
            // adds context switches and extra packed-panel re-walks (the
            // pool may be configured larger than the hardware), so cap
            // the executed chunk count there. Output bits are invariant
            // under chunk count (see the determinism section), so this
            // is purely an execution-schedule decision: on a one-core
            // box the product degrades all the way to the blocked serial
            // kernel with zero hand-off cost.
            let hw = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
            let chunks = chunks.min(hw);
            if chunks < 2 {
                SERIAL_CALLS.fetch_add(1, Ordering::Relaxed);
                dispatch().blocked.inc();
                blocked(a, b, n, k, m)
            } else {
                parallel(pool, chunks, hw.saturating_sub(1), a, b, n, k, m)
            }
        }
    }
}

/// Blocked serial kernel: pack `B` once, run every row on the caller.
pub fn blocked(a: &[f32], b: &[f32], n: usize, k: usize, m: usize) -> Vec<f32> {
    let pb = pack_b(b, k, m);
    let mut out = vec![0.0f32; n * m];
    blocked_rows(a, &pb, k, m, 0, n, &mut out);
    out
}

/// Run the blocked kernel split into exactly `chunks` row ranges on
/// `pool`, bypassing the shape thresholds.
///
/// This is the forced-parallel entry the equivalence suite uses to pin
/// chunk counts on arbitrary shapes; [`gemm`] dispatches to the same
/// machinery only above the parallel threshold.
pub fn gemm_chunked(
    pool: &Pool,
    chunks: usize,
    a: &[f32],
    b: &[f32],
    n: usize,
    k: usize,
    m: usize,
) -> Vec<f32> {
    // No hardware cap here: equivalence tests force worker involvement
    // so the claim/gather path is exercised whatever the host machine.
    parallel(pool, chunks, usize::MAX, a, b, n, k, m)
}

// ---------------------------------------------------------------------
// Packed-B layout
// ---------------------------------------------------------------------

/// One KC-deep slab of the packed `B`.
struct BBlock {
    /// First `k` index this slab covers.
    k0: usize,
    /// Depth of the slab (`<= KC`).
    kc: usize,
    /// Start of the slab's panels in `PackedB::data`.
    offset: usize,
}

/// `B` repacked into NR-wide panels per KC slab: panel-major, row-major
/// inside a panel, right edge zero-padded to NR.
struct PackedB {
    data: Vec<f32>,
    npanels: usize,
    blocks: Vec<BBlock>,
}

fn pack_b(b: &[f32], k: usize, m: usize) -> PackedB {
    let npanels = m.div_ceil(NR);
    let mut data = vec![0.0f32; k * npanels * NR];
    let mut blocks = Vec::with_capacity(k.div_ceil(KC.max(1)).max(1));
    let mut k0 = 0;
    let mut offset = 0;
    while k0 < k {
        let kc = KC.min(k - k0);
        for p in 0..npanels {
            let j0 = p * NR;
            let w = NR.min(m - j0);
            for r in 0..kc {
                let dst0 = offset + p * kc * NR + r * NR;
                let src0 = (k0 + r) * m + j0;
                data[dst0..dst0 + w].copy_from_slice(&b[src0..src0 + w]);
            }
        }
        blocks.push(BBlock { k0, kc, offset });
        offset += kc * npanels * NR;
        k0 += kc;
    }
    PackedB {
        data,
        npanels,
        blocks,
    }
}

// ---------------------------------------------------------------------
// Blocked kernel core
// ---------------------------------------------------------------------

/// Compute output rows `r0..r1` into `out` (which holds exactly
/// `(r1-r0)*m` elements, locally indexed from `r0`).
///
/// KC slabs run in ascending-`k` order; row grouping (MC blocks, MR
/// tiles) never mixes rows arithmetically, so the result for each row is
/// independent of the `(r0, r1)` partition — the parallel path's
/// bitwise-determinism hinges on exactly this.
fn blocked_rows(
    a: &[f32],
    pb: &PackedB,
    k: usize,
    m: usize,
    r0: usize,
    r1: usize,
    out: &mut [f32],
) {
    let npanels = pb.npanels;
    for blk in &pb.blocks {
        let mut ii = r0;
        while ii < r1 {
            let mc = MC.min(r1 - ii);
            let mut i = 0;
            while i < mc {
                let mr = MR.min(mc - i);
                let i0 = ii + i;
                for p in 0..npanels {
                    let j0 = p * NR;
                    let w = NR.min(m - j0);
                    let bstart = blk.offset + p * blk.kc * NR;
                    let bp = &pb.data[bstart..bstart + blk.kc * NR];
                    if mr == MR && w == NR {
                        micro_full(a, bp, out, i0, r0, blk.k0, blk.kc, k, m, j0);
                    } else {
                        micro_edge(a, bp, out, i0, r0, mr, blk.k0, k, m, j0, w);
                    }
                }
                i += MR;
            }
            ii += MC;
        }
    }
}

/// Full MR×NR register tile. `A` rows are read as contiguous unpacked
/// slices; the `chunks_exact`/`zip` iteration proves every bound to the
/// compiler so the inner lanes compile branch-free.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn micro_full(
    a: &[f32],
    bp: &[f32],
    out: &mut [f32],
    i0: usize,
    r0: usize,
    kk: usize,
    kc: usize,
    k: usize,
    m: usize,
    j0: usize,
) {
    let o0 = (i0 - r0) * m + j0;
    let mut acc = [[0.0f32; NR]; MR];
    for (r, accr) in acc.iter_mut().enumerate() {
        accr.copy_from_slice(&out[o0 + r * m..o0 + r * m + NR]);
    }
    let [acc0, acc1, acc2, acc3] = &mut acc;
    let a0 = &a[i0 * k + kk..i0 * k + kk + kc];
    let a1 = &a[(i0 + 1) * k + kk..(i0 + 1) * k + kk + kc];
    let a2 = &a[(i0 + 2) * k + kk..(i0 + 2) * k + kk + kc];
    let a3 = &a[(i0 + 3) * k + kk..(i0 + 3) * k + kk + kc];
    for ((((brow, &v0), &v1), &v2), &v3) in bp.chunks_exact(NR).zip(a0).zip(a1).zip(a2).zip(a3) {
        for j in 0..NR {
            acc0[j] = fmadd(v0, brow[j], acc0[j]);
        }
        for j in 0..NR {
            acc1[j] = fmadd(v1, brow[j], acc1[j]);
        }
        for j in 0..NR {
            acc2[j] = fmadd(v2, brow[j], acc2[j]);
        }
        for j in 0..NR {
            acc3[j] = fmadd(v3, brow[j], acc3[j]);
        }
    }
    for (r, accr) in acc.iter().enumerate() {
        out[o0 + r * m..o0 + r * m + NR].copy_from_slice(accr);
    }
}

/// Edge tile: fewer than MR rows and/or a right-edge panel narrower than
/// NR. Runs full NR lanes against the zero-padded panel and stores only
/// the live `w` columns, so the discarded lanes cannot leak.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn micro_edge(
    a: &[f32],
    bp: &[f32],
    out: &mut [f32],
    i0: usize,
    r0: usize,
    mr: usize,
    kk: usize,
    k: usize,
    m: usize,
    j0: usize,
    w: usize,
) {
    let o0 = (i0 - r0) * m + j0;
    let mut acc = [[0.0f32; NR]; MR];
    for r in 0..mr {
        acc[r][..w].copy_from_slice(&out[o0 + r * m..o0 + r * m + w]);
    }
    for (kr, brow) in bp.chunks_exact(NR).enumerate() {
        for r in 0..mr {
            let av = a[(i0 + r) * k + kk + kr];
            let accr = &mut acc[r];
            for j in 0..NR {
                accr[j] = fmadd(av, brow[j], accr[j]);
            }
        }
    }
    for r in 0..mr {
        out[o0 + r * m..o0 + r * m + w].copy_from_slice(&acc[r][..w]);
    }
}

// ---------------------------------------------------------------------
// Parallel driver
// ---------------------------------------------------------------------

/// Split `n` rows into `chunks` contiguous ranges: a pure function of
/// `(n, chunks)`, never of timing, so the partition is reproducible.
fn partition(n: usize, chunks: usize) -> Vec<(usize, usize)> {
    let chunks = chunks.clamp(1, n.max(1));
    let base = n / chunks;
    let rem = n % chunks;
    let mut ranges = Vec::with_capacity(chunks);
    let mut r0 = 0;
    for c in 0..chunks {
        let len = base + usize::from(c < rem);
        ranges.push((r0, r0 + len));
        r0 += len;
    }
    ranges
}

/// Pack `B` once, fan row ranges out over the pool, and assemble the
/// output: caller-computed ranges are written directly into the result
/// buffer, worker-computed ranges come back over a bounded channel and
/// are copied into place.
///
/// Work is distributed help-first: the fixed ranges sit behind a shared
/// claim counter, `threads − 1` pool workers loop claiming ranges, and
/// the **caller claims ranges too** until the counter runs dry. On a
/// saturated or single-core machine the caller ends up computing almost
/// everything itself with no hand-off cost; on an idle multicore box the
/// workers drain the counter concurrently. Which thread computes a range
/// never changes its bits, so the output is identical either way.
///
/// If a worker result never arrives — spawn failure, a panicked job —
/// the gather loop times out and the missing ranges are recomputed
/// inline: slower, never wrong.
#[allow(clippy::too_many_arguments)]
fn parallel(
    pool: &Pool,
    chunks: usize,
    helpers_cap: usize,
    a: &[f32],
    b: &[f32],
    n: usize,
    k: usize,
    m: usize,
) -> Vec<f32> {
    PARALLEL_CALLS.fetch_add(1, Ordering::Relaxed);
    dispatch().parallel.inc();
    let ranges = Arc::new(partition(n, chunks));
    let pb = Arc::new(pack_b(b, k, m));
    let shared_a: Arc<Vec<f32>> = Arc::new(a.to_vec());
    let next = Arc::new(AtomicUsize::new(0));

    let (tx, rx) = channel::bounded::<(usize, Vec<f32>)>(ranges.len().max(1));
    let helpers = pool
        .threads()
        .saturating_sub(1)
        .min(helpers_cap)
        .min(ranges.len());
    for _ in 0..helpers {
        let a = Arc::clone(&shared_a);
        let pb = Arc::clone(&pb);
        let ranges = Arc::clone(&ranges);
        let next = Arc::clone(&next);
        let tx = tx.clone();
        pool.submit(Box::new(move || loop {
            let idx = next.fetch_add(1, Ordering::Relaxed);
            let Some(&(c0, c1)) = ranges.get(idx) else {
                break;
            };
            let mut part = vec![0.0f32; (c1 - c0) * m];
            blocked_rows(&a, &pb, k, m, c0, c1, &mut part);
            if tx.send((idx, part)).is_err() {
                break;
            }
        }));
    }
    drop(tx);

    // The caller races the workers for ranges instead of idling, and
    // writes its ranges straight into the output — no splice for them.
    let mut out = vec![0.0f32; n * m];
    let mut done: Vec<bool> = ranges.iter().map(|_| false).collect();
    let mut pending = ranges.len();
    loop {
        let idx = next.fetch_add(1, Ordering::Relaxed);
        let Some(&(c0, c1)) = ranges.get(idx) else {
            break;
        };
        blocked_rows(&shared_a, &pb, k, m, c0, c1, &mut out[c0 * m..c1 * m]);
        if let Some(flag) = done.get_mut(idx) {
            *flag = true;
            pending -= 1;
        }
    }

    while pending > 0 {
        match rx.recv_timeout(GATHER_TIMEOUT) {
            Ok((idx, part)) => {
                if let (Some(&(c0, c1)), Some(flag)) = (ranges.get(idx), done.get_mut(idx)) {
                    if !*flag {
                        out[c0 * m..c1 * m].copy_from_slice(&part);
                        *flag = true;
                        pending -= 1;
                    }
                }
            }
            Err(_) => break, // timeout or disconnect: fall through to inline recompute
        }
    }

    // Anything still missing (a worker died): recompute inline.
    if pending > 0 {
        for (&(c0, c1), flag) in ranges.iter().zip(&done) {
            if !flag {
                blocked_rows(&shared_a, &pb, k, m, c0, c1, &mut out[c0 * m..c1 * m]);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill(len: usize, seed: usize) -> Vec<f32> {
        (0..len)
            .map(|i| (((i + seed) * 2654435761) % 2000) as f32 * 1e-3 - 1.0)
            .collect()
    }

    fn assert_bitwise(a: &[f32], b: &[f32]) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "element {i}: {x} vs {y}");
        }
    }

    #[test]
    fn blocked_matches_naive_bitwise_on_awkward_shapes() {
        for &(n, k, m) in &[
            (1, 7, 9),
            (4, 32, 32),
            (5, 33, 31),
            (37, 300, 65),
            (130, 17, 257),
            (3, 512, 2),
        ] {
            let a = fill(n * k, 1);
            let b = fill(k * m, 2);
            assert_bitwise(&naive(&a, &b, n, k, m), &blocked(&a, &b, n, k, m));
        }
    }

    #[test]
    fn chunked_matches_naive_bitwise_at_every_chunk_count() {
        let (n, k, m) = (67, 130, 45);
        let a = fill(n * k, 3);
        let b = fill(k * m, 4);
        let want = naive(&a, &b, n, k, m);
        let pool = Pool::new(4);
        for chunks in [1, 2, 3, 8, 67, 200] {
            assert_bitwise(&want, &gemm_chunked(&pool, chunks, &a, &b, n, k, m));
        }
    }

    #[test]
    fn degenerate_shapes_are_empty_or_zero() {
        let pool = Pool::new(2);
        assert!(gemm_chunked(&pool, 4, &[], &[], 0, 0, 0).is_empty());
        assert!(gemm_chunked(&pool, 4, &[], &fill(5, 1), 0, 1, 5).is_empty());
        assert!(gemm_chunked(&pool, 4, &fill(5, 1), &[], 5, 1, 0).is_empty());
        // k == 0: the product is a zero matrix, not an empty one.
        let out = gemm_chunked(&pool, 2, &[], &[], 3, 0, 4);
        assert_eq!(out, vec![0.0; 12]);
    }

    #[test]
    fn nt_and_tn_match_their_references() {
        let (n, k, m) = (70, 96, 110); // big enough to take the transpose path
        let a = fill(n * k, 5);
        let bt = fill(m * k, 6); // m×k
        let want_nt = naive_nt(&a, &bt, n, k, m);
        assert_bitwise(&want_nt, &gemm_nt(&a, &bt, n, k, m));

        let at = fill(k * n, 7); // k×n
        let b = fill(k * m, 8);
        let want_tn = naive_tn(&at, &b, n, k, m);
        assert_bitwise(&want_tn, &gemm_tn(&at, &b, n, k, m));
    }

    #[test]
    fn select_keeps_decode_vectors_serial() {
        assert_eq!(select(1, 48, 4096, 8), KernelPath::Naive);
        assert_eq!(select(1, 512, 512, 8), KernelPath::Naive);
        assert_eq!(select(2, 16, 16, 8), KernelPath::Naive);
    }

    #[test]
    fn select_blocks_midsize_and_splits_large() {
        assert_eq!(select(64, 64, 64, 1), KernelPath::Blocked);
        assert_eq!(select(64, 64, 64, 8), KernelPath::Blocked); // < PAR_MIN_FLOPS
        assert_eq!(select(512, 512, 512, 8), KernelPath::Parallel { chunks: 8 });
        // Chunks are capped so no range is thinner than MIN_ROWS_PER_CHUNK.
        assert_eq!(
            select(96, 1024, 1024, 8),
            KernelPath::Parallel { chunks: 3 }
        );
    }

    #[test]
    fn partition_covers_rows_exactly_once() {
        for n in [0usize, 1, 5, 64, 67, 512] {
            for chunks in [1usize, 2, 3, 8, 600] {
                let ranges = partition(n, chunks);
                let mut next = 0;
                for &(r0, r1) in &ranges {
                    assert_eq!(r0, next);
                    assert!(r1 >= r0);
                    next = r1;
                }
                assert_eq!(next, n);
            }
        }
    }

    #[test]
    fn counters_move() {
        let before = counters();
        let a = fill(16, 9);
        let b = fill(16, 10);
        let _ = gemm(&a, &b, 4, 4, 4);
        let after = counters();
        assert!(after.serial > before.serial);
    }

    #[test]
    fn dispatch_counters_track_size_classes() {
        let read = |name: &str| qrec_obs::global().snapshot().counter(name).unwrap_or(0);
        let naive0 = read("tensor.gemm.naive");
        let blocked0 = read("tensor.gemm.blocked");
        // 4×4·4×4 is far below NAIVE_MAX_FLOPS; 64×64·64×64 is above it
        // but below PAR_MIN_FLOPS, so it lands on the blocked path.
        let _ = gemm(&fill(16, 9), &fill(16, 10), 4, 4, 4);
        let a = fill(64 * 64, 11);
        let _ = gemm(&a, &a, 64, 64, 64);
        assert!(read("tensor.gemm.naive") > naive0);
        assert!(read("tensor.gemm.blocked") > blocked0);
    }
}
