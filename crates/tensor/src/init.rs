//! Weight initialisers.

use crate::tensor::Tensor;
use rand::Rng;

/// Xavier/Glorot uniform initialisation: `U(-a, a)` with
/// `a = sqrt(6 / (fan_in + fan_out))`. The standard choice for linear
/// layers feeding saturating or softmax nonlinearities.
pub fn xavier_uniform(rows: usize, cols: usize, rng: &mut impl Rng) -> Tensor {
    let a = (6.0 / (rows + cols) as f32).sqrt();
    uniform(rows, cols, -a, a, rng)
}

/// Kaiming/He uniform initialisation for ReLU fan-in: `U(-a, a)` with
/// `a = sqrt(6 / fan_in)`.
pub fn kaiming_uniform(rows: usize, cols: usize, rng: &mut impl Rng) -> Tensor {
    let a = (6.0 / rows as f32).sqrt();
    uniform(rows, cols, -a, a, rng)
}

/// Uniform initialisation on `[lo, hi)`.
pub fn uniform(rows: usize, cols: usize, lo: f32, hi: f32, rng: &mut impl Rng) -> Tensor {
    let data = (0..rows * cols).map(|_| rng.gen_range(lo..hi)).collect();
    Tensor::from_vec(rows, cols, data)
}

/// Gaussian initialisation `N(0, std²)` via Box–Muller.
pub fn normal(rows: usize, cols: usize, std: f32, rng: &mut impl Rng) -> Tensor {
    let mut data = Vec::with_capacity(rows * cols);
    while data.len() < rows * cols {
        let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = rng.gen_range(0.0..1.0);
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        data.push(r * theta.cos() * std);
        if data.len() < rows * cols {
            data.push(r * theta.sin() * std);
        }
    }
    Tensor::from_vec(rows, cols, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn xavier_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = xavier_uniform(10, 20, &mut rng);
        let a = (6.0f32 / 30.0).sqrt();
        assert!(t.data().iter().all(|&x| x > -a && x < a));
    }

    #[test]
    fn normal_moments_roughly_right() {
        let mut rng = StdRng::seed_from_u64(2);
        let t = normal(100, 100, 0.5, &mut rng);
        let mean = t.mean();
        let var = t
            .data()
            .iter()
            .map(|&x| (x - mean) * (x - mean))
            .sum::<f32>()
            / t.len() as f32;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 0.25).abs() < 0.02, "var {var}");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = xavier_uniform(3, 3, &mut StdRng::seed_from_u64(7));
        let b = xavier_uniform(3, 3, &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
    }

    #[test]
    fn odd_element_count_normal() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = normal(3, 3, 1.0, &mut rng);
        assert_eq!(t.len(), 9);
        assert!(t.data().iter().all(|x| x.is_finite()));
    }
}
