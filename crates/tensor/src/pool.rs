//! A persistent compute pool for data-parallel kernels.
//!
//! The pool is a fixed set of worker threads draining a shared MPMC
//! injector channel (the vendored `crossbeam` shim): every idle worker
//! steals the next job from the shared queue, so a slow worker never
//! strands work that a faster sibling could take. Jobs are plain boxed
//! closures; result routing is the submitter's business (the GEMM
//! driver in [`crate::kernel`] hands each job a sender half of a
//! per-call channel).
//!
//! ## Lifecycle
//!
//! [`Pool::global`] lazily spawns the process-wide pool on first use and
//! never tears it down; worker threads block in `recv` and exit only if
//! the injector disconnects (which, for the global pool, is never).
//! Tests and benchmarks can build private pools with [`Pool::new`];
//! dropping such a pool disconnects its channel and the workers drain
//! outstanding jobs and exit.
//!
//! ## Sizing
//!
//! The global pool is sized by the `QREC_THREADS` environment variable,
//! read once at first use; unset, empty, unparsable, or `0` falls back
//! to [`std::thread::available_parallelism`]. `QREC_THREADS=1` keeps
//! every kernel on the caller thread (the pool still exists but the
//! kernel's threshold logic never splits work for it).
//!
//! ## Determinism
//!
//! The pool itself makes no ordering promises — jobs run whenever a
//! worker picks them up. Determinism of parallel kernels is the
//! *kernel's* contract: work is partitioned into ranges whose per-element
//! arithmetic is independent of the partition (see `crate::kernel`), so
//! any interleaving produces bitwise-identical output.

use crossbeam::channel::{self, Receiver, Sender};
use std::env;
use std::sync::OnceLock;
use std::thread;

/// A unit of work executed on a worker thread.
pub type Job = Box<dyn FnOnce() + Send + 'static>;

/// A persistent worker pool over a shared injector queue.
pub struct Pool {
    injector: Sender<Job>,
    threads: usize,
}

impl Pool {
    /// Spawn a pool with `threads` workers (clamped to at least 1).
    ///
    /// Threads are named `qrec-pool-N` and detached; they exit when the
    /// pool (and every outstanding clone of its injector) is dropped.
    /// If the OS refuses to spawn some workers the pool degrades to the
    /// count that did start — and if none did, [`Pool::submit`] runs
    /// jobs inline on the caller.
    pub fn new(threads: usize) -> Pool {
        let threads = threads.max(1);
        let (tx, rx) = channel::unbounded::<Job>();
        let mut spawned = 0usize;
        for i in 0..threads {
            let rx: Receiver<Job> = rx.clone();
            let res = thread::Builder::new()
                .name(format!("qrec-pool-{i}"))
                .spawn(move || {
                    while let Ok(job) = rx.recv() {
                        job();
                    }
                });
            if res.is_ok() {
                spawned += 1;
            }
        }
        Pool {
            injector: tx,
            threads: spawned.max(1),
        }
    }

    /// Number of live worker threads (at least 1).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Enqueue a job. If the pool has no live workers (spawn failure at
    /// construction), the job runs inline on the calling thread — the
    /// work always happens, just without parallelism.
    pub fn submit(&self, job: Job) {
        if let Err(send_err) = self.injector.send(job) {
            // Disconnected: no worker will ever run this; do it here.
            let channel::SendError(job) = send_err;
            job();
        }
    }

    /// The process-wide pool, created on first use and sized by
    /// [`configured_threads`].
    pub fn global() -> &'static Pool {
        static GLOBAL: OnceLock<Pool> = OnceLock::new();
        GLOBAL.get_or_init(|| Pool::new(configured_threads()))
    }
}

/// The worker count the global pool uses: `QREC_THREADS` if it parses
/// to a positive integer, otherwise [`std::thread::available_parallelism`]
/// (1 if even that is unavailable).
///
/// This is a pure read — it never spawns the pool — so servers can
/// report their effective compute-pool size without paying for workers
/// they might not need.
pub fn configured_threads() -> usize {
    match env::var("QREC_THREADS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => default_threads(),
        },
        Err(_) => default_threads(),
    }
}

fn default_threads() -> usize {
    thread::available_parallelism().map_or(1, |n| n.get())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn jobs_run_and_results_route_back() {
        let pool = Pool::new(4);
        assert_eq!(pool.threads(), 4);
        let (tx, rx) = channel::unbounded();
        for i in 0..32usize {
            let tx = tx.clone();
            pool.submit(Box::new(move || {
                tx.send(i * i).unwrap();
            }));
        }
        drop(tx);
        let mut got: Vec<usize> = rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, (0..32).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let pool = Pool::new(0);
        assert_eq!(pool.threads(), 1);
        let done = Arc::new(AtomicUsize::new(0));
        let d = Arc::clone(&done);
        let (tx, rx) = channel::bounded(1);
        pool.submit(Box::new(move || {
            d.fetch_add(1, Ordering::SeqCst);
            tx.send(()).unwrap();
        }));
        rx.recv().unwrap();
        assert_eq!(done.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn dropping_a_private_pool_drains_outstanding_jobs() {
        let (tx, rx) = channel::unbounded();
        {
            let pool = Pool::new(2);
            for i in 0..8usize {
                let tx = tx.clone();
                pool.submit(Box::new(move || {
                    tx.send(i).unwrap();
                }));
            }
        } // pool dropped: workers drain the queue, then exit
        drop(tx);
        let mut got: Vec<usize> = rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn global_pool_is_a_singleton() {
        let a = Pool::global() as *const Pool;
        let b = Pool::global() as *const Pool;
        assert_eq!(a, b);
        assert!(Pool::global().threads() >= 1);
    }

    #[test]
    fn configured_threads_is_positive() {
        assert!(configured_threads() >= 1);
    }
}
