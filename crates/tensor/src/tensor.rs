//! A dense, row-major, 2-D `f32` tensor.
//!
//! Everything in the `qrec` neural substrate is expressed over matrices:
//! a token sequence of length `n` with model dimension `d` is an `n × d`
//! tensor, a scalar is `1 × 1`, a vector is `1 × d`. Keeping the type 2-D
//! keeps every op simple, testable, and cache-friendly.

use serde::{Deserialize, Serialize};

/// A dense row-major matrix of `f32`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Tensor {
    /// Create a tensor from raw data. Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "data length {} does not match shape {}x{}",
            data.len(),
            rows,
            cols
        );
        Tensor { rows, cols, data }
    }

    /// All-zero tensor.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Tensor {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// All-one tensor.
    pub fn ones(rows: usize, cols: usize) -> Self {
        Tensor::full(rows, cols, 1.0)
    }

    /// Constant-filled tensor.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Tensor {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// A `1 × 1` scalar tensor.
    pub fn scalar(value: f32) -> Self {
        Tensor::from_vec(1, 1, vec![value])
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the tensor has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Raw data slice, row-major.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable raw data slice, row-major.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume into the raw data vector.
    pub fn into_data(self) -> Vec<f32> {
        self.data
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element setter.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// The value of a `1 × 1` tensor. Panics otherwise.
    pub fn item(&self) -> f32 {
        assert_eq!(self.shape(), (1, 1), "item() requires a 1x1 tensor");
        self.data.first().copied().unwrap_or_default()
    }

    /// Borrow one row as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Borrow one row mutably.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    // ------------------------------------------------------------------
    // Elementwise ops
    // ------------------------------------------------------------------

    /// Elementwise map into a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Elementwise combine with another tensor of the same shape.
    pub fn zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        self.assert_same_shape(other);
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// `self + other`.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a + b)
    }

    /// `self - other`.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a - b)
    }

    /// Elementwise product (Hadamard).
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a * b)
    }

    /// Scale by a constant.
    pub fn scale(&self, c: f32) -> Tensor {
        self.map(|x| x * c)
    }

    /// In-place `self += other`.
    pub fn add_assign(&mut self, other: &Tensor) {
        self.assert_same_shape(other);
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// In-place `self += c * other` (axpy).
    pub fn add_scaled_assign(&mut self, other: &Tensor, c: f32) {
        self.assert_same_shape(other);
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += c * b;
        }
    }

    /// In-place zero fill (reuse allocation).
    pub fn fill(&mut self, v: f32) {
        self.data.iter_mut().for_each(|x| *x = v);
    }

    // ------------------------------------------------------------------
    // Linear algebra
    // ------------------------------------------------------------------

    /// Matrix product `self · other` with shapes `(n,k) · (k,m) -> (n,m)`.
    ///
    /// Dispatches to the cache-blocked (and, for large products,
    /// pool-parallel) kernel in [`crate::kernel`]; every path is bitwise
    /// deterministic regardless of thread count.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: {}x{} · {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let (n, k, m) = (self.rows, self.cols, other.cols);
        Tensor {
            rows: n,
            cols: m,
            data: crate::kernel::gemm(&self.data, &other.data, n, k, m),
        }
    }

    /// Matrix product `self · otherᵀ` with shapes `(n,k) · (m,k) -> (n,m)`.
    ///
    /// Small products keep the dot-product form (no transpose
    /// materialised in attention `Q · Kᵀ`); large ones transpose once and
    /// reuse the blocked kernel. See [`crate::kernel::gemm_nt`].
    pub fn matmul_nt(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.cols, other.cols,
            "matmul_nt shape mismatch: {}x{} · ({}x{})ᵀ",
            self.rows, self.cols, other.rows, other.cols
        );
        let (n, k, m) = (self.rows, self.cols, other.rows);
        Tensor {
            rows: n,
            cols: m,
            data: crate::kernel::gemm_nt(&self.data, &other.data, n, k, m),
        }
    }

    /// Matrix product `selfᵀ · other` with shapes `(k,n) · (k,m) -> (n,m)`.
    ///
    /// Used in backward passes (`∂W = Xᵀ · ∂Y`). See
    /// [`crate::kernel::gemm_tn`].
    pub fn matmul_tn(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.rows, other.rows,
            "matmul_tn shape mismatch: ({}x{})ᵀ · {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let (k, n, m) = (self.rows, self.cols, other.cols);
        Tensor {
            rows: n,
            cols: m,
            data: crate::kernel::gemm_tn(&self.data, &other.data, n, k, m),
        }
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Tensor {
        let mut out = vec![0.0f32; self.data.len()];
        for r in 0..self.rows {
            for c in 0..self.cols {
                out[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        Tensor {
            rows: self.cols,
            cols: self.rows,
            data: out,
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements; 0.0 for an empty tensor.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Column-wise sum: `(n,d) -> (1,d)`.
    pub fn sum_rows(&self) -> Tensor {
        let mut out = vec![0.0f32; self.cols];
        for r in 0..self.rows {
            for (o, &x) in out.iter_mut().zip(self.row(r)) {
                *o += x;
            }
        }
        Tensor {
            rows: 1,
            cols: self.cols,
            data: out,
        }
    }

    /// Row-wise softmax, numerically stabilised.
    pub fn softmax_rows(&self) -> Tensor {
        let mut out = self.clone();
        for r in 0..out.rows {
            let row = out.row_mut(r);
            let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0f32;
            for x in row.iter_mut() {
                *x = (*x - max).exp();
                sum += *x;
            }
            if sum > 0.0 {
                for x in row.iter_mut() {
                    *x /= sum;
                }
            }
        }
        out
    }

    /// Squared L2 norm of all elements.
    pub fn sq_norm(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum()
    }

    /// The index of the maximum element of a row.
    pub fn argmax_row(&self, r: usize) -> usize {
        let row = self.row(r);
        let mut best = 0;
        let mut best_v = f32::NEG_INFINITY;
        for (i, &v) in row.iter().enumerate() {
            if v > best_v {
                best_v = v;
                best = i;
            }
        }
        best
    }

    /// Vertically stack rows of `self` and `other` (same column count).
    pub fn vcat(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.cols, other.cols, "vcat column mismatch");
        let mut data = Vec::with_capacity(self.data.len() + other.data.len());
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&other.data);
        Tensor {
            rows: self.rows + other.rows,
            cols: self.cols,
            data,
        }
    }

    /// Horizontally concatenate columns (same row count).
    pub fn hcat(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rows, other.rows, "hcat row mismatch");
        let cols = self.cols + other.cols;
        let mut data = Vec::with_capacity(self.rows * cols);
        for r in 0..self.rows {
            data.extend_from_slice(self.row(r));
            data.extend_from_slice(other.row(r));
        }
        Tensor {
            rows: self.rows,
            cols,
            data,
        }
    }

    /// Copy of rows `range.start .. range.end`.
    pub fn slice_rows(&self, start: usize, end: usize) -> Tensor {
        assert!(start <= end && end <= self.rows, "slice_rows out of range");
        Tensor {
            rows: end - start,
            cols: self.cols,
            data: self.data[start * self.cols..end * self.cols].to_vec(),
        }
    }

    /// Append one row in place (grow a `t × d` cache tensor to
    /// `(t+1) × d` without reallocating the prefix). The incremental
    /// decoder appends one K/V row per step this way.
    pub fn append_row(&mut self, row: &[f32]) {
        assert_eq!(
            row.len(),
            self.cols,
            "append_row width mismatch: row has {} values, tensor has {} columns",
            row.len(),
            self.cols
        );
        self.data.extend_from_slice(row);
        self.rows += 1;
    }

    /// Gather rows by index: row `i` of the result is `self.row(idx[i])`.
    /// Indices may repeat (beam search spawns several hypotheses from one
    /// parent) and the result may have more or fewer rows than `self`.
    pub fn gather_rows(&self, idx: &[usize]) -> Tensor {
        let mut data = Vec::with_capacity(idx.len() * self.cols);
        for &r in idx {
            assert!(
                r < self.rows,
                "gather_rows index {r} out of range for {} rows",
                self.rows
            );
            data.extend_from_slice(self.row(r));
        }
        Tensor {
            rows: idx.len(),
            cols: self.cols,
            data,
        }
    }

    fn assert_same_shape(&self, other: &Tensor) {
        assert_eq!(
            self.shape(),
            other.shape(),
            "shape mismatch: {:?} vs {:?}",
            self.shape(),
            other.shape()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(rows: usize, cols: usize, v: &[f32]) -> Tensor {
        Tensor::from_vec(rows, cols, v.to_vec())
    }

    #[test]
    fn construction_and_accessors() {
        let a = t(2, 3, &[1., 2., 3., 4., 5., 6.]);
        assert_eq!(a.shape(), (2, 3));
        assert_eq!(a.get(1, 2), 6.0);
        assert_eq!(a.row(1), &[4., 5., 6.]);
        assert_eq!(Tensor::scalar(3.5).item(), 3.5);
    }

    #[test]
    #[should_panic(expected = "data length")]
    fn bad_shape_panics() {
        let _ = Tensor::from_vec(2, 2, vec![1.0; 3]);
    }

    #[test]
    fn elementwise_ops() {
        let a = t(1, 3, &[1., 2., 3.]);
        let b = t(1, 3, &[10., 20., 30.]);
        assert_eq!(a.add(&b).data(), &[11., 22., 33.]);
        assert_eq!(b.sub(&a).data(), &[9., 18., 27.]);
        assert_eq!(a.mul(&b).data(), &[10., 40., 90.]);
        assert_eq!(a.scale(2.0).data(), &[2., 4., 6.]);
        let mut c = a.clone();
        c.add_scaled_assign(&b, 0.1);
        assert_eq!(c.data(), &[2., 4., 6.]);
    }

    #[test]
    fn matmul_reference() {
        let a = t(2, 3, &[1., 2., 3., 4., 5., 6.]);
        let b = t(3, 2, &[7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_variants_agree() {
        let a = t(2, 3, &[1., -2., 3., 0.5, 5., -6.]);
        let b = t(3, 4, &(1..=12).map(|x| x as f32 * 0.25).collect::<Vec<_>>());
        let plain = a.matmul(&b);
        let nt = a.matmul_nt(&b.transpose());
        let tn = a.transpose().matmul_tn(&b.transpose().transpose());
        for (x, y) in plain.data().iter().zip(nt.data()) {
            assert!((x - y).abs() < 1e-5);
        }
        for (x, y) in plain.data().iter().zip(tn.data()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn transpose_involution() {
        let a = t(2, 3, &[1., 2., 3., 4., 5., 6.]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().get(2, 1), 6.0);
    }

    #[test]
    fn softmax_rows_sums_to_one() {
        let a = t(2, 3, &[1., 2., 3., -1000., 0., 1000.]);
        let s = a.softmax_rows();
        for r in 0..2 {
            let sum: f32 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5, "row {r} sums to {sum}");
        }
        // Monotone: bigger logits get bigger probabilities.
        assert!(s.get(0, 2) > s.get(0, 1) && s.get(0, 1) > s.get(0, 0));
        // Extreme logits saturate without NaN.
        assert!(s.get(1, 2) > 0.99 && s.data().iter().all(|x| x.is_finite()));
    }

    #[test]
    fn reductions() {
        let a = t(2, 2, &[1., 2., 3., 4.]);
        assert_eq!(a.sum(), 10.0);
        assert_eq!(a.mean(), 2.5);
        assert_eq!(a.sum_rows().data(), &[4., 6.]);
        assert_eq!(a.sq_norm(), 30.0);
    }

    #[test]
    fn argmax_row_picks_first_max() {
        let a = t(1, 4, &[0., 5., 5., 1.]);
        assert_eq!(a.argmax_row(0), 1);
    }

    #[test]
    fn concat_and_slice() {
        let a = t(1, 2, &[1., 2.]);
        let b = t(2, 2, &[3., 4., 5., 6.]);
        let v = a.vcat(&b);
        assert_eq!(v.shape(), (3, 2));
        assert_eq!(v.row(2), &[5., 6.]);
        let h = a.hcat(&t(1, 1, &[9.]));
        assert_eq!(h.data(), &[1., 2., 9.]);
        assert_eq!(v.slice_rows(1, 3), b);
    }

    #[test]
    fn append_row_grows_cache_tensors() {
        let mut a = Tensor::zeros(0, 3);
        a.append_row(&[1., 2., 3.]);
        a.append_row(&[4., 5., 6.]);
        assert_eq!(a.shape(), (2, 3));
        assert_eq!(a.row(1), &[4., 5., 6.]);
    }

    #[test]
    #[should_panic(expected = "append_row width mismatch")]
    fn append_row_rejects_wrong_width() {
        let mut a = Tensor::zeros(1, 3);
        a.append_row(&[1., 2.]);
    }

    #[test]
    fn gather_rows_permutes_and_repeats() {
        let a = t(3, 2, &[1., 2., 3., 4., 5., 6.]);
        let g = a.gather_rows(&[2, 0, 2, 2]);
        assert_eq!(g.shape(), (4, 2));
        assert_eq!(g.row(0), &[5., 6.]);
        assert_eq!(g.row(1), &[1., 2.]);
        assert_eq!(g.row(3), &[5., 6.]);
        assert_eq!(a.gather_rows(&[]).shape(), (0, 2));
    }

    #[test]
    #[should_panic(expected = "gather_rows index")]
    fn gather_rows_rejects_out_of_range() {
        let _ = t(2, 1, &[1., 2.]).gather_rows(&[2]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn zip_shape_mismatch_panics() {
        let _ = t(1, 2, &[1., 2.]).add(&t(2, 1, &[1., 2.]));
    }

    #[test]
    fn matmul_skips_zero_rows_correctly() {
        // The a == 0.0 fast path must not change results.
        let a = t(2, 3, &[0., 0., 0., 1., 0., 2.]);
        let b = t(3, 2, &[1., 2., 3., 4., 5., 6.]);
        assert_eq!(a.matmul(&b).data(), &[0., 0., 11., 14.]);
    }
}
