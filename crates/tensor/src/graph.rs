//! Tape-based reverse-mode automatic differentiation.
//!
//! A [`Graph`] records one forward computation; [`Graph::backward`] then
//! walks the tape in reverse and accumulates gradients into every node.
//! Leaf nodes created with [`Graph::input`] keep their gradients after the
//! pass (read them with [`Graph::grad`]); internal-node gradients are
//! dropped as soon as they have been propagated.
//!
//! The design is an arena tape: nodes are indexed by [`NodeId`], each op
//! pushes a value and a boxed backward closure. A graph is built per
//! training example (or per small batch), used once, and discarded —
//! exactly the life cycle of seq2seq training at the paper's scale.

use crate::tensor::Tensor;
use std::sync::Arc;

/// Handle to a node in a [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(usize);

/// Gradient accumulator handed to backward closures.
pub struct GradStore<'a> {
    grads: &'a mut Vec<Option<Tensor>>,
}

impl GradStore<'_> {
    /// Add `g` into the gradient of `id`.
    pub fn accumulate(&mut self, id: NodeId, g: Tensor) {
        match &mut self.grads[id.0] {
            Some(existing) => existing.add_assign(&g),
            slot @ None => *slot = Some(g),
        }
    }
}

type BackFn = Box<dyn FnOnce(&Tensor, &[Arc<Tensor>], &mut GradStore<'_>)>;

/// A single-use reverse-mode autodiff tape.
///
/// Node values are held as `Arc<Tensor>` so callers that reuse a value
/// across many graphs (the beam-search decoder re-feeding the encoder
/// output every step) can share one allocation via
/// [`Graph::input_shared`] / [`Graph::value_shared`] instead of cloning
/// the tensor data.
#[derive(Default)]
pub struct Graph {
    values: Vec<Arc<Tensor>>,
    grads: Vec<Option<Tensor>>,
    backs: Vec<Option<BackFn>>,
}

impl Graph {
    /// An empty graph.
    pub fn new() -> Self {
        Graph::default()
    }

    /// Number of nodes recorded so far.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if no nodes have been recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    fn push(&mut self, value: Tensor, back: Option<BackFn>) -> NodeId {
        self.push_shared(Arc::new(value), back)
    }

    fn push_shared(&mut self, value: Arc<Tensor>, back: Option<BackFn>) -> NodeId {
        let id = NodeId(self.values.len());
        self.values.push(value);
        self.grads.push(None);
        self.backs.push(back);
        id
    }

    /// Register a leaf node. Its gradient survives [`Graph::backward`].
    pub fn input(&mut self, value: Tensor) -> NodeId {
        self.push(value, None)
    }

    /// Register a leaf node backed by an existing shared tensor without
    /// copying its data. Its gradient survives [`Graph::backward`].
    pub fn input_shared(&mut self, value: Arc<Tensor>) -> NodeId {
        self.push_shared(value, None)
    }

    /// The value of a node.
    pub fn value(&self, id: NodeId) -> &Tensor {
        self.values[id.0].as_ref()
    }

    /// The value of a node as a shared handle (no tensor data copied).
    pub fn value_shared(&self, id: NodeId) -> Arc<Tensor> {
        Arc::clone(&self.values[id.0])
    }

    /// The accumulated gradient of a leaf node after [`Graph::backward`],
    /// or `None` if no gradient reached it.
    pub fn grad(&self, id: NodeId) -> Option<&Tensor> {
        self.grads[id.0].as_ref()
    }

    /// Run the backward pass from `loss` (must be `1 × 1`).
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not scalar-shaped.
    pub fn backward(&mut self, loss: NodeId) {
        assert_eq!(
            self.values[loss.0].shape(),
            (1, 1),
            "backward() must start from a scalar loss"
        );
        self.grads[loss.0] = Some(Tensor::scalar(1.0));
        for i in (0..=loss.0).rev() {
            let Some(back) = self.backs[i].take() else {
                continue; // leaf: keep its gradient for the caller
            };
            let Some(g) = self.grads[i].take() else {
                continue; // no gradient flowed here
            };
            let mut store = GradStore {
                grads: &mut self.grads,
            };
            back(&g, &self.values, &mut store);
        }
    }

    // ------------------------------------------------------------------
    // Elementwise / arithmetic ops
    // ------------------------------------------------------------------

    /// `a + b` (same shapes).
    pub fn add(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.values[a.0].add(&self.values[b.0]);
        self.push(
            v,
            Some(Box::new(move |g, _vals, store| {
                store.accumulate(a, g.clone());
                store.accumulate(b, g.clone());
            })),
        )
    }

    /// `a - b` (same shapes).
    pub fn sub(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.values[a.0].sub(&self.values[b.0]);
        self.push(
            v,
            Some(Box::new(move |g, _vals, store| {
                store.accumulate(a, g.clone());
                store.accumulate(b, g.scale(-1.0));
            })),
        )
    }

    /// Elementwise product (same shapes).
    pub fn mul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.values[a.0].mul(&self.values[b.0]);
        self.push(
            v,
            Some(Box::new(move |g, vals, store| {
                store.accumulate(a, g.mul(&vals[b.0]));
                store.accumulate(b, g.mul(&vals[a.0]));
            })),
        )
    }

    /// `c · a` for a constant `c`.
    pub fn scale(&mut self, a: NodeId, c: f32) -> NodeId {
        let v = self.values[a.0].scale(c);
        self.push(
            v,
            Some(Box::new(move |g, _vals, store| {
                store.accumulate(a, g.scale(c));
            })),
        )
    }

    /// `1 - a`.
    pub fn one_minus(&mut self, a: NodeId) -> NodeId {
        let v = self.values[a.0].map(|x| 1.0 - x);
        self.push(
            v,
            Some(Box::new(move |g, _vals, store| {
                store.accumulate(a, g.scale(-1.0));
            })),
        )
    }

    /// Broadcast-add a `1 × d` bias to every row of an `n × d` tensor.
    pub fn add_bias(&mut self, a: NodeId, bias: NodeId) -> NodeId {
        let av = &self.values[a.0];
        let bv = &self.values[bias.0];
        assert_eq!(bv.rows(), 1, "bias must be 1 x d");
        assert_eq!(av.cols(), bv.cols(), "bias width mismatch");
        let mut v = av.as_ref().clone();
        for r in 0..v.rows() {
            for (x, &b) in v.row_mut(r).iter_mut().zip(bv.row(0)) {
                *x += b;
            }
        }
        self.push(
            v,
            Some(Box::new(move |g, _vals, store| {
                store.accumulate(a, g.clone());
                store.accumulate(bias, g.sum_rows());
            })),
        )
    }

    // ------------------------------------------------------------------
    // Linear algebra
    // ------------------------------------------------------------------

    /// Matrix product `a · b`.
    pub fn matmul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.values[a.0].matmul(&self.values[b.0]);
        self.push(
            v,
            Some(Box::new(move |g, vals, store| {
                // ∂a = g · bᵀ ; ∂b = aᵀ · g
                store.accumulate(a, g.matmul_nt(&vals[b.0]));
                store.accumulate(b, vals[a.0].matmul_tn(g));
            })),
        )
    }

    /// Matrix product with transposed right operand: `a · bᵀ`.
    pub fn matmul_nt(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.values[a.0].matmul_nt(&self.values[b.0]);
        self.push(
            v,
            Some(Box::new(move |g, vals, store| {
                // out = a bᵀ: ∂a = g · b ; ∂b = gᵀ · a
                store.accumulate(a, g.matmul(&vals[b.0]));
                store.accumulate(b, g.matmul_tn(&vals[a.0]));
            })),
        )
    }

    // ------------------------------------------------------------------
    // Nonlinearities
    // ------------------------------------------------------------------

    /// Rectified linear unit.
    pub fn relu(&mut self, a: NodeId) -> NodeId {
        let v = self.values[a.0].map(|x| x.max(0.0));
        self.push(
            v,
            Some(Box::new(move |g, vals, store| {
                store.accumulate(a, g.zip(&vals[a.0], |g, x| if x > 0.0 { g } else { 0.0 }));
            })),
        )
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: NodeId) -> NodeId {
        let v = self.values[a.0].map(|x| 1.0 / (1.0 + (-x).exp()));
        // Push first so the closure can reference its own saved output.
        let id = self.push(v, None);
        let me = id;
        self.backs[id.0] = Some(Box::new(move |g, vals, store| {
            let out = &vals[me.0];
            store.accumulate(a, g.zip(out, |g, y| g * y * (1.0 - y)));
        }));
        id
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: NodeId) -> NodeId {
        let v = self.values[a.0].map(f32::tanh);
        let id = self.push(v, None);
        let me = id;
        self.backs[id.0] = Some(Box::new(move |g, vals, store| {
            let out = &vals[me.0];
            store.accumulate(a, g.zip(out, |g, y| g * (1.0 - y * y)));
        }));
        id
    }

    /// Row-wise softmax.
    pub fn softmax_rows(&mut self, a: NodeId) -> NodeId {
        let v = self.values[a.0].softmax_rows();
        let id = self.push(v, None);
        let me = id;
        self.backs[id.0] = Some(Box::new(move |g, vals, store| {
            let out = &vals[me.0];
            let mut ga = Tensor::zeros(out.rows(), out.cols());
            for r in 0..out.rows() {
                let srow = out.row(r);
                let grow = g.row(r);
                let dot: f32 = srow.iter().zip(grow).map(|(&s, &gg)| s * gg).sum();
                for (o, (&s, &gg)) in ga.row_mut(r).iter_mut().zip(srow.iter().zip(grow)) {
                    *o = s * (gg - dot);
                }
            }
            store.accumulate(a, ga);
        }));
        id
    }

    /// Gated linear unit over the column halves: input `n × 2d`,
    /// output `n × d` computed as `x[:, :d] ⊙ σ(x[:, d:])`.
    #[allow(clippy::needless_range_loop)] // index couples two half-rows
    pub fn glu(&mut self, a: NodeId) -> NodeId {
        let av = &self.values[a.0];
        assert!(
            av.cols().is_multiple_of(2),
            "GLU needs an even column count"
        );
        let d = av.cols() / 2;
        let mut v = Tensor::zeros(av.rows(), d);
        for r in 0..av.rows() {
            let row = av.row(r);
            for c in 0..d {
                let gate = 1.0 / (1.0 + (-row[d + c]).exp());
                v.set(r, c, row[c] * gate);
            }
        }
        self.push(
            v,
            Some(Box::new(move |g, vals, store| {
                let av = &vals[a.0];
                let d = av.cols() / 2;
                let mut ga = Tensor::zeros(av.rows(), av.cols());
                for r in 0..av.rows() {
                    let row = av.row(r);
                    let grow = g.row(r);
                    let garow = ga.row_mut(r);
                    for c in 0..d {
                        let gate = 1.0 / (1.0 + (-row[d + c]).exp());
                        garow[c] = grow[c] * gate;
                        garow[d + c] = grow[c] * row[c] * gate * (1.0 - gate);
                    }
                }
                store.accumulate(a, ga);
            })),
        )
    }

    // ------------------------------------------------------------------
    // Normalisation
    // ------------------------------------------------------------------

    /// Row-wise layer normalisation with learnable `gamma`/`beta`
    /// (`1 × d` each): `y = γ ⊙ (x - μ)/σ + β`.
    #[allow(clippy::needless_range_loop)] // indices couple several parallel buffers
    pub fn layer_norm(&mut self, a: NodeId, gamma: NodeId, beta: NodeId) -> NodeId {
        const EPS: f32 = 1e-5;
        let av = &self.values[a.0];
        let gv = &self.values[gamma.0];
        let bv = &self.values[beta.0];
        assert_eq!(gv.shape(), (1, av.cols()), "gamma must be 1 x d");
        assert_eq!(bv.shape(), (1, av.cols()), "beta must be 1 x d");
        let (n, d) = av.shape();
        let mut v = Tensor::zeros(n, d);
        // Save per-row (mean, inv_std) and the normalised x̂ for backward.
        let mut xhat = Tensor::zeros(n, d);
        let mut inv_stds = Vec::with_capacity(n);
        for r in 0..n {
            let row = av.row(r);
            let mean = row.iter().sum::<f32>() / d as f32;
            let var = row.iter().map(|&x| (x - mean) * (x - mean)).sum::<f32>() / d as f32;
            let inv_std = 1.0 / (var + EPS).sqrt();
            inv_stds.push(inv_std);
            for c in 0..d {
                let xh = (row[c] - mean) * inv_std;
                xhat.set(r, c, xh);
                v.set(r, c, gv.get(0, c) * xh + bv.get(0, c));
            }
        }
        self.push(
            v,
            Some(Box::new(move |g, vals, store| {
                let gv = &vals[gamma.0];
                let (n, d) = g.shape();
                let mut ga = Tensor::zeros(n, d);
                let mut ggamma = Tensor::zeros(1, d);
                let mut gbeta = Tensor::zeros(1, d);
                for r in 0..n {
                    let grow = g.row(r);
                    let xrow = xhat.row(r);
                    let inv_std = inv_stds[r];
                    // dL/dx̂ = g ⊙ γ
                    let dxhat: Vec<f32> = grow
                        .iter()
                        .zip(gv.row(0))
                        .map(|(&gg, &gam)| gg * gam)
                        .collect();
                    let sum_dxhat: f32 = dxhat.iter().sum();
                    let sum_dxhat_xhat: f32 =
                        dxhat.iter().zip(xrow).map(|(&dx, &xh)| dx * xh).sum();
                    for c in 0..d {
                        let t =
                            dxhat[c] - sum_dxhat / d as f32 - xrow[c] * sum_dxhat_xhat / d as f32;
                        ga.set(r, c, t * inv_std);
                        ggamma.data_mut()[c] += grow[c] * xrow[c];
                        gbeta.data_mut()[c] += grow[c];
                    }
                }
                store.accumulate(a, ga);
                store.accumulate(gamma, ggamma);
                store.accumulate(beta, gbeta);
            })),
        )
    }

    // ------------------------------------------------------------------
    // Gather / scatter and shape ops
    // ------------------------------------------------------------------

    /// Row gather from an embedding table: `weight[v × d]`, `ids` →
    /// `len(ids) × d`.
    pub fn embedding(&mut self, weight: NodeId, ids: &[usize]) -> NodeId {
        let wv = &self.values[weight.0];
        let d = wv.cols();
        let mut v = Tensor::zeros(ids.len(), d);
        for (r, &id) in ids.iter().enumerate() {
            assert!(id < wv.rows(), "embedding id {id} out of range");
            v.row_mut(r).copy_from_slice(wv.row(id));
        }
        let ids = ids.to_vec();
        self.push(
            v,
            Some(Box::new(move |g, vals, store| {
                let wv = &vals[weight.0];
                let mut gw = Tensor::zeros(wv.rows(), wv.cols());
                for (r, &id) in ids.iter().enumerate() {
                    for (o, &x) in gw.row_mut(id).iter_mut().zip(g.row(r)) {
                        *o += x;
                    }
                }
                store.accumulate(weight, gw);
            })),
        )
    }

    /// Horizontal concatenation `[a | b]`.
    pub fn hcat(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.values[a.0].hcat(&self.values[b.0]);
        let a_cols = self.values[a.0].cols();
        self.push(
            v,
            Some(Box::new(move |g, _vals, store| {
                let (n, total) = g.shape();
                let mut ga = Tensor::zeros(n, a_cols);
                let mut gb = Tensor::zeros(n, total - a_cols);
                for r in 0..n {
                    let grow = g.row(r);
                    ga.row_mut(r).copy_from_slice(&grow[..a_cols]);
                    gb.row_mut(r).copy_from_slice(&grow[a_cols..]);
                }
                store.accumulate(a, ga);
                store.accumulate(b, gb);
            })),
        )
    }

    /// Vertical concatenation (stack rows).
    pub fn vcat(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.values[a.0].vcat(&self.values[b.0]);
        let a_rows = self.values[a.0].rows();
        self.push(
            v,
            Some(Box::new(move |g, _vals, store| {
                store.accumulate(a, g.slice_rows(0, a_rows));
                store.accumulate(b, g.slice_rows(a_rows, g.rows()));
            })),
        )
    }

    /// Copy of rows `start..end`.
    pub fn slice_rows(&mut self, a: NodeId, start: usize, end: usize) -> NodeId {
        let v = self.values[a.0].slice_rows(start, end);
        let (rows, cols) = self.values[a.0].shape();
        self.push(
            v,
            Some(Box::new(move |g, _vals, store| {
                let mut ga = Tensor::zeros(rows, cols);
                for r in start..end {
                    ga.row_mut(r).copy_from_slice(g.row(r - start));
                }
                store.accumulate(a, ga);
            })),
        )
    }

    /// Copy of columns `start..end`.
    pub fn slice_cols(&mut self, a: NodeId, start: usize, end: usize) -> NodeId {
        let av = &self.values[a.0];
        let (rows, cols) = av.shape();
        assert!(start <= end && end <= cols, "slice_cols out of range");
        let mut v = Tensor::zeros(rows, end - start);
        for r in 0..rows {
            v.row_mut(r).copy_from_slice(&av.row(r)[start..end]);
        }
        self.push(
            v,
            Some(Box::new(move |g, _vals, store| {
                let mut ga = Tensor::zeros(rows, cols);
                for r in 0..rows {
                    ga.row_mut(r)[start..end].copy_from_slice(g.row(r));
                }
                store.accumulate(a, ga);
            })),
        )
    }

    /// Centered window unfold (im2col for a non-causal 1-D convolution):
    /// output row `i` concatenates input rows `i-⌊k/2⌋ … i+⌈k/2⌉-1`,
    /// zero-padded at both ends. Output shape `n × (k·d)`. Used by the
    /// ConvS2S *encoder*, where future context is visible.
    pub fn unfold_centered(&mut self, a: NodeId, k: usize) -> NodeId {
        let av = &self.values[a.0];
        let (n, d) = av.shape();
        let left = k / 2;
        let mut v = Tensor::zeros(n, k * d);
        for i in 0..n {
            for j in 0..k {
                let src = i as isize + j as isize - left as isize;
                if src >= 0 && (src as usize) < n {
                    let dst = &mut v.row_mut(i)[j * d..(j + 1) * d];
                    dst.copy_from_slice(av.row(src as usize));
                }
            }
        }
        self.push(
            v,
            Some(Box::new(move |g, _vals, store| {
                let mut ga = Tensor::zeros(n, d);
                for i in 0..n {
                    let grow = g.row(i);
                    for j in 0..k {
                        let src = i as isize + j as isize - left as isize;
                        if src >= 0 && (src as usize) < n {
                            let dst = ga.row_mut(src as usize);
                            for (o, &x) in dst.iter_mut().zip(&grow[j * d..(j + 1) * d]) {
                                *o += x;
                            }
                        }
                    }
                }
                store.accumulate(a, ga);
            })),
        )
    }

    /// Mean over rows: `n × d → 1 × d`.
    pub fn mean_rows(&mut self, a: NodeId) -> NodeId {
        let av = &self.values[a.0];
        let n = av.rows().max(1);
        let v = av.sum_rows().scale(1.0 / n as f32);
        let rows = av.rows();
        self.push(
            v,
            Some(Box::new(move |g, _vals, store| {
                let mut ga = Tensor::zeros(rows, g.cols());
                let inv = 1.0 / rows.max(1) as f32;
                for r in 0..rows {
                    for (o, &x) in ga.row_mut(r).iter_mut().zip(g.row(0)) {
                        *o = x * inv;
                    }
                }
                store.accumulate(a, ga);
            })),
        )
    }

    /// Causal window unfold (im2col for 1-D convolution): each output row
    /// `i` is the concatenation of input rows `i-k+1 … i` (zero-padded on
    /// the left). Output shape `n × (k·d)`.
    pub fn unfold_causal(&mut self, a: NodeId, k: usize) -> NodeId {
        let av = &self.values[a.0];
        let (n, d) = av.shape();
        let mut v = Tensor::zeros(n, k * d);
        for i in 0..n {
            for j in 0..k {
                let src = i as isize - (k - 1 - j) as isize;
                if src >= 0 {
                    let dst = &mut v.row_mut(i)[j * d..(j + 1) * d];
                    dst.copy_from_slice(av.row(src as usize));
                }
            }
        }
        self.push(
            v,
            Some(Box::new(move |g, _vals, store| {
                let mut ga = Tensor::zeros(n, d);
                for i in 0..n {
                    let grow = g.row(i);
                    for j in 0..k {
                        let src = i as isize - (k - 1 - j) as isize;
                        if src >= 0 {
                            let dst = ga.row_mut(src as usize);
                            for (o, &x) in dst.iter_mut().zip(&grow[j * d..(j + 1) * d]) {
                                *o += x;
                            }
                        }
                    }
                }
                store.accumulate(a, ga);
            })),
        )
    }

    // ------------------------------------------------------------------
    // Losses
    // ------------------------------------------------------------------

    /// Mean token-level cross-entropy between `logits` (`n × v`) and
    /// integer `targets` (length `n`). Returns a scalar node.
    pub fn cross_entropy(&mut self, logits: NodeId, targets: &[usize]) -> NodeId {
        let lv = &self.values[logits.0];
        assert_eq!(lv.rows(), targets.len(), "one target per logits row");
        let probs = lv.softmax_rows();
        let n = targets.len().max(1);
        let mut loss = 0.0f32;
        for (r, &t) in targets.iter().enumerate() {
            assert!(t < lv.cols(), "target {t} out of vocabulary");
            loss -= probs.get(r, t).max(1e-12).ln();
        }
        loss /= n as f32;
        let targets = targets.to_vec();
        self.push(
            Tensor::scalar(loss),
            Some(Box::new(move |g, _vals, store| {
                let gscale = g.item() / n as f32;
                let mut gl = probs; // moved in: (softmax - onehot) * gscale
                for (r, &t) in targets.iter().enumerate() {
                    let row = gl.row_mut(r);
                    row[t] -= 1.0;
                    for x in row.iter_mut() {
                        *x *= gscale;
                    }
                }
                store.accumulate(logits, gl);
            })),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Central finite-difference gradient check for a scalar-valued
    /// function of one tensor input.
    fn grad_check(input: Tensor, build: impl Fn(&mut Graph, NodeId) -> NodeId, tol: f32) {
        // Analytic gradient.
        let mut g = Graph::new();
        let x = g.input(input.clone());
        let loss = build(&mut g, x);
        g.backward(loss);
        let analytic = g.grad(x).expect("input must receive gradient").clone();

        // Numeric gradient.
        let eps = 1e-2f32;
        let mut numeric = Tensor::zeros(input.rows(), input.cols());
        for i in 0..input.len() {
            let mut plus = input.clone();
            plus.data_mut()[i] += eps;
            let mut minus = input.clone();
            minus.data_mut()[i] -= eps;
            let f = |t: Tensor| {
                let mut g = Graph::new();
                let x = g.input(t);
                let loss = build(&mut g, x);
                g.value(loss).item()
            };
            numeric.data_mut()[i] = (f(plus) - f(minus)) / (2.0 * eps);
        }
        for i in 0..input.len() {
            let a = analytic.data()[i];
            let n = numeric.data()[i];
            assert!(
                (a - n).abs() <= tol * (1.0 + a.abs().max(n.abs())),
                "grad mismatch at {i}: analytic {a} vs numeric {n}"
            );
        }
    }

    /// Reduce any node to a scalar via a fixed random projection so the
    /// check exercises non-uniform output gradients.
    fn to_scalar(g: &mut Graph, y: NodeId) -> NodeId {
        let (n, d) = g.value(y).shape();
        let mut rng = StdRng::seed_from_u64(42);
        let w = g.input(init::uniform(d, 1, -1.0, 1.0, &mut rng));
        let prod = g.matmul(y, w); // n x 1
        let ones = g.input(Tensor::ones(1, n));
        let mm = g.matmul(ones, prod); // 1 x 1
        g.scale(mm, 1.0 / n as f32)
    }

    fn sample(rows: usize, cols: usize, seed: u64) -> Tensor {
        let mut rng = StdRng::seed_from_u64(seed);
        init::uniform(rows, cols, -1.0, 1.0, &mut rng)
    }

    #[test]
    fn grad_add_sub_mul_scale() {
        let other = sample(3, 4, 1);
        grad_check(
            sample(3, 4, 2),
            |g, x| {
                let o = g.input(other.clone());
                let s = g.add(x, o);
                let m = g.mul(s, x);
                let d = g.sub(m, o);
                let sc = g.scale(d, 0.5);
                to_scalar(g, sc)
            },
            1e-2,
        );
    }

    #[test]
    fn grad_matmul_both_sides() {
        let w = sample(4, 3, 3);
        grad_check(
            sample(2, 4, 4),
            |g, x| {
                let wn = g.input(w.clone());
                let y = g.matmul(x, wn);
                to_scalar(g, y)
            },
            1e-2,
        );
        // Right-hand side gradient.
        let a = sample(3, 4, 5);
        grad_check(
            sample(4, 2, 6),
            |g, x| {
                let an = g.input(a.clone());
                let y = g.matmul(an, x);
                to_scalar(g, y)
            },
            1e-2,
        );
    }

    #[test]
    fn grad_matmul_nt() {
        let b = sample(5, 4, 7);
        grad_check(
            sample(2, 4, 8),
            |g, x| {
                let bn = g.input(b.clone());
                let y = g.matmul_nt(x, bn);
                to_scalar(g, y)
            },
            1e-2,
        );
    }

    #[test]
    fn grad_nonlinearities() {
        for (name, f) in [
            ("relu", 0usize),
            ("sigmoid", 1),
            ("tanh", 2),
            ("softmax", 3),
        ] {
            let _ = name;
            grad_check(
                sample(3, 5, 10 + f as u64).scale(2.0),
                move |g, x| {
                    let y = match f {
                        0 => g.relu(x),
                        1 => g.sigmoid(x),
                        2 => g.tanh(x),
                        _ => g.softmax_rows(x),
                    };
                    to_scalar(g, y)
                },
                2e-2,
            );
        }
    }

    #[test]
    fn grad_glu() {
        grad_check(
            sample(3, 6, 20),
            |g, x| {
                let y = g.glu(x);
                to_scalar(g, y)
            },
            2e-2,
        );
    }

    #[test]
    fn grad_layer_norm_input_and_params() {
        let gamma = sample(1, 4, 21).scale(0.5).map(|x| x + 1.0);
        let beta = sample(1, 4, 22);
        grad_check(
            sample(3, 4, 23),
            |g, x| {
                let ga = g.input(gamma.clone());
                let be = g.input(beta.clone());
                let y = g.layer_norm(x, ga, be);
                to_scalar(g, y)
            },
            5e-2,
        );
        // Gamma gradient.
        let input = sample(3, 4, 24);
        grad_check(
            gamma,
            |g, ga| {
                let x = g.input(input.clone());
                let be = g.input(beta.clone());
                let y = g.layer_norm(x, ga, be);
                to_scalar(g, y)
            },
            2e-2,
        );
    }

    #[test]
    fn grad_add_bias() {
        let bias = sample(1, 4, 30);
        grad_check(
            sample(3, 4, 31),
            |g, x| {
                let b = g.input(bias.clone());
                let y = g.add_bias(x, b);
                to_scalar(g, y)
            },
            1e-2,
        );
        let a = sample(3, 4, 32);
        grad_check(
            bias,
            |g, b| {
                let x = g.input(a.clone());
                let y = g.add_bias(x, b);
                to_scalar(g, y)
            },
            1e-2,
        );
    }

    #[test]
    fn grad_embedding_scatters() {
        let ids = vec![2usize, 0, 2, 1];
        grad_check(
            sample(3, 4, 40),
            |g, w| {
                let y = g.embedding(w, &ids);
                to_scalar(g, y)
            },
            1e-2,
        );
    }

    #[test]
    fn grad_concat_slice_mean() {
        let other = sample(2, 3, 50);
        grad_check(
            sample(2, 3, 51),
            |g, x| {
                let o = g.input(other.clone());
                let h = g.hcat(x, o);
                let v = g.vcat(h, h);
                let s = g.slice_rows(v, 1, 4);
                let m = g.mean_rows(s);
                to_scalar(g, m)
            },
            2e-2,
        );
    }

    #[test]
    fn grad_unfold_causal() {
        grad_check(
            sample(4, 3, 60),
            |g, x| {
                let u = g.unfold_causal(x, 3);
                to_scalar(g, u)
            },
            1e-2,
        );
    }

    #[test]
    fn grad_slice_cols() {
        grad_check(
            sample(3, 6, 61),
            |g, x| {
                let s = g.slice_cols(x, 1, 4);
                to_scalar(g, s)
            },
            1e-2,
        );
    }

    #[test]
    fn grad_unfold_centered() {
        grad_check(
            sample(5, 2, 62),
            |g, x| {
                let u = g.unfold_centered(x, 3);
                to_scalar(g, u)
            },
            1e-2,
        );
    }

    #[test]
    fn unfold_centered_values() {
        let mut g = Graph::new();
        let x = g.input(Tensor::from_vec(3, 1, vec![1., 2., 3.]));
        let u = g.unfold_centered(x, 3);
        // Row i = [x[i-1], x[i], x[i+1]] with zero pads.
        assert_eq!(g.value(u).data(), &[0., 1., 2., 1., 2., 3., 2., 3., 0.]);
    }

    #[test]
    fn slice_cols_values() {
        let mut g = Graph::new();
        let x = g.input(Tensor::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]));
        let s = g.slice_cols(x, 1, 3);
        assert_eq!(g.value(s).data(), &[2., 3., 5., 6.]);
    }

    #[test]
    fn grad_cross_entropy() {
        let targets = vec![1usize, 3, 0];
        grad_check(
            sample(3, 5, 70).scale(2.0),
            |g, x| g.cross_entropy(x, &targets),
            1e-2,
        );
    }

    #[test]
    fn cross_entropy_value_matches_manual() {
        let mut g = Graph::new();
        let logits = g.input(Tensor::from_vec(1, 3, vec![0.0, 0.0, 0.0]));
        let loss = g.cross_entropy(logits, &[2]);
        // Uniform softmax over 3 classes: -ln(1/3).
        assert!((g.value(loss).item() - (3.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn gradients_accumulate_over_reuse() {
        // y = x + x → dy/dx = 2
        let mut g = Graph::new();
        let x = g.input(Tensor::scalar(1.5));
        let y = g.add(x, x);
        g.backward(y);
        assert_eq!(g.grad(x).unwrap().item(), 2.0);
    }

    #[test]
    fn no_grad_for_unreached_leaf() {
        let mut g = Graph::new();
        let x = g.input(Tensor::scalar(1.0));
        let y = g.input(Tensor::scalar(2.0));
        let z = g.scale(x, 3.0);
        g.backward(z);
        assert!(g.grad(y).is_none());
        assert_eq!(g.grad(x).unwrap().item(), 3.0);
    }

    #[test]
    #[should_panic(expected = "scalar loss")]
    fn backward_requires_scalar() {
        let mut g = Graph::new();
        let x = g.input(Tensor::zeros(2, 2));
        g.backward(x);
    }

    #[test]
    fn unfold_causal_values() {
        let mut g = Graph::new();
        let x = g.input(Tensor::from_vec(3, 1, vec![1., 2., 3.]));
        let u = g.unfold_causal(x, 2);
        // Row i = [x[i-1], x[i]] with left zero pad.
        assert_eq!(g.value(u).data(), &[0., 1., 1., 2., 2., 3.]);
    }

    #[test]
    fn deep_chain_backward() {
        // A longer composite graph exercises the reverse sweep ordering.
        let mut g = Graph::new();
        let x = g.input(sample(4, 4, 80));
        let w1 = g.input(sample(4, 8, 81));
        let w2 = g.input(sample(8, 3, 82));
        let h = g.matmul(x, w1);
        let h = g.relu(h);
        let h = g.matmul(h, w2);
        let loss = g.cross_entropy(h, &[0, 1, 2, 1]);
        g.backward(loss);
        assert!(g.grad(w1).is_some());
        assert!(g.grad(w2).is_some());
        assert!(g.grad(x).is_some());
        assert!(g.grad(w1).unwrap().data().iter().all(|x| x.is_finite()));
    }
}
