//! Int8 weight-quantized GEMM for the decode hot path.
//!
//! ## Scheme
//!
//! Per-tensor **symmetric** quantization: a tensor with max absolute
//! value `A` maps through `scale = A / 127` as `q = round(x / scale)`
//! clamped to `[-127, 127]` (saturating, never wrapping; `-128` is
//! unused so negation stays closed). Weights are quantized **once** at
//! model-load time and stored **column-major** (each weight column a
//! contiguous int8 run), so every output element is a single contiguous
//! dot product; activations are quantized **per call, per row** with
//! their own dynamic scale, which keeps the narrow decode activations
//! (1×d query vectors, beam×d tiles) accurate without any calibration
//! data.
//!
//! The product accumulates in `i32` — exact for every `k ≤ 133 000`
//! since `|q| ≤ 127` bounds each term by `127² = 16 129` — and converts
//! to `f32` exactly once at the edge: `out[i][j] = (a_scale[i] *
//! b_scale) * acc`. Because integer accumulation is associative, the
//! quantized path is deterministic at any tiling or thread count by
//! construction, with no ordering discipline needed.
//!
//! ## Dispatch
//!
//! Weights are pre-packed, so unlike the f32 kernel there is no per-call
//! packing cost to amortise; the only path split is register tiling.
//! [`qselect`] keeps products with fewer than MR rows (the decode-time
//! 1×d and small-beam shapes) on a plain per-row serial loop whose only
//! overhead is the call itself, and routes taller products through an
//! MR-row tile that reuses each weight column across MR activation
//! rows. Both are contiguous column dots in exact integer math and
//! produce identical bits, so selection is purely a performance
//! decision. Dispatch is counted per size class in the process-wide
//! observability registry (`tensor.gemm.qi8_serial` /
//! `tensor.gemm.qi8_blocked`) and snapshot through [`counters`].
//!
//! ## KV rows
//!
//! [`QRows`] is the quantized row store behind the decoder's KV cache:
//! each appended f32 row is stored as int8 plus one per-row scale, a ~4×
//! footprint reduction, and dequantized on attention read. Per-row (not
//! per-cache) scales matter here because K/V row magnitudes drift over a
//! long decode; a single early outlier must not crush the resolution of
//! every later step.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Rows per register tile in the blocked path (mirrors the f32 kernel).
const MR: usize = 4;

/// Largest quantized magnitude: symmetric `[-127, 127]`.
const Q_MAX: f32 = 127.0;

static SERIAL_CALLS: AtomicU64 = AtomicU64::new(0);
static BLOCKED_CALLS: AtomicU64 = AtomicU64::new(0);

/// Per-path dispatch counters in the process-wide observability
/// registry, one per size class, same idiom as the f32 kernel's
/// `tensor.gemm.*` family.
struct DispatchCounters {
    serial: Arc<qrec_obs::Counter>,
    blocked: Arc<qrec_obs::Counter>,
}

fn dispatch() -> &'static DispatchCounters {
    static D: std::sync::OnceLock<DispatchCounters> = std::sync::OnceLock::new();
    D.get_or_init(|| DispatchCounters {
        serial: qrec_obs::global().counter("tensor.gemm.qi8_serial"),
        blocked: qrec_obs::global().counter("tensor.gemm.qi8_blocked"),
    })
}

/// Process-wide int8-GEMM dispatch counters, for serving metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Qi8Counters {
    /// Calls that ran the per-row serial loop (decode-vector shapes).
    pub serial: u64,
    /// Calls that ran the MR×NR register-tiled kernel.
    pub blocked: u64,
}

/// Snapshot the dispatch counters (monotonic since process start).
pub fn counters() -> Qi8Counters {
    Qi8Counters {
        serial: SERIAL_CALLS.load(Ordering::Relaxed),
        blocked: BLOCKED_CALLS.load(Ordering::Relaxed),
    }
}

// ---------------------------------------------------------------------
// Scale calibration and per-value mapping
// ---------------------------------------------------------------------

/// Per-tensor symmetric scale: `max |x| / 127`, or `0.0` for an all-zero
/// (or empty) slice. Non-finite inputs are ignored during calibration so
/// one NaN cannot zero out an entire tensor's resolution.
pub fn calibrate(data: &[f32]) -> f32 {
    let max_abs = data
        .iter()
        .map(|v| v.abs())
        .filter(|v| v.is_finite())
        .fold(0.0f32, f32::max);
    if max_abs == 0.0 {
        0.0
    } else {
        max_abs / Q_MAX
    }
}

/// Quantize one value under `scale`: round to nearest, saturating clamp
/// to `[-127, 127]` (an outlier above the calibrated range clips, it
/// never wraps). A zero scale maps everything to 0.
#[inline(always)]
pub fn quantize_one(x: f32, scale: f32) -> i8 {
    if scale == 0.0 {
        return 0;
    }
    let q = (x / scale).round();
    // Saturate through f32 comparison before the cast so NaN → 0 and
    // out-of-range values clamp instead of wrapping.
    if q >= Q_MAX {
        127
    } else if q <= -Q_MAX {
        -127
    } else {
        q as i8
    }
}

/// Quantize a slice under one shared scale.
pub fn quantize(data: &[f32], scale: f32) -> Vec<i8> {
    data.iter().map(|&x| quantize_one(x, scale)).collect()
}

/// Dequantize a slice: `q * scale`.
pub fn dequantize(q: &[i8], scale: f32) -> Vec<f32> {
    q.iter().map(|&v| f32::from(v) * scale).collect()
}

// ---------------------------------------------------------------------
// Packed quantized weights
// ---------------------------------------------------------------------

/// A weight matrix quantized per-tensor and stored **column-major**
/// (`Bᵀ`): column `j` of the original `k×m` matrix is the contiguous
/// int8 run `data[j·k .. (j+1)·k]`. Every output element is then one
/// contiguous dot product `out[i][j] = dot(qa_row_i, col_j)`, a shape
/// the compiler auto-vectorizes to widening multiply-adds; an NR-wide
/// interleaved panel walk (the f32 kernel's layout) measured 2–4×
/// slower here because int8 lanes defeat its vectorization.
///
/// Built once per weight tensor at model-load time
/// ([`QPackedB::from_f32`]); every decode step then reuses the packed
/// bytes with zero per-call packing cost.
#[derive(Debug, Clone)]
pub struct QPackedB {
    /// Column-major quantized values: `m` columns of `k` bytes each.
    data: Vec<i8>,
    /// Row count of the original `k×m` weight matrix.
    k: usize,
    /// Column count of the original `k×m` weight matrix.
    m: usize,
    /// The per-tensor symmetric scale the values were quantized under.
    scale: f32,
}

impl QPackedB {
    /// Quantize a row-major `k×m` f32 weight matrix (per-tensor scale)
    /// and pack it.
    pub fn from_f32(b: &[f32], k: usize, m: usize) -> QPackedB {
        let scale = calibrate(b);
        let mut data = vec![0i8; k * m];
        for kk in 0..k {
            for (j, &x) in b[kk * m..(kk + 1) * m].iter().enumerate() {
                data[j * k + kk] = quantize_one(x, scale);
            }
        }
        QPackedB { data, k, m, scale }
    }

    /// Inner dimension (`k`) of the packed weight.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Output dimension (`m`) of the packed weight.
    pub fn m(&self) -> usize {
        self.m
    }

    /// The per-tensor scale the values were quantized under.
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// Bytes resident for the packed weight: exactly `k·m` (the f32
    /// original holds `4·k·m`).
    pub fn packed_bytes(&self) -> usize {
        self.data.len()
    }

    /// Recover the quantized values as a row-major `k×m` int8 matrix
    /// (undoing the transpose; the persistence layer stores this form,
    /// which re-packs losslessly on load).
    pub fn unpack(&self) -> Vec<i8> {
        let mut out = vec![0i8; self.k * self.m];
        for (j, col) in self.data.chunks_exact(self.k.max(1)).enumerate() {
            for (kk, &v) in col.iter().enumerate() {
                out[kk * self.m + j] = v;
            }
        }
        out
    }

    /// Re-pack a row-major `k×m` int8 matrix quantized under `scale`
    /// (the inverse of [`QPackedB::unpack`], used when loading a
    /// persisted int8 section).
    pub fn from_quantized(q: &[i8], k: usize, m: usize, scale: f32) -> QPackedB {
        let mut data = vec![0i8; k * m];
        for kk in 0..k {
            for (j, &v) in q[kk * m..(kk + 1) * m].iter().enumerate() {
                data[j * k + kk] = v;
            }
        }
        QPackedB { data, k, m, scale }
    }
}

// ---------------------------------------------------------------------
// Path selection
// ---------------------------------------------------------------------

/// The execution path [`qgemm`] takes for an `n×k` activation against a
/// packed `k×m` weight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Qi8Path {
    /// Fewer than MR rows: plain per-row loop, zero tiling overhead —
    /// the decode-time 1×d and small-beam fast path.
    Serial,
    /// MR or more rows: MR-row tiles that reuse each weight column
    /// across MR activation rows.
    Blocked,
}

/// Pick the path for an `n`-row activation. Pure in `n`; both paths
/// produce identical bits (exact i32 accumulation), so this is purely a
/// performance decision.
pub fn qselect(n: usize) -> Qi8Path {
    if n < MR {
        Qi8Path::Serial
    } else {
        Qi8Path::Blocked
    }
}

// ---------------------------------------------------------------------
// Quantized GEMM
// ---------------------------------------------------------------------

/// `n×k` f32 activations times a pre-packed quantized `k×m` weight,
/// with dynamic per-row activation quantization: `out[i][j] =
/// (a_scale[i] · b_scale) · Σ_kk qa[i][kk]·qb[kk][j]`, the inner sum in
/// exact `i32`.
///
/// `a.len()` must be `n · qb.k()`; the result is row-major `n × qb.m()`.
pub fn qgemm(a: &[f32], qb: &QPackedB, n: usize) -> Vec<f32> {
    let k = qb.k;
    let m = qb.m;
    // Dynamic per-row activation quantization: one scale per row keeps
    // a large logit row from crushing a small one's resolution.
    let mut qa = vec![0i8; n * k];
    let mut a_scales = vec![0.0f32; n];
    for i in 0..n {
        let row = &a[i * k..(i + 1) * k];
        let s = calibrate(row);
        a_scales[i] = s;
        for (q, &x) in qa[i * k..(i + 1) * k].iter_mut().zip(row) {
            *q = quantize_one(x, s);
        }
    }

    let mut acc = vec![0i32; n * m];
    match qselect(n) {
        Qi8Path::Serial => {
            SERIAL_CALLS.fetch_add(1, Ordering::Relaxed);
            dispatch().serial.inc();
            q_rows_serial(&qa, qb, 0, n, &mut acc);
        }
        Qi8Path::Blocked => {
            BLOCKED_CALLS.fetch_add(1, Ordering::Relaxed);
            dispatch().blocked.inc();
            q_rows_blocked(&qa, qb, 0, n, &mut acc);
        }
    }

    let mut out = vec![0.0f32; n * m];
    for i in 0..n {
        let c = a_scales[i] * qb.scale;
        for (o, &v) in out[i * m..(i + 1) * m]
            .iter_mut()
            .zip(&acc[i * m..(i + 1) * m])
        {
            *o = c * v as f32;
        }
    }
    out
}

/// Per-row serial loop: each output element is one contiguous dot
/// product of an activation row against a stored column. No tiling
/// overhead — this is the 1×d decode fast path, and the plain
/// `zip`/`sum` shape is exactly what the auto-vectorizer lowers to
/// widening multiply-adds.
fn q_rows_serial(qa: &[i8], pb: &QPackedB, r0: usize, r1: usize, acc: &mut [i32]) {
    let k = pb.k;
    let m = pb.m;
    if k == 0 {
        return;
    }
    for i in r0..r1 {
        let arow = &qa[i * k..(i + 1) * k];
        let orow = &mut acc[(i - r0) * m..(i - r0 + 1) * m];
        for (o, col) in orow.iter_mut().zip(pb.data.chunks_exact(k)) {
            *o = arow
                .iter()
                .zip(col)
                .map(|(&x, &y)| i32::from(x) * i32::from(y))
                .sum();
        }
    }
}

/// MR-row tile: each stored column is streamed once per tile and dotted
/// against MR activation rows in lockstep, quartering the traffic over
/// `B` relative to the per-row loop; leftover rows (fewer than MR) fall
/// back to the serial loop. Same exact i32 sums, so both paths produce
/// identical bits.
fn q_rows_blocked(qa: &[i8], pb: &QPackedB, r0: usize, r1: usize, acc: &mut [i32]) {
    let k = pb.k;
    let m = pb.m;
    if k == 0 {
        return;
    }
    let mut i = r0;
    while i + MR <= r1 {
        let a0 = &qa[i * k..(i + 1) * k];
        let a1 = &qa[(i + 1) * k..(i + 2) * k];
        let a2 = &qa[(i + 2) * k..(i + 3) * k];
        let a3 = &qa[(i + 3) * k..(i + 4) * k];
        let o0 = (i - r0) * m;
        for (j, col) in pb.data.chunks_exact(k).enumerate() {
            let mut s0 = 0i32;
            let mut s1 = 0i32;
            let mut s2 = 0i32;
            let mut s3 = 0i32;
            for (((&b, &x0), (&x1, &x2)), &x3) in col.iter().zip(a0).zip(a1.iter().zip(a2)).zip(a3)
            {
                let b = i32::from(b);
                s0 += i32::from(x0) * b;
                s1 += i32::from(x1) * b;
                s2 += i32::from(x2) * b;
                s3 += i32::from(x3) * b;
            }
            acc[o0 + j] = s0;
            acc[o0 + m + j] = s1;
            acc[o0 + 2 * m + j] = s2;
            acc[o0 + 3 * m + j] = s3;
        }
        i += MR;
    }
    if i < r1 {
        q_rows_serial(qa, pb, i, r1, &mut acc[(i - r0) * m..]);
    }
}

// ---------------------------------------------------------------------
// Quantized KV rows
// ---------------------------------------------------------------------

/// An append-only store of int8-quantized rows with one scale per row —
/// the decode KV cache's resident form (~4× smaller than f32 rows).
///
/// Rows are quantized on append and dequantized on read; per-row scales
/// keep each step's K/V projection at full int8 resolution regardless of
/// magnitude drift across the decode.
#[derive(Debug, Clone, Default)]
pub struct QRows {
    cols: usize,
    data: Vec<i8>,
    scales: Vec<f32>,
}

impl QRows {
    /// An empty store of `cols`-wide rows.
    pub fn new(cols: usize) -> QRows {
        QRows {
            cols,
            data: Vec::new(),
            scales: Vec::new(),
        }
    }

    /// Number of resident rows.
    pub fn rows(&self) -> usize {
        self.scales.len()
    }

    /// Row width.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// True when no rows are resident.
    pub fn is_empty(&self) -> bool {
        self.scales.is_empty()
    }

    /// Quantize `row` (must be `cols` wide) under its own scale and
    /// append it.
    pub fn push_row(&mut self, row: &[f32]) {
        debug_assert_eq!(row.len(), self.cols);
        let s = calibrate(row);
        self.scales.push(s);
        self.data.extend(row.iter().map(|&x| quantize_one(x, s)));
    }

    /// Dequantize every resident row into a row-major `rows×cols` f32
    /// buffer (the attention read path).
    pub fn dequant(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.data.len());
        for (i, &s) in self.scales.iter().enumerate() {
            out.extend(
                self.data[i * self.cols..(i + 1) * self.cols]
                    .iter()
                    .map(|&q| f32::from(q) * s),
            );
        }
        out
    }

    /// Resident bytes (quantized data + per-row scales).
    pub fn resident_bytes(&self) -> usize {
        self.data.len() + self.scales.len() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill(len: usize, seed: usize) -> Vec<f32> {
        (0..len)
            .map(|i| (((i + seed) * 2654435761) % 2000) as f32 * 1e-3 - 1.0)
            .collect()
    }

    /// f32 reference of the *quantized* computation: same quantization,
    /// plain triple loop. The kernels must match this exactly (integer
    /// math), independent of tiling.
    fn q_reference(a: &[f32], b: &[f32], n: usize, k: usize, m: usize) -> Vec<f32> {
        let b_scale = calibrate(b);
        let qb: Vec<i8> = b.iter().map(|&x| quantize_one(x, b_scale)).collect();
        let mut out = vec![0.0f32; n * m];
        for i in 0..n {
            let arow = &a[i * k..(i + 1) * k];
            let a_scale = calibrate(arow);
            let qa: Vec<i8> = arow.iter().map(|&x| quantize_one(x, a_scale)).collect();
            for j in 0..m {
                let mut acc = 0i32;
                for kk in 0..k {
                    acc += i32::from(qa[kk]) * i32::from(qb[kk * m + j]);
                }
                out[i * m + j] = a_scale * b_scale * acc as f32;
            }
        }
        out
    }

    fn assert_bitwise(a: &[f32], b: &[f32]) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "element {i}: {x} vs {y}");
        }
    }

    #[test]
    fn qgemm_matches_reference_bitwise_on_awkward_shapes() {
        for &(n, k, m) in &[
            (1, 7, 9),
            (1, 48, 200),
            (3, 33, 31),
            (4, 32, 32),
            (5, 33, 31),
            (37, 300, 65),
            (130, 17, 257),
        ] {
            let a = fill(n * k, 1);
            let b = fill(k * m, 2);
            let qb = QPackedB::from_f32(&b, k, m);
            assert_bitwise(&q_reference(&a, &b, n, k, m), &qgemm(&a, &qb, n));
        }
    }

    #[test]
    fn serial_and_blocked_paths_agree_exactly() {
        // Same shape forced down both paths by splitting the rows: the
        // integer accumulation makes tiling invisible in the output.
        let (n, k, m) = (8, 130, 45);
        let a = fill(n * k, 3);
        let b = fill(k * m, 4);
        let qb = QPackedB::from_f32(&b, k, m);
        let whole = qgemm(&a, &qb, n); // n >= MR: blocked
        for i in 0..n {
            let row = qgemm(&a[i * k..(i + 1) * k], &qb, 1); // serial
            assert_bitwise(&row, &whole[i * m..(i + 1) * m]);
        }
    }

    #[test]
    fn qselect_keeps_decode_vectors_serial() {
        assert_eq!(qselect(1), Qi8Path::Serial);
        assert_eq!(qselect(3), Qi8Path::Serial);
        assert_eq!(qselect(4), Qi8Path::Blocked);
        assert_eq!(qselect(64), Qi8Path::Blocked);
    }

    #[test]
    fn calibrate_edge_cases() {
        assert_eq!(calibrate(&[]), 0.0);
        assert_eq!(calibrate(&[0.0, 0.0, -0.0]), 0.0);
        assert_eq!(calibrate(&[2.54]), 2.54 / 127.0);
        // Non-finite values are ignored, not propagated.
        assert_eq!(calibrate(&[f32::NAN, 1.27]), 0.01);
        assert_eq!(calibrate(&[f32::INFINITY, 1.27]), 0.01);
    }

    #[test]
    fn quantize_saturates_never_wraps() {
        let scale = 1.0;
        assert_eq!(quantize_one(1e9, scale), 127);
        assert_eq!(quantize_one(-1e9, scale), -127);
        assert_eq!(quantize_one(f32::NAN, scale), 0);
        assert_eq!(quantize_one(0.0, 0.0), 0);
        assert_eq!(quantize_one(5.0, 0.0), 0);
    }

    #[test]
    fn round_trip_error_is_bounded_by_half_scale() {
        let x = fill(1000, 7);
        let s = calibrate(&x);
        let q = quantize(&x, s);
        let dq = dequantize(&q, s);
        for (a, b) in x.iter().zip(&dq) {
            assert!((a - b).abs() <= s * 0.5 + 1e-6, "{a} vs {b} (scale {s})");
        }
    }

    #[test]
    fn pack_unpack_round_trips() {
        for &(k, m) in &[(7, 9), (32, 32), (300, 65), (17, 257), (1, 1)] {
            let b = fill(k * m, 5);
            let qb = QPackedB::from_f32(&b, k, m);
            let flat = qb.unpack();
            let scale = qb.scale();
            let direct: Vec<i8> = b.iter().map(|&x| quantize_one(x, scale)).collect();
            assert_eq!(flat, direct, "{k}x{m}");
            // And back: re-packing the flat form reproduces the panels.
            let qb2 = QPackedB::from_quantized(&flat, k, m, scale);
            assert_eq!(qb.data, qb2.data, "{k}x{m}");
            assert_eq!(qb.scale(), qb2.scale());
        }
    }

    #[test]
    fn packed_bytes_are_near_quarter_of_f32() {
        let (k, m) = (256, 256);
        let b = fill(k * m, 6);
        let qb = QPackedB::from_f32(&b, k, m);
        let f32_bytes = k * m * 4;
        assert!(qb.packed_bytes() * 3 < f32_bytes, "~4x reduction");
    }

    #[test]
    fn qrows_round_trip_and_footprint() {
        let mut rows = QRows::new(16);
        assert!(rows.is_empty());
        for step in 0..20 {
            // Magnitudes drift upward across steps: per-row scales must
            // keep early rows accurate anyway.
            let row: Vec<f32> = fill(16, step)
                .iter()
                .map(|v| v * (step + 1) as f32)
                .collect();
            rows.push_row(&row);
        }
        assert_eq!(rows.rows(), 20);
        assert_eq!(rows.cols(), 16);
        let dq = rows.dequant();
        assert_eq!(dq.len(), 20 * 16);
        for step in 0..20 {
            let row: Vec<f32> = fill(16, step)
                .iter()
                .map(|v| v * (step + 1) as f32)
                .collect();
            let s = calibrate(&row);
            for (a, b) in row.iter().zip(&dq[step * 16..(step + 1) * 16]) {
                assert!((a - b).abs() <= s * 0.5 + 1e-6, "step {step}: {a} vs {b}");
            }
        }
        // int8 data + one f32 scale per row, vs 4 bytes per f32 element.
        assert!(rows.resident_bytes() * 3 < 20 * 16 * 4);
    }

    #[test]
    fn counters_move() {
        let before = counters();
        let b = fill(64, 1);
        let qb = QPackedB::from_f32(&b, 8, 8);
        let _ = qgemm(&fill(8, 2), &qb, 1);
        let _ = qgemm(&fill(64, 3), &qb, 8);
        let after = counters();
        assert!(after.serial > before.serial);
        assert!(after.blocked > before.blocked);
    }
}
