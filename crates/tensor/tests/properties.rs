//! Property-based tests for tensor algebra and autograd invariants.

use proptest::prelude::*;
use qrec_tensor::{Graph, Tensor};

fn tensor_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(-2.0f32..2.0, rows * cols)
        .prop_map(move |v| Tensor::from_vec(rows, cols, v))
}

fn close(a: f32, b: f32) -> bool {
    (a - b).abs() <= 1e-3 * (1.0 + a.abs().max(b.abs()))
}

fn all_close(a: &Tensor, b: &Tensor) -> bool {
    a.shape() == b.shape() && a.data().iter().zip(b.data()).all(|(&x, &y)| close(x, y))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// (A·B)·C == A·(B·C) within float tolerance.
    #[test]
    fn matmul_associative(
        a in tensor_strategy(3, 4),
        b in tensor_strategy(4, 2),
        c in tensor_strategy(2, 5),
    ) {
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        prop_assert!(all_close(&left, &right));
    }

    /// A·(B + C) == A·B + A·C.
    #[test]
    fn matmul_distributes_over_add(
        a in tensor_strategy(3, 4),
        b in tensor_strategy(4, 2),
        c in tensor_strategy(4, 2),
    ) {
        let left = a.matmul(&b.add(&c));
        let right = a.matmul(&b).add(&a.matmul(&c));
        prop_assert!(all_close(&left, &right));
    }

    /// (A·B)ᵀ == Bᵀ·Aᵀ, and the fused nt/tn variants agree with it.
    #[test]
    fn matmul_transpose_identities(
        a in tensor_strategy(3, 4),
        b in tensor_strategy(4, 2),
    ) {
        let abt = a.matmul(&b).transpose();
        let btat = b.transpose().matmul(&a.transpose());
        prop_assert!(all_close(&abt, &btat));
        prop_assert!(all_close(&a.matmul(&b), &a.matmul_nt(&b.transpose())));
        prop_assert!(all_close(&a.matmul(&b), &a.transpose().matmul_tn(&b)));
    }

    /// Softmax rows are a probability distribution and are shift-invariant.
    #[test]
    fn softmax_distribution_and_shift_invariance(
        a in tensor_strategy(4, 6),
        shift in -5.0f32..5.0,
    ) {
        let s = a.softmax_rows();
        for r in 0..s.rows() {
            let sum: f32 = s.row(r).iter().sum();
            prop_assert!(close(sum, 1.0));
            prop_assert!(s.row(r).iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
        let shifted = a.map(|x| x + shift).softmax_rows();
        prop_assert!(all_close(&s, &shifted));
    }

    /// Linearity of the gradient: d(αf)/dx == α·df/dx.
    #[test]
    fn gradient_is_linear_in_loss_scale(
        x in tensor_strategy(2, 3),
        alpha in 0.1f32..3.0,
    ) {
        let run = |scale: f32| {
            let mut g = Graph::new();
            let xn = g.input(x.clone());
            let s = g.sigmoid(xn);
            let m = g.mean_rows(s);
            let mm = g.mean_rows(m); // still 1 x 3
            // Reduce to scalar: mean over the single row via matmul with ones.
            let ones = g.input(Tensor::ones(3, 1));
            let sc = g.matmul(mm, ones);
            let scaled = g.scale(sc, scale);
            g.backward(scaled);
            g.grad(xn).unwrap().clone()
        };
        let g1 = run(1.0);
        let ga = run(alpha);
        prop_assert!(all_close(&ga, &g1.scale(alpha)));
    }

    /// Cross-entropy is non-negative and bounded by ln(v) at uniform logits.
    #[test]
    fn cross_entropy_bounds(
        logits in tensor_strategy(3, 5),
        t0 in 0usize..5, t1 in 0usize..5, t2 in 0usize..5,
    ) {
        let mut g = Graph::new();
        let l = g.input(logits);
        let loss = g.cross_entropy(l, &[t0, t1, t2]);
        let v = g.value(loss).item();
        prop_assert!(v >= -1e-6, "loss {v} must be non-negative");
        prop_assert!(v.is_finite());
    }

    /// vcat/slice_rows and hcat round-trip.
    #[test]
    fn concat_slice_roundtrip(
        a in tensor_strategy(2, 3),
        b in tensor_strategy(3, 3),
    ) {
        let v = a.vcat(&b);
        prop_assert_eq!(v.slice_rows(0, 2), a.clone());
        prop_assert_eq!(v.slice_rows(2, 5), b);
        let h = a.hcat(&a);
        prop_assert_eq!(h.shape(), (2, 6));
        for r in 0..2 {
            prop_assert_eq!(&h.row(r)[..3], a.row(r));
            prop_assert_eq!(&h.row(r)[3..], a.row(r));
        }
    }

    /// Embedding forward gathers exactly the requested rows.
    #[test]
    fn embedding_gathers_rows(
        w in tensor_strategy(6, 4),
        ids in proptest::collection::vec(0usize..6, 1..8),
    ) {
        let mut g = Graph::new();
        let wn = g.input(w.clone());
        let e = g.embedding(wn, &ids);
        for (r, &id) in ids.iter().enumerate() {
            prop_assert_eq!(g.value(e).row(r), w.row(id));
        }
    }
}
