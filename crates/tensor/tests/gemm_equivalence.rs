//! Bitwise equivalence of every GEMM path against the naive reference.
//!
//! The kernel's determinism contract (DESIGN.md §10) is that the blocked
//! serial kernel and the pool-parallel kernel at *any* thread and chunk
//! count produce output bitwise identical to the canonical naive fold —
//! not epsilon-close. These properties drive random shapes (including
//! 0-row/0-col, 1×1, tall-skinny, and non-multiple-of-block-size edges)
//! through pools of 1, 2, and 8 threads and compare bit patterns.

use proptest::prelude::*;
use qrec_tensor::kernel;
use qrec_tensor::pool::Pool;
use qrec_tensor::Tensor;

/// Compare two result buffers bit-for-bit, reporting the first diverging
/// element on failure.
fn assert_bitwise(want: &[f32], got: &[f32]) -> Result<(), TestCaseError> {
    prop_assert_eq!(want.len(), got.len());
    for (i, (w, g)) in want.iter().zip(got).enumerate() {
        prop_assert_eq!(
            w.to_bits(),
            g.to_bits(),
            "element {} differs: {} vs {}",
            i,
            w,
            g
        );
    }
    Ok(())
}

fn matrix(len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-3.0f32..3.0, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random shapes (1..=80 per dim) through 1-, 2-, and 8-thread pools
    /// at several chunk counts: all bitwise equal to the reference.
    #[test]
    fn parallel_gemm_is_bitwise_deterministic(
        n in 1usize..=80,
        k in 1usize..=80,
        m in 1usize..=80,
        seed_a in 0u32..1000,
    ) {
        let a: Vec<f32> = (0..n * k)
            .map(|i| (((i + seed_a as usize) * 2654435761) % 2000) as f32 * 1e-3 - 1.0)
            .collect();
        let b: Vec<f32> = (0..k * m)
            .map(|i| (((i * 7 + seed_a as usize) * 40503) % 2000) as f32 * 1e-3 - 1.0)
            .collect();
        let want = kernel::naive(&a, &b, n, k, m);
        assert_bitwise(&want, &kernel::blocked(&a, &b, n, k, m))?;
        for threads in [1usize, 2, 8] {
            let pool = Pool::new(threads);
            for chunks in [1usize, 2, 3, threads] {
                let got = kernel::gemm_chunked(&pool, chunks, &a, &b, n, k, m);
                assert_bitwise(&want, &got)?;
            }
        }
    }

    /// Random *data* on fixed awkward shapes — edge tiles in both the
    /// row and column direction, plus exact block multiples.
    #[test]
    fn awkward_shapes_stay_bitwise(data in matrix(33 * 64)) {
        // (n, k, m) chosen to hit: single row, single column, 1×1,
        // tall-skinny, wide-flat, exact NR/MR multiples, off-by-one.
        for &(n, k, m) in &[
            (1usize, 1usize, 1usize),
            (1, 64, 33),
            (33, 64, 1),
            (33, 1, 64),
            (4, 32, 32),
            (5, 33, 31),
            (32, 33, 64),
            (33, 64, 32),
        ] {
            let a = &data[..n * k];
            let b = &data[data.len() - k * m..];
            let want = kernel::naive(a, b, n, k, m);
            assert_bitwise(&want, &kernel::blocked(a, b, n, k, m))?;
            for threads in [1usize, 2, 8] {
                let pool = Pool::new(threads);
                let got = kernel::gemm_chunked(&pool, threads, a, b, n, k, m);
                assert_bitwise(&want, &got)?;
            }
        }
    }

    /// Zero-extent shapes: 0 rows, 0 columns, and k == 0 (a zero matrix,
    /// not an empty one) survive every path.
    #[test]
    fn zero_extent_shapes(dim in 0usize..6, threads in 1usize..=8) {
        let pool = Pool::new(threads);
        // n == 0
        let b = vec![0.5f32; dim * 3];
        prop_assert!(kernel::gemm_chunked(&pool, threads, &[], &b, 0, dim, 3).is_empty());
        // m == 0
        let a = vec![0.5f32; 3 * dim];
        prop_assert!(kernel::gemm_chunked(&pool, threads, &a, &[], 3, dim, 0).is_empty());
        // k == 0 → 3×dim zero matrix
        let out = kernel::gemm_chunked(&pool, threads, &[], &[], 3, 0, dim);
        prop_assert_eq!(out, vec![0.0f32; 3 * dim]);
    }

    /// The nt/tn tensor entry points agree bitwise with their references
    /// on shapes large enough to take the transpose-and-block path.
    #[test]
    fn nt_tn_paths_agree_with_references(
        n in 60usize..=90,
        k in 60usize..=90,
        m in 60usize..=90,
    ) {
        let a: Vec<f32> = (0..n * k).map(|i| ((i * 97) % 200) as f32 * 1e-2 - 1.0).collect();
        let bt: Vec<f32> = (0..m * k).map(|i| ((i * 31) % 200) as f32 * 1e-2 - 1.0).collect();
        assert_bitwise(
            &kernel::naive_nt(&a, &bt, n, k, m),
            &kernel::gemm_nt(&a, &bt, n, k, m),
        )?;
        let at: Vec<f32> = (0..k * n).map(|i| ((i * 53) % 200) as f32 * 1e-2 - 1.0).collect();
        let b: Vec<f32> = (0..k * m).map(|i| ((i * 11) % 200) as f32 * 1e-2 - 1.0).collect();
        assert_bitwise(
            &kernel::naive_tn(&at, &b, n, k, m),
            &kernel::gemm_tn(&at, &b, n, k, m),
        )?;
    }

    /// `Tensor::matmul` (whatever path it selects) matches the reference
    /// bitwise, so autograd and decoding see one arithmetic everywhere.
    #[test]
    fn tensor_matmul_matches_reference(
        rows in 1usize..=40,
        inner in 1usize..=40,
        cols in 1usize..=40,
        data in matrix(40 * 40),
    ) {
        let a = Tensor::from_vec(rows, inner, data[..rows * inner].to_vec());
        let b = Tensor::from_vec(inner, cols, data[data.len() - inner * cols..].to_vec());
        let want = kernel::naive(a.data(), b.data(), rows, inner, cols);
        let got = a.matmul(&b);
        assert_bitwise(&want, got.data())?;
    }
}
