//! Property tests for the int8 quantization scale calibration
//! (DESIGN.md §15): degenerate inputs (all-zero, single-element),
//! outlier saturation (clamp, never wrap), and the round-trip error
//! bound of half a quantization step.

use proptest::prelude::*;
use qrec_tensor::qi8::{calibrate, dequantize, quantize, quantize_one};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// An all-zero (or empty) slice calibrates to scale 0 and
    /// round-trips to exactly zero — nothing divides by the zero scale.
    #[test]
    fn all_zero_slices_calibrate_to_zero(len in 0usize..64) {
        let xs = vec![0.0f32; len];
        let s = calibrate(&xs);
        prop_assert_eq!(s, 0.0);
        let q = quantize(&xs, s);
        prop_assert!(q.iter().all(|&v| v == 0));
        let dq = dequantize(&q, s);
        prop_assert!(dq.iter().all(|&v| v == 0.0));
    }

    /// A single finite value is its own calibration max: the scale is
    /// |x|/127 and the value quantizes to exactly ±127, so one-element
    /// tensors lose only the 1/127 rounding, never more.
    #[test]
    fn single_element_calibration_is_exact(x in -1e6f32..1e6) {
        let s = calibrate(&[x]);
        if x == 0.0 {
            prop_assert_eq!(s, 0.0);
        } else {
            prop_assert_eq!(s, x.abs() / 127.0);
            let q = quantize_one(x, s);
            prop_assert_eq!(i32::from(q).abs(), 127);
            prop_assert_eq!(q > 0, x > 0.0);
        }
    }

    /// Values far outside the calibrated range saturate at ±127 with
    /// the sign preserved — an outlier clips, it never wraps into a
    /// huge opposite-sign weight.
    #[test]
    fn outliers_clamp_and_never_wrap(
        base in 0.1f32..10.0,
        factor in 2.0f32..1e6,
        sign in 0u8..2,
    ) {
        let scale = calibrate(&[base]);
        let outlier = if sign == 0 { base * factor } else { -base * factor };
        let q = quantize_one(outlier, scale);
        prop_assert_eq!(i32::from(q), if sign == 0 { 127 } else { -127 });
    }

    /// Quantize→dequantize under the slice's own calibrated scale is
    /// within half a step (plus float fuzz) of the original everywhere:
    /// round-to-nearest, and calibration guarantees no interior value
    /// saturates.
    #[test]
    fn round_trip_error_is_bounded_by_half_step(
        xs in proptest::collection::vec(-100.0f32..100.0, 1..128),
    ) {
        let s = calibrate(&xs);
        let q = quantize(&xs, s);
        let dq = dequantize(&q, s);
        for (a, b) in xs.iter().zip(&dq) {
            prop_assert!(
                (a - b).abs() <= s * 0.5 + 1e-6,
                "{} round-tripped to {} (scale {})",
                a, b, s
            );
        }
    }
}
