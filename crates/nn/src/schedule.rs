//! Learning-rate schedules.
//!
//! The paper tunes a fixed learning rate per dataset; transformer
//! training conventionally adds warmup. Both are supported — the
//! trainer consults [`LrSchedule::lr`] before every optimizer step.

use serde::{Deserialize, Serialize};

/// A learning-rate schedule over optimizer steps.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub enum LrSchedule {
    /// The base learning rate throughout.
    #[default]
    Constant,
    /// Linear warmup to the base rate over `warmup_steps`, then
    /// inverse-square-root decay (the original transformer schedule,
    /// normalised so the peak equals the base rate).
    WarmupInvSqrt {
        /// Steps to reach the base rate.
        warmup_steps: u64,
    },
    /// Multiply the rate by `factor` every `every_steps` steps.
    StepDecay {
        /// Interval between decays.
        every_steps: u64,
        /// Multiplicative factor per decay (usually < 1).
        factor: f32,
    },
}

impl LrSchedule {
    /// The learning rate at optimizer step `step` (0-based) given the
    /// base rate.
    pub fn lr(&self, base: f32, step: u64) -> f32 {
        match *self {
            LrSchedule::Constant => base,
            LrSchedule::WarmupInvSqrt { warmup_steps } => {
                let w = warmup_steps.max(1) as f32;
                let s = (step + 1) as f32;
                if s < w {
                    base * s / w
                } else {
                    base * (w / s).sqrt()
                }
            }
            LrSchedule::StepDecay {
                every_steps,
                factor,
            } => {
                let decays = step / every_steps.max(1);
                base * factor.powi(decays.min(i32::MAX as u64) as i32)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_constant() {
        let s = LrSchedule::Constant;
        assert_eq!(s.lr(1e-3, 0), 1e-3);
        assert_eq!(s.lr(1e-3, 10_000), 1e-3);
    }

    #[test]
    fn warmup_ramps_then_decays() {
        let s = LrSchedule::WarmupInvSqrt { warmup_steps: 100 };
        let base = 1e-3;
        // Ramp: strictly increasing until warmup.
        assert!(s.lr(base, 0) < s.lr(base, 50));
        assert!(s.lr(base, 50) < s.lr(base, 99));
        // Peak ≈ base at the warmup boundary.
        assert!((s.lr(base, 99) - base).abs() < base * 0.02);
        // Decay afterwards.
        assert!(s.lr(base, 400) < s.lr(base, 100));
        // Inverse-sqrt: 4x the steps → half the rate.
        let r1 = s.lr(base, 399);
        let r2 = s.lr(base, 1599);
        assert!((r1 / r2 - 2.0).abs() < 0.05, "{r1} vs {r2}");
    }

    #[test]
    fn step_decay_halves() {
        let s = LrSchedule::StepDecay {
            every_steps: 10,
            factor: 0.5,
        };
        assert_eq!(s.lr(1.0, 0), 1.0);
        assert_eq!(s.lr(1.0, 9), 1.0);
        assert_eq!(s.lr(1.0, 10), 0.5);
        assert_eq!(s.lr(1.0, 25), 0.25);
    }

    #[test]
    fn degenerate_parameters_are_safe() {
        let s = LrSchedule::WarmupInvSqrt { warmup_steps: 0 };
        assert!(s.lr(1e-3, 0).is_finite());
        let s = LrSchedule::StepDecay {
            every_steps: 0,
            factor: 0.5,
        };
        assert!(s.lr(1e-3, 100).is_finite());
    }
}
