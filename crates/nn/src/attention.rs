//! Multi-head scaled dot-product attention.

use crate::layers::Linear;
use crate::params::{Fwd, Params};
use qrec_tensor::{NodeId, Tensor};
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// Multi-head attention with `heads` heads over model width `d`
/// (`d % heads == 0`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MultiHeadAttention {
    q: Linear,
    k: Linear,
    v: Linear,
    out: Linear,
    /// Number of heads.
    pub heads: usize,
    /// Model width.
    pub d: usize,
}

impl MultiHeadAttention {
    /// Create the four projections.
    pub fn new(params: &mut Params, name: &str, d: usize, heads: usize, rng: &mut StdRng) -> Self {
        assert!(heads >= 1, "attention needs at least one head");
        assert!(
            d.is_multiple_of(heads),
            "model width {d} not divisible by {heads} heads"
        );
        MultiHeadAttention {
            q: Linear::new(params, &format!("{name}.q"), d, d, rng),
            k: Linear::new(params, &format!("{name}.k"), d, d, rng),
            v: Linear::new(params, &format!("{name}.v"), d, d, rng),
            out: Linear::new(params, &format!("{name}.out"), d, d, rng),
            heads,
            d,
        }
    }

    /// Attend from `x_q` (`n × d`) over `x_kv` (`m × d`).
    ///
    /// `mask`, if given, is an `n × m` additive logit mask (use
    /// [`crate::layers::causal_mask`] for autoregressive self-attention).
    pub fn forward(
        &self,
        fwd: &mut Fwd<'_>,
        x_q: NodeId,
        x_kv: NodeId,
        mask: Option<&Tensor>,
    ) -> NodeId {
        let q = self.q.forward(fwd, x_q);
        let k = self.k.forward(fwd, x_kv);
        let v = self.v.forward(fwd, x_kv);
        let ctx = self.attend(fwd, q, k, v, mask);
        self.out.forward(fwd, ctx)
    }

    /// Project queries only — the incremental decoder projects K/V once
    /// per cached row and reuses them across steps.
    pub(crate) fn project_q(&self, fwd: &mut Fwd<'_>, x: NodeId) -> NodeId {
        self.q.forward(fwd, x)
    }

    /// Project keys only.
    pub(crate) fn project_k(&self, fwd: &mut Fwd<'_>, x: NodeId) -> NodeId {
        self.k.forward(fwd, x)
    }

    /// Project values only.
    pub(crate) fn project_v(&self, fwd: &mut Fwd<'_>, x: NodeId) -> NodeId {
        self.v.forward(fwd, x)
    }

    /// Output projection over a concatenated head context.
    pub(crate) fn output(&self, fwd: &mut Fwd<'_>, ctx: NodeId) -> NodeId {
        self.out.forward(fwd, ctx)
    }

    /// Scaled dot-product attention over already-projected `q`/`k`/`v`
    /// (full width; heads are sliced by columns here). Shared by the
    /// teacher-forced path and the incremental decode path so both
    /// compute bit-for-bit the same context.
    pub(crate) fn attend(
        &self,
        fwd: &mut Fwd<'_>,
        q: NodeId,
        k: NodeId,
        v: NodeId,
        mask: Option<&Tensor>,
    ) -> NodeId {
        let dh = self.d / self.heads;
        let scale = 1.0 / (dh as f32).sqrt();
        let mask_node = mask.map(|m| fwd.constant(m.clone()));

        // `new` guarantees heads >= 1, so head 0 seeds the concat
        // without an Option round-trip.
        let head_ctx = |fwd: &mut Fwd<'_>, h: usize| {
            let (s, e) = (h * dh, (h + 1) * dh);
            let qh = fwd.graph.slice_cols(q, s, e);
            let kh = fwd.graph.slice_cols(k, s, e);
            let vh = fwd.graph.slice_cols(v, s, e);
            let logits = fwd.graph.matmul_nt(qh, kh); // n × m
            let logits = fwd.graph.scale(logits, scale);
            let logits = match mask_node {
                Some(m) => fwd.graph.add(logits, m),
                None => logits,
            };
            let attn = fwd.graph.softmax_rows(logits);
            fwd.graph.matmul(attn, vh) // n × dh
        };
        let mut concat = head_ctx(fwd, 0);
        for h in 1..self.heads {
            let ctx = head_ctx(fwd, h);
            concat = fwd.graph.hcat(concat, ctx);
        }
        concat
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::causal_mask;
    use crate::params::{forward_eval, Params};
    use qrec_tensor::init;
    use rand::SeedableRng;

    fn setup(d: usize, heads: usize) -> (Params, MultiHeadAttention, StdRng) {
        let mut params = Params::new();
        let mut rng = StdRng::seed_from_u64(3);
        let mha = MultiHeadAttention::new(&mut params, "attn", d, heads, &mut rng);
        (params, mha, rng)
    }

    #[test]
    fn output_shape_matches_query_rows() {
        let (params, mha, mut rng) = setup(8, 2);
        let shape = forward_eval(&params, &mut rng, |fwd| {
            let qt = init::uniform(3, 8, -1.0, 1.0, fwd.rng);
            let q = fwd.constant(qt);
            let kvt = init::uniform(5, 8, -1.0, 1.0, fwd.rng);
            let kv = fwd.constant(kvt);
            let y = mha.forward(fwd, q, kv, None);
            fwd.graph.value(y).shape()
        });
        assert_eq!(shape, (3, 8));
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn rejects_bad_head_count() {
        let _ = setup(6, 4);
    }

    #[test]
    fn causal_mask_makes_prefix_invariant() {
        // With a causal mask, output row 0 must not change when later
        // key/value rows change.
        let (params, mha, _) = setup(8, 2);
        let x1 = init::uniform(4, 8, -1.0, 1.0, &mut StdRng::seed_from_u64(10));
        let mut x2 = x1.clone();
        for c in 0..8 {
            x2.set(3, c, 9.0); // perturb the last position only
        }
        let run = |x: Tensor| {
            let mut rng = StdRng::seed_from_u64(0);
            forward_eval(&params, &mut rng, |fwd| {
                let xn = fwd.constant(x);
                let y = mha.forward(fwd, xn, xn, Some(&causal_mask(4)));
                fwd.graph.value(y).row(0).to_vec()
            })
        };
        let r1 = run(x1);
        let r2 = run(x2);
        for (a, b) in r1.iter().zip(&r2) {
            assert!((a - b).abs() < 1e-5, "row 0 leaked future info");
        }
    }

    #[test]
    fn without_mask_future_does_leak() {
        // Sanity check of the previous test's sensitivity: unmasked
        // attention DOES see the perturbation.
        let (params, mha, _) = setup(8, 2);
        let x1 = init::uniform(4, 8, -1.0, 1.0, &mut StdRng::seed_from_u64(10));
        let mut x2 = x1.clone();
        for c in 0..8 {
            x2.set(3, c, 9.0);
        }
        let run = |x: Tensor| {
            let mut rng = StdRng::seed_from_u64(0);
            forward_eval(&params, &mut rng, |fwd| {
                let xn = fwd.constant(x);
                let y = mha.forward(fwd, xn, xn, None);
                fwd.graph.value(y).row(0).to_vec()
            })
        };
        let r1 = run(x1);
        let r2 = run(x2);
        let diff: f32 = r1.iter().zip(&r2).map(|(a, b)| (a - b).abs()).sum();
        assert!(diff > 1e-4, "unmasked attention should see the change");
    }

    #[test]
    fn gradients_flow_through_attention() {
        let (mut params, mha, mut rng) = setup(8, 4);
        let loss = crate::params::forward_backward(&mut params, &mut rng, |fwd| {
            let xt = init::uniform(3, 8, -1.0, 1.0, fwd.rng);
            let x = fwd.constant(xt);
            let y = mha.forward(fwd, x, x, None);
            let m = fwd.graph.mean_rows(y);
            let ones = fwd.constant(Tensor::ones(8, 1));
            fwd.graph.matmul(m, ones)
        });
        assert!(loss.is_finite());
        let norm = params.grad_norm();
        assert!(norm > 0.0, "gradients must reach the projections");
    }
}
