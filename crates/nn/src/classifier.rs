//! The template classification head (Section 4.1.2).
//!
//! The paper augments the trained seq2seq *encoder* with "a standard
//! two-layer classifier in NLP": pooled encoder output → hidden layer →
//! class logits. Fine-tuning continues training the encoder weights
//! together with the head; the non-fine-tuned ablation uses a freshly
//! initialised encoder.

use crate::layers::{Dropout, Linear};
use crate::params::{Fwd, Params};
use crate::seq2seq::{pool_encoder, Seq2Seq};
use qrec_tensor::NodeId;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// Two-layer MLP classification head.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClassifierHead {
    lin1: Linear,
    lin2: Linear,
    drop: Dropout,
    /// Number of output classes.
    pub classes: usize,
}

impl ClassifierHead {
    /// Create a head mapping `d_model` → `hidden` → `classes`.
    pub fn new(
        params: &mut Params,
        d_model: usize,
        hidden: usize,
        classes: usize,
        dropout: f32,
        rng: &mut StdRng,
    ) -> Self {
        ClassifierHead {
            lin1: Linear::new(params, "clf.l1", d_model, hidden, rng),
            lin2: Linear::new(params, "clf.l2", hidden, classes, rng),
            drop: Dropout::new(dropout),
            classes,
        }
    }

    /// Head forward over a pooled `1 × d` representation.
    pub fn forward(&self, fwd: &mut Fwd<'_>, pooled: NodeId) -> NodeId {
        let h = self.lin1.forward(fwd, pooled);
        let h = fwd.graph.relu(h);
        let h = self.drop.forward(fwd, h);
        self.lin2.forward(fwd, h)
    }
}

/// Full classification forward: encode `src`, mean-pool, apply the head.
/// Returns `1 × classes` logits.
pub fn classify_logits<M: Seq2Seq>(
    model: &M,
    head: &ClassifierHead,
    fwd: &mut Fwd<'_>,
    src: &[usize],
) -> NodeId {
    let enc = model.encode(fwd, src);
    let pooled = pool_encoder(fwd, enc);
    head.forward(fwd, pooled)
}

/// Class probabilities for `src` (softmax over the logits), highest
/// first as `(class, probability)` pairs.
pub fn classify<M: Seq2Seq>(
    model: &M,
    head: &ClassifierHead,
    params: &Params,
    src: &[usize],
    rng: &mut StdRng,
) -> Vec<(usize, f32)> {
    let probs = crate::params::forward_eval(params, rng, |fwd| {
        let logits = classify_logits(model, head, fwd, src);
        fwd.graph.value(logits).softmax_rows().into_data()
    });
    let mut ranked: Vec<(usize, f32)> = probs.into_iter().enumerate().collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    ranked
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adam::{Adam, AdamConfig};
    use crate::params::forward_backward;
    use crate::transformer::{Transformer, TransformerConfig};
    use rand::SeedableRng;

    #[test]
    fn head_shapes() {
        let mut params = Params::new();
        let mut rng = StdRng::seed_from_u64(2);
        let model = Transformer::new(&mut params, TransformerConfig::test(12), &mut rng);
        let head = ClassifierHead::new(&mut params, 16, 32, 5, 0.0, &mut rng);
        let ranked = classify(&model, &head, &params, &[1, 4, 5, 2], &mut rng);
        assert_eq!(ranked.len(), 5);
        let total: f32 = ranked.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-4);
        assert!(ranked[0].1 >= ranked[4].1);
    }

    #[test]
    fn classifier_learns_a_separable_task() {
        // Sequences starting with token 4 are class 0; with token 5,
        // class 1. A tiny encoder+head must learn this quickly.
        let mut params = Params::new();
        let mut rng = StdRng::seed_from_u64(3);
        let model = Transformer::new(&mut params, TransformerConfig::test(12), &mut rng);
        let head = ClassifierHead::new(&mut params, 16, 16, 2, 0.0, &mut rng);
        let mut adam = Adam::new(
            AdamConfig {
                lr: 3e-3,
                ..AdamConfig::default()
            },
            &params,
        );
        let data: Vec<(Vec<usize>, usize)> = vec![
            (vec![1, 4, 6, 2], 0),
            (vec![1, 4, 7, 2], 0),
            (vec![1, 5, 6, 2], 1),
            (vec![1, 5, 9, 2], 1),
        ];
        for _ in 0..60 {
            for (src, label) in &data {
                forward_backward(&mut params, &mut rng, |fwd| {
                    let logits = classify_logits(&model, &head, fwd, src);
                    fwd.graph.cross_entropy(logits, &[*label])
                });
                adam.step(&mut params, 1.0);
            }
        }
        for (src, label) in &data {
            let ranked = classify(&model, &head, &params, src, &mut rng);
            assert_eq!(ranked[0].0, *label, "misclassified {src:?}");
        }
    }

    #[test]
    fn fine_tuning_reuses_pretrained_encoder_params() {
        // The fine-tuning construction: clone the seq2seq Params, append
        // head params; the encoder ParamIds stay valid.
        let mut params = Params::new();
        let mut rng = StdRng::seed_from_u64(4);
        let model = Transformer::new(&mut params, TransformerConfig::test(12), &mut rng);
        let pre_count = params.len();
        let mut ft_params = params.clone();
        let head = ClassifierHead::new(&mut ft_params, 16, 16, 3, 0.0, &mut rng);
        assert_eq!(ft_params.len(), pre_count + 4);
        // Forward through the cloned store works with the original ids.
        let ranked = classify(&model, &head, &ft_params, &[1, 4, 2], &mut rng);
        assert_eq!(ranked.len(), 3);
    }
}
