//! GRU (recurrent) sequence-to-sequence model with dot-product attention.
//!
//! The paper's RNN variant (details deferred to its full version); we
//! include it both for completeness and for the architecture ablation
//! benches.

use crate::incremental::{full_prefix_step, repeat_row, DecodeState, GruState, StateKind};
use crate::layers::{Dropout, Embedding, Linear};
use crate::params::{Fwd, Params};
use crate::seq2seq::Seq2Seq;
use qrec_tensor::{NodeId, Tensor};
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// GRU seq2seq hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GruConfig {
    /// Vocabulary size.
    pub vocab: usize,
    /// Hidden width.
    pub d_model: usize,
    /// Dropout probability on embeddings.
    pub dropout: f32,
    /// Maximum sequence length.
    pub max_len: usize,
}

impl GruConfig {
    /// A small configuration good for the synthetic workloads.
    pub fn small(vocab: usize) -> Self {
        GruConfig {
            vocab,
            d_model: 48,
            dropout: 0.1,
            max_len: 160,
        }
    }

    /// A minimal configuration for tests.
    pub fn test(vocab: usize) -> Self {
        GruConfig {
            vocab,
            d_model: 16,
            dropout: 0.0,
            max_len: 64,
        }
    }
}

/// One GRU cell: update/reset/candidate gates.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct GruCell {
    wz: Linear,
    uz: Linear,
    wr: Linear,
    ur: Linear,
    wh: Linear,
    uh: Linear,
}

impl GruCell {
    fn new(params: &mut Params, name: &str, d_in: usize, d: usize, rng: &mut StdRng) -> Self {
        GruCell {
            wz: Linear::new(params, &format!("{name}.wz"), d_in, d, rng),
            uz: Linear::new_no_bias(params, &format!("{name}.uz"), d, d, rng),
            wr: Linear::new(params, &format!("{name}.wr"), d_in, d, rng),
            ur: Linear::new_no_bias(params, &format!("{name}.ur"), d, d, rng),
            wh: Linear::new(params, &format!("{name}.wh"), d_in, d, rng),
            uh: Linear::new_no_bias(params, &format!("{name}.uh"), d, d, rng),
        }
    }

    /// One step: `x` is `1 × d_in`, `h` is `1 × d`; returns new `1 × d`.
    fn step(&self, fwd: &mut Fwd<'_>, x: NodeId, h: NodeId) -> NodeId {
        let zx = self.wz.forward(fwd, x);
        let zh = self.uz.forward(fwd, h);
        let z = fwd.graph.add(zx, zh);
        let z = fwd.graph.sigmoid(z);

        let rx = self.wr.forward(fwd, x);
        let rh = self.ur.forward(fwd, h);
        let r = fwd.graph.add(rx, rh);
        let r = fwd.graph.sigmoid(r);

        let hx = self.wh.forward(fwd, x);
        let rh = fwd.graph.mul(r, h);
        let hu = self.uh.forward(fwd, rh);
        let cand = fwd.graph.add(hx, hu);
        let cand = fwd.graph.tanh(cand);

        // h' = (1 - z) ⊙ h + z ⊙ cand
        let one_minus_z = fwd.graph.one_minus(z);
        let keep = fwd.graph.mul(one_minus_z, h);
        let new = fwd.graph.mul(z, cand);
        fwd.graph.add(keep, new)
    }
}

/// GRU encoder–decoder with dot-product attention.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GruSeq2Seq {
    cfg: GruConfig,
    src_embed: Embedding,
    tgt_embed: Embedding,
    enc_cell: GruCell,
    dec_cell: GruCell,
    out_proj: Linear,
    drop: Dropout,
}

impl GruSeq2Seq {
    /// Build the architecture, registering weights into `params`.
    pub fn new(params: &mut Params, cfg: GruConfig, rng: &mut StdRng) -> Self {
        let d = cfg.d_model;
        GruSeq2Seq {
            src_embed: Embedding::new(params, "gru.src", cfg.vocab, d, rng),
            tgt_embed: Embedding::new(params, "gru.tgt", cfg.vocab, d, rng),
            enc_cell: GruCell::new(params, "gru.enc", d, d, rng),
            // Decoder input: [embedding | attention context] → 2d wide.
            dec_cell: GruCell::new(params, "gru.dec", 2 * d, d, rng),
            out_proj: Linear::new(params, "gru.out", d, cfg.vocab, rng),
            drop: Dropout::new(cfg.dropout),
            cfg,
        }
    }

    /// The configuration this model was built with.
    pub fn config(&self) -> &GruConfig {
        &self.cfg
    }
}

impl Seq2Seq for GruSeq2Seq {
    fn encode(&self, fwd: &mut Fwd<'_>, src: &[usize]) -> NodeId {
        let ids: Vec<usize> = src.iter().take(self.cfg.max_len).copied().collect();
        let emb = self.src_embed.forward(fwd, &ids);
        let emb = self.drop.forward(fwd, emb);
        let d = self.cfg.d_model;
        let mut h = fwd.constant(Tensor::zeros(1, d));
        let mut states: Option<NodeId> = None;
        for t in 0..ids.len() {
            let x = fwd.graph.slice_rows(emb, t, t + 1);
            h = self.enc_cell.step(fwd, x, h);
            states = Some(match states {
                Some(acc) => fwd.graph.vcat(acc, h),
                None => h,
            });
        }
        states.unwrap_or_else(|| fwd.constant(Tensor::zeros(1, d)))
    }

    fn decode(&self, fwd: &mut Fwd<'_>, enc: NodeId, tgt_in: &[usize]) -> NodeId {
        let states = self.decode_states(fwd, enc, tgt_in);
        self.out_proj.forward(fwd, states)
    }

    fn decode_last_logits(&self, fwd: &mut Fwd<'_>, enc: NodeId, tgt_in: &[usize]) -> NodeId {
        let states = self.decode_states(fwd, enc, tgt_in);
        let rows = fwd.graph.value(states).rows();
        let last = fwd.graph.slice_rows(states, rows - 1, rows);
        self.out_proj.forward(fwd, last)
    }

    fn begin_decode(&self, fwd: &mut Fwd<'_>, enc: &Arc<Tensor>, batch: usize) -> DecodeState {
        let _ = fwd;
        // Initial hidden: the final encoder state, one copy per
        // hypothesis row (matching `decode_states`' slice of the last
        // encoder row).
        let h = repeat_row(enc.row(enc.rows() - 1), batch);
        DecodeState::with_kind(StateKind::Gru(GruState { h }), enc, batch, self.cfg.max_len)
    }

    fn step_logits(
        &self,
        fwd: &mut Fwd<'_>,
        state: &mut DecodeState,
        last_toks: &[usize],
    ) -> Tensor {
        if !matches!(state.kind, StateKind::Gru(_)) || last_toks.is_empty() {
            return full_prefix_step(self, fwd, state, last_toks);
        }
        if state.advance(last_toks).is_none() {
            return state.frozen_logits();
        }
        let emb = self.tgt_embed.forward(fwd, last_toks);
        let x = self.drop.forward(fwd, emb);
        let enc_node = fwd.constant_shared(Arc::clone(&state.enc));
        let scale = 1.0 / (self.cfg.d_model as f32).sqrt();
        let mut new_h = None;
        if let StateKind::Gru(gs) = &mut state.kind {
            let h = fwd.constant(gs.h.clone());
            // Dot-product attention with the previous hidden state,
            // batched across hypothesis rows.
            let logits = fwd.graph.matmul_nt(h, enc_node);
            let logits = fwd.graph.scale(logits, scale);
            let attn = fwd.graph.softmax_rows(logits);
            let ctx = fwd.graph.matmul(attn, enc_node);
            let xin = fwd.graph.hcat(x, ctx);
            let next = self.dec_cell.step(fwd, xin, h);
            gs.h = fwd.graph.value(next).clone();
            new_h = Some(next);
        }
        match new_h {
            Some(h) => {
                let logits = self.out_proj.forward(fwd, h);
                let value = fwd.graph.value(logits).clone();
                state.remember_logits(value)
            }
            None => state.frozen_logits(),
        }
    }

    fn vocab(&self) -> usize {
        self.cfg.vocab
    }

    fn d_model(&self) -> usize {
        self.cfg.d_model
    }

    fn arch_name(&self) -> &'static str {
        "gru"
    }
}

impl GruSeq2Seq {
    fn decode_states(&self, fwd: &mut Fwd<'_>, enc: NodeId, tgt_in: &[usize]) -> NodeId {
        let ids: Vec<usize> = tgt_in.iter().take(self.cfg.max_len).copied().collect();
        let emb = self.tgt_embed.forward(fwd, &ids);
        let emb = self.drop.forward(fwd, emb);
        let d = self.cfg.d_model;
        let scale = 1.0 / (d as f32).sqrt();
        // Initial hidden: final encoder state.
        let n_enc = fwd.graph.value(enc).rows();
        let mut h = fwd.graph.slice_rows(enc, n_enc - 1, n_enc);
        let mut outputs: Option<NodeId> = None;
        for t in 0..ids.len() {
            // Dot-product attention with the previous hidden state.
            let logits = fwd.graph.matmul_nt(h, enc); // 1 × n_enc
            let logits = fwd.graph.scale(logits, scale);
            let attn = fwd.graph.softmax_rows(logits);
            let ctx = fwd.graph.matmul(attn, enc); // 1 × d
            let x = fwd.graph.slice_rows(emb, t, t + 1);
            let xin = fwd.graph.hcat(x, ctx); // 1 × 2d
            h = self.dec_cell.step(fwd, xin, h);
            outputs = Some(match outputs {
                Some(acc) => fwd.graph.vcat(acc, h),
                None => h,
            });
        }
        outputs.unwrap_or_else(|| fwd.constant(Tensor::zeros(1, d)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{forward_eval, Params};
    use rand::SeedableRng;

    fn setup() -> (Params, GruSeq2Seq) {
        let mut params = Params::new();
        let mut rng = StdRng::seed_from_u64(5);
        let model = GruSeq2Seq::new(&mut params, GruConfig::test(20), &mut rng);
        (params, model)
    }

    #[test]
    fn shapes_are_correct() {
        let (params, model) = setup();
        let mut rng = StdRng::seed_from_u64(0);
        let (enc_shape, dec_shape) = forward_eval(&params, &mut rng, |fwd| {
            let enc = model.encode(fwd, &[1, 5, 6, 2]);
            let logits = model.decode(fwd, enc, &[1, 7, 8]);
            (
                fwd.graph.value(enc).shape(),
                fwd.graph.value(logits).shape(),
            )
        });
        assert_eq!(enc_shape, (4, 16));
        assert_eq!(dec_shape, (3, 20));
    }

    #[test]
    fn decoder_is_causal() {
        let (params, model) = setup();
        let run = |tgt: &[usize]| {
            let mut rng = StdRng::seed_from_u64(0);
            forward_eval(&params, &mut rng, |fwd| {
                let enc = model.encode(fwd, &[1, 5, 2]);
                let logits = model.decode(fwd, enc, tgt);
                fwd.graph.value(logits).row(0).to_vec()
            })
        };
        let a = run(&[1, 7, 8]);
        let b = run(&[1, 9, 4]);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-4, "GRU decoder row 0 sees the future");
        }
    }

    #[test]
    fn encoder_order_matters() {
        // A recurrent encoder must distinguish permuted inputs.
        let (params, model) = setup();
        let run = |src: &[usize]| {
            let mut rng = StdRng::seed_from_u64(0);
            forward_eval(&params, &mut rng, |fwd| {
                let enc = model.encode(fwd, src);
                let n = fwd.graph.value(enc).rows();
                fwd.graph.value(enc).row(n - 1).to_vec()
            })
        };
        let a = run(&[1, 5, 7, 2]);
        let b = run(&[1, 7, 5, 2]);
        let diff: f32 = a.iter().zip(&b).map(|(x, y)| (x - y).abs()).sum();
        assert!(diff > 1e-4);
    }

    #[test]
    fn training_reduces_loss_on_a_single_pair() {
        use crate::adam::{Adam, AdamConfig};
        let mut params = Params::new();
        let mut rng = StdRng::seed_from_u64(6);
        let model = GruSeq2Seq::new(&mut params, GruConfig::test(12), &mut rng);
        let mut adam = Adam::new(
            AdamConfig {
                lr: 5e-3,
                ..AdamConfig::default()
            },
            &params,
        );
        let src = [1usize, 4, 5, 6, 2];
        let tgt_in = [1usize, 7, 8, 9];
        let tgt_out = [7usize, 8, 9, 2];
        let mut first = 0.0;
        let mut last = 0.0;
        for step in 0..40 {
            let loss = crate::params::forward_backward(&mut params, &mut rng, |fwd| {
                let enc = model.encode(fwd, &src);
                let logits = model.decode(fwd, enc, &tgt_in);
                fwd.graph.cross_entropy(logits, &tgt_out)
            });
            if step == 0 {
                first = loss;
            }
            last = loss;
            adam.step(&mut params, 1.0);
        }
        assert!(last < first * 0.5, "first {first}, last {last}");
    }

    #[test]
    fn empty_source_still_produces_states() {
        let (params, model) = setup();
        let mut rng = StdRng::seed_from_u64(0);
        let shape = forward_eval(&params, &mut rng, |fwd| {
            let enc = model.encode(fwd, &[]);
            fwd.graph.value(enc).shape()
        });
        assert_eq!(shape, (1, 16));
    }
}
