//! Decoding strategies for online recommendation (Section 4.2.2):
//! greedy decoding for fragment-*set* prediction, and beam search /
//! diverse beam search / stochastic sampling for *N-fragments*
//! prediction.
//!
//! All strategies operate through [`Seq2Seq::decode`]'s causal interface
//! and return [`Hypothesis`] lists carrying per-token probabilities, from
//! which the recommender aggregates fragment probabilities over the
//! partial search tree exactly as the paper describes.

use crate::params::{Binding, Fwd, Params};
use crate::seq2seq::Seq2Seq;
use qrec_tensor::{Graph, Tensor};
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Padding token id (never emitted).
pub const PAD: usize = 0;
/// Start-of-sequence id, mirroring `qrec_workload::vocab` (never emitted).
pub const SOS: usize = 1;
/// End-of-sequence id.
pub const EOS: usize = 2;

/// Zero out tokens a decoder must never emit (`<PAD>`, `<SOS>`).
fn suppress_specials(probs: &mut [f32]) {
    if probs.len() > PAD {
        probs[PAD] = 0.0;
    }
    if probs.len() > SOS {
        probs[SOS] = 0.0;
    }
}

/// One decoded candidate sequence.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Hypothesis {
    /// Emitted token ids (no `<SOS>`, no `<EOS>`).
    pub ids: Vec<usize>,
    /// Probability of each emitted token at its step, aligned with `ids`.
    pub token_probs: Vec<f32>,
    /// Sum of log-probabilities (including the final `<EOS>` if finished).
    pub log_prob: f32,
    /// Whether the hypothesis emitted `<EOS>` before the length cap.
    pub finished: bool,
}

/// The decoding strategy to use.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Strategy {
    /// Pick the argmax token each step; returns one hypothesis.
    Greedy,
    /// Standard beam search with the given width.
    Beam {
        /// Beam width `B`.
        width: usize,
    },
    /// Diverse beam search: `groups` groups, Hamming diversity penalty
    /// subtracted from the log-score of tokens earlier groups picked at
    /// the same step (Vijayakumar et al.).
    DiverseBeam {
        /// Total beam width (divided across groups).
        width: usize,
        /// Number of diversity groups.
        groups: usize,
        /// Penalty strength λ.
        penalty: f32,
    },
    /// Stochastic decoding: `samples` independent rollouts, sampling each
    /// step from the distribution with low-probability tokens zeroed
    /// (the paper's variant of nucleus-style filtering).
    Sampling {
        /// Number of rollouts.
        samples: usize,
        /// Tokens with probability below this are never sampled.
        min_prob: f32,
    },
}

/// Decode candidate next-query token sequences for `src`.
///
/// `max_len` caps emitted length. Returns hypotheses sorted by
/// descending log-probability (deduplicated on token ids).
#[must_use]
pub fn decode<M: Seq2Seq + ?Sized>(
    model: &M,
    params: &Params,
    src: &[usize],
    strategy: Strategy,
    max_len: usize,
    rng: &mut StdRng,
) -> Vec<Hypothesis> {
    let mut dec = Decoder::new(model, params, rng);
    let mut hyps = match strategy {
        Strategy::Greedy => vec![dec.greedy(src, max_len)],
        Strategy::Beam { width } => dec.beam(src, max_len, width, 1, 0.0),
        Strategy::DiverseBeam {
            width,
            groups,
            penalty,
        } => dec.beam(src, max_len, width, groups.max(1), penalty),
        Strategy::Sampling { samples, min_prob } => dec.sample(src, max_len, samples, min_prob),
    };
    hyps.sort_by(|a, b| {
        b.log_prob
            .partial_cmp(&a.log_prob)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    hyps.dedup_by(|a, b| a.ids == b.ids);
    hyps
}

/// Incremental decoder: one graph per step batchlet, recomputing the
/// prefix (sequence lengths here are short, so O(L²) re-encoding is
/// cheaper than maintaining per-architecture caches).
struct Decoder<'m, M: Seq2Seq + ?Sized> {
    model: &'m M,
    params: &'m Params,
    rng: &'m mut StdRng,
    /// Encoder output cached per source sequence: decoding re-queries the
    /// decoder many times against the same, frozen encoder state. Held as
    /// an `Arc` so each step graph shares the one allocation instead of
    /// cloning the tensor per step of every hypothesis.
    enc_cache: Option<(Vec<usize>, Arc<Tensor>)>,
}

impl<'m, M: Seq2Seq + ?Sized> Decoder<'m, M> {
    fn new(model: &'m M, params: &'m Params, rng: &'m mut StdRng) -> Self {
        Decoder {
            model,
            params,
            rng,
            enc_cache: None,
        }
    }

    fn encoder_output(&mut self, src: &[usize]) -> Arc<Tensor> {
        if let Some((cached_src, enc)) = &self.enc_cache {
            if cached_src == src {
                return Arc::clone(enc); // refcount bump, no data copy
            }
        }
        let mut graph = Graph::new();
        let mut bind = Binding::new(self.params.len());
        let mut fwd = Fwd {
            graph: &mut graph,
            params: self.params,
            bind: &mut bind,
            rng: self.rng,
            training: false,
        };
        let enc = self.model.encode(&mut fwd, src);
        let out = graph.value_shared(enc);
        self.enc_cache = Some((src.to_vec(), Arc::clone(&out)));
        out
    }

    /// Next-token probability distribution after `prefix` (which starts
    /// with `<SOS>`).
    fn next_probs(&mut self, src: &[usize], prefix: &[usize]) -> Vec<f32> {
        let enc_val = self.encoder_output(src);
        let mut graph = Graph::new();
        let mut bind = Binding::new(self.params.len());
        let mut fwd = Fwd {
            graph: &mut graph,
            params: self.params,
            bind: &mut bind,
            rng: self.rng,
            training: false,
        };
        let enc = fwd.constant_shared(enc_val);
        let logits = self.model.decode_last_logits(&mut fwd, enc, prefix);
        graph.value(logits).softmax_rows().into_data()
    }

    fn greedy(&mut self, src: &[usize], max_len: usize) -> Hypothesis {
        let mut prefix = vec![SOS];
        let mut hyp = Hypothesis {
            ids: Vec::new(),
            token_probs: Vec::new(),
            log_prob: 0.0,
            finished: false,
        };
        for _ in 0..max_len {
            let mut probs = self.next_probs(src, &prefix);
            suppress_specials(&mut probs);
            let (tok, p) = argmax(&probs);
            hyp.log_prob += p.max(1e-12).ln();
            if tok == EOS {
                hyp.finished = true;
                break;
            }
            hyp.ids.push(tok);
            hyp.token_probs.push(p);
            prefix.push(tok);
        }
        hyp
    }

    /// Beam search; with `groups > 1` runs diverse beam search.
    fn beam(
        &mut self,
        src: &[usize],
        max_len: usize,
        width: usize,
        groups: usize,
        penalty: f32,
    ) -> Vec<Hypothesis> {
        let width = width.max(1);
        let groups = groups.min(width);
        let group_width = width.div_ceil(groups);

        #[derive(Clone)]
        struct Live {
            prefix: Vec<usize>, // starts with SOS
            hyp: Hypothesis,
        }
        let root = Live {
            prefix: vec![SOS],
            hyp: Hypothesis {
                ids: Vec::new(),
                token_probs: Vec::new(),
                log_prob: 0.0,
                finished: false,
            },
        };
        // One beam per group.
        let mut beams: Vec<Vec<Live>> = vec![vec![root]; groups];
        let mut done: Vec<Hypothesis> = Vec::new();

        for _step in 0..max_len {
            let mut chosen_this_step: Vec<usize> = Vec::new();
            for beam in beams.iter_mut() {
                if beam.is_empty() {
                    continue;
                }
                let mut candidates: Vec<(f32, usize, usize)> = Vec::new(); // (score, live idx, token)
                let mut probs_cache: Vec<Vec<f32>> = Vec::with_capacity(beam.len());
                for (li, live) in beam.iter().enumerate() {
                    let mut probs = self.next_probs(src, &live.prefix);
                    suppress_specials(&mut probs);
                    for (tok, &p) in probs.iter().enumerate() {
                        if p <= 0.0 {
                            continue;
                        }
                        let mut score = live.hyp.log_prob + p.max(1e-12).ln();
                        if penalty > 0.0 {
                            let count = chosen_this_step.iter().filter(|&&t| t == tok).count();
                            score -= penalty * count as f32;
                        }
                        candidates.push((score, li, tok));
                    }
                    probs_cache.push(probs);
                }
                candidates
                    .sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
                // Standard beam step: the top `group_width` candidates each
                // take one slot; an EOS candidate retires its hypothesis.
                let mut next: Vec<Live> = Vec::with_capacity(group_width);
                for (_score, li, tok) in candidates.into_iter().take(group_width) {
                    let live = &beam[li];
                    let p = probs_cache[li][tok];
                    let mut hyp = live.hyp.clone();
                    hyp.log_prob += p.max(1e-12).ln();
                    if tok == EOS {
                        hyp.finished = true;
                        done.push(hyp);
                        continue;
                    }
                    hyp.ids.push(tok);
                    hyp.token_probs.push(p);
                    let mut prefix = live.prefix.clone();
                    prefix.push(tok);
                    chosen_this_step.push(tok);
                    next.push(Live { prefix, hyp });
                }
                *beam = next;
            }
            if beams.iter().all(|b| b.is_empty()) || done.len() >= width * 2 {
                break;
            }
        }
        // Unfinished survivors still count as candidates.
        for beam in beams {
            for live in beam {
                done.push(live.hyp);
            }
        }
        done
    }

    fn sample(
        &mut self,
        src: &[usize],
        max_len: usize,
        samples: usize,
        min_prob: f32,
    ) -> Vec<Hypothesis> {
        let mut out = Vec::with_capacity(samples);
        for _ in 0..samples {
            let mut prefix = vec![SOS];
            let mut hyp = Hypothesis {
                ids: Vec::new(),
                token_probs: Vec::new(),
                log_prob: 0.0,
                finished: false,
            };
            for _ in 0..max_len {
                let mut probs = self.next_probs(src, &prefix);
                suppress_specials(&mut probs);
                // The paper zeroes low-score tokens before sampling.
                let mut total = 0.0f32;
                for p in probs.iter_mut() {
                    if *p < min_prob {
                        *p = 0.0;
                    }
                    total += *p;
                }
                if total <= 0.0 {
                    // Degenerate distribution: fall back to argmax.
                    probs = self.next_probs(src, &prefix);
                    suppress_specials(&mut probs);
                    let (tok, p) = argmax(&probs);
                    hyp.log_prob += p.max(1e-12).ln();
                    if tok == EOS {
                        hyp.finished = true;
                        break;
                    }
                    hyp.ids.push(tok);
                    hyp.token_probs.push(p);
                    prefix.push(tok);
                    continue;
                }
                let mut u = self.rng.gen_range(0.0..total);
                let mut tok = probs.len() - 1;
                for (i, &p) in probs.iter().enumerate() {
                    if u < p {
                        tok = i;
                        break;
                    }
                    u -= p;
                }
                let p = probs[tok] / total;
                hyp.log_prob += p.max(1e-12).ln();
                if tok == EOS {
                    hyp.finished = true;
                    break;
                }
                hyp.ids.push(tok);
                hyp.token_probs.push(p);
                prefix.push(tok);
            }
            out.push(hyp);
        }
        out
    }
}

fn argmax(probs: &[f32]) -> (usize, f32) {
    let mut best = 0;
    let mut best_p = f32::NEG_INFINITY;
    for (i, &p) in probs.iter().enumerate() {
        if p > best_p {
            best_p = p;
            best = i;
        }
    }
    (best, best_p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adam::{Adam, AdamConfig};
    use crate::params::forward_backward;
    use crate::transformer::{Transformer, TransformerConfig};
    use rand::SeedableRng;

    /// Train a tiny model to copy its input; decoding should then emit
    /// the source sequence.
    fn trained_copy_model() -> (Params, Transformer) {
        let mut params = Params::new();
        let mut rng = StdRng::seed_from_u64(8);
        let model = Transformer::new(&mut params, TransformerConfig::test(10), &mut rng);
        let mut adam = Adam::new(
            AdamConfig {
                lr: 3e-3,
                ..AdamConfig::default()
            },
            &params,
        );
        let seqs: Vec<Vec<usize>> = vec![
            vec![SOS, 4, 5, 6, EOS],
            vec![SOS, 7, 8, EOS],
            vec![SOS, 9, 4, 7, EOS],
        ];
        for _ in 0..60 {
            for s in &seqs {
                let src = s.clone();
                let tgt_in = &s[..s.len() - 1];
                let tgt_out = &s[1..];
                forward_backward(&mut params, &mut StdRng::seed_from_u64(0), |fwd| {
                    let enc = model.encode(fwd, &src);
                    let logits = model.decode(fwd, enc, tgt_in);
                    fwd.graph.cross_entropy(logits, tgt_out)
                });
                adam.step(&mut params, 1.0);
            }
        }
        (params, model)
    }

    #[test]
    fn greedy_decodes_copy_task() {
        let (params, model) = trained_copy_model();
        let mut rng = StdRng::seed_from_u64(0);
        let hyps = decode(
            &model,
            &params,
            &[SOS, 4, 5, 6, EOS],
            Strategy::Greedy,
            10,
            &mut rng,
        );
        assert_eq!(hyps.len(), 1);
        assert_eq!(hyps[0].ids, vec![4, 5, 6]);
        assert!(hyps[0].finished);
        assert_eq!(hyps[0].ids.len(), hyps[0].token_probs.len());
        assert!(hyps[0]
            .token_probs
            .iter()
            .all(|&p| (0.0..=1.0).contains(&p)));
    }

    #[test]
    fn beam_width_one_matches_greedy() {
        let (params, model) = trained_copy_model();
        let src = [SOS, 7, 8, EOS];
        let g = decode(
            &model,
            &params,
            &src,
            Strategy::Greedy,
            10,
            &mut StdRng::seed_from_u64(0),
        );
        let b = decode(
            &model,
            &params,
            &src,
            Strategy::Beam { width: 1 },
            10,
            &mut StdRng::seed_from_u64(0),
        );
        assert_eq!(g[0].ids, b[0].ids);
    }

    #[test]
    fn beam_returns_multiple_ranked_hypotheses() {
        let (params, model) = trained_copy_model();
        let hyps = decode(
            &model,
            &params,
            &[SOS, 9, 4, 7, EOS],
            Strategy::Beam { width: 4 },
            10,
            &mut StdRng::seed_from_u64(0),
        );
        assert!(hyps.len() >= 2, "beam should keep alternatives");
        for w in hyps.windows(2) {
            assert!(w[0].log_prob >= w[1].log_prob, "must be sorted");
        }
        // The top hypothesis is the copy.
        assert_eq!(hyps[0].ids, vec![9, 4, 7]);
    }

    #[test]
    fn diverse_beam_spreads_tokens() {
        let (params, model) = trained_copy_model();
        let plain = decode(
            &model,
            &params,
            &[SOS, 4, 5, 6, EOS],
            Strategy::Beam { width: 4 },
            10,
            &mut StdRng::seed_from_u64(0),
        );
        let diverse = decode(
            &model,
            &params,
            &[SOS, 4, 5, 6, EOS],
            Strategy::DiverseBeam {
                width: 4,
                groups: 2,
                penalty: 2.0,
            },
            10,
            &mut StdRng::seed_from_u64(0),
        );
        let first_tokens = |hs: &[Hypothesis]| {
            hs.iter()
                .filter_map(|h| h.ids.first().copied())
                .collect::<std::collections::HashSet<_>>()
        };
        assert!(
            first_tokens(&diverse).len() >= first_tokens(&plain).len(),
            "diversity penalty should not reduce first-token variety"
        );
    }

    #[test]
    fn sampling_respects_min_prob() {
        let (params, model) = trained_copy_model();
        // With a very high min_prob only the argmax survives, so sampling
        // degenerates to greedy.
        let hyps = decode(
            &model,
            &params,
            &[SOS, 4, 5, 6, EOS],
            Strategy::Sampling {
                samples: 3,
                min_prob: 0.9,
            },
            10,
            &mut StdRng::seed_from_u64(1),
        );
        // After dedup all samples collapse to the same (greedy) sequence.
        assert_eq!(hyps.len(), 1);
        assert_eq!(hyps[0].ids, vec![4, 5, 6]);
    }

    #[test]
    fn sampling_produces_variety_with_low_threshold() {
        let mut params = Params::new();
        let mut rng = StdRng::seed_from_u64(3);
        // Untrained model → near-uniform distributions → diverse samples.
        let model = Transformer::new(&mut params, TransformerConfig::test(30), &mut rng);
        let hyps = decode(
            &model,
            &params,
            &[SOS, 4, EOS],
            Strategy::Sampling {
                samples: 6,
                min_prob: 0.0,
            },
            6,
            &mut rng,
        );
        assert!(
            hyps.len() >= 2,
            "expected varied samples, got {}",
            hyps.len()
        );
    }

    #[test]
    fn max_len_caps_unfinished_hypotheses() {
        let mut params = Params::new();
        let mut rng = StdRng::seed_from_u64(3);
        let model = Transformer::new(&mut params, TransformerConfig::test(30), &mut rng);
        let hyps = decode(
            &model,
            &params,
            &[SOS, 4, EOS],
            Strategy::Greedy,
            4,
            &mut rng,
        );
        assert!(hyps[0].ids.len() <= 4);
    }
}
