//! Decoding strategies for online recommendation (Section 4.2.2):
//! greedy decoding for fragment-*set* prediction, and beam search /
//! diverse beam search / stochastic sampling for *N-fragments*
//! prediction.
//!
//! All strategies run **incrementally**: the encoder output is computed
//! once per source (and cached across calls in an [`EncCache`]), each
//! architecture carries a [`DecodeState`] of per-layer caches (see
//! [`crate::incremental`]), and every step runs **one batched
//! `B × vocab` forward** across all live hypotheses instead of one
//! full-prefix forward per hypothesis. The batched logits are bitwise
//! identical to the serial full-prefix path — [`decode_reference`]
//! keeps that path alive as the equivalence-suite ground truth and the
//! pre-optimisation benchmark baseline.
//!
//! All strategies return [`Hypothesis`] lists carrying per-token
//! probabilities, from which the recommender aggregates fragment
//! probabilities over the partial search tree exactly as the paper
//! describes.

use crate::incremental::DecodeState;
use crate::params::{Binding, Fwd, Params};
use crate::seq2seq::Seq2Seq;
use qrec_tensor::{Graph, Tensor};
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Padding token id (never emitted).
pub const PAD: usize = 0;
/// Start-of-sequence id, mirroring `qrec_workload::vocab` (never emitted).
pub const SOS: usize = 1;
/// End-of-sequence id.
pub const EOS: usize = 2;

static DECODE_STEPS: AtomicU64 = AtomicU64::new(0);
static ENC_CACHE_HITS: AtomicU64 = AtomicU64::new(0);
static ENC_CACHE_MISSES: AtomicU64 = AtomicU64::new(0);

/// Per-step decode-forward duration histogram, registered lazily in the
/// global obs registry. Timed only while the obs spine is enabled.
fn step_hist() -> &'static Arc<qrec_obs::Histogram> {
    static H: std::sync::OnceLock<Arc<qrec_obs::Histogram>> = std::sync::OnceLock::new();
    H.get_or_init(|| qrec_obs::global().histogram_log2("nn.decode.step_us"))
}

/// Encoder-pass duration histogram (paid only on an [`EncCache`] miss).
fn encode_hist() -> &'static Arc<qrec_obs::Histogram> {
    static H: std::sync::OnceLock<Arc<qrec_obs::Histogram>> = std::sync::OnceLock::new();
    H.get_or_init(|| qrec_obs::global().histogram_log2("nn.decode.encode_us"))
}

/// Process-wide decode activity counters (monotonic, relaxed ordering),
/// surfaced by qrec-serve's STATS verb.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DecodeCounters {
    /// Batched decode-step forwards executed (one per step across all
    /// live hypotheses, not one per hypothesis).
    pub steps: u64,
    /// Encoder-output cache hits across every [`EncCache`].
    pub enc_cache_hits: u64,
    /// Encoder-output cache misses (each one paid a full encoder pass).
    pub enc_cache_misses: u64,
}

/// Read the current decode counters.
pub fn counters() -> DecodeCounters {
    DecodeCounters {
        steps: DECODE_STEPS.load(Ordering::Relaxed),
        enc_cache_hits: ENC_CACHE_HITS.load(Ordering::Relaxed),
        enc_cache_misses: ENC_CACHE_MISSES.load(Ordering::Relaxed),
    }
}

/// A small keyed LRU over encoder outputs.
///
/// qrec-serve's micro-batcher interleaves sessions through one decode
/// engine, so a single-entry cache thrashes on every interleave; a few
/// slots keyed by source tokens keep each session's encoder pass warm.
/// Entries are `Arc`-shared with decode graphs, so a hit costs a
/// refcount bump. Hits and misses feed the process-wide [`counters`].
///
/// The `generation` tag guards hot-swap: a cache must never serve
/// encoder outputs computed under old weights, so bump the generation
/// (qrec-serve uses the model-registry epoch) to invalidate wholesale.
#[derive(Debug)]
pub struct EncCache {
    capacity: usize,
    generation: u64,
    /// Most-recently used last.
    entries: Vec<(Vec<usize>, Arc<Tensor>)>,
}

impl EncCache {
    /// Create with room for `capacity` encoder outputs (minimum 1).
    pub fn new(capacity: usize) -> Self {
        EncCache {
            capacity: capacity.max(1),
            generation: 0,
            entries: Vec::new(),
        }
    }

    /// Tag the cache with the weights' generation, dropping every entry
    /// when it changes.
    pub fn set_generation(&mut self, generation: u64) {
        if self.generation != generation {
            self.entries.clear();
            self.generation = generation;
        }
    }

    /// Number of cached encoder outputs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Look up the encoder output for `src`, refreshing its recency.
    pub fn lookup(&mut self, src: &[usize]) -> Option<Arc<Tensor>> {
        match self.entries.iter().position(|(key, _)| key == src) {
            Some(pos) => {
                let entry = self.entries.remove(pos);
                let enc = Arc::clone(&entry.1);
                self.entries.push(entry);
                ENC_CACHE_HITS.fetch_add(1, Ordering::Relaxed);
                qrec_obs::trace::note_enc_cache(true);
                Some(enc)
            }
            None => {
                ENC_CACHE_MISSES.fetch_add(1, Ordering::Relaxed);
                qrec_obs::trace::note_enc_cache(false);
                None
            }
        }
    }

    /// Insert an encoder output, evicting the least-recently used entry
    /// at capacity.
    pub fn insert(&mut self, src: Vec<usize>, enc: Arc<Tensor>) {
        if self.entries.len() >= self.capacity {
            self.entries.remove(0);
        }
        self.entries.push((src, enc));
    }
}

/// Zero out tokens a decoder must never emit (`<PAD>`, `<SOS>`).
fn suppress_specials(probs: &mut [f32]) {
    if probs.len() > PAD {
        probs[PAD] = 0.0;
    }
    if probs.len() > SOS {
        probs[SOS] = 0.0;
    }
}

/// Select one group's `group_width` beam slots for a single step.
///
/// `rows` holds, per live hypothesis, its suppressed next-token
/// distribution and accumulated log-prob. Returns the winning
/// `(score, live idx, token)` triples in slot order.
///
/// Rather than scoring all `live × vocab` candidates, each row is first
/// pruned to a shortlist by raw probability, which within a row orders
/// candidates exactly like the log-score: a candidate outside its own
/// row's top `group_width` is beaten by `group_width` same-row
/// candidates and can never win a slot. Under a diversity penalty the
/// shortlist is widened by the number of distinct penalized tokens
/// `P`: a candidate below its row's unpenalized top `group_width + P`
/// still has `group_width` unpenalized same-row candidates above it
/// after penalties are applied (penalties only lower scores, and only
/// `P` tokens carry one). `ln` and the sorts therefore touch only the
/// shortlist. Ties break by (probability desc, token asc) while
/// pruning and (score desc, token asc, then row order) when ranking.
/// Both decoders route their beam steps through this function, so
/// incremental and reference selections stay identical.
fn select_beam_slots(
    rows: &[(&[f32], f32)],
    group_width: usize,
    penalty: f32,
    chosen_counts: &HashMap<usize, usize>,
) -> Vec<(f32, usize, usize)> {
    let shortlist = group_width
        + if penalty > 0.0 {
            chosen_counts.len()
        } else {
            0
        };
    let mut merged: Vec<(f32, usize, usize)> = Vec::with_capacity(rows.len() * group_width);
    let mut idx: Vec<usize> = Vec::new();
    let mut scored: Vec<(f32, usize)> = Vec::new();
    for (li, &(probs, base)) in rows.iter().enumerate() {
        idx.clear();
        idx.extend((0..probs.len()).filter(|&t| probs[t] > 0.0));
        if idx.len() > shortlist {
            idx.select_nth_unstable_by(shortlist - 1, |&a, &b| {
                probs[b]
                    .partial_cmp(&probs[a])
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.cmp(&b))
            });
            idx.truncate(shortlist);
        }
        scored.clear();
        scored.extend(idx.iter().map(|&tok| {
            let mut score = base + probs[tok].max(1e-12).ln();
            if penalty > 0.0 {
                let count = chosen_counts.get(&tok).copied().unwrap_or(0);
                score -= penalty * count as f32;
            }
            (score, tok)
        }));
        scored.sort_by(|a, b| {
            b.0.partial_cmp(&a.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.1.cmp(&b.1))
        });
        scored.truncate(group_width);
        merged.extend(scored.iter().map(|&(s, tok)| (s, li, tok)));
    }
    merged.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
    merged.truncate(group_width);
    merged
}

/// One decoded candidate sequence.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Hypothesis {
    /// Emitted token ids (no `<SOS>`, no `<EOS>`).
    pub ids: Vec<usize>,
    /// Probability of each emitted token at its step, aligned with `ids`.
    pub token_probs: Vec<f32>,
    /// Sum of log-probabilities (including the final `<EOS>` if finished).
    pub log_prob: f32,
    /// Whether the hypothesis emitted `<EOS>` before the length cap.
    pub finished: bool,
}

impl Hypothesis {
    fn empty() -> Self {
        Hypothesis {
            ids: Vec::new(),
            token_probs: Vec::new(),
            log_prob: 0.0,
            finished: false,
        }
    }
}

/// The decoding strategy to use.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Strategy {
    /// Pick the argmax token each step; returns one hypothesis.
    Greedy,
    /// Standard beam search with the given width.
    Beam {
        /// Beam width `B`.
        width: usize,
    },
    /// Diverse beam search: `groups` groups, Hamming diversity penalty
    /// subtracted from the log-score of tokens earlier groups picked at
    /// the same step (Vijayakumar et al.).
    DiverseBeam {
        /// Total beam width (divided across groups).
        width: usize,
        /// Number of diversity groups.
        groups: usize,
        /// Penalty strength λ.
        penalty: f32,
    },
    /// Stochastic decoding: `samples` independent rollouts, sampling each
    /// step from the distribution with low-probability tokens zeroed
    /// (the paper's variant of nucleus-style filtering).
    Sampling {
        /// Number of rollouts.
        samples: usize,
        /// Tokens with probability below this are never sampled.
        min_prob: f32,
    },
}

/// Decode candidate next-query token sequences for `src`.
///
/// `max_len` caps emitted length. Returns hypotheses sorted by
/// descending log-probability (deduplicated on token ids).
#[must_use]
pub fn decode<M: Seq2Seq + ?Sized>(
    model: &M,
    params: &Params,
    src: &[usize],
    strategy: Strategy,
    max_len: usize,
    rng: &mut StdRng,
) -> Vec<Hypothesis> {
    let mut cache = EncCache::new(1);
    decode_with_cache(model, params, src, strategy, max_len, rng, &mut cache)
}

/// [`decode`] against a caller-owned [`EncCache`], so repeated decodes
/// over interleaved sources (qrec-serve's micro-batcher) reuse encoder
/// passes across calls.
#[must_use]
#[allow(clippy::too_many_arguments)] // mirrors decode() plus the cache
pub fn decode_with_cache<M: Seq2Seq + ?Sized>(
    model: &M,
    params: &Params,
    src: &[usize],
    strategy: Strategy,
    max_len: usize,
    rng: &mut StdRng,
    cache: &mut EncCache,
) -> Vec<Hypothesis> {
    let mut dec = Decoder {
        model,
        params,
        rng,
        cache,
    };
    let hyps = match strategy {
        Strategy::Greedy => vec![dec.greedy(src, max_len)],
        Strategy::Beam { width } => dec.beam(src, max_len, width, 1, 0.0),
        Strategy::DiverseBeam {
            width,
            groups,
            penalty,
        } => dec.beam(src, max_len, width, groups.max(1), penalty),
        Strategy::Sampling { samples, min_prob } => dec.sample(src, max_len, samples, min_prob),
    };
    rank(hyps)
}

/// The serial full-prefix decode path this module had before the
/// incremental rewrite: every step re-runs the decoder over the entire
/// prefix, once per live hypothesis. Kept verbatim as the ground truth
/// the equivalence suite compares [`decode`] against bitwise, and as
/// the baseline `bench_decode` measures the speedup from.
#[must_use]
pub fn decode_reference<M: Seq2Seq + ?Sized>(
    model: &M,
    params: &Params,
    src: &[usize],
    strategy: Strategy,
    max_len: usize,
    rng: &mut StdRng,
) -> Vec<Hypothesis> {
    let mut dec = ReferenceDecoder {
        model,
        params,
        rng,
        enc_cache: None,
    };
    let hyps = match strategy {
        Strategy::Greedy => vec![dec.greedy(src, max_len)],
        Strategy::Beam { width } => dec.beam(src, max_len, width, 1, 0.0),
        Strategy::DiverseBeam {
            width,
            groups,
            penalty,
        } => dec.beam(src, max_len, width, groups.max(1), penalty),
        Strategy::Sampling { samples, min_prob } => dec.sample(src, max_len, samples, min_prob),
    };
    rank(hyps)
}

/// Shared ranking: sort by descending log-probability, deduplicate on
/// token ids.
fn rank(mut hyps: Vec<Hypothesis>) -> Vec<Hypothesis> {
    hyps.sort_by(|a, b| {
        b.log_prob
            .partial_cmp(&a.log_prob)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    hyps.dedup_by(|a, b| a.ids == b.ids);
    hyps
}

/// Incremental decoder: one [`DecodeState`] per source, one batched
/// forward per step across all live hypotheses, encoder outputs shared
/// through an [`EncCache`].
struct Decoder<'m, M: Seq2Seq + ?Sized> {
    model: &'m M,
    params: &'m Params,
    rng: &'m mut StdRng,
    cache: &'m mut EncCache,
}

impl<'m, M: Seq2Seq + ?Sized> Decoder<'m, M> {
    fn encoder_output(&mut self, src: &[usize]) -> Arc<Tensor> {
        if let Some(enc) = self.cache.lookup(src) {
            return enc; // refcount bump, no data copy
        }
        let _span = qrec_obs::Span::enter_with("encode", encode_hist());
        let mut graph = Graph::new();
        let mut bind = Binding::new(self.params.len());
        let mut fwd = Fwd {
            graph: &mut graph,
            params: self.params,
            bind: &mut bind,
            rng: self.rng,
            training: false,
        };
        let enc = self.model.encode(&mut fwd, src);
        let out = graph.value_shared(enc);
        self.cache.insert(src.to_vec(), Arc::clone(&out));
        out
    }

    /// Start a decode state for `batch` hypothesis rows.
    fn begin(&mut self, enc: &Arc<Tensor>, batch: usize) -> DecodeState {
        let mut graph = Graph::new();
        let mut bind = Binding::new(self.params.len());
        let mut fwd = Fwd {
            graph: &mut graph,
            params: self.params,
            bind: &mut bind,
            rng: self.rng,
            training: false,
        };
        self.model.begin_decode(&mut fwd, enc, batch)
    }

    /// One batched decode step: feed one token per live row, return the
    /// per-row next-token *probability* rows (softmax over the batched
    /// logits — row-independent, so identical to per-row softmax).
    fn step_probs(&mut self, state: &mut DecodeState, last_toks: &[usize]) -> Tensor {
        DECODE_STEPS.fetch_add(1, Ordering::Relaxed);
        // Explicit gated timing instead of a span: per-step granularity
        // would flood the 32-stage trace cap, so steps are attributed as
        // a count plus a histogram sample.
        let t0 = qrec_obs::enabled().then(std::time::Instant::now);
        let mut graph = Graph::new();
        let mut bind = Binding::new(self.params.len());
        let mut fwd = Fwd {
            graph: &mut graph,
            params: self.params,
            bind: &mut bind,
            rng: self.rng,
            training: false,
        };
        let logits = self.model.step_logits(&mut fwd, state, last_toks);
        let probs = logits.softmax_rows();
        if let Some(t0) = t0 {
            step_hist().record_duration(t0.elapsed());
            qrec_obs::trace::note_decode_step();
        }
        probs
    }

    fn greedy(&mut self, src: &[usize], max_len: usize) -> Hypothesis {
        let mut hyp = Hypothesis::empty();
        if max_len == 0 {
            return hyp;
        }
        let enc = self.encoder_output(src);
        let mut state = self.begin(&enc, 1);
        let mut last = SOS;
        for _ in 0..max_len {
            let probs = self.step_probs(&mut state, &[last]);
            let mut probs = probs.into_data();
            suppress_specials(&mut probs);
            let (tok, p) = argmax(&probs);
            hyp.log_prob += p.max(1e-12).ln();
            if tok == EOS {
                hyp.finished = true;
                break;
            }
            hyp.ids.push(tok);
            hyp.token_probs.push(p);
            last = tok;
        }
        hyp
    }

    /// Beam search; with `groups > 1` runs diverse beam search.
    ///
    /// All groups' live hypotheses occupy one [`DecodeState`], rows laid
    /// out group by group, so every step is a single batched forward;
    /// after pruning, [`DecodeState::reorder`] gathers the survivors'
    /// cache rows (a parent spawning several children duplicates its
    /// rows). Slot selection and retirement go through
    /// [`select_beam_slots`], the same routine the reference path uses,
    /// so selections are identical.
    fn beam(
        &mut self,
        src: &[usize],
        max_len: usize,
        width: usize,
        groups: usize,
        penalty: f32,
    ) -> Vec<Hypothesis> {
        let width = width.max(1);
        let groups = groups.min(width);
        let group_width = width.div_ceil(groups);

        if max_len == 0 {
            return vec![Hypothesis::empty(); groups];
        }
        let enc = self.encoder_output(src);
        // Every group starts from the same `<SOS>` root: `groups`
        // identical rows whose first step is computed in one forward.
        let mut state = self.begin(&enc, groups);
        let mut group_hyps: Vec<Vec<Hypothesis>> = vec![vec![Hypothesis::empty()]; groups];
        let mut pending: Vec<usize> = vec![SOS; groups];
        let mut done: Vec<Hypothesis> = Vec::new();

        for _step in 0..max_len {
            let probs = self.step_probs(&mut state, &pending);
            let vocab = probs.cols();
            let total_rows = probs.rows();
            let mut flat = probs.into_data();
            for r in 0..total_rows {
                suppress_specials(&mut flat[r * vocab..(r + 1) * vocab]);
            }
            // Hamming diversity bookkeeping: token → times chosen this
            // step by earlier groups (and earlier slots of this group).
            let mut chosen_counts: HashMap<usize, usize> = HashMap::new();
            let mut parents: Vec<usize> = Vec::new();
            let mut next_tokens: Vec<usize> = Vec::new();
            let mut next_group_hyps: Vec<Vec<Hypothesis>> = Vec::with_capacity(groups);
            let mut row_base = 0usize;
            for hyps in &group_hyps {
                if hyps.is_empty() {
                    next_group_hyps.push(Vec::new());
                    continue;
                }
                let rows: Vec<(&[f32], f32)> = hyps
                    .iter()
                    .enumerate()
                    .map(|(li, hyp)| {
                        let r = row_base + li;
                        (&flat[r * vocab..(r + 1) * vocab], hyp.log_prob)
                    })
                    .collect();
                let winners = select_beam_slots(&rows, group_width, penalty, &chosen_counts);
                // Standard beam step: the top `group_width` candidates each
                // take one slot; an EOS candidate retires its hypothesis.
                let mut next: Vec<Hypothesis> = Vec::with_capacity(group_width);
                for (_score, li, tok) in winners {
                    let p = rows[li].0[tok];
                    let mut hyp = hyps[li].clone();
                    hyp.log_prob += p.max(1e-12).ln();
                    if tok == EOS {
                        hyp.finished = true;
                        done.push(hyp);
                        continue;
                    }
                    hyp.ids.push(tok);
                    hyp.token_probs.push(p);
                    *chosen_counts.entry(tok).or_insert(0) += 1;
                    parents.push(row_base + li);
                    next_tokens.push(tok);
                    next.push(hyp);
                }
                next_group_hyps.push(next);
                row_base += hyps.len();
            }
            group_hyps = next_group_hyps;
            state.reorder(&parents);
            pending = next_tokens;
            if group_hyps.iter().all(|g| g.is_empty()) || done.len() >= width * 2 {
                break;
            }
        }
        // Unfinished survivors still count as candidates.
        for hyps in group_hyps {
            for hyp in hyps {
                done.push(hyp);
            }
        }
        done
    }

    /// Stochastic rollouts. The first-step distribution depends only on
    /// the source, so it is computed once and shared across all samples
    /// (each rollout clones the post-first-step state).
    fn sample(
        &mut self,
        src: &[usize],
        max_len: usize,
        samples: usize,
        min_prob: f32,
    ) -> Vec<Hypothesis> {
        if max_len == 0 {
            return vec![Hypothesis::empty(); samples];
        }
        let enc = self.encoder_output(src);
        let mut root = self.begin(&enc, 1);
        let first = self.step_probs(&mut root, &[SOS]);
        let mut first_probs = first.into_data();
        suppress_specials(&mut first_probs);

        let mut out = Vec::with_capacity(samples);
        for _ in 0..samples {
            let mut state = root.clone();
            let mut suppressed = first_probs.clone();
            let mut hyp = Hypothesis::empty();
            let mut picks = 0usize;
            loop {
                // The paper zeroes low-score tokens before sampling.
                let mut filtered = suppressed.clone();
                let mut total = 0.0f32;
                for p in filtered.iter_mut() {
                    if *p < min_prob {
                        *p = 0.0;
                    }
                    total += *p;
                }
                let (tok, p) = if total <= 0.0 {
                    // Degenerate distribution: fall back to argmax over
                    // the unfiltered (suppressed) distribution.
                    argmax(&suppressed)
                } else {
                    let mut u = self.rng.gen_range(0.0..total);
                    let mut tok = filtered.len() - 1;
                    for (i, &p) in filtered.iter().enumerate() {
                        if u < p {
                            tok = i;
                            break;
                        }
                        u -= p;
                    }
                    (tok, filtered[tok] / total)
                };
                hyp.log_prob += p.max(1e-12).ln();
                if tok == EOS {
                    hyp.finished = true;
                    break;
                }
                hyp.ids.push(tok);
                hyp.token_probs.push(p);
                picks += 1;
                if picks >= max_len {
                    break;
                }
                let next = self.step_probs(&mut state, &[tok]);
                suppressed = next.into_data();
                suppress_specials(&mut suppressed);
            }
            out.push(hyp);
        }
        out
    }
}

/// The pre-incremental decoder: one graph per step per hypothesis,
/// recomputing the full prefix each time (O(L²) per emitted token), with
/// the original single-slot encoder cache. See [`decode_reference`].
struct ReferenceDecoder<'m, M: Seq2Seq + ?Sized> {
    model: &'m M,
    params: &'m Params,
    rng: &'m mut StdRng,
    enc_cache: Option<(Vec<usize>, Arc<Tensor>)>,
}

impl<'m, M: Seq2Seq + ?Sized> ReferenceDecoder<'m, M> {
    fn encoder_output(&mut self, src: &[usize]) -> Arc<Tensor> {
        if let Some((cached_src, enc)) = &self.enc_cache {
            if cached_src == src {
                return Arc::clone(enc); // refcount bump, no data copy
            }
        }
        let mut graph = Graph::new();
        let mut bind = Binding::new(self.params.len());
        let mut fwd = Fwd {
            graph: &mut graph,
            params: self.params,
            bind: &mut bind,
            rng: self.rng,
            training: false,
        };
        let enc = self.model.encode(&mut fwd, src);
        let out = graph.value_shared(enc);
        self.enc_cache = Some((src.to_vec(), Arc::clone(&out)));
        out
    }

    /// Next-token probability distribution after `prefix` (which starts
    /// with `<SOS>`).
    fn next_probs(&mut self, src: &[usize], prefix: &[usize]) -> Vec<f32> {
        let enc_val = self.encoder_output(src);
        let mut graph = Graph::new();
        let mut bind = Binding::new(self.params.len());
        let mut fwd = Fwd {
            graph: &mut graph,
            params: self.params,
            bind: &mut bind,
            rng: self.rng,
            training: false,
        };
        let enc = fwd.constant_shared(enc_val);
        let logits = self.model.decode_last_logits(&mut fwd, enc, prefix);
        graph.value(logits).softmax_rows().into_data()
    }

    fn greedy(&mut self, src: &[usize], max_len: usize) -> Hypothesis {
        let mut prefix = vec![SOS];
        let mut hyp = Hypothesis::empty();
        for _ in 0..max_len {
            let mut probs = self.next_probs(src, &prefix);
            suppress_specials(&mut probs);
            let (tok, p) = argmax(&probs);
            hyp.log_prob += p.max(1e-12).ln();
            if tok == EOS {
                hyp.finished = true;
                break;
            }
            hyp.ids.push(tok);
            hyp.token_probs.push(p);
            prefix.push(tok);
        }
        hyp
    }

    /// Beam search; with `groups > 1` runs diverse beam search.
    fn beam(
        &mut self,
        src: &[usize],
        max_len: usize,
        width: usize,
        groups: usize,
        penalty: f32,
    ) -> Vec<Hypothesis> {
        let width = width.max(1);
        let groups = groups.min(width);
        let group_width = width.div_ceil(groups);

        #[derive(Clone)]
        struct Live {
            prefix: Vec<usize>, // starts with SOS
            hyp: Hypothesis,
        }
        let root = Live {
            prefix: vec![SOS],
            hyp: Hypothesis::empty(),
        };
        // One beam per group.
        let mut beams: Vec<Vec<Live>> = vec![vec![root]; groups];
        let mut done: Vec<Hypothesis> = Vec::new();

        for _step in 0..max_len {
            // Hamming diversity bookkeeping: token → times chosen this
            // step by earlier groups (and earlier slots of this group).
            let mut chosen_counts: HashMap<usize, usize> = HashMap::new();
            for beam in beams.iter_mut() {
                if beam.is_empty() {
                    continue;
                }
                let mut probs_cache: Vec<Vec<f32>> = Vec::with_capacity(beam.len());
                for live in beam.iter() {
                    let mut probs = self.next_probs(src, &live.prefix);
                    suppress_specials(&mut probs);
                    probs_cache.push(probs);
                }
                let rows: Vec<(&[f32], f32)> = probs_cache
                    .iter()
                    .zip(beam.iter())
                    .map(|(probs, live)| (probs.as_slice(), live.hyp.log_prob))
                    .collect();
                let winners = select_beam_slots(&rows, group_width, penalty, &chosen_counts);
                // Standard beam step: the top `group_width` candidates each
                // take one slot; an EOS candidate retires its hypothesis.
                let mut next: Vec<Live> = Vec::with_capacity(group_width);
                for (_score, li, tok) in winners {
                    let live = &beam[li];
                    let p = probs_cache[li][tok];
                    let mut hyp = live.hyp.clone();
                    hyp.log_prob += p.max(1e-12).ln();
                    if tok == EOS {
                        hyp.finished = true;
                        done.push(hyp);
                        continue;
                    }
                    hyp.ids.push(tok);
                    hyp.token_probs.push(p);
                    let mut prefix = live.prefix.clone();
                    prefix.push(tok);
                    *chosen_counts.entry(tok).or_insert(0) += 1;
                    next.push(Live { prefix, hyp });
                }
                *beam = next;
            }
            if beams.iter().all(|b| b.is_empty()) || done.len() >= width * 2 {
                break;
            }
        }
        // Unfinished survivors still count as candidates.
        for beam in beams {
            for live in beam {
                done.push(live.hyp);
            }
        }
        done
    }

    fn sample(
        &mut self,
        src: &[usize],
        max_len: usize,
        samples: usize,
        min_prob: f32,
    ) -> Vec<Hypothesis> {
        let mut out = Vec::with_capacity(samples);
        for _ in 0..samples {
            let mut prefix = vec![SOS];
            let mut hyp = Hypothesis::empty();
            for _ in 0..max_len {
                let mut probs = self.next_probs(src, &prefix);
                suppress_specials(&mut probs);
                // The paper zeroes low-score tokens before sampling.
                let mut total = 0.0f32;
                for p in probs.iter_mut() {
                    if *p < min_prob {
                        *p = 0.0;
                    }
                    total += *p;
                }
                if total <= 0.0 {
                    // Degenerate distribution: fall back to argmax.
                    probs = self.next_probs(src, &prefix);
                    suppress_specials(&mut probs);
                    let (tok, p) = argmax(&probs);
                    hyp.log_prob += p.max(1e-12).ln();
                    if tok == EOS {
                        hyp.finished = true;
                        break;
                    }
                    hyp.ids.push(tok);
                    hyp.token_probs.push(p);
                    prefix.push(tok);
                    continue;
                }
                let mut u = self.rng.gen_range(0.0..total);
                let mut tok = probs.len() - 1;
                for (i, &p) in probs.iter().enumerate() {
                    if u < p {
                        tok = i;
                        break;
                    }
                    u -= p;
                }
                let p = probs[tok] / total;
                hyp.log_prob += p.max(1e-12).ln();
                if tok == EOS {
                    hyp.finished = true;
                    break;
                }
                hyp.ids.push(tok);
                hyp.token_probs.push(p);
                prefix.push(tok);
            }
            out.push(hyp);
        }
        out
    }
}

fn argmax(probs: &[f32]) -> (usize, f32) {
    let mut best = 0;
    let mut best_p = f32::NEG_INFINITY;
    for (i, &p) in probs.iter().enumerate() {
        if p > best_p {
            best_p = p;
            best = i;
        }
    }
    (best, best_p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adam::{Adam, AdamConfig};
    use crate::params::forward_backward;
    use crate::transformer::{Transformer, TransformerConfig};
    use rand::SeedableRng;

    /// Train a tiny model to copy its input; decoding should then emit
    /// the source sequence.
    fn trained_copy_model() -> (Params, Transformer) {
        let mut params = Params::new();
        let mut rng = StdRng::seed_from_u64(8);
        let model = Transformer::new(&mut params, TransformerConfig::test(10), &mut rng);
        let mut adam = Adam::new(
            AdamConfig {
                lr: 3e-3,
                ..AdamConfig::default()
            },
            &params,
        );
        let seqs: Vec<Vec<usize>> = vec![
            vec![SOS, 4, 5, 6, EOS],
            vec![SOS, 7, 8, EOS],
            vec![SOS, 9, 4, 7, EOS],
        ];
        for _ in 0..60 {
            for s in &seqs {
                let src = s.clone();
                let tgt_in = &s[..s.len() - 1];
                let tgt_out = &s[1..];
                forward_backward(&mut params, &mut StdRng::seed_from_u64(0), |fwd| {
                    let enc = model.encode(fwd, &src);
                    let logits = model.decode(fwd, enc, tgt_in);
                    fwd.graph.cross_entropy(logits, tgt_out)
                });
                adam.step(&mut params, 1.0);
            }
        }
        (params, model)
    }

    #[test]
    fn greedy_decodes_copy_task() {
        let (params, model) = trained_copy_model();
        let mut rng = StdRng::seed_from_u64(0);
        let hyps = decode(
            &model,
            &params,
            &[SOS, 4, 5, 6, EOS],
            Strategy::Greedy,
            10,
            &mut rng,
        );
        assert_eq!(hyps.len(), 1);
        assert_eq!(hyps[0].ids, vec![4, 5, 6]);
        assert!(hyps[0].finished);
        assert_eq!(hyps[0].ids.len(), hyps[0].token_probs.len());
        assert!(hyps[0]
            .token_probs
            .iter()
            .all(|&p| (0.0..=1.0).contains(&p)));
    }

    #[test]
    fn beam_width_one_matches_greedy() {
        let (params, model) = trained_copy_model();
        let src = [SOS, 7, 8, EOS];
        let g = decode(
            &model,
            &params,
            &src,
            Strategy::Greedy,
            10,
            &mut StdRng::seed_from_u64(0),
        );
        let b = decode(
            &model,
            &params,
            &src,
            Strategy::Beam { width: 1 },
            10,
            &mut StdRng::seed_from_u64(0),
        );
        assert_eq!(g[0].ids, b[0].ids);
    }

    #[test]
    fn beam_returns_multiple_ranked_hypotheses() {
        let (params, model) = trained_copy_model();
        let hyps = decode(
            &model,
            &params,
            &[SOS, 9, 4, 7, EOS],
            Strategy::Beam { width: 4 },
            10,
            &mut StdRng::seed_from_u64(0),
        );
        assert!(hyps.len() >= 2, "beam should keep alternatives");
        for w in hyps.windows(2) {
            assert!(w[0].log_prob >= w[1].log_prob, "must be sorted");
        }
        // The top hypothesis is the copy.
        assert_eq!(hyps[0].ids, vec![9, 4, 7]);
    }

    #[test]
    fn diverse_beam_spreads_tokens() {
        let (params, model) = trained_copy_model();
        let plain = decode(
            &model,
            &params,
            &[SOS, 4, 5, 6, EOS],
            Strategy::Beam { width: 4 },
            10,
            &mut StdRng::seed_from_u64(0),
        );
        let diverse = decode(
            &model,
            &params,
            &[SOS, 4, 5, 6, EOS],
            Strategy::DiverseBeam {
                width: 4,
                groups: 2,
                penalty: 2.0,
            },
            10,
            &mut StdRng::seed_from_u64(0),
        );
        let first_tokens = |hs: &[Hypothesis]| {
            hs.iter()
                .filter_map(|h| h.ids.first().copied())
                .collect::<std::collections::HashSet<_>>()
        };
        assert!(
            first_tokens(&diverse).len() >= first_tokens(&plain).len(),
            "diversity penalty should not reduce first-token variety"
        );
    }

    #[test]
    fn sampling_respects_min_prob() {
        let (params, model) = trained_copy_model();
        // With a very high min_prob only the argmax survives, so sampling
        // degenerates to greedy.
        let hyps = decode(
            &model,
            &params,
            &[SOS, 4, 5, 6, EOS],
            Strategy::Sampling {
                samples: 3,
                min_prob: 0.9,
            },
            10,
            &mut StdRng::seed_from_u64(1),
        );
        // After dedup all samples collapse to the same (greedy) sequence.
        assert_eq!(hyps.len(), 1);
        assert_eq!(hyps[0].ids, vec![4, 5, 6]);
    }

    #[test]
    fn sampling_produces_variety_with_low_threshold() {
        let mut params = Params::new();
        let mut rng = StdRng::seed_from_u64(3);
        // Untrained model → near-uniform distributions → diverse samples.
        let model = Transformer::new(&mut params, TransformerConfig::test(30), &mut rng);
        let hyps = decode(
            &model,
            &params,
            &[SOS, 4, EOS],
            Strategy::Sampling {
                samples: 6,
                min_prob: 0.0,
            },
            6,
            &mut rng,
        );
        assert!(
            hyps.len() >= 2,
            "expected varied samples, got {}",
            hyps.len()
        );
    }

    #[test]
    fn max_len_caps_unfinished_hypotheses() {
        let mut params = Params::new();
        let mut rng = StdRng::seed_from_u64(3);
        let model = Transformer::new(&mut params, TransformerConfig::test(30), &mut rng);
        let hyps = decode(
            &model,
            &params,
            &[SOS, 4, EOS],
            Strategy::Greedy,
            4,
            &mut rng,
        );
        assert!(hyps[0].ids.len() <= 4);
    }

    #[test]
    fn enc_cache_lru_evicts_oldest_and_refreshes_on_hit() {
        let mut cache = EncCache::new(2);
        let t = |v: f32| Arc::new(Tensor::full(1, 1, v));
        cache.insert(vec![1], t(1.0));
        cache.insert(vec![2], t(2.0));
        // Hit on [1] refreshes it, so inserting [3] evicts [2].
        assert!(cache.lookup(&[1]).is_some());
        cache.insert(vec![3], t(3.0));
        assert_eq!(cache.len(), 2);
        assert!(cache.lookup(&[2]).is_none());
        assert!(cache.lookup(&[1]).is_some());
        assert!(cache.lookup(&[3]).is_some());
    }

    #[test]
    fn enc_cache_generation_change_invalidates() {
        let mut cache = EncCache::new(4);
        cache.insert(vec![1, 2], Arc::new(Tensor::ones(1, 1)));
        cache.set_generation(0); // unchanged generation keeps entries
        assert_eq!(cache.len(), 1);
        cache.set_generation(7);
        assert!(cache.is_empty());
        assert!(cache.lookup(&[1, 2]).is_none());
    }

    #[test]
    fn enc_cache_counters_track_hits_and_misses() {
        let before = counters();
        let mut cache = EncCache::new(2);
        assert!(cache.lookup(&[9, 9]).is_none());
        cache.insert(vec![9, 9], Arc::new(Tensor::ones(1, 1)));
        assert!(cache.lookup(&[9, 9]).is_some());
        let after = counters();
        // Other tests run concurrently, so deltas are lower bounds.
        assert!(after.enc_cache_misses > before.enc_cache_misses);
        assert!(after.enc_cache_hits > before.enc_cache_hits);
    }

    #[test]
    fn cached_decode_reuses_encoder_output_across_calls() {
        let mut params = Params::new();
        let mut rng = StdRng::seed_from_u64(3);
        let model = Transformer::new(&mut params, TransformerConfig::test(12), &mut rng);
        let mut cache = EncCache::new(4);
        let src = [SOS, 4, 5, EOS];
        let a = decode_with_cache(
            &model,
            &params,
            &src,
            Strategy::Greedy,
            4,
            &mut StdRng::seed_from_u64(0),
            &mut cache,
        );
        assert_eq!(cache.len(), 1);
        let before = counters();
        let b = decode_with_cache(
            &model,
            &params,
            &src,
            Strategy::Greedy,
            4,
            &mut StdRng::seed_from_u64(0),
            &mut cache,
        );
        let after = counters();
        assert!(after.enc_cache_hits > before.enc_cache_hits);
        assert_eq!(a, b, "cached encoder output must not change results");
    }

    /// The first-step distribution is shared across sampling rollouts:
    /// `n` rollouts of a deterministic (degenerate min_prob) sample take
    /// `n·d − (n−1)` batched steps where one rollout takes `d`.
    #[test]
    fn sampling_shares_first_step_across_rollouts() {
        let (params, model) = trained_copy_model();
        let src = [SOS, 7, 8, EOS];
        let run = |samples: usize| {
            let before = counters().steps;
            let hyps = decode(
                &model,
                &params,
                &src,
                Strategy::Sampling {
                    samples,
                    min_prob: 0.9,
                },
                10,
                &mut StdRng::seed_from_u64(1),
            );
            assert_eq!(hyps[0].ids, vec![7, 8]);
            counters().steps - before
        };
        let d1 = run(1);
        let d3 = run(3);
        assert!(d1 >= 2, "one rollout must take at least two steps");
        assert_eq!(
            d3,
            3 * d1 - 2,
            "three rollouts must reuse the first-step distribution twice"
        );
    }
}
