//! Int8 quantization sidecar for a [`crate::params::Params`] store.
//!
//! [`QuantParams`] holds, per [`crate::params::ParamId`], an optional
//! pre-packed int8 form of that parameter ([`qrec_tensor::qi8`]'s
//! per-tensor symmetric scheme). It is built once at model-load time by
//! [`crate::params::Params::quantize`] and consulted on the inference
//! hot path: [`crate::layers::Linear::forward`] runs projections with an
//! entry through the int8 GEMM, and [`crate::layers::Embedding::forward`]
//! gathers rows from the int8 table, dequantizing only the looked-up
//! rows. A store with no sidecar behaves exactly as before — the f32
//! path is bitwise untouched.
//!
//! Eligibility is by naming convention: tensors named `*.w` are the
//! matmul weights of [`crate::layers::Linear`] (attention projections,
//! feed-forward, output heads — the projection-heavy decode cost) and
//! become packed GEMM panels; tensors named `*.emb` are embedding
//! tables and become row-major int8 lookup tables. Norms and biases
//! stay f32 — they are tiny and normalisation accuracy matters more
//! than their footprint.
//!
//! The sidecar is **runtime-only** with respect to serde: `Params`
//! derives `Serialize`, so `QuantParams` implements the traits, but it
//! serialises as `null` and deserialises to an empty sidecar.
//! Persistence of quantized weights is explicit — the model zoo writes
//! the raw int8 matrices and scales into its blob
//! ([`QuantParams::export`]) and rebuilds the packed panels on load
//! ([`QuantParams::import`]).

use crate::params::ParamId;
use qrec_tensor::qi8::{self, QPackedB};
use qrec_tensor::Tensor;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// One quantized weight: the packed int8 panels plus shape/scale.
#[derive(Debug, Clone)]
pub struct QWeight {
    /// The pre-packed int8 panels the quantized GEMM consumes.
    pub packed: Arc<QPackedB>,
}

impl QWeight {
    /// Quantize and pack a row-major `k×m` f32 weight tensor.
    pub fn from_tensor(t: &Tensor) -> QWeight {
        QWeight {
            packed: Arc::new(QPackedB::from_f32(t.data(), t.rows(), t.cols())),
        }
    }

    /// Rebuild from a persisted row-major int8 matrix and its scale.
    pub fn from_quantized(q: &[i8], rows: usize, cols: usize, scale: f32) -> QWeight {
        QWeight {
            packed: Arc::new(QPackedB::from_quantized(q, rows, cols, scale)),
        }
    }
}

/// One quantized embedding table: row-major int8 values with a
/// **per-row** scale, gathered (and dequantized) one looked-up row at a
/// time — the full-table f32 form never materialises at inference.
///
/// Rows are quantized independently (each row is a channel: a lookup
/// touches exactly one), so an outlier token's large weights cannot
/// crush the resolution of every other embedding, unlike the per-tensor
/// scheme the GEMM weights use.
#[derive(Debug, Clone)]
pub struct QEmbed {
    rows: usize,
    cols: usize,
    scales: Arc<Vec<f32>>,
    data: Arc<Vec<i8>>,
}

impl QEmbed {
    /// Quantize a row-major `rows×cols` f32 embedding table, one scale
    /// per row.
    pub fn from_tensor(t: &Tensor) -> QEmbed {
        let cols = t.cols();
        let mut scales = Vec::with_capacity(t.rows());
        let mut data = Vec::with_capacity(t.rows() * cols);
        for r in 0..t.rows() {
            let row = &t.data()[r * cols..(r + 1) * cols];
            let scale = qi8::calibrate(row);
            scales.push(scale);
            data.extend(qi8::quantize(row, scale));
        }
        QEmbed {
            rows: t.rows(),
            cols,
            scales: Arc::new(scales),
            data: Arc::new(data),
        }
    }

    /// Rebuild from a persisted row-major int8 table and its per-row
    /// scales (`scales.len() == rows`).
    pub fn from_quantized(q: &[i8], rows: usize, cols: usize, scales: &[f32]) -> QEmbed {
        debug_assert_eq!(scales.len(), rows);
        QEmbed {
            rows,
            cols,
            scales: Arc::new(scales.to_vec()),
            data: Arc::new(q.to_vec()),
        }
    }

    /// Table rows (vocabulary size).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Embedding dimension.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The per-row dequantization scales.
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// Dequantize the rows named by `ids` into a row-major
    /// `len(ids)×cols` f32 buffer (the embedding lookup).
    pub fn gather(&self, ids: &[usize]) -> Vec<f32> {
        let mut out = Vec::with_capacity(ids.len() * self.cols);
        for &id in ids {
            debug_assert!(id < self.rows, "embedding id {id} out of {}", self.rows);
            let scale = self.scales[id];
            let row = &self.data[id * self.cols..(id + 1) * self.cols];
            out.extend(row.iter().map(|&v| scale * v as f32));
        }
        out
    }

    /// The raw int8 table, row-major.
    pub fn values(&self) -> &[i8] {
        &self.data
    }

    /// Resident bytes of the int8 table (values plus per-row scales).
    pub fn resident_bytes(&self) -> usize {
        self.data.len() + self.scales.len() * 4
    }
}

/// A quantized parameter: a GEMM weight or an embedding table.
#[derive(Debug, Clone)]
enum QEntry {
    Weight(QWeight),
    Embed(QEmbed),
}

/// One exported quantized entry: `(param index, rows, cols, scales,
/// row-major int8 values)` — the shape [`QuantParams::export`] emits
/// and [`QuantParams::import`] consumes.
pub type QExportEntry = (usize, usize, usize, Vec<f32>, Vec<i8>);

/// Per-parameter quantization sidecar, aligned with the id space of the
/// `Params` store it was built from.
#[derive(Debug, Clone, Default)]
pub struct QuantParams {
    entries: Vec<Option<QEntry>>,
}

impl QuantParams {
    /// Build a sidecar from `(name, tensor)` pairs in id order,
    /// quantizing every `*.w` matmul weight and `*.emb` embedding
    /// table. Deterministic: the same f32 weights always produce the
    /// same packed bytes and scales.
    pub fn build<'a>(tensors: impl Iterator<Item = (&'a str, &'a Tensor)>) -> QuantParams {
        QuantParams {
            entries: tensors
                .map(|(name, t)| {
                    if t.rows() == 0 || t.cols() == 0 {
                        None
                    } else if name.ends_with(".w") {
                        Some(QEntry::Weight(QWeight::from_tensor(t)))
                    } else if name.ends_with(".emb") {
                        Some(QEntry::Embed(QEmbed::from_tensor(t)))
                    } else {
                        None
                    }
                })
                .collect(),
        }
    }

    /// The quantized GEMM form of a parameter, if it has one.
    pub fn weight(&self, id: ParamId) -> Option<&QWeight> {
        match self.entries.get(id.0)? {
            Some(QEntry::Weight(w)) => Some(w),
            _ => None,
        }
    }

    /// The quantized embedding table of a parameter, if it has one.
    pub fn embed(&self, id: ParamId) -> Option<&QEmbed> {
        match self.entries.get(id.0)? {
            Some(QEntry::Embed(e)) => Some(e),
            _ => None,
        }
    }

    /// Number of quantized entries (weights and embeddings).
    pub fn quantized_count(&self) -> usize {
        self.entries.iter().flatten().count()
    }

    /// Resident bytes of all int8 representations (packed panels,
    /// per-panel scales, and embedding tables).
    pub fn packed_bytes(&self) -> usize {
        self.entries
            .iter()
            .flatten()
            .map(|e| match e {
                QEntry::Weight(w) => w.packed.packed_bytes(),
                QEntry::Embed(t) => t.resident_bytes(),
            })
            .sum()
    }

    /// Export every quantized entry as `(param index, rows, cols,
    /// scales, row-major int8 values)` — the persistence surface the
    /// model zoo writes into its blob sections. GEMM weights carry one
    /// per-tensor scale; embedding tables carry one scale per row.
    pub fn export(&self) -> Vec<QExportEntry> {
        self.entries
            .iter()
            .enumerate()
            .filter_map(|(i, e)| {
                e.as_ref().map(|e| match e {
                    QEntry::Weight(w) => (
                        i,
                        w.packed.k(),
                        w.packed.m(),
                        vec![w.packed.scale()],
                        w.packed.unpack(),
                    ),
                    QEntry::Embed(t) => (
                        i,
                        t.rows(),
                        t.cols(),
                        t.scales().to_vec(),
                        t.values().to_vec(),
                    ),
                })
            })
            .collect()
    }

    /// Rebuild a sidecar for `params` from exported entries (the
    /// inverse of [`QuantParams::export`]). The entry kind is recovered
    /// from the parameter's name — the same convention
    /// [`QuantParams::build`] applies. Entries whose index is out of
    /// range or whose scale count does not match their kind are ignored
    /// rather than panicking — the zoo validates the header separately.
    pub fn import(params: &crate::params::Params, entries: Vec<QExportEntry>) -> QuantParams {
        let names: Vec<&str> = params.named_tensors().map(|(n, _)| n).collect();
        let mut sidecar = QuantParams {
            entries: vec![None; names.len()],
        };
        for (i, rows, cols, scales, q) in entries {
            let Some(name) = names.get(i) else { continue };
            let entry = if name.ends_with(".emb") {
                if scales.len() != rows {
                    continue;
                }
                QEntry::Embed(QEmbed::from_quantized(&q, rows, cols, &scales))
            } else {
                let Some(&scale) = scales.first() else {
                    continue;
                };
                QEntry::Weight(QWeight::from_quantized(&q, rows, cols, scale))
            };
            sidecar.entries[i] = Some(entry);
        }
        sidecar
    }
}

// The sidecar is rebuilt from f32 weights (or from the zoo's explicit
// int8 sections), never round-tripped through serde: serialise as null,
// deserialise to empty. `Params` is not serde-persisted anywhere in the
// workspace — this exists only to keep its derive compiling.
impl Serialize for QuantParams {
    fn to_value(&self) -> serde::Value {
        serde::Value::Null
    }
}

impl Deserialize for QuantParams {
    fn from_value(_: &serde::Value) -> Result<Self, serde::Error> {
        Ok(QuantParams::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Params;

    fn store() -> Params {
        let mut p = Params::new();
        let w: Vec<f32> = (0..12).map(|i| i as f32 * 0.1 - 0.5).collect();
        p.add("lin.w", Tensor::from_vec(3, 4, w));
        p.add("lin.b", Tensor::zeros(1, 4));
        p.add(
            "emb.emb",
            Tensor::from_vec(2, 3, vec![0.5, -0.25, 0.0, 0.125, -0.5, 0.25]),
        );
        p
    }

    #[test]
    fn build_quantizes_weights_and_embeddings() {
        let p = store();
        let q = QuantParams::build(p.named_tensors());
        assert_eq!(q.quantized_count(), 2);
        assert!(q.weight(ParamId(0)).is_some(), "lin.w quantized as GEMM");
        assert!(q.weight(ParamId(1)).is_none(), "bias stays f32");
        assert!(
            q.embed(ParamId(2)).is_some(),
            "embedding quantized as table"
        );
        assert!(
            q.weight(ParamId(2)).is_none(),
            "embedding is not a GEMM weight"
        );
        assert!(q.embed(ParamId(0)).is_none(), "GEMM weight is not a table");
        assert!(q.packed_bytes() > 0);
    }

    #[test]
    fn embed_gather_dequantizes_selected_rows() {
        let p = store();
        let q = QuantParams::build(p.named_tensors());
        let table = q.embed(ParamId(2)).unwrap();
        let got = table.gather(&[1, 0, 1]);
        assert_eq!(got.len(), 9);
        let full = p.value(ParamId(2));
        // Max quantization error of one value is its row's scale/2.
        for (j, v) in got[..3].iter().enumerate() {
            let tol = table.scales()[1] * 0.5 + 1e-7;
            assert!((v - full.get(1, j)).abs() <= tol, "row 1 col {j}");
        }
        for (j, v) in got[3..6].iter().enumerate() {
            let tol = table.scales()[0] * 0.5 + 1e-7;
            assert!((v - full.get(0, j)).abs() <= tol, "row 0 col {j}");
        }
    }

    #[test]
    fn export_import_round_trips() {
        let p = store();
        let q = QuantParams::build(p.named_tensors());
        let exported = q.export();
        assert_eq!(exported.len(), 2);
        let (idx, rows, cols, scales, bytes) = exported[0].clone();
        assert_eq!((idx, rows, cols), (0, 3, 4));
        assert_eq!(scales.len(), 1, "GEMM weight has a per-tensor scale");
        assert!(scales[0] > 0.0);
        assert_eq!(bytes.len(), 12);
        assert_eq!(exported[1].3.len(), 2, "embedding has per-row scales");
        let rebuilt = QuantParams::import(&p, exported);
        assert_eq!(rebuilt.quantized_count(), 2);
        let a = q.weight(ParamId(0)).unwrap();
        let b = rebuilt.weight(ParamId(0)).unwrap();
        assert_eq!(a.packed.unpack(), b.packed.unpack());
        assert_eq!(a.packed.scale(), b.packed.scale());
        let ea = q.embed(ParamId(2)).unwrap();
        let eb = rebuilt.embed(ParamId(2)).unwrap();
        assert_eq!(ea.values(), eb.values());
        let bits = |s: &[f32]| s.iter().map(|v| v.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(ea.scales()), bits(eb.scales()));
    }

    #[test]
    fn serde_surface_is_null_and_empty() {
        let p = store();
        let q = QuantParams::build(p.named_tensors());
        assert_eq!(q.to_value(), serde::Value::Null);
        let back = QuantParams::from_value(&q.to_value()).unwrap();
        assert_eq!(back.quantized_count(), 0);
    }
}
