//! Incremental decode state: per-architecture caches that turn the
//! O(L²)-per-token full-prefix decode into O(L) steps.
//!
//! A [`DecodeState`] is created once per source sequence by
//! [`crate::seq2seq::Seq2Seq::begin_decode`] and advanced one target
//! position at a time by [`crate::seq2seq::Seq2Seq::step_logits`], which
//! runs **one batched `B × d` forward** across all live hypotheses
//! instead of `B` separate full-prefix forwards. What each architecture
//! caches:
//!
//! * **Transformer** — per layer, per hypothesis, the self-attention K/V
//!   rows of every position decoded so far (one row appended per step),
//!   plus the cross-attention K/V of the source projected *once* in
//!   `begin_decode` instead of once per step.
//! * **ConvS2S** — per decoder layer, the rolling window of the last
//!   `kernel - 1` block-input rows per hypothesis (what the causal
//!   convolution at the next position will see).
//! * **GRU** — the hidden state, carried forward as a `B × d` matrix.
//!
//! Every cached value is bitwise identical to the value the full-prefix
//! path recomputes, because the GEMM kernel folds each output element in
//! a fixed ascending-`k` order regardless of batching (see
//! `qrec_tensor::kernel`) and masked softmax columns contribute exact
//! `0.0` terms. The `decode_equivalence` test suite enforces this.
//!
//! After beam pruning, [`DecodeState::reorder`] gathers the state rows
//! of the surviving hypotheses (indices may repeat when one parent
//! spawns several children) so caches follow their hypotheses.

use crate::params::Fwd;
use crate::seq2seq::Seq2Seq;
use qrec_tensor::Tensor;
use std::sync::Arc;

/// State-reorder (beam pruning gather) duration histogram, registered
/// lazily. Reorders shuffle every cached K/V row, so their cost scales
/// with beam width × layers and is worth watching separately from the
/// step forwards.
fn reorder_hist() -> &'static Arc<qrec_obs::Histogram> {
    static H: std::sync::OnceLock<Arc<qrec_obs::Histogram>> = std::sync::OnceLock::new();
    H.get_or_init(|| qrec_obs::global().histogram_log2("nn.decode.reorder_us"))
}

/// Incremental decoding state for one source sequence and a batch of
/// live hypotheses. Created by
/// [`crate::seq2seq::Seq2Seq::begin_decode`]; advanced by
/// [`crate::seq2seq::Seq2Seq::step_logits`]; reordered after beam
/// pruning with [`DecodeState::reorder`].
///
/// Cloning is cheap: the per-architecture caches are behind [`Arc`]s or
/// small matrices, and appends copy-on-write. Stochastic decoding clones
/// the post-first-step state once per rollout so the first-step
/// distribution is computed exactly once per source.
#[derive(Debug, Clone)]
pub struct DecodeState {
    pub(crate) kind: StateKind,
    /// The frozen encoder output this state decodes against.
    pub(crate) enc: Arc<Tensor>,
    /// Consumed target tokens per hypothesis row (the full-prefix
    /// fallback decodes these; incremental paths keep them for parity
    /// and diagnostics — they are a few words per row).
    pub(crate) prefixes: Vec<Vec<usize>>,
    /// Steps consumed so far (target positions fed in).
    pub(crate) steps: usize,
    /// The architecture's positional capacity: every model truncates
    /// target ids with `take(max_len)`, so last-row logits freeze once
    /// `steps` reaches it and further steps replay [`Self::last_logits`].
    pub(crate) arch_max_len: usize,
    /// Logits of the most recent step (`B × vocab`), replayed verbatim
    /// once the position cap freezes the distribution.
    pub(crate) last_logits: Option<Tensor>,
}

/// Architecture-specific cache payload.
#[derive(Debug, Clone)]
pub(crate) enum StateKind {
    /// No cache: every step re-decodes the stored prefixes in full. The
    /// default for any [`crate::seq2seq::Seq2Seq`] implementation that
    /// does not override the incremental API.
    FullPrefix,
    /// Transformer per-layer K/V caches.
    Transformer(TransformerState),
    /// ConvS2S per-layer causal-convolution windows.
    ConvS2S(ConvState),
    /// GRU hidden state.
    Gru(GruState),
}

/// Per-layer, per-hypothesis Transformer decoder caches.
#[derive(Debug, Clone)]
pub(crate) struct TransformerState {
    pub(crate) layers: Vec<TransformerLayerState>,
}

/// One Transformer decoder layer's caches.
#[derive(Debug, Clone)]
pub(crate) struct TransformerLayerState {
    /// Self-attention keys per hypothesis: `t × d_model`, full width
    /// (head slicing happens by columns, exactly as in the full path).
    pub(crate) self_k: KvCache,
    /// Self-attention values per hypothesis: `t × d_model`.
    pub(crate) self_v: KvCache,
    /// Cross-attention keys of the source (`m × d_model`), projected
    /// once per source in `begin_decode` and shared by every step and
    /// every hypothesis.
    pub(crate) cross_k: Arc<Tensor>,
    /// Cross-attention values of the source (`m × d_model`).
    pub(crate) cross_v: Arc<Tensor>,
}

/// Per-hypothesis self-attention K/V rows in one of two resident forms.
///
/// `F32` is the bitwise-reference representation: full-precision rows,
/// appended copy-on-write behind `Arc`s, exactly what the full-prefix
/// path recomputes. `Quant` stores each row as int8 plus a per-row scale
/// ([`qrec_tensor::qi8::QRows`]) — ~4× smaller resident state — and
/// dequantizes on attention read. A state is built quantized when the
/// parameter store carries an int8 sidecar at `begin_decode` time, so
/// the whole decode takes one representation; the f32 form is bitwise
/// untouched by the quantized one's existence.
#[derive(Debug, Clone)]
pub(crate) enum KvCache {
    /// Full-precision rows, one growing `t × d_model` tensor per
    /// hypothesis.
    F32(Vec<Arc<Tensor>>),
    /// Int8 rows with per-row scales, one growing store per hypothesis.
    Quant(Vec<Arc<qrec_tensor::qi8::QRows>>),
}

impl KvCache {
    /// An empty cache of `batch` hypotheses with `d`-wide rows, in the
    /// representation `quantized` selects.
    pub(crate) fn empty(batch: usize, d: usize, quantized: bool) -> KvCache {
        if quantized {
            KvCache::Quant(
                (0..batch)
                    .map(|_| Arc::new(qrec_tensor::qi8::QRows::new(d)))
                    .collect(),
            )
        } else {
            KvCache::F32((0..batch).map(|_| Arc::new(Tensor::zeros(0, d))).collect())
        }
    }

    /// Number of hypothesis rows tracked.
    pub(crate) fn batch(&self) -> usize {
        match self {
            KvCache::F32(rows) => rows.len(),
            KvCache::Quant(rows) => rows.len(),
        }
    }

    /// Append row `i` of `rows` (`B × d`) to hypothesis `i`'s cache,
    /// copy-on-write. Quantized caches calibrate each row on append.
    pub(crate) fn append_rows(&mut self, rows: &Tensor) {
        match self {
            KvCache::F32(caches) => {
                for (i, cache) in caches.iter_mut().enumerate() {
                    Arc::make_mut(cache).append_row(rows.row(i));
                }
            }
            KvCache::Quant(caches) => {
                for (i, cache) in caches.iter_mut().enumerate() {
                    Arc::make_mut(cache).push_row(rows.row(i));
                }
            }
        }
    }

    /// Hypothesis `i`'s cached rows as a graph constant: shared without
    /// copy for f32, dequantized into a fresh `t × d` tensor for int8.
    pub(crate) fn node(&self, fwd: &mut Fwd<'_>, i: usize) -> qrec_tensor::NodeId {
        match self {
            KvCache::F32(caches) => fwd.constant_shared(Arc::clone(&caches[i])),
            KvCache::Quant(caches) => {
                let qr = &caches[i];
                fwd.constant(Tensor::from_vec(qr.rows(), qr.cols(), qr.dequant()))
            }
        }
    }

    /// Gather hypothesis caches by `parents` (beam pruning): refcount
    /// bumps only, in either representation.
    pub(crate) fn gather(&mut self, parents: &[usize]) {
        match self {
            KvCache::F32(caches) => {
                *caches = parents.iter().map(|&p| Arc::clone(&caches[p])).collect();
            }
            KvCache::Quant(caches) => {
                *caches = parents.iter().map(|&p| Arc::clone(&caches[p])).collect();
            }
        }
    }

    /// Resident bytes across all hypotheses (tensor data or int8 rows
    /// plus scales), for memory accounting.
    pub(crate) fn resident_bytes(&self) -> usize {
        match self {
            KvCache::F32(caches) => caches.iter().map(|t| t.len() * 4).sum(),
            KvCache::Quant(caches) => caches.iter().map(|q| q.resident_bytes()).sum(),
        }
    }
}

/// Per-layer ConvS2S rolling windows.
#[derive(Debug, Clone)]
pub(crate) struct ConvState {
    /// One `B × ((kernel-1) · d_model)` matrix per decoder layer: the
    /// last `kernel - 1` block-input rows of each hypothesis, oldest
    /// first, zero-padded before position 0.
    pub(crate) windows: Vec<Tensor>,
}

/// GRU carry.
#[derive(Debug, Clone)]
pub(crate) struct GruState {
    /// Hidden state, one row per hypothesis (`B × d_model`).
    pub(crate) h: Tensor,
}

impl DecodeState {
    /// A full-prefix fallback state (no caching) — correct for any
    /// architecture, used by the default trait methods.
    pub(crate) fn full_prefix(enc: &Arc<Tensor>, batch: usize) -> Self {
        DecodeState {
            kind: StateKind::FullPrefix,
            enc: Arc::clone(enc),
            prefixes: vec![Vec::new(); batch],
            steps: 0,
            // The fallback re-decodes through `decode_last_logits`,
            // which applies the architecture's own truncation — it
            // never needs to freeze explicitly.
            arch_max_len: usize::MAX,
            last_logits: None,
        }
    }

    /// An architecture-backed state.
    pub(crate) fn with_kind(
        kind: StateKind,
        enc: &Arc<Tensor>,
        batch: usize,
        arch_max_len: usize,
    ) -> Self {
        DecodeState {
            kind,
            enc: Arc::clone(enc),
            prefixes: vec![Vec::new(); batch],
            steps: 0,
            arch_max_len,
            last_logits: None,
        }
    }

    /// Number of live hypothesis rows.
    pub fn batch(&self) -> usize {
        self.prefixes.len()
    }

    /// Target positions consumed so far.
    pub fn positions(&self) -> usize {
        self.steps
    }

    /// Record this step's tokens (one per row) and return the 0-based
    /// position the new row occupies, or `None` when the architecture's
    /// positional capacity has frozen the logits (the caller replays
    /// [`Self::frozen_logits`]).
    pub(crate) fn advance(&mut self, last_toks: &[usize]) -> Option<usize> {
        assert_eq!(
            last_toks.len(),
            self.prefixes.len(),
            "step_logits batch mismatch: {} tokens for {} state rows",
            last_toks.len(),
            self.prefixes.len()
        );
        for (prefix, &tok) in self.prefixes.iter_mut().zip(last_toks) {
            prefix.push(tok);
        }
        let pos = self.steps;
        self.steps += 1;
        if pos >= self.arch_max_len {
            None
        } else {
            Some(pos)
        }
    }

    /// The replayed distribution once the position cap is reached: the
    /// full-prefix path truncates target ids at `max_len`, so its
    /// last-row logits stop changing — replaying the stored step is
    /// bitwise identical.
    pub(crate) fn frozen_logits(&self) -> Tensor {
        match &self.last_logits {
            Some(t) => t.clone(),
            None => Tensor::zeros(self.batch(), 0),
        }
    }

    /// Store this step's logits (for freeze replay) and hand back an
    /// owned copy for the caller.
    pub(crate) fn remember_logits(&mut self, logits: Tensor) -> Tensor {
        self.last_logits = Some(logits.clone());
        logits
    }

    /// Resident bytes of the architecture's decode caches — the
    /// transformer's per-hypothesis KV rows (f32 or int8 depending on
    /// the representation chosen at `begin_decode`), the ConvS2S
    /// windows, or the GRU carry. Cross-attention K/V and the encoder
    /// output are shared per source and excluded.
    pub fn resident_cache_bytes(&self) -> usize {
        match &self.kind {
            StateKind::FullPrefix => 0,
            StateKind::Transformer(ts) => ts
                .layers
                .iter()
                .map(|l| l.self_k.resident_bytes() + l.self_v.resident_bytes())
                .sum(),
            StateKind::ConvS2S(cs) => cs.windows.iter().map(|w| w.len() * 4).sum(),
            StateKind::Gru(gs) => gs.h.len() * 4,
        }
    }

    /// Keep the state rows listed in `parents`, in that order: row `i`
    /// of the reordered state is row `parents[i]` of the current state.
    /// Indices may repeat (one parent spawning several children) and the
    /// batch may grow or shrink — beam pruning, diverse-group fan-out,
    /// and sampling clones all route through here.
    pub fn reorder(&mut self, parents: &[usize]) {
        let t0 = qrec_obs::enabled().then(std::time::Instant::now);
        let batch = self.prefixes.len();
        for &p in parents {
            assert!(
                p < batch,
                "reorder parent {p} out of range for batch {batch}"
            );
        }
        self.prefixes = parents.iter().map(|&p| self.prefixes[p].clone()).collect();
        if let Some(logits) = &self.last_logits {
            self.last_logits = Some(logits.gather_rows(parents));
        }
        match &mut self.kind {
            StateKind::FullPrefix => {}
            StateKind::Transformer(ts) => {
                for layer in &mut ts.layers {
                    layer.self_k.gather(parents);
                    layer.self_v.gather(parents);
                }
            }
            StateKind::ConvS2S(cs) => {
                for window in &mut cs.windows {
                    *window = window.gather_rows(parents);
                }
            }
            StateKind::Gru(gs) => {
                gs.h = gs.h.gather_rows(parents);
            }
        }
        if let Some(t0) = t0 {
            reorder_hist().record_duration(t0.elapsed());
        }
    }
}

/// The cache-free step shared by the trait default and by architecture
/// overrides handed a state of a foreign kind (e.g. a cloned
/// `FullPrefix` state): re-decode every stored prefix in full through
/// [`Seq2Seq::decode_last_logits`]. Correct for any architecture,
/// O(L²) per token.
pub(crate) fn full_prefix_step<M: Seq2Seq + ?Sized>(
    model: &M,
    fwd: &mut Fwd<'_>,
    state: &mut DecodeState,
    last_toks: &[usize],
) -> Tensor {
    let _ = state.advance(last_toks);
    let enc = fwd.constant_shared(Arc::clone(&state.enc));
    let mut out = Tensor::zeros(0, model.vocab());
    for prefix in &state.prefixes {
        let node = model.decode_last_logits(fwd, enc, prefix);
        let row = fwd.graph.value(node).row(0).to_vec();
        out.append_row(&row);
    }
    state.remember_logits(out)
}

/// `count` stacked copies of a single row (broadcast a positional
/// encoding row across a batch).
pub(crate) fn repeat_row(row: &[f32], count: usize) -> Tensor {
    let mut data = Vec::with_capacity(row.len() * count);
    for _ in 0..count {
        data.extend_from_slice(row);
    }
    Tensor::from_vec(count, row.len(), data)
}

/// Advance a `B × ((k-1)·d)` rolling window: drop the oldest `d`-wide
/// slot of each row and append the matching row of `incoming` (`B × d`).
/// With `k == 1` the window is zero-width and stays empty.
pub(crate) fn shift_window(window: &Tensor, incoming: &Tensor) -> Tensor {
    let d = incoming.cols();
    let rows = window.rows();
    assert_eq!(rows, incoming.rows(), "shift_window batch mismatch");
    if window.cols() == 0 {
        return window.clone();
    }
    assert!(window.cols() >= d, "shift_window slot mismatch");
    let mut data = Vec::with_capacity(rows * window.cols());
    for r in 0..rows {
        data.extend_from_slice(&window.row(r)[d..]);
        data.extend_from_slice(incoming.row(r));
    }
    Tensor::from_vec(rows, window.cols(), data)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state_with(kind: StateKind, batch: usize, max_len: usize) -> DecodeState {
        let enc = Arc::new(Tensor::zeros(2, 4));
        DecodeState::with_kind(kind, &enc, batch, max_len)
    }

    #[test]
    fn advance_tracks_positions_and_freezes_at_capacity() {
        let mut s = state_with(StateKind::FullPrefix, 2, 2);
        assert_eq!(s.advance(&[1, 1]), Some(0));
        assert_eq!(s.advance(&[4, 5]), Some(1));
        assert_eq!(s.advance(&[6, 7]), None, "position 2 is past max_len 2");
        assert_eq!(s.positions(), 3);
        assert_eq!(s.prefixes, vec![vec![1, 4, 6], vec![1, 5, 7]]);
    }

    #[test]
    #[should_panic(expected = "batch mismatch")]
    fn advance_rejects_wrong_batch() {
        let mut s = state_with(StateKind::FullPrefix, 2, 8);
        let _ = s.advance(&[1]);
    }

    #[test]
    fn reorder_gathers_prefixes_and_logits() {
        let mut s = state_with(StateKind::FullPrefix, 3, 8);
        let _ = s.advance(&[7, 8, 9]);
        s.last_logits = Some(Tensor::from_vec(3, 1, vec![0.7, 0.8, 0.9]));
        s.reorder(&[2, 0, 2]);
        assert_eq!(s.batch(), 3);
        assert_eq!(s.prefixes, vec![vec![9], vec![7], vec![9]]);
        let logits = s.last_logits.clone().map(Tensor::into_data);
        assert_eq!(logits, Some(vec![0.9, 0.7, 0.9]));
    }

    #[test]
    fn reorder_gathers_gru_hidden_rows() {
        let mut s = state_with(
            StateKind::Gru(GruState {
                h: Tensor::from_vec(2, 2, vec![1., 2., 3., 4.]),
            }),
            2,
            8,
        );
        s.reorder(&[1, 1, 0]);
        match &s.kind {
            StateKind::Gru(gs) => {
                assert_eq!(gs.h.shape(), (3, 2));
                assert_eq!(gs.h.row(0), &[3., 4.]);
                assert_eq!(gs.h.row(2), &[1., 2.]);
            }
            other => unreachable!("kind changed: {other:?}"),
        }
    }

    #[test]
    fn repeat_row_broadcasts() {
        let t = repeat_row(&[1., 2.], 3);
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t.row(2), &[1., 2.]);
    }

    #[test]
    fn shift_window_rolls_oldest_slot_out() {
        // kernel 3, d 2: window holds two slots per row.
        let w = Tensor::from_vec(1, 4, vec![1., 2., 3., 4.]);
        let x = Tensor::from_vec(1, 2, vec![5., 6.]);
        let w2 = shift_window(&w, &x);
        assert_eq!(w2.row(0), &[3., 4., 5., 6.]);
        // kernel 1: zero-width window stays empty.
        let w0 = Tensor::zeros(1, 0);
        assert_eq!(shift_window(&w0, &x).cols(), 0);
    }
}
