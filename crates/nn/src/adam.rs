//! The Adam optimizer with gradient clipping, as used for every model in
//! the paper (Section 6.2.4, "We use Adam as the optimizer").

use crate::params::Params;
use qrec_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Adam hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdamConfig {
    /// Learning rate (paper tunes in `[1e-4, 1e-6]`; our scaled-down
    /// models use larger rates).
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical-stability epsilon.
    pub eps: f32,
    /// Clip the global gradient norm to this value before stepping
    /// (`None` disables clipping).
    pub clip_norm: Option<f32>,
}

impl Default for AdamConfig {
    fn default() -> Self {
        AdamConfig {
            lr: 1e-3,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            clip_norm: Some(1.0),
        }
    }
}

/// Adam state: first/second moment estimates per parameter.
#[derive(Debug, Clone)]
pub struct Adam {
    cfg: AdamConfig,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
    t: u64,
}

impl Adam {
    /// Create an optimizer for a parameter store.
    pub fn new(cfg: AdamConfig, params: &Params) -> Self {
        let mut m = Vec::with_capacity(params.len());
        let mut v = Vec::with_capacity(params.len());
        for i in 0..params.len() {
            let p = params.value(crate::params::ParamId(i));
            m.push(Tensor::zeros(p.rows(), p.cols()));
            v.push(Tensor::zeros(p.rows(), p.cols()));
        }
        Adam { cfg, m, v, t: 0 }
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.cfg.lr
    }

    /// Override the learning rate (LR schedules).
    pub fn set_lr(&mut self, lr: f32) {
        self.cfg.lr = lr;
    }

    /// Apply one update using the gradients accumulated in `params`,
    /// then zero them. `scale` divides the gradients first (e.g. by the
    /// batch size when per-example losses were summed).
    pub fn step(&mut self, params: &mut Params, scale: f32) {
        if scale != 1.0 {
            params.scale_grads(scale);
        }
        if let Some(max) = self.cfg.clip_norm {
            let norm = params.grad_norm();
            if norm > max && norm > 0.0 {
                params.scale_grads(max / norm);
            }
        }
        self.t += 1;
        let b1t = 1.0 - self.cfg.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.cfg.beta2.powi(self.t as i32);
        let lr = self.cfg.lr;
        let (b1, b2, eps) = (self.cfg.beta1, self.cfg.beta2, self.cfg.eps);
        for ((p, g), (m, v)) in params
            .iter_mut()
            .zip(self.m.iter_mut().zip(self.v.iter_mut()))
        {
            let pd = p.data_mut();
            let gd = g.data();
            let md = m.data_mut();
            let vd = v.data_mut();
            for i in 0..pd.len() {
                md[i] = b1 * md[i] + (1.0 - b1) * gd[i];
                vd[i] = b2 * vd[i] + (1.0 - b2) * gd[i] * gd[i];
                let mhat = md[i] / b1t;
                let vhat = vd[i] / b2t;
                pd[i] -= lr * mhat / (vhat.sqrt() + eps);
            }
        }
        params.zero_grad();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{forward_backward, Params};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn adam_minimises_quadratic() {
        // Minimise (w - 5)^2 via loss = (w-5)*(w-5).
        let mut params = Params::new();
        let w = params.add("w", Tensor::scalar(0.0));
        let mut adam = Adam::new(
            AdamConfig {
                lr: 0.3,
                ..AdamConfig::default()
            },
            &params,
        );
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..200 {
            forward_backward(&mut params, &mut rng, |fwd| {
                let wn = fwd.param(w);
                let five = fwd.constant(Tensor::scalar(5.0));
                let d = fwd.graph.sub(wn, five);
                fwd.graph.mul(d, d)
            });
            adam.step(&mut params, 1.0);
        }
        let v = params.value(w).item();
        assert!((v - 5.0).abs() < 0.05, "converged to {v}");
    }

    #[test]
    fn clipping_bounds_update_magnitude() {
        let mut params = Params::new();
        let w = params.add("w", Tensor::scalar(0.0));
        let mut adam = Adam::new(
            AdamConfig {
                lr: 1.0,
                clip_norm: Some(0.001),
                ..AdamConfig::default()
            },
            &params,
        );
        let mut rng = StdRng::seed_from_u64(0);
        forward_backward(&mut params, &mut rng, |fwd| {
            let wn = fwd.param(w);
            fwd.graph.scale(wn, 1_000.0)
        });
        adam.step(&mut params, 1.0);
        // Despite the huge raw gradient, clipping + Adam normalisation keep
        // the step near lr.
        assert!(params.value(w).item().abs() <= 1.01);
    }

    #[test]
    fn step_zeroes_gradients() {
        let mut params = Params::new();
        let w = params.add("w", Tensor::scalar(1.0));
        let mut adam = Adam::new(AdamConfig::default(), &params);
        let mut rng = StdRng::seed_from_u64(0);
        forward_backward(&mut params, &mut rng, |fwd| {
            let wn = fwd.param(w);
            fwd.graph.mul(wn, wn)
        });
        adam.step(&mut params, 1.0);
        assert_eq!(params.grad(w).item(), 0.0);
    }

    #[test]
    fn scale_divides_batch_sum() {
        let mut params = Params::new();
        let w = params.add("w", Tensor::scalar(0.0));
        let mut rng = StdRng::seed_from_u64(0);
        forward_backward(&mut params, &mut rng, |fwd| {
            let wn = fwd.param(w);
            fwd.graph.scale(wn, 8.0)
        });
        let mut adam = Adam::new(AdamConfig::default(), &params);
        // scale 1/8 → effective gradient 1.0.
        params.scale_grads(1.0); // no-op, keep explicit
        adam.step(&mut params, 1.0 / 8.0);
        // Direction must be negative (gradient positive).
        assert!(params.value(w).item() < 0.0);
    }
}
