//! Convolutional sequence-to-sequence architecture (Gehring et al.,
//! "ConvS2S"), the second architecture the paper evaluates.
//!
//! Encoder blocks apply a centered 1-D convolution with a GLU gate and a
//! residual connection; decoder blocks use a *causal* convolution plus a
//! dot-product attention over the encoder output, exactly the shape of
//! the original model (per-layer attention, residual scaling by √0.5).

use crate::incremental::{full_prefix_step, shift_window, ConvState, DecodeState, StateKind};
use crate::layers::{Dropout, Embedding, Linear};
use crate::params::{Fwd, Params};
use crate::seq2seq::Seq2Seq;
use qrec_tensor::{NodeId, Tensor};
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// ConvS2S hyper-parameters. The paper fixes these as in the original
/// ConvS2S work; our defaults scale them down proportionally.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConvS2SConfig {
    /// Vocabulary size.
    pub vocab: usize,
    /// Model width.
    pub d_model: usize,
    /// Convolution kernel width.
    pub kernel: usize,
    /// Encoder/decoder layer count.
    pub layers: usize,
    /// Dropout probability.
    pub dropout: f32,
    /// Maximum sequence length (position-embedding table size).
    pub max_len: usize,
}

impl ConvS2SConfig {
    /// A small configuration good for the synthetic workloads.
    pub fn small(vocab: usize) -> Self {
        ConvS2SConfig {
            vocab,
            d_model: 48,
            kernel: 3,
            layers: 2,
            dropout: 0.1,
            max_len: 160,
        }
    }

    /// A minimal configuration for tests.
    pub fn test(vocab: usize) -> Self {
        ConvS2SConfig {
            vocab,
            d_model: 16,
            kernel: 3,
            layers: 1,
            dropout: 0.0,
            max_len: 64,
        }
    }
}

const RESIDUAL_SCALE: f32 = std::f32::consts::FRAC_1_SQRT_2;

#[derive(Debug, Clone, Serialize, Deserialize)]
struct ConvBlock {
    conv: Linear, // (kernel · d) → 2d, fed by unfold
    drop: Dropout,
}

impl ConvBlock {
    fn new(params: &mut Params, name: &str, cfg: &ConvS2SConfig, rng: &mut StdRng) -> Self {
        ConvBlock {
            conv: Linear::new(
                params,
                &format!("{name}.conv"),
                cfg.kernel * cfg.d_model,
                2 * cfg.d_model,
                rng,
            ),
            drop: Dropout::new(cfg.dropout),
        }
    }

    fn forward(&self, fwd: &mut Fwd<'_>, x: NodeId, kernel: usize, causal: bool) -> NodeId {
        let x_in = self.drop.forward(fwd, x);
        let u = if causal {
            fwd.graph.unfold_causal(x_in, kernel)
        } else {
            fwd.graph.unfold_centered(x_in, kernel)
        };
        let h = self.conv.forward(fwd, u);
        let h = fwd.graph.glu(h);
        let s = fwd.graph.add(x, h);
        fwd.graph.scale(s, RESIDUAL_SCALE)
    }
}

/// A full ConvS2S encoder–decoder.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConvS2S {
    cfg: ConvS2SConfig,
    src_embed: Embedding,
    tgt_embed: Embedding,
    pos_embed: Embedding,
    enc_blocks: Vec<ConvBlock>,
    dec_blocks: Vec<ConvBlock>,
    attn_proj: Vec<Linear>,
    out_proj: Linear,
}

impl ConvS2S {
    /// Build the architecture, registering weights into `params`.
    pub fn new(params: &mut Params, cfg: ConvS2SConfig, rng: &mut StdRng) -> Self {
        let src_embed = Embedding::new(params, "cnn.src", cfg.vocab, cfg.d_model, rng);
        let tgt_embed = Embedding::new(params, "cnn.tgt", cfg.vocab, cfg.d_model, rng);
        let pos_embed = Embedding::new(params, "cnn.pos", cfg.max_len, cfg.d_model, rng);
        let enc_blocks = (0..cfg.layers)
            .map(|i| ConvBlock::new(params, &format!("cnn.enc{i}"), &cfg, rng))
            .collect();
        let dec_blocks = (0..cfg.layers)
            .map(|i| ConvBlock::new(params, &format!("cnn.dec{i}"), &cfg, rng))
            .collect();
        let attn_proj = (0..cfg.layers)
            .map(|i| {
                Linear::new(
                    params,
                    &format!("cnn.attn{i}"),
                    cfg.d_model,
                    cfg.d_model,
                    rng,
                )
            })
            .collect();
        let out_proj = Linear::new(params, "cnn.out", cfg.d_model, cfg.vocab, rng);
        ConvS2S {
            cfg,
            src_embed,
            tgt_embed,
            pos_embed,
            enc_blocks,
            dec_blocks,
            attn_proj,
            out_proj,
        }
    }

    /// The configuration this model was built with.
    pub fn config(&self) -> &ConvS2SConfig {
        &self.cfg
    }

    fn decode_states(&self, fwd: &mut Fwd<'_>, enc: NodeId, tgt_in: &[usize]) -> NodeId {
        let mut x = self.embed(fwd, &self.tgt_embed, tgt_in);
        for (block, attn) in self.dec_blocks.iter().zip(&self.attn_proj) {
            x = block.forward(fwd, x, self.cfg.kernel, true);
            // Per-layer dot-product attention over the encoder output.
            let q = attn.forward(fwd, x);
            let scale = 1.0 / (self.cfg.d_model as f32).sqrt();
            let logits = fwd.graph.matmul_nt(q, enc);
            let logits = fwd.graph.scale(logits, scale);
            let a = fwd.graph.softmax_rows(logits);
            let ctx = fwd.graph.matmul(a, enc);
            let s = fwd.graph.add(x, ctx);
            x = fwd.graph.scale(s, RESIDUAL_SCALE);
        }
        x
    }

    fn embed(&self, fwd: &mut Fwd<'_>, table: &Embedding, ids: &[usize]) -> NodeId {
        let ids: Vec<usize> = ids.iter().take(self.cfg.max_len).copied().collect();
        let positions: Vec<usize> = (0..ids.len()).collect();
        let e = table.forward(fwd, &ids);
        let p = self.pos_embed.forward(fwd, &positions);
        fwd.graph.add(e, p)
    }
}

impl Seq2Seq for ConvS2S {
    fn encode(&self, fwd: &mut Fwd<'_>, src: &[usize]) -> NodeId {
        let mut x = self.embed(fwd, &self.src_embed, src);
        for block in &self.enc_blocks {
            x = block.forward(fwd, x, self.cfg.kernel, false);
        }
        x
    }

    fn decode(&self, fwd: &mut Fwd<'_>, enc: NodeId, tgt_in: &[usize]) -> NodeId {
        let states = self.decode_states(fwd, enc, tgt_in);
        self.out_proj.forward(fwd, states)
    }

    fn decode_last_logits(&self, fwd: &mut Fwd<'_>, enc: NodeId, tgt_in: &[usize]) -> NodeId {
        let states = self.decode_states(fwd, enc, tgt_in);
        let rows = fwd.graph.value(states).rows();
        let last = fwd.graph.slice_rows(states, rows - 1, rows);
        self.out_proj.forward(fwd, last)
    }

    fn begin_decode(&self, fwd: &mut Fwd<'_>, enc: &Arc<Tensor>, batch: usize) -> DecodeState {
        let _ = fwd;
        // Each decoder block's causal convolution at the next position
        // sees the previous `kernel - 1` rows of that block's input; the
        // rolling windows start as zeros, matching `unfold_causal`'s
        // zero padding before position 0.
        let slot = self.cfg.kernel.saturating_sub(1) * self.cfg.d_model;
        let windows = vec![Tensor::zeros(batch, slot); self.cfg.layers];
        DecodeState::with_kind(
            StateKind::ConvS2S(ConvState { windows }),
            enc,
            batch,
            self.cfg.max_len,
        )
    }

    fn step_logits(
        &self,
        fwd: &mut Fwd<'_>,
        state: &mut DecodeState,
        last_toks: &[usize],
    ) -> Tensor {
        if !matches!(state.kind, StateKind::ConvS2S(_)) || last_toks.is_empty() {
            return full_prefix_step(self, fwd, state, last_toks);
        }
        let pos = match state.advance(last_toks) {
            Some(pos) => pos,
            None => return state.frozen_logits(),
        };
        let batch = last_toks.len();
        let e = self.tgt_embed.forward(fwd, last_toks);
        let p = self.pos_embed.forward(fwd, &vec![pos; batch]);
        let mut x = fwd.graph.add(e, p);
        let enc_node = fwd.constant_shared(Arc::clone(&state.enc));
        if let StateKind::ConvS2S(cs) = &mut state.kind {
            let layers = self
                .dec_blocks
                .iter()
                .zip(&self.attn_proj)
                .zip(&mut cs.windows);
            for ((block, attn), window) in layers {
                // Causal convolution over [window | new row] — the same
                // `kernel · d_model` slice `unfold_causal` builds for
                // the newest position, batched across hypotheses.
                let x_in = block.drop.forward(fwd, x);
                let win = fwd.constant(window.clone());
                let u = fwd.graph.hcat(win, x_in);
                let h = block.conv.forward(fwd, u);
                let h = fwd.graph.glu(h);
                let s = fwd.graph.add(x, h);
                let conv_out = fwd.graph.scale(s, RESIDUAL_SCALE);
                *window = shift_window(window, &fwd.graph.value(x_in).clone());
                // Per-layer dot-product attention over the encoder
                // output, exactly as in `decode_states`.
                let q = attn.forward(fwd, conv_out);
                let scale = 1.0 / (self.cfg.d_model as f32).sqrt();
                let logits = fwd.graph.matmul_nt(q, enc_node);
                let logits = fwd.graph.scale(logits, scale);
                let a = fwd.graph.softmax_rows(logits);
                let ctx = fwd.graph.matmul(a, enc_node);
                let s = fwd.graph.add(conv_out, ctx);
                x = fwd.graph.scale(s, RESIDUAL_SCALE);
            }
        }
        let logits = self.out_proj.forward(fwd, x);
        let value = fwd.graph.value(logits).clone();
        state.remember_logits(value)
    }

    fn vocab(&self) -> usize {
        self.cfg.vocab
    }

    fn d_model(&self) -> usize {
        self.cfg.d_model
    }

    fn arch_name(&self) -> &'static str {
        "convs2s"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{forward_eval, Params};
    use rand::SeedableRng;

    fn setup() -> (Params, ConvS2S) {
        let mut params = Params::new();
        let mut rng = StdRng::seed_from_u64(5);
        let model = ConvS2S::new(&mut params, ConvS2SConfig::test(20), &mut rng);
        (params, model)
    }

    #[test]
    fn shapes_are_correct() {
        let (params, model) = setup();
        let mut rng = StdRng::seed_from_u64(0);
        let (enc_shape, dec_shape) = forward_eval(&params, &mut rng, |fwd| {
            let enc = model.encode(fwd, &[1, 5, 6, 2]);
            let logits = model.decode(fwd, enc, &[1, 7, 8]);
            (
                fwd.graph.value(enc).shape(),
                fwd.graph.value(logits).shape(),
            )
        });
        assert_eq!(enc_shape, (4, 16));
        assert_eq!(dec_shape, (3, 20));
    }

    #[test]
    fn decoder_is_causal() {
        let (params, model) = setup();
        let run = |tgt: &[usize]| {
            let mut rng = StdRng::seed_from_u64(0);
            forward_eval(&params, &mut rng, |fwd| {
                let enc = model.encode(fwd, &[1, 5, 2]);
                let logits = model.decode(fwd, enc, tgt);
                fwd.graph.value(logits).row(0).to_vec()
            })
        };
        let a = run(&[1, 7, 8, 9]);
        let b = run(&[1, 3, 4, 5]);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-4, "conv decoder row 0 sees the future");
        }
    }

    #[test]
    fn encoder_is_not_causal() {
        // Centered convolutions see one step ahead: changing token 1
        // should change encoder row 0.
        let (params, model) = setup();
        let run = |src: &[usize]| {
            let mut rng = StdRng::seed_from_u64(0);
            forward_eval(&params, &mut rng, |fwd| {
                let enc = model.encode(fwd, src);
                fwd.graph.value(enc).row(0).to_vec()
            })
        };
        let a = run(&[1, 7, 2]);
        let b = run(&[1, 9, 2]);
        let diff: f32 = a.iter().zip(&b).map(|(x, y)| (x - y).abs()).sum();
        assert!(diff > 1e-4);
    }

    #[test]
    fn training_reduces_loss_on_a_single_pair() {
        use crate::adam::{Adam, AdamConfig};
        let mut params = Params::new();
        let mut rng = StdRng::seed_from_u64(6);
        let model = ConvS2S::new(&mut params, ConvS2SConfig::test(12), &mut rng);
        let mut adam = Adam::new(
            AdamConfig {
                lr: 3e-3,
                ..AdamConfig::default()
            },
            &params,
        );
        let src = [1usize, 4, 5, 6, 2];
        let tgt_in = [1usize, 7, 8, 9];
        let tgt_out = [7usize, 8, 9, 2];
        let mut first = 0.0;
        let mut last = 0.0;
        for step in 0..30 {
            let loss = crate::params::forward_backward(&mut params, &mut rng, |fwd| {
                let enc = model.encode(fwd, &src);
                let logits = model.decode(fwd, enc, &tgt_in);
                fwd.graph.cross_entropy(logits, &tgt_out)
            });
            if step == 0 {
                first = loss;
            }
            last = loss;
            adam.step(&mut params, 1.0);
        }
        assert!(last < first * 0.5, "first {first}, last {last}");
    }

    #[test]
    fn convs2s_has_fewer_params_than_comparable_transformer() {
        // Table 3 shape: at matched width/layers ConvS2S is lighter than
        // the Transformer (no per-layer q/k/v/out + ff stacks).
        use crate::transformer::{Transformer, TransformerConfig};
        let mut pc = Params::new();
        let mut rng = StdRng::seed_from_u64(1);
        let _ = ConvS2S::new(&mut pc, ConvS2SConfig::small(100), &mut rng);
        let mut pt = Params::new();
        let _ = Transformer::new(&mut pt, TransformerConfig::small(100), &mut rng);
        assert!(pc.scalar_count() < pt.scalar_count());
    }
}
