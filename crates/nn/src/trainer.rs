//! Mini-batch training loops with validation-based early stopping
//! (Section 6.2.4: Adam, cross-entropy, early stopping on validation
//! loss).

use crate::adam::{Adam, AdamConfig};
use crate::classifier::{classify_logits, ClassifierHead};
use crate::params::{forward_backward, forward_eval, Params};
use crate::schedule::LrSchedule;
use crate::seq2seq::Seq2Seq;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// Epochs completed across all training runs in this process.
fn epochs_counter() -> &'static Arc<qrec_obs::Counter> {
    static C: OnceLock<Arc<qrec_obs::Counter>> = OnceLock::new();
    C.get_or_init(|| qrec_obs::global().counter("nn.train.epochs"))
}

/// Supervision tokens consumed across all training runs.
fn tokens_counter() -> &'static Arc<qrec_obs::Counter> {
    static C: OnceLock<Arc<qrec_obs::Counter>> = OnceLock::new();
    C.get_or_init(|| qrec_obs::global().counter("nn.train.tokens"))
}

/// Epoch wall-clock duration histogram.
fn epoch_hist() -> &'static Arc<qrec_obs::Histogram> {
    static H: OnceLock<Arc<qrec_obs::Histogram>> = OnceLock::new();
    H.get_or_init(|| qrec_obs::global().histogram_log2("nn.train.epoch_us"))
}

/// An encoded training pair: source ids and target ids, both wrapped in
/// `<SOS> … <EOS>`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EncodedPair {
    /// `Q_i` token ids.
    pub src: Vec<usize>,
    /// `Q_{i+1}` token ids.
    pub tgt: Vec<usize>,
}

/// Training-loop configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Maximum epochs.
    pub epochs: usize,
    /// Mini-batch size (the paper tests `[16, 64]`).
    pub batch_size: usize,
    /// Adam settings.
    pub adam: AdamConfig,
    /// Early-stopping patience: stop after this many epochs without a
    /// validation-loss improvement. `0` disables early stopping.
    pub patience: usize,
    /// Learning-rate schedule applied on top of `adam.lr`.
    #[serde(default)]
    pub schedule: LrSchedule,
    /// RNG seed for shuffling and dropout.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 10,
            batch_size: 16,
            adam: AdamConfig::default(),
            patience: 2,
            schedule: LrSchedule::Constant,
            seed: 7,
        }
    }
}

/// Per-epoch training telemetry, recorded alongside the loss pair.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct EpochReport {
    /// Zero-based epoch index.
    pub epoch: usize,
    /// Mean training loss of this epoch.
    pub train_loss: f32,
    /// Mean validation loss after this epoch.
    pub val_loss: f32,
    /// L2 norm of the last mini-batch's accumulated gradient, captured
    /// just before the optimizer step consumed it.
    pub grad_norm: f32,
    /// Supervision tokens consumed per wall-clock second.
    pub tokens_per_sec: f32,
    /// Wall-clock epoch duration in seconds.
    pub seconds: f32,
}

/// What happened during training.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TrainReport {
    /// `(train_loss, val_loss)` per epoch actually run.
    pub epoch_losses: Vec<(f32, f32)>,
    /// Index of the epoch whose weights were kept.
    pub best_epoch: usize,
    /// Wall-clock training time.
    pub train_time: Duration,
    /// Whether early stopping fired.
    pub early_stopped: bool,
    /// Per-epoch telemetry (loss, gradient norm, throughput). Defaults
    /// to empty when deserializing reports written before this field
    /// existed.
    #[serde(default)]
    pub epochs: Vec<EpochReport>,
}

impl TrainReport {
    /// Best validation loss achieved.
    pub fn best_val_loss(&self) -> f32 {
        self.epoch_losses
            .get(self.best_epoch)
            .map_or(f32::INFINITY, |e| e.1)
    }

    /// Training loss of the last epoch actually run, if any ran.
    pub fn final_train_loss(&self) -> Option<f32> {
        self.epoch_losses.last().map(|e| e.0)
    }
}

/// Why a training run could not be started.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrainError {
    /// `TrainConfig.epochs` was zero: the loop would run no epochs and
    /// produce an empty `epoch_losses`, which downstream consumers index.
    NoEpochs,
    /// The training set was empty: no gradient step could be taken.
    NoTrainingData,
}

impl std::fmt::Display for TrainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrainError::NoEpochs => write!(f, "training config requests zero epochs"),
            TrainError::NoTrainingData => write!(f, "training set is empty"),
        }
    }
}

impl std::error::Error for TrainError {}

/// One epoch's closing bookkeeping, shared by both training loops: bump
/// the process-wide counters, record the epoch duration, and append the
/// telemetry row.
fn finish_epoch(
    epochs: &mut Vec<EpochReport>,
    epoch: usize,
    train_loss: f32,
    val_loss: f32,
    grad_norm: f32,
    tokens: usize,
    epoch_start: Instant,
) {
    let elapsed = epoch_start.elapsed();
    let seconds = elapsed.as_secs_f32();
    epochs_counter().inc();
    tokens_counter().add(tokens as u64);
    epoch_hist().record_duration(elapsed);
    epochs.push(EpochReport {
        epoch,
        train_loss,
        val_loss,
        grad_norm,
        tokens_per_sec: if seconds > 0.0 {
            tokens as f32 / seconds
        } else {
            0.0
        },
        seconds,
    });
}

fn validate_training(cfg: &TrainConfig, train_len: usize) -> Result<(), TrainError> {
    if cfg.epochs == 0 {
        return Err(TrainError::NoEpochs);
    }
    if train_len == 0 {
        return Err(TrainError::NoTrainingData);
    }
    Ok(())
}

/// Train a seq2seq model on query pairs; restores the weights of the
/// best validation epoch before returning.
///
/// Panics on a degenerate configuration; use [`try_train_seq2seq`] for a
/// typed error instead.
#[must_use]
pub fn train_seq2seq<M: Seq2Seq>(
    model: &M,
    params: &mut Params,
    train: &[EncodedPair],
    val: &[EncodedPair],
    cfg: &TrainConfig,
) -> TrainReport {
    try_train_seq2seq(model, params, train, val, cfg)
        // qrec-lint: allow(no-panic-in-hot-path) -- documented panicking convenience wrapper; try_train_seq2seq is the typed path
        .unwrap_or_else(|e| panic!("train_seq2seq: {e}"))
}

/// Fallible variant of [`train_seq2seq`]: rejects zero-epoch configs and
/// empty training sets up front instead of returning a report with an
/// empty `epoch_losses` that callers would `unwrap` on.
pub fn try_train_seq2seq<M: Seq2Seq>(
    model: &M,
    params: &mut Params,
    train: &[EncodedPair],
    val: &[EncodedPair],
    cfg: &TrainConfig,
) -> Result<TrainReport, TrainError> {
    validate_training(cfg, train.len())?;
    let start = Instant::now();
    let mut adam = Adam::new(cfg.adam, params);
    let base_lr = cfg.adam.lr;
    let mut global_step = 0u64;
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut order: Vec<usize> = (0..train.len()).collect();
    let mut best: Option<(f32, Params)> = None;
    let mut best_epoch = 0usize;
    let mut epoch_losses = Vec::new();
    let mut epochs = Vec::new();
    let mut early_stopped = false;

    for epoch in 0..cfg.epochs {
        order.shuffle(&mut rng);
        let epoch_start = Instant::now();
        let mut epoch_tokens = 0usize;
        let mut last_grad_norm = 0.0f32;
        let mut train_loss = 0.0f64;
        let mut batches = 0usize;
        for chunk in order.chunks(cfg.batch_size.max(1)) {
            let mut batch_loss = 0.0f32;
            for &i in chunk {
                let pair = &train[i];
                epoch_tokens += pair.tgt.len().saturating_sub(1);
                let loss = forward_backward(params, &mut rng, |fwd| {
                    let enc = model.encode(fwd, &pair.src);
                    let tgt_in = &pair.tgt[..pair.tgt.len() - 1];
                    let tgt_out = &pair.tgt[1..];
                    let logits = model.decode(fwd, enc, tgt_in);
                    let rows = logits_rows(fwd, logits);
                    fwd.graph.cross_entropy(logits, &tgt_out[..rows])
                });
                batch_loss += loss;
            }
            adam.set_lr(cfg.schedule.lr(base_lr, global_step));
            global_step += 1;
            last_grad_norm = params.grad_norm();
            adam.step(params, 1.0 / chunk.len() as f32);
            train_loss += (batch_loss / chunk.len() as f32) as f64;
            batches += 1;
        }
        let train_loss = (train_loss / batches.max(1) as f64) as f32;
        let val_loss = eval_seq2seq(model, params, val, cfg.seed);
        epoch_losses.push((train_loss, val_loss));
        finish_epoch(
            &mut epochs,
            epoch,
            train_loss,
            val_loss,
            last_grad_norm,
            epoch_tokens,
            epoch_start,
        );

        let improved = best.as_ref().is_none_or(|(b, _)| val_loss < *b);
        if improved {
            best = Some((val_loss, params.clone()));
            best_epoch = epoch;
        } else if cfg.patience > 0 && epoch - best_epoch >= cfg.patience {
            early_stopped = true;
            break;
        }
    }
    if let Some((_, best_params)) = best {
        *params = best_params;
    }
    Ok(TrainReport {
        epoch_losses,
        best_epoch,
        train_time: start.elapsed(),
        early_stopped,
        epochs,
    })
}

// The decoder may truncate very long targets to its max_len; align the
// target slice with the logits it actually produced.
fn logits_rows(fwd: &mut crate::params::Fwd<'_>, logits: qrec_tensor::NodeId) -> usize {
    fwd.graph.value(logits).rows()
}

/// Mean validation loss of a seq2seq model (no gradients).
pub fn eval_seq2seq<M: Seq2Seq>(
    model: &M,
    params: &Params,
    pairs: &[EncodedPair],
    seed: u64,
) -> f32 {
    if pairs.is_empty() {
        return f32::INFINITY;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut total = 0.0f64;
    for pair in pairs {
        let loss = forward_eval(params, &mut rng, |fwd| {
            let enc = model.encode(fwd, &pair.src);
            let tgt_in = &pair.tgt[..pair.tgt.len() - 1];
            let tgt_out = &pair.tgt[1..];
            let logits = model.decode(fwd, enc, tgt_in);
            let rows = fwd.graph.value(logits).rows();
            let loss = fwd.graph.cross_entropy(logits, &tgt_out[..rows]);
            fwd.graph.value(loss).item()
        });
        total += loss as f64;
    }
    (total / pairs.len() as f64) as f32
}

/// A labelled classification example.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LabeledSeq {
    /// Input token ids (`Q_i`).
    pub src: Vec<usize>,
    /// Class index (`template(Q_{i+1})`).
    pub label: usize,
}

/// Train a template classifier (encoder + head) on labelled sequences;
/// restores the best-validation weights before returning.
///
/// Panics on a degenerate configuration; use [`try_train_classifier`]
/// for a typed error instead.
#[must_use]
pub fn train_classifier<M: Seq2Seq>(
    model: &M,
    head: &ClassifierHead,
    params: &mut Params,
    train: &[LabeledSeq],
    val: &[LabeledSeq],
    cfg: &TrainConfig,
) -> TrainReport {
    try_train_classifier(model, head, params, train, val, cfg)
        // qrec-lint: allow(no-panic-in-hot-path) -- documented panicking convenience wrapper; try_train_classifier is the typed path
        .unwrap_or_else(|e| panic!("train_classifier: {e}"))
}

/// Fallible variant of [`train_classifier`].
pub fn try_train_classifier<M: Seq2Seq>(
    model: &M,
    head: &ClassifierHead,
    params: &mut Params,
    train: &[LabeledSeq],
    val: &[LabeledSeq],
    cfg: &TrainConfig,
) -> Result<TrainReport, TrainError> {
    validate_training(cfg, train.len())?;
    let start = Instant::now();
    let mut adam = Adam::new(cfg.adam, params);
    let base_lr = cfg.adam.lr;
    let mut global_step = 0u64;
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut order: Vec<usize> = (0..train.len()).collect();
    let mut best: Option<(f32, Params)> = None;
    let mut best_epoch = 0usize;
    let mut epoch_losses = Vec::new();
    let mut epochs = Vec::new();
    let mut early_stopped = false;

    for epoch in 0..cfg.epochs {
        order.shuffle(&mut rng);
        let epoch_start = Instant::now();
        let mut epoch_tokens = 0usize;
        let mut last_grad_norm = 0.0f32;
        let mut train_loss = 0.0f64;
        let mut batches = 0usize;
        for chunk in order.chunks(cfg.batch_size.max(1)) {
            let mut batch_loss = 0.0f32;
            for &i in chunk {
                let ex = &train[i];
                epoch_tokens += ex.src.len();
                let loss = forward_backward(params, &mut rng, |fwd| {
                    let logits = classify_logits(model, head, fwd, &ex.src);
                    fwd.graph.cross_entropy(logits, &[ex.label])
                });
                batch_loss += loss;
            }
            adam.set_lr(cfg.schedule.lr(base_lr, global_step));
            global_step += 1;
            last_grad_norm = params.grad_norm();
            adam.step(params, 1.0 / chunk.len() as f32);
            train_loss += (batch_loss / chunk.len() as f32) as f64;
            batches += 1;
        }
        let train_loss = (train_loss / batches.max(1) as f64) as f32;
        let val_loss = eval_classifier(model, head, params, val, cfg.seed);
        epoch_losses.push((train_loss, val_loss));
        finish_epoch(
            &mut epochs,
            epoch,
            train_loss,
            val_loss,
            last_grad_norm,
            epoch_tokens,
            epoch_start,
        );

        let improved = best.as_ref().is_none_or(|(b, _)| val_loss < *b);
        if improved {
            best = Some((val_loss, params.clone()));
            best_epoch = epoch;
        } else if cfg.patience > 0 && epoch - best_epoch >= cfg.patience {
            early_stopped = true;
            break;
        }
    }
    if let Some((_, best_params)) = best {
        *params = best_params;
    }
    Ok(TrainReport {
        epoch_losses,
        best_epoch,
        train_time: start.elapsed(),
        early_stopped,
        epochs,
    })
}

/// Mean validation loss of a classifier.
pub fn eval_classifier<M: Seq2Seq>(
    model: &M,
    head: &ClassifierHead,
    params: &Params,
    data: &[LabeledSeq],
    seed: u64,
) -> f32 {
    if data.is_empty() {
        return f32::INFINITY;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut total = 0.0f64;
    for ex in data {
        let loss = forward_eval(params, &mut rng, |fwd| {
            let logits = classify_logits(model, head, fwd, &ex.src);
            let loss = fwd.graph.cross_entropy(logits, &[ex.label]);
            fwd.graph.value(loss).item()
        });
        total += loss as f64;
    }
    (total / data.len() as f64) as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transformer::{Transformer, TransformerConfig};
    use rand::SeedableRng;

    fn copy_pairs() -> Vec<EncodedPair> {
        // "Next query" = source with token+1 (mod small alphabet) — a
        // learnable deterministic mapping.
        let seqs: Vec<Vec<usize>> = vec![
            vec![1, 4, 5, 2],
            vec![1, 5, 6, 2],
            vec![1, 6, 7, 2],
            vec![1, 7, 4, 2],
            vec![1, 4, 6, 2],
            vec![1, 5, 7, 2],
        ];
        seqs.iter()
            .map(|s| {
                let tgt: Vec<usize> = s
                    .iter()
                    .map(|&t| {
                        if (4..=7).contains(&t) {
                            4 + (t - 3) % 4
                        } else {
                            t
                        }
                    })
                    .collect();
                EncodedPair {
                    src: s.clone(),
                    tgt,
                }
            })
            .collect()
    }

    #[test]
    fn seq2seq_training_converges_and_early_stops() {
        let mut params = Params::new();
        let mut rng = StdRng::seed_from_u64(1);
        let model = Transformer::new(&mut params, TransformerConfig::test(12), &mut rng);
        let pairs = copy_pairs();
        let cfg = TrainConfig {
            epochs: 40,
            batch_size: 3,
            patience: 4,
            adam: AdamConfig {
                lr: 3e-3,
                ..AdamConfig::default()
            },
            seed: 2,
            ..TrainConfig::default()
        };
        let report = train_seq2seq(&model, &mut params, &pairs, &pairs, &cfg);
        assert!(!report.epoch_losses.is_empty());
        let first = report.epoch_losses[0].1;
        let best = report.best_val_loss();
        assert!(best < first * 0.6, "val loss {first} -> {best}");
        // Restored weights really are the best ones: re-eval matches.
        let re = eval_seq2seq(&model, &params, &pairs, 2);
        assert!((re - best).abs() < 1e-4, "restored {re} vs best {best}");
    }

    #[test]
    fn classifier_training_converges() {
        let mut params = Params::new();
        let mut rng = StdRng::seed_from_u64(3);
        let model = Transformer::new(&mut params, TransformerConfig::test(12), &mut rng);
        let head = crate::classifier::ClassifierHead::new(&mut params, 16, 16, 2, 0.0, &mut rng);
        let data: Vec<LabeledSeq> = vec![
            LabeledSeq {
                src: vec![1, 4, 6, 2],
                label: 0,
            },
            LabeledSeq {
                src: vec![1, 4, 7, 2],
                label: 0,
            },
            LabeledSeq {
                src: vec![1, 5, 6, 2],
                label: 1,
            },
            LabeledSeq {
                src: vec![1, 5, 9, 2],
                label: 1,
            },
        ];
        let cfg = TrainConfig {
            epochs: 30,
            batch_size: 2,
            patience: 5,
            adam: AdamConfig {
                lr: 3e-3,
                ..AdamConfig::default()
            },
            seed: 4,
            ..TrainConfig::default()
        };
        let report = train_classifier(&model, &head, &mut params, &data, &data, &cfg);
        assert!(report.best_val_loss() < report.epoch_losses[0].1);
        // And accuracy is perfect on this separable toy set.
        let mut rng = StdRng::seed_from_u64(0);
        for ex in &data {
            let ranked = crate::classifier::classify(&model, &head, &params, &ex.src, &mut rng);
            assert_eq!(ranked[0].0, ex.label);
        }
    }

    #[test]
    fn zero_epoch_config_is_a_typed_error() {
        let mut params = Params::new();
        let mut rng = StdRng::seed_from_u64(1);
        let model = Transformer::new(&mut params, TransformerConfig::test(12), &mut rng);
        let pairs = copy_pairs();
        let cfg = TrainConfig {
            epochs: 0,
            ..TrainConfig::default()
        };
        let err = try_train_seq2seq(&model, &mut params, &pairs, &pairs, &cfg).unwrap_err();
        assert_eq!(err, TrainError::NoEpochs);

        let head = crate::classifier::ClassifierHead::new(&mut params, 16, 16, 2, 0.0, &mut rng);
        let data = vec![LabeledSeq {
            src: vec![1, 4, 2],
            label: 0,
        }];
        let err = try_train_classifier(&model, &head, &mut params, &data, &data, &cfg).unwrap_err();
        assert_eq!(err, TrainError::NoEpochs);
    }

    #[test]
    fn empty_training_set_is_a_typed_error() {
        let mut params = Params::new();
        let mut rng = StdRng::seed_from_u64(1);
        let model = Transformer::new(&mut params, TransformerConfig::test(12), &mut rng);
        let err =
            try_train_seq2seq(&model, &mut params, &[], &[], &TrainConfig::default()).unwrap_err();
        assert_eq!(err, TrainError::NoTrainingData);
    }

    #[test]
    fn final_train_loss_tracks_last_epoch() {
        let report = TrainReport {
            epoch_losses: vec![(2.0, 2.1), (1.0, 1.2)],
            best_epoch: 1,
            train_time: Duration::from_millis(1),
            ..TrainReport::default()
        };
        assert_eq!(report.final_train_loss(), Some(1.0));
        let empty = TrainReport::default();
        assert_eq!(empty.final_train_loss(), None);
    }

    #[test]
    fn eval_on_empty_sets_is_infinite() {
        let mut params = Params::new();
        let mut rng = StdRng::seed_from_u64(1);
        let model = Transformer::new(&mut params, TransformerConfig::test(12), &mut rng);
        assert!(eval_seq2seq(&model, &params, &[], 0).is_infinite());
    }

    #[test]
    fn report_tracks_epochs() {
        let mut params = Params::new();
        let mut rng = StdRng::seed_from_u64(1);
        let model = Transformer::new(&mut params, TransformerConfig::test(12), &mut rng);
        let pairs = copy_pairs();
        let cfg = TrainConfig {
            epochs: 3,
            batch_size: 2,
            patience: 0,
            adam: AdamConfig::default(),
            seed: 1,
            ..TrainConfig::default()
        };
        let report = train_seq2seq(&model, &mut params, &pairs, &pairs, &cfg);
        assert_eq!(report.epoch_losses.len(), 3);
        assert!(!report.early_stopped);
        assert!(report.train_time.as_nanos() > 0);
        // Telemetry rows track the loss pairs one-to-one.
        assert_eq!(report.epochs.len(), 3);
        for (i, e) in report.epochs.iter().enumerate() {
            assert_eq!(e.epoch, i);
            assert_eq!((e.train_loss, e.val_loss), report.epoch_losses[i]);
            assert!(e.grad_norm > 0.0, "gradient norm should be captured");
            assert!(e.tokens_per_sec > 0.0, "throughput should be captured");
            assert!(e.seconds > 0.0);
        }
    }

    #[test]
    fn reports_without_epoch_telemetry_still_deserialize() {
        // A report serialized before the `epochs` field existed.
        let old = r#"{
            "epoch_losses": [[2.0, 2.5], [1.0, 1.5]],
            "best_epoch": 1,
            "train_time": {"secs": 1, "nanos": 0},
            "early_stopped": false
        }"#;
        let report: TrainReport = serde_json::from_str(old).unwrap();
        assert_eq!(report.best_epoch, 1);
        assert!(report.epochs.is_empty());
    }
}
