//! Parameter storage and the forward-pass context.
//!
//! Model architectures in this crate do not own their weights: they hold
//! [`ParamId`]s into a [`Params`] store. This split is what makes the
//! paper's fine-tuning step natural — a classifier clones the trained
//! seq2seq parameter store, appends its head parameters, and keeps using
//! the encoder's original ids (Section 4.1.2).
//!
//! During a forward pass a [`Binding`] lazily registers each referenced
//! parameter as a graph leaf exactly once per graph, so a mini-batch of
//! sequences shares one leaf per parameter and gradients accumulate
//! across the batch for free.

use qrec_tensor::{Graph, NodeId, Tensor};
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// Handle to one parameter tensor in a [`Params`] store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ParamId(pub(crate) usize);

/// A named collection of parameter tensors with gradient buffers.
///
/// A store may additionally carry an int8 quantization sidecar
/// ([`crate::quant::QuantParams`], built by [`Params::quantize`]):
/// inference-time layers consult it to run their projections through the
/// int8 GEMM. The sidecar is runtime-only — it serialises as `null` and
/// is rebuilt (from f32 weights or from the zoo's explicit int8
/// sections) rather than round-tripped.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Params {
    data: Vec<Tensor>,
    grad: Vec<Tensor>,
    names: Vec<String>,
    #[serde(default)]
    quant: Option<crate::quant::QuantParams>,
}

impl Params {
    /// An empty store.
    pub fn new() -> Self {
        Params::default()
    }

    /// Register a parameter tensor under a diagnostic name.
    pub fn add(&mut self, name: impl Into<String>, value: Tensor) -> ParamId {
        let id = ParamId(self.data.len());
        self.grad.push(Tensor::zeros(value.rows(), value.cols()));
        self.data.push(value);
        self.names.push(name.into());
        id
    }

    /// Number of parameters tensors.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the store is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Total number of scalar parameters (the paper's Table 3 `#params`).
    pub fn scalar_count(&self) -> usize {
        self.data.iter().map(|t| t.len()).sum()
    }

    /// The value of a parameter.
    pub fn value(&self, id: ParamId) -> &Tensor {
        &self.data[id.0]
    }

    /// Mutable value (used by optimizers and tests).
    pub fn value_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.data[id.0]
    }

    /// The accumulated gradient of a parameter.
    pub fn grad(&self, id: ParamId) -> &Tensor {
        &self.grad[id.0]
    }

    /// Diagnostic name of a parameter.
    pub fn name(&self, id: ParamId) -> &str {
        &self.names[id.0]
    }

    /// Zero every gradient buffer (start of an optimizer step).
    pub fn zero_grad(&mut self) {
        for g in &mut self.grad {
            g.fill(0.0);
        }
    }

    /// Pull gradients out of a finished graph into the store's buffers.
    /// Call after [`Graph::backward`].
    pub fn accumulate_grads(&mut self, graph: &Graph, binding: &Binding) {
        for (i, node) in binding.nodes.iter().enumerate() {
            if let Some(node) = node {
                if let Some(g) = graph.grad(*node) {
                    self.grad[i].add_assign(g);
                }
            }
        }
    }

    /// Iterate `(id, value, grad)` triples (optimizer internals).
    pub(crate) fn iter_mut(&mut self) -> impl Iterator<Item = (&mut Tensor, &Tensor)> {
        self.data.iter_mut().zip(self.grad.iter())
    }

    /// Iterate `(name, value)` pairs in id order — the serialisation
    /// surface for model persistence. Ids are positional, so a store
    /// rebuilt by feeding this iterator's output to
    /// [`Params::from_named_tensors`] preserves every [`ParamId`].
    pub fn named_tensors(&self) -> impl Iterator<Item = (&str, &Tensor)> {
        self.names.iter().map(String::as_str).zip(self.data.iter())
    }

    /// Rebuild a store from `(name, value)` pairs in id order (the
    /// inverse of [`Params::named_tensors`]), with freshly zeroed
    /// gradient buffers.
    pub fn from_named_tensors(tensors: Vec<(String, Tensor)>) -> Params {
        let mut params = Params::new();
        for (name, value) in tensors {
            params.add(name, value);
        }
        params
    }

    /// Build (or rebuild) the int8 quantization sidecar from the current
    /// f32 weights: every `*.w` matmul weight is calibrated per-tensor,
    /// quantized, and packed for the int8 GEMM. Inference-time layers
    /// take the quantized path whenever the sidecar is present; training
    /// passes and stores without a sidecar are bitwise unaffected.
    ///
    /// Deterministic: the same weights always produce the same sidecar.
    pub fn quantize(&mut self) {
        self.quant = Some(crate::quant::QuantParams::build(self.named_tensors()));
    }

    /// Drop the quantization sidecar, restoring the pure-f32 path.
    pub fn dequantize(&mut self) {
        self.quant = None;
    }

    /// The quantization sidecar, if [`Params::quantize`] built one.
    pub fn quant(&self) -> Option<&crate::quant::QuantParams> {
        self.quant.as_ref()
    }

    /// True when an int8 sidecar is active.
    pub fn is_quantized(&self) -> bool {
        self.quant.is_some()
    }

    /// Install an externally built sidecar (the zoo's int8-section load
    /// path). The sidecar must have been built for this store's id space.
    pub fn set_quant(&mut self, quant: crate::quant::QuantParams) {
        self.quant = Some(quant);
    }

    /// Global L2 norm of all gradients (for clipping).
    pub fn grad_norm(&self) -> f32 {
        self.grad.iter().map(Tensor::sq_norm).sum::<f32>().sqrt()
    }

    /// Scale all gradients by `c` (for clipping).
    pub fn scale_grads(&mut self, c: f32) {
        for g in &mut self.grad {
            *g = g.scale(c);
        }
    }
}

/// Per-graph cache mapping parameters to their graph leaf, so each
/// parameter is registered once per forward graph.
#[derive(Debug)]
pub struct Binding {
    nodes: Vec<Option<NodeId>>,
}

impl Binding {
    /// A binding for a store with `len` parameters.
    pub fn new(len: usize) -> Self {
        Binding {
            nodes: vec![None; len],
        }
    }
}

/// Everything a layer needs during one forward pass.
pub struct Fwd<'a> {
    /// The autodiff tape being built.
    pub graph: &'a mut Graph,
    /// The parameter store (read-only during forward).
    pub params: &'a Params,
    /// Parameter-to-leaf cache for this graph.
    pub bind: &'a mut Binding,
    /// RNG for dropout masks.
    pub rng: &'a mut StdRng,
    /// Training mode (enables dropout).
    pub training: bool,
}

impl Fwd<'_> {
    /// The graph leaf for a parameter, registering it on first use.
    pub fn param(&mut self, id: ParamId) -> NodeId {
        if let Some(node) = self.bind.nodes[id.0] {
            return node;
        }
        let node = self.graph.input(self.params.value(id).clone());
        self.bind.nodes[id.0] = Some(node);
        node
    }

    /// Register a non-parameter constant (masks, positional encodings).
    pub fn constant(&mut self, t: Tensor) -> NodeId {
        self.graph.input(t)
    }

    /// Register a shared constant without copying its data. The decoder
    /// feeds the cached encoder output into every step graph through
    /// this, so beam search never clones the encoder state per step.
    pub fn constant_shared(&mut self, t: std::sync::Arc<Tensor>) -> NodeId {
        self.graph.input_shared(t)
    }
}

/// Run one forward-backward pass: build a graph with `f`, backprop from
/// the scalar loss `f` returns, and accumulate parameter gradients.
/// Returns the loss value.
pub fn forward_backward(
    params: &mut Params,
    rng: &mut StdRng,
    f: impl FnOnce(&mut Fwd<'_>) -> NodeId,
) -> f32 {
    let mut graph = Graph::new();
    let mut bind = Binding::new(params.len());
    let loss = {
        let mut fwd = Fwd {
            graph: &mut graph,
            params,
            bind: &mut bind,
            rng,
            training: true,
        };
        f(&mut fwd)
    };
    let loss_val = graph.value(loss).item();
    graph.backward(loss);
    params.accumulate_grads(&graph, &bind);
    loss_val
}

/// Run a forward pass without gradients (evaluation / inference).
/// Returns whatever `f` computes from the finished graph.
pub fn forward_eval<T>(params: &Params, rng: &mut StdRng, f: impl FnOnce(&mut Fwd<'_>) -> T) -> T {
    let mut graph = Graph::new();
    let mut bind = Binding::new(params.len());
    let mut fwd = Fwd {
        graph: &mut graph,
        params,
        bind: &mut bind,
        rng,
        training: false,
    };
    f(&mut fwd)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn params_add_and_count() {
        let mut p = Params::new();
        let a = p.add("w", Tensor::zeros(2, 3));
        let b = p.add("b", Tensor::zeros(1, 3));
        assert_eq!(p.len(), 2);
        assert_eq!(p.scalar_count(), 9);
        assert_eq!(p.name(a), "w");
        assert_eq!(p.value(b).shape(), (1, 3));
    }

    #[test]
    fn named_tensor_round_trip_preserves_ids_and_values() {
        let mut p = Params::new();
        let a = p.add("w", Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
        let b = p.add("b", Tensor::from_vec(1, 2, vec![-0.5, 0.25]));
        let rebuilt = Params::from_named_tensors(
            p.named_tensors()
                .map(|(n, t)| (n.to_string(), t.clone()))
                .collect(),
        );
        assert_eq!(rebuilt.len(), p.len());
        assert_eq!(rebuilt.name(a), "w");
        assert_eq!(rebuilt.value(a).data(), p.value(a).data());
        assert_eq!(rebuilt.value(b).data(), p.value(b).data());
        assert_eq!(rebuilt.grad(a).data(), vec![0.0; 4], "grads start zeroed");
    }

    #[test]
    fn binding_registers_param_once() {
        let mut p = Params::new();
        let w = p.add("w", Tensor::scalar(2.0));
        let mut g = Graph::new();
        let mut bind = Binding::new(p.len());
        let mut rng = StdRng::seed_from_u64(0);
        let mut fwd = Fwd {
            graph: &mut g,
            params: &p,
            bind: &mut bind,
            rng: &mut rng,
            training: true,
        };
        let n1 = fwd.param(w);
        let n2 = fwd.param(w);
        assert_eq!(n1, n2);
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn forward_backward_accumulates_grads() {
        let mut p = Params::new();
        let w = p.add("w", Tensor::scalar(3.0));
        let mut rng = StdRng::seed_from_u64(0);
        // loss = w * w  →  dloss/dw = 2w = 6
        let loss = forward_backward(&mut p, &mut rng, |fwd| {
            let wn = fwd.param(w);
            fwd.graph.mul(wn, wn)
        });
        assert_eq!(loss, 9.0);
        assert_eq!(p.grad(w).item(), 6.0);
        // A second pass accumulates.
        forward_backward(&mut p, &mut rng, |fwd| {
            let wn = fwd.param(w);
            fwd.graph.mul(wn, wn)
        });
        assert_eq!(p.grad(w).item(), 12.0);
        p.zero_grad();
        assert_eq!(p.grad(w).item(), 0.0);
    }

    #[test]
    fn grad_norm_and_scaling() {
        let mut p = Params::new();
        let w = p.add("w", Tensor::scalar(1.0));
        let mut rng = StdRng::seed_from_u64(0);
        forward_backward(&mut p, &mut rng, |fwd| {
            let wn = fwd.param(w);
            fwd.graph.scale(wn, 3.0)
        });
        assert_eq!(p.grad_norm(), 3.0);
        p.scale_grads(0.5);
        assert_eq!(p.grad(w).item(), 1.5);
    }

    #[test]
    fn shared_param_across_batch_sums_gradients() {
        // Two "examples" in one graph: loss = w*x1 + w*x2.
        let mut p = Params::new();
        let w = p.add("w", Tensor::scalar(1.0));
        let mut rng = StdRng::seed_from_u64(0);
        forward_backward(&mut p, &mut rng, |fwd| {
            let wn = fwd.param(w);
            let a = fwd.graph.scale(wn, 2.0);
            let b = fwd.graph.scale(wn, 5.0);
            fwd.graph.add(a, b)
        });
        assert_eq!(p.grad(w).item(), 7.0);
    }
}
